#include "core/specialized.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/qpp_solver.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

QppInstance grid_instance(const graph::Graph& g, int k, double cap_multiple) {
  const quorum::QuorumSystem system = quorum::grid(k);
  const double load = static_cast<double>(2 * k - 1) / (k * k);
  return QppInstance(
      graph::Metric::from_graph(g),
      std::vector<double>(static_cast<std::size_t>(g.num_nodes()),
                          cap_multiple * load),
      system, quorum::AccessStrategy::uniform(system));
}

QppInstance majority_instance(const graph::Graph& g, int n, int t,
                              double cap_multiple) {
  const quorum::QuorumSystem system = quorum::majority(n, t);
  return QppInstance(
      graph::Metric::from_graph(g),
      std::vector<double>(static_cast<std::size_t>(g.num_nodes()),
                          cap_multiple * t / n),
      system, quorum::AccessStrategy::uniform(system));
}

TEST(SolveQppGrid, ValidatesSystem) {
  const quorum::QuorumSystem wrong = quorum::star(4);
  QppInstance instance(graph::Metric::from_graph(graph::path_graph(6)),
                       std::vector<double>(6, 1.0), wrong,
                       quorum::AccessStrategy::uniform(wrong));
  EXPECT_THROW(solve_qpp_grid(instance, 2), std::invalid_argument);
}

TEST(SolveQppGrid, NulloptWithoutSlots) {
  const QppInstance instance = grid_instance(graph::path_graph(3), 2, 1.0);
  EXPECT_FALSE(solve_qpp_grid(instance, 2).has_value());
}

TEST(SolveQppGrid, CapacityRespectedExactly) {
  const QppInstance instance = grid_instance(graph::cycle_graph(7), 2, 1.0);
  const auto result = solve_qpp_grid(instance, 2);
  ASSERT_TRUE(result.has_value());
  // Thm 1.3: NO capacity blow-up, unlike Thm 1.2.
  EXPECT_TRUE(is_capacity_feasible(instance.element_loads(),
                                   instance.capacities(),
                                   result->placement));
}

TEST(SolveQppGrid, WithinFactorFiveOfExact) {
  std::mt19937_64 rng(3);
  const QppInstance instance =
      grid_instance(graph::erdos_renyi(7, 0.5, rng, 1.0, 6.0), 2, 1.2);
  const auto result = solve_qpp_grid(instance, 2);
  ASSERT_TRUE(result.has_value());
  const auto exact = exact_qpp_max_delay(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(result->average_delay, 5.0 * exact->delay + 1e-9);
  EXPECT_GE(result->average_delay, exact->delay - 1e-9);
}

TEST(SolveQppMajority, CapacityRespectedAndFactorFive) {
  std::mt19937_64 rng(7);
  const QppInstance instance =
      majority_instance(graph::random_tree(8, rng, 1.0, 5.0), 5, 3, 1.0);
  const auto result = solve_qpp_majority(instance, 3);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(is_capacity_feasible(instance.element_loads(),
                                   instance.capacities(),
                                   result->placement));
  const auto exact = exact_qpp_max_delay(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(result->average_delay, 5.0 * exact->delay + 1e-9);
}

TEST(SolveQppMajority, SourceDelayMatchesEvaluator) {
  const QppInstance instance =
      majority_instance(graph::path_graph(8, 2.0), 5, 3, 1.0);
  const auto result = solve_qpp_majority(instance, 3);
  ASSERT_TRUE(result.has_value());
  const SsqppInstance view =
      single_source_view(instance, result->chosen_source);
  EXPECT_NEAR(result->source_delay,
              source_expected_max_delay(view, result->placement), 1e-12);
}

class SpecializedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpecializedSweep, Theorem13AcrossTopologies) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 661 + 13);
  const graph::Graph g = (GetParam() % 2 == 0)
                             ? graph::erdos_renyi(7, 0.5, rng, 1.0, 8.0)
                             : graph::random_geometric(7, 0.6, rng).graph;
  const QppInstance instance = grid_instance(g, 2, 1.5);
  const auto result = solve_qpp_grid(instance, 2);
  ASSERT_TRUE(result.has_value());
  const auto exact = exact_qpp_max_delay(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(result->average_delay, 5.0 * exact->delay + 1e-9);
  EXPECT_TRUE(is_capacity_feasible(instance.element_loads(),
                                   instance.capacities(),
                                   result->placement));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecializedSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace qp::core
