#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <stdexcept>

#include "graph/generators.hpp"

namespace qp::graph {
namespace {

TEST(EdgeListParse, BasicGraph) {
  const Graph g = parse_edge_list(
      "# a triangle\n"
      "n 3\n"
      "e 0 1 1.5\n"
      "e 1 2 2.0\n"
      "e 0 2 2.5\n");
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.is_connected());
}

TEST(EdgeListParse, CommentsAndBlankLinesIgnored) {
  const Graph g = parse_edge_list("\n# hi\nn 2\n\ne 0 1 1.0  # inline\n");
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(EdgeListParse, RejectsMissingHeader) {
  EXPECT_THROW(parse_edge_list("e 0 1 1.0\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list(""), std::invalid_argument);
}

TEST(EdgeListParse, RejectsDuplicateHeader) {
  EXPECT_THROW(parse_edge_list("n 2\nn 3\n"), std::invalid_argument);
}

TEST(EdgeListParse, RejectsMalformedLines) {
  EXPECT_THROW(parse_edge_list("n 2\ne 0 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("n 2\nx 0 1 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("n 2\ne 0 1 1.0 junk\n"),
               std::invalid_argument);
}

TEST(EdgeListParse, PropagatesGraphValidation) {
  EXPECT_THROW(parse_edge_list("n 2\ne 0 5 1.0\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("n 2\ne 0 1 -1.0\n"), std::invalid_argument);
}

TEST(EdgeListRoundTrip, PreservesStructure) {
  std::mt19937_64 rng(3);
  const Graph original = erdos_renyi(15, 0.3, rng, 1.0, 7.5);
  const Graph parsed = parse_edge_list(to_edge_list(original));
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.edges(), original.edges());
}

TEST(EdgeListFile, MissingFileThrows) {
  EXPECT_THROW(load_edge_list_file("/nonexistent/graph.txt"),
               std::invalid_argument);
}

TEST(EdgeListFile, RoundTripThroughDisk) {
  const Graph original = path_graph(5, 2.0);
  const std::string path = ::testing::TempDir() + "qplace_graph_io_test.txt";
  {
    std::ofstream out(path);
    out << to_edge_list(original);
  }
  const Graph loaded = load_edge_list_file(path);
  EXPECT_EQ(loaded.edges(), original.edges());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qp::graph
