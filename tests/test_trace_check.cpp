/// Unit tests for the trace/access-log reconciliation (`qplace analyze
/// --trace`, src/analyze/trace_check.*): a traced simulation must produce a
/// span tree that explains every logged access, and tampering with any
/// arithmetic fact in the trace (attempt counts, probe durations, outcomes,
/// whole spans) must be detected.
///
/// The global TraceRecorder is shared by the whole test binary, so every
/// case clears it and runs its simulation single-threaded-sequentially (the
/// sim event loop is sequential anyway) before snapshotting the JSON.

#include "analyze/trace_check.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "obs/access_log.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "quorum/constructions.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/simulator.hpp"

namespace qp {
namespace {

struct TracedRun {
  obs::json::Value trace;
  obs::ParsedAccessLog log;
};

core::QppInstance make_instance(int nodes,
                                const quorum::QuorumSystem& system) {
  std::mt19937_64 rng(31);
  const graph::Metric metric = graph::Metric::from_graph(
      graph::erdos_renyi(nodes, 0.5, rng, 1.0, 4.0));
  return core::QppInstance(
      metric,
      std::vector<double>(static_cast<std::size_t>(nodes), 1e9), system,
      quorum::AccessStrategy::uniform(system));
}

core::Placement spread_placement(const core::QppInstance& instance) {
  core::Placement f(
      static_cast<std::size_t>(instance.system().universe_size()));
  for (std::size_t u = 0; u < f.size(); ++u) {
    f[u] = static_cast<int>(u) % instance.num_nodes();
  }
  return f;
}

/// Runs one traced + logged simulation and returns both artifacts parsed.
TracedRun traced_run(sim::SimulationConfig config,
                     const sim::FaultSchedule* faults = nullptr,
                     const quorum::QuorumSystem& system = quorum::grid(2)) {
  const core::QppInstance instance = make_instance(8, system);
  const core::Placement placement = spread_placement(instance);

  std::ostringstream log_stream;
  obs::AccessLogWriter writer(log_stream, obs::AccessLogConfig{});
  config.access_log = &writer;
  config.faults = faults;

  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  recorder.clear();
  recorder.set_enabled(true);
  sim::simulate(instance, placement, config);
  recorder.set_enabled(false);
  writer.close();

  TracedRun run;
  run.trace = obs::json::parse(recorder.to_chrome_json());
  std::istringstream log_in(log_stream.str());
  run.log = obs::parse_access_log(log_in);
  recorder.clear();
  return run;
}

sim::SimulationConfig base_config() {
  sim::SimulationConfig config;
  config.seed = 3;
  config.duration = 40.0;
  config.warmup = 5.0;
  return config;
}

/// First sim-domain event named \p name carrying access id \p id, or
/// nullptr. Tamper tests must target a *logged* access -- the first span in
/// the trace is typically a warmup access, which the checker rightly
/// ignores.
obs::json::Value* find_event(obs::json::Value& trace, const std::string& name,
                             std::int64_t id) {
  for (obs::json::Value& event : trace.object["traceEvents"].array) {
    if (event.get_number("pid", 1.0) !=
        static_cast<double>(obs::TraceRecorder::kSimTimePid)) {
      continue;
    }
    if (event.get_string("name", "") != name) continue;
    const obs::json::Value* args = event.find("args");
    if (args != nullptr &&
        args->get_number("id", -1.0) == static_cast<double>(id)) {
      return &event;
    }
  }
  return nullptr;
}

TEST(TraceCheck, CleanRunReconciles) {
  const TracedRun run = traced_run(base_config());
  ASSERT_GT(run.log.records.size(), 0u);

  const obs::TraceCheckResult result =
      obs::check_trace_against_log(run.trace, run.log);
  EXPECT_TRUE(result.ok()) << (result.findings.empty()
                                   ? "no findings"
                                   : result.findings.front());
  EXPECT_EQ(result.matched_records,
            static_cast<std::int64_t>(run.log.records.size()));
  EXPECT_EQ(result.checked_attempts, result.matched_records);  // no faults
  EXPECT_GT(result.checked_probes, 0);
  // Warmup accesses are traced but never logged: extra spans are fine.
  EXPECT_GT(result.access_spans, result.matched_records);
}

TEST(TraceCheck, FaultRunWithRetriesReconciles) {
  std::ifstream faults_in(std::string(QPLACE_FAULT_FIXTURES) +
                          "/crash_heavy.json");
  ASSERT_TRUE(faults_in.good());
  const sim::FaultSchedule faults = sim::load_fault_schedule(faults_in);

  // crash_heavy downs nodes 0 and 1 for the whole run. Under grid(2) every
  // quorum touches one of them, so the fault-aware re-selection would fail
  // each access as unavailable after its first timeout and no retry would
  // ever launch. majority(5, 3) leaves exactly one live quorum ({2, 3, 4}),
  // so the blind first pick usually times out and the retry succeeds. The
  // timeout must exceed the longest healthy round trip: only probes dropped
  // by crashed nodes may expire, everything else completes in time.
  sim::SimulationConfig config = base_config();
  config.duration = 60.0;
  config.probe_timeout = 16.0;
  config.max_attempts = 4;
  const TracedRun run = traced_run(config, &faults, quorum::majority(5, 3));
  ASSERT_GT(run.log.records.size(), 0u);

  const obs::TraceCheckResult result =
      obs::check_trace_against_log(run.trace, run.log);
  EXPECT_TRUE(result.ok()) << (result.findings.empty()
                                   ? "no findings"
                                   : result.findings.front());
  // Retries happened, so there are strictly more attempt spans than logged
  // accesses -- the span trees really are multi-level here.
  EXPECT_GT(result.checked_attempts, result.matched_records);
}

TEST(TraceCheck, DetectsTamperedAttemptCount) {
  TracedRun run = traced_run(base_config());
  obs::json::Value* access =
      find_event(run.trace, "sim.access", run.log.records.front().id);
  ASSERT_NE(access, nullptr);
  access->object["args"].object["attempts"].number += 1;

  const obs::TraceCheckResult result =
      obs::check_trace_against_log(run.trace, run.log);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.findings.empty());
  EXPECT_NE(result.findings.front().find("attempts"), std::string::npos)
      << result.findings.front();
}

TEST(TraceCheck, DetectsTamperedOutcome) {
  TracedRun run = traced_run(base_config());
  obs::json::Value* access =
      find_event(run.trace, "sim.access", run.log.records.front().id);
  ASSERT_NE(access, nullptr);
  access->object["args"].object["outcome"].string = "timeout";

  const obs::TraceCheckResult result =
      obs::check_trace_against_log(run.trace, run.log);
  EXPECT_FALSE(result.ok());
}

TEST(TraceCheck, DetectsTamperedProbeDuration) {
  TracedRun run = traced_run(base_config());
  obs::json::Value* probe =
      find_event(run.trace, "sim.probe", run.log.records.front().id);
  ASSERT_NE(probe, nullptr);
  probe->object["dur"].number += 7000.0;  // +7 sim units in microseconds

  const obs::TraceCheckResult result =
      obs::check_trace_against_log(run.trace, run.log);
  EXPECT_FALSE(result.ok());
}

TEST(TraceCheck, DetectsMissingAccessSpan) {
  TracedRun run = traced_run(base_config());
  // Delete every sim.access span for the first logged id; the record is
  // then unexplained (the overflow scenario, minus the overflow).
  const std::int64_t victim = run.log.records.front().id;
  auto& events = run.trace.object["traceEvents"].array;
  std::vector<obs::json::Value> kept;
  for (obs::json::Value& event : events) {
    const obs::json::Value* args = event.find("args");
    const bool is_victim =
        event.get_string("name", "") == "sim.access" && args != nullptr &&
        args->get_number("id", -1.0) == static_cast<double>(victim);
    if (!is_victim) kept.push_back(std::move(event));
  }
  events = std::move(kept);

  const obs::TraceCheckResult result =
      obs::check_trace_against_log(run.trace, run.log);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.findings.empty());
  EXPECT_NE(result.findings.front().find("no sim.access span"),
            std::string::npos)
      << result.findings.front();
}

TEST(TraceCheck, FindingsAreCappedButViolationsKeepCounting) {
  TracedRun run = traced_run(base_config());
  // Tamper with every access span so every record violates.
  for (obs::json::Value& event : run.trace.object["traceEvents"].array) {
    if (event.get_string("name", "") == "sim.access") {
      event.object["args"].object["client"].number += 1;
    }
  }
  obs::TraceCheckOptions options;
  options.max_findings = 3;
  const obs::TraceCheckResult result =
      obs::check_trace_against_log(run.trace, run.log, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.findings.size(), 3u);
  EXPECT_GT(result.violations, 3);
}

TEST(TraceCheck, RejectsDocumentsWithoutTraceEvents) {
  const obs::json::Value not_a_trace = obs::json::parse("{\"x\": 1}");
  obs::ParsedAccessLog log;
  EXPECT_THROW(obs::check_trace_against_log(not_a_trace, log),
               std::runtime_error);
}

}  // namespace
}  // namespace qp
