#include "core/local_search.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

QppInstance make_instance(const graph::Graph& g,
                          const quorum::QuorumSystem& system, double cap) {
  return QppInstance(
      graph::Metric::from_graph(g),
      std::vector<double>(static_cast<std::size_t>(g.num_nodes()), cap),
      system, quorum::AccessStrategy::uniform(system));
}

TEST(LocalSearch, RejectsInvalidStart) {
  const QppInstance instance =
      make_instance(graph::path_graph(5), quorum::majority(3), 1.0);
  EXPECT_THROW(local_search_max_delay(instance, {0, 1}),
               std::invalid_argument);
  // Infeasible start: all three elements (load 2/3) on one node of cap 1.
  EXPECT_THROW(local_search_max_delay(instance, {0, 0, 0}),
               std::invalid_argument);
}

TEST(LocalSearch, NeverWorsensAndStaysFeasible) {
  std::mt19937_64 rng(5);
  const QppInstance instance =
      make_instance(graph::erdos_renyi(8, 0.5, rng, 1.0, 6.0),
                    quorum::grid(2), 1.0);
  for (int trial = 0; trial < 10; ++trial) {
    const auto start = random_feasible_placement(instance, rng);
    ASSERT_TRUE(start.has_value());
    const double before = average_max_delay(instance, *start);
    const LocalSearchResult result =
        local_search_max_delay(instance, *start);
    EXPECT_LE(result.delay, before + 1e-12);
    EXPECT_NEAR(result.delay, average_max_delay(instance, result.placement),
                1e-12);
    EXPECT_TRUE(is_capacity_feasible(instance.element_loads(),
                                     instance.capacities(),
                                     result.placement));
  }
}

TEST(LocalSearch, ReachesOptimumOnEasyInstance) {
  // Star topology with loose capacity: the optimum stacks everything on the
  // hub, and first-improvement descent from one-element-per-leaf reaches it
  // (each relocation to the hub strictly improves the average).
  const QppInstance instance =
      make_instance(graph::star_graph(6, 3.0), quorum::majority(3), 10.0);
  const LocalSearchResult result =
      local_search_max_delay(instance, {1, 2, 3});
  const auto exact = exact_qpp_max_delay(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(result.delay, exact->delay, 1e-9);
  EXPECT_EQ(result.placement, (Placement{0, 0, 0}));
}

TEST(LocalSearch, SwapsEscapeWhereMovesCannot) {
  // Nested quorums {0} < {0,1} < {0,1,2} give loads (1, 2/3, 1/3); the
  // capacities pin element 0 to node 1 and pack elements 1 and 2 into
  // nodes {2, 3} in some order. Single moves are all blocked (every
  // feasible node is full), but swapping elements 1 and 2 strictly helps
  // the only weighted client (node 0).
  const graph::Metric metric = graph::Metric::line({0.0, 1.0, 2.0, 9.0});
  const quorum::QuorumSystem system(3, {{0}, {0, 1}, {0, 1, 2}});
  QppInstance instance(metric, {0.1, 1.0, 0.7, 0.7}, system,
                       quorum::AccessStrategy::uniform(system),
                       {1.0, 1e-9, 1e-9, 1e-9});
  const Placement start = {1, 3, 2};  // element 1 on the far node
  LocalSearchOptions no_swaps;
  no_swaps.allow_swaps = false;
  const LocalSearchResult moves_only =
      local_search_max_delay(instance, start, no_swaps);
  EXPECT_EQ(moves_only.moves, 0);  // every relocation is capacity-blocked
  const LocalSearchResult with_swaps =
      local_search_max_delay(instance, start);
  EXPECT_LT(with_swaps.delay, moves_only.delay - 1e-9);
  EXPECT_EQ(with_swaps.placement, (Placement{1, 2, 3}));
}

TEST(LocalSearch, TotalDelayDescendsToSeparableOptimum) {
  // Total delay is separable, so with loose capacities local search must
  // reach the exact optimum (each element independently at its 1-median).
  std::mt19937_64 rng(13);
  const QppInstance instance =
      make_instance(graph::erdos_renyi(7, 0.6, rng, 1.0, 5.0),
                    quorum::majority(3), 10.0);
  const auto start = random_feasible_placement(instance, rng);
  ASSERT_TRUE(start.has_value());
  const LocalSearchResult result =
      local_search_total_delay(instance, *start);
  const auto exact = exact_qpp_total_delay(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(result.delay, exact->delay, 1e-9);
}

TEST(LocalSearch, MoveBudgetRespected) {
  std::mt19937_64 rng(21);
  const QppInstance instance =
      make_instance(graph::erdos_renyi(10, 0.4, rng, 1.0, 8.0),
                    quorum::grid(3), 2.0);
  const auto start = random_feasible_placement(instance, rng);
  ASSERT_TRUE(start.has_value());
  LocalSearchOptions options;
  options.max_moves = 2;
  const LocalSearchResult result =
      local_search_max_delay(instance, *start, options);
  EXPECT_LE(result.moves, 2);
}

TEST(RandomFeasiblePlacement, RespectsCapacities) {
  std::mt19937_64 rng(31);
  const QppInstance instance =
      make_instance(graph::path_graph(4), quorum::grid(2), 0.8);
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = random_feasible_placement(instance, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_TRUE(is_capacity_feasible(instance.element_loads(),
                                     instance.capacities(), *f));
  }
}

TEST(RandomFeasiblePlacement, NulloptWhenImpossible) {
  std::mt19937_64 rng(37);
  const QppInstance instance =
      make_instance(graph::path_graph(3), quorum::grid(2), 0.8);
  EXPECT_FALSE(random_feasible_placement(instance, rng).has_value());
}

}  // namespace
}  // namespace qp::core
