/// End-to-end integration tests: full pipelines across modules, mirroring
/// how the examples and benches drive the library.

#include <gtest/gtest.h>

#include <random>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/grid_layout.hpp"
#include "core/majority_layout.hpp"
#include "core/qpp_solver.hpp"
#include "core/ssqpp_solver.hpp"
#include "core/total_delay.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "sched/exact.hpp"
#include "sched/reduction.hpp"

namespace qp {
namespace {

/// Theorem 1.3 pipeline: optimal grid SSQPP layout per source + relay
/// reduction is a 5-approximation to the full QPP.
TEST(Integration, Theorem13GridPipeline) {
  std::mt19937_64 rng(42);
  const graph::Graph g = graph::erdos_renyi(7, 0.5, rng, 1.0, 4.0);
  const graph::Metric metric = graph::Metric::from_graph(g);
  const quorum::QuorumSystem system = quorum::grid(2);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const double load = 3.0 / 4.0;
  const std::vector<double> caps(7, load);

  core::QppInstance qpp(metric, caps, system, strategy);

  // Optimal single-source layout from every candidate source; keep the best
  // full-QPP objective.
  double best_delay = 1e100;
  core::Placement best;
  for (int v0 = 0; v0 < 7; ++v0) {
    core::SsqppInstance view(metric, caps, system, strategy, v0);
    const auto layout = core::optimal_grid_layout(view, 2);
    ASSERT_TRUE(layout.has_value());
    const double delay = core::average_max_delay(qpp, layout->placement);
    if (delay < best_delay) {
      best_delay = delay;
      best = layout->placement;
    }
  }

  // Capacity respected exactly (no violation in Thm 1.3).
  EXPECT_TRUE(core::is_capacity_feasible(qpp.element_loads(),
                                         qpp.capacities(), best));
  // Within factor 5 of the capacity-feasible optimum.
  const auto exact = core::exact_qpp_max_delay(qpp);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(best_delay, 5.0 * exact->delay + 1e-7);
}

/// Theorem 1.3 for Majority.
TEST(Integration, Theorem13MajorityPipeline) {
  std::mt19937_64 rng(7);
  const graph::Graph g = graph::random_tree(8, rng, 1.0, 5.0);
  const graph::Metric metric = graph::Metric::from_graph(g);
  const int n = 5, t = 3;
  const quorum::QuorumSystem system = quorum::majority(n, t);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const std::vector<double> caps(8, static_cast<double>(t) / n);
  core::QppInstance qpp(metric, caps, system, strategy);

  double best_delay = 1e100;
  core::Placement best;
  for (int v0 = 0; v0 < 8; ++v0) {
    core::SsqppInstance view(metric, caps, system, strategy, v0);
    const auto layout = core::majority_layout(view, t);
    ASSERT_TRUE(layout.has_value());
    const double delay = core::average_max_delay(qpp, layout->placement);
    if (delay < best_delay) {
      best_delay = delay;
      best = layout->placement;
    }
  }
  EXPECT_TRUE(core::is_capacity_feasible(qpp.element_loads(),
                                         qpp.capacities(), best));
  const auto exact = core::exact_qpp_max_delay(qpp);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(best_delay, 5.0 * exact->delay + 1e-7);
}

/// The LP-rounding SSQPP solver plugged into the relay reduction, checked
/// against Theorem 3.3's 5 beta end-to-end logic on a WAN-like topology.
TEST(Integration, RelayPlusRoundingOnGeometricGraph) {
  std::mt19937_64 rng(19);
  const graph::GeometricGraph gg = graph::random_geometric(12, 0.5, rng);
  const graph::Metric metric = graph::Metric::from_graph(gg.graph);
  const quorum::QuorumSystem system = quorum::grid(2);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  core::QppInstance qpp(metric, std::vector<double>(12, 1.0), system,
                        strategy);

  core::QppSolveOptions options;
  options.alpha = 2.0;
  const auto result = core::solve_qpp(qpp, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->load_violation, 3.0 + 1e-9);

  const auto exact = core::exact_qpp_max_delay(qpp);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(result->average_delay, 10.0 * exact->delay + 1e-6);
}

/// Full hardness pipeline: scheduling -> SSQPP -> LP rounding; the rounded
/// placement, translated back to a schedule, stays within the Thm 3.7 delay
/// factor of the scheduling optimum.
TEST(Integration, HardnessReductionPlusRounding) {
  std::mt19937_64 rng(23);
  const sched::SchedulingInstance inst =
      sched::random_woeginger_instance(4, 3, 0.5, rng);
  const sched::ReductionResult reduction = sched::reduce_to_ssqpp(inst);

  const auto rounded = core::solve_ssqpp(reduction.instance, 2.0);
  ASSERT_TRUE(rounded.has_value());

  const sched::ExactScheduleResult opt = sched::solve_exact(inst);
  const double opt_delay = reduction.delay_for_schedule_cost(opt.cost);
  EXPECT_LE(rounded->lp_objective, opt_delay + 1e-7);
  EXPECT_LE(rounded->delay, 2.0 * rounded->lp_objective + 1e-6);
}

/// Total-delay and max-delay solvers agree on the trivial geometry where
/// both have an obvious optimum.
TEST(Integration, StarTopologyCollapsesBothObjectives) {
  const graph::Metric metric =
      graph::Metric::from_graph(graph::star_graph(6, 2.0));
  const quorum::QuorumSystem system = quorum::majority(3);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  core::QppInstance qpp(metric, std::vector<double>(6, 3.0), system, strategy);

  const auto total = core::solve_total_delay(qpp);
  ASSERT_TRUE(total.has_value());
  for (int v : total->placement) EXPECT_EQ(v, 0);

  core::QppSolveOptions options;
  const auto maxd = core::solve_qpp(qpp, options);
  ASSERT_TRUE(maxd.has_value());
  // All elements fit on the hub; max-delay placement should also use it.
  EXPECT_NEAR(maxd->average_delay,
              core::average_max_delay(qpp, total->placement), 1e-9);
}

/// Per-client access strategies (paper Sec 6): averaging the per-client
/// strategies and using the relay bound still yields a within-5x relay
/// certificate for a fixed placement.
TEST(Integration, PerClientStrategiesAverageRelayBound) {
  std::mt19937_64 rng(31);
  const graph::Graph g = graph::erdos_renyi(10, 0.4, rng, 1.0, 3.0);
  const graph::Metric metric = graph::Metric::from_graph(g);
  const quorum::QuorumSystem system = quorum::majority(4);

  // Random per-client strategies.
  const int m = system.num_quorums();
  std::vector<quorum::AccessStrategy> per_client;
  std::uniform_real_distribution<double> dist(0.1, 1.0);
  for (int v = 0; v < 10; ++v) {
    std::vector<double> p(static_cast<std::size_t>(m));
    double total = 0.0;
    for (double& x : p) {
      x = dist(rng);
      total += x;
    }
    for (double& x : p) x /= total;
    per_client.emplace_back(system, std::move(p));
  }

  std::uniform_int_distribution<int> pick(0, 9);
  core::Placement f(4);
  for (int& v : f) v = pick(rng);

  // True average delay with per-client strategies.
  double truth = 0.0;
  for (int v = 0; v < 10; ++v) {
    truth += core::expected_max_delay(
                 metric, system, per_client[static_cast<std::size_t>(v)], f, v) /
             10;
  }
  // Relay node of the generalized Lemma 3.1: argmin over clients of their
  // own expected delay Delta_{p_v}(v).
  int v0 = 0;
  double best = 1e100;
  for (int v = 0; v < 10; ++v) {
    const double d = core::expected_max_delay(
        metric, system, per_client[static_cast<std::size_t>(v)], f, v);
    if (d < best) {
      best = d;
      v0 = v;
    }
  }
  double relay_truth = 0.0;
  for (int v = 0; v < 10; ++v) {
    double expected = 0.0;
    for (int q = 0; q < m; ++q) {
      expected += per_client[static_cast<std::size_t>(v)].probability(q) *
                  (metric(v, v0) + core::max_delay(metric, system.quorum(q), f,
                                                   v0));
    }
    relay_truth += expected / 10;
  }
  EXPECT_LE(relay_truth, 5.0 * truth + 1e-9);
}

}  // namespace
}  // namespace qp
