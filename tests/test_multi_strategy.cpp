#include "core/multi_strategy.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/evaluators.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

PerClientStrategies random_strategies(const quorum::QuorumSystem& system,
                                      int clients, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(0.05, 1.0);
  PerClientStrategies out;
  for (int v = 0; v < clients; ++v) {
    std::vector<double> p(static_cast<std::size_t>(system.num_quorums()));
    double total = 0.0;
    for (double& x : p) {
      x = dist(rng);
      total += x;
    }
    for (double& x : p) x /= total;
    out.emplace_back(system, std::move(p));
  }
  return out;
}

TEST(MultiStrategy, ValidatesArity) {
  const graph::Metric metric = graph::Metric::uniform(4);
  const quorum::QuorumSystem system = quorum::majority(3);
  std::mt19937_64 rng(1);
  PerClientStrategies wrong = random_strategies(system, 3, rng);  // 3 != 4
  const Placement f = {0, 1, 2};
  EXPECT_THROW(
      average_max_delay_multi(metric, system, wrong, {1, 1, 1, 1}, f),
      std::invalid_argument);
}

TEST(MultiStrategy, IdenticalStrategiesReduceToSingleStrategy) {
  std::mt19937_64 rng(3);
  const graph::Metric metric =
      graph::Metric::from_graph(graph::erdos_renyi(6, 0.5, rng, 1.0, 4.0));
  const quorum::QuorumSystem system = quorum::majority(3);
  const quorum::AccessStrategy uniform =
      quorum::AccessStrategy::uniform(system);
  PerClientStrategies same(6, uniform);
  const std::vector<double> weights(6, 1.0);
  const Placement f = {0, 2, 4};

  QppInstance instance(metric, std::vector<double>(6, 10.0), system, uniform);
  EXPECT_NEAR(average_max_delay_multi(metric, system, same, weights, f),
              average_max_delay(instance, f), 1e-12);
  EXPECT_EQ(best_relay_node_multi(metric, system, same, f),
            best_relay_node(instance, f));
  EXPECT_NEAR(relay_delay_multi(metric, system, same, weights, f, 2),
              relay_delay(instance, f, 2), 1e-12);
}

TEST(MultiStrategy, AverageStrategyIsWeightedMean) {
  const quorum::QuorumSystem system = quorum::majority(3);  // 3 quorums
  PerClientStrategies strategies;
  strategies.emplace_back(system, std::vector<double>{1.0, 0.0, 0.0});
  strategies.emplace_back(system, std::vector<double>{0.0, 1.0, 0.0});
  const quorum::AccessStrategy mean =
      average_strategy(system, strategies, {3.0, 1.0});
  EXPECT_NEAR(mean.probability(0), 0.75, 1e-12);
  EXPECT_NEAR(mean.probability(1), 0.25, 1e-12);
  EXPECT_NEAR(mean.probability(2), 0.0, 1e-12);
}

class MultiStrategyLemma : public ::testing::TestWithParam<int> {};

TEST_P(MultiStrategyLemma, GeneralizedFactorFiveHolds) {
  // Paper Sec 6: Lemma 3.1 survives per-client strategies.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 419 + 5);
  const graph::Metric metric =
      graph::Metric::from_graph(graph::erdos_renyi(10, 0.4, rng, 1.0, 6.0));
  const quorum::QuorumSystem system = quorum::grid(2);
  const PerClientStrategies strategies = random_strategies(system, 10, rng);
  const std::vector<double> weights(10, 1.0);
  std::uniform_int_distribution<int> pick(0, 9);
  for (int trial = 0; trial < 5; ++trial) {
    Placement f(4);
    for (int& v : f) v = pick(rng);
    const int v0 = best_relay_node_multi(metric, system, strategies, f);
    EXPECT_LE(
        relay_delay_multi(metric, system, strategies, weights, f, v0),
        5.0 * average_max_delay_multi(metric, system, strategies, weights, f) +
            1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiStrategyLemma, ::testing::Range(0, 10));

TEST(MultiStrategySolver, ProducesBoundedPlacement) {
  std::mt19937_64 rng(17);
  const graph::Metric metric =
      graph::Metric::from_graph(graph::random_tree(8, rng, 1.0, 5.0));
  const quorum::QuorumSystem system = quorum::majority(3);
  const PerClientStrategies strategies = random_strategies(system, 8, rng);
  const std::vector<double> weights(8, 1.0);
  const std::vector<double> caps(8, 1.0);

  const auto result =
      solve_qpp_multi(metric, caps, system, strategies, weights);
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->load_violation, 3.0 + 1e-9);  // alpha = 2 default
  EXPECT_NEAR(result->average_delay,
              average_max_delay_multi(metric, system, strategies, weights,
                                      result->placement),
              1e-12);
}

TEST(MultiStrategySolver, WeightsSteerThePlacement) {
  // All weight on a far-end client on a long path; the chosen placement
  // should serve that client much better than the reverse weighting.
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(10, 2.0));
  const quorum::QuorumSystem system = quorum::majority(3);
  std::mt19937_64 rng(23);
  const PerClientStrategies strategies(
      10, quorum::AccessStrategy::uniform(system));
  std::vector<double> at_end(10, 1e-6);
  at_end[9] = 1.0;
  std::vector<double> at_start(10, 1e-6);
  at_start[0] = 1.0;
  const std::vector<double> caps(10, 0.7);

  const auto end_result =
      solve_qpp_multi(metric, caps, system, strategies, at_end);
  const auto start_result =
      solve_qpp_multi(metric, caps, system, strategies, at_start);
  ASSERT_TRUE(end_result.has_value());
  ASSERT_TRUE(start_result.has_value());
  const double end_delay_for_9 = expected_max_delay(
      metric, system, strategies[9], end_result->placement, 9);
  const double start_delay_for_9 = expected_max_delay(
      metric, system, strategies[9], start_result->placement, 9);
  EXPECT_LT(end_delay_for_9, start_delay_for_9 + 1e-9);
}

}  // namespace
}  // namespace qp::core
