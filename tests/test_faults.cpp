#include "sim/fault_schedule.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/metric.hpp"
#include "quorum/constructions.hpp"
#include "quorum/read_write.hpp"
#include "sim/simulator.hpp"

namespace qp::sim {
namespace {

// Golden fault-schedule fixtures (tests/fixtures/faults/): three canonical
// failure shapes -- crash-heavy, partition, gray slowdown -- replayed
// against one pinned instance with pinned config. The exact counters below
// are the determinism contract made concrete: any engine change that
// shifts event ordering, retry policy, or RNG draw order shows up here as
// an exact-integer diff, not a flaky tolerance failure.

std::string fixture_path(const std::string& name) {
  return std::string(QPLACE_FAULT_FIXTURES) + "/" + name;
}

FaultSchedule load_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name));
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  return load_fault_schedule(in);
}

/// The pinned instance every golden case runs on: path P5 (d(i,j)=|i-j|),
/// majority(5) with the uniform strategy, identity placement.
core::QppInstance golden_instance() {
  const quorum::QuorumSystem system = quorum::majority(5);
  return core::QppInstance(
      graph::Metric::from_graph(graph::path_graph(5)),
      std::vector<double>(5, 1e9), system,
      quorum::AccessStrategy::uniform(system));
}

/// The pinned config: timeout 10 exceeds the worst fault-free path (4), so
/// only injected faults can trip it.
SimulationConfig golden_config(const FaultSchedule& schedule) {
  SimulationConfig config;
  config.duration = 100.0;
  config.arrival_rate_per_client = 1.0;
  config.seed = 99;
  config.faults = &schedule;
  config.probe_timeout = 10.0;
  config.max_attempts = 3;
  config.retry_backoff = 0.5;
  config.retry_backoff_cap = 8.0;
  config.availability_bucket = 25.0;
  return config;
}

// --- FaultSchedule semantics -----------------------------------------------

TEST(FaultScheduleTest, WindowsAreHalfOpen) {
  const FaultSchedule schedule({{2, 10.0, 20.0}}, {}, {});
  EXPECT_FALSE(schedule.crashed(2, 9.999));
  EXPECT_TRUE(schedule.crashed(2, 10.0));   // inclusive start
  EXPECT_TRUE(schedule.crashed(2, 19.999));
  EXPECT_FALSE(schedule.crashed(2, 20.0));  // exclusive end
  EXPECT_FALSE(schedule.crashed(1, 15.0));  // other nodes unaffected
}

TEST(FaultScheduleTest, PartitionIsSymmetricAndScoped) {
  const FaultSchedule schedule(
      {}, {{{0, 1}, {3, 4}, 5.0, 15.0}}, {});
  EXPECT_TRUE(schedule.partitioned(0, 3, 10.0));
  EXPECT_TRUE(schedule.partitioned(3, 0, 10.0));  // symmetric
  EXPECT_TRUE(schedule.partitioned(1, 4, 5.0));
  EXPECT_FALSE(schedule.partitioned(0, 1, 10.0));  // same side
  EXPECT_FALSE(schedule.partitioned(0, 2, 10.0));  // 2 is on neither side
  EXPECT_FALSE(schedule.partitioned(0, 3, 15.0));  // window over
}

TEST(FaultScheduleTest, OverlappingGrayWindowsMultiply) {
  const FaultSchedule schedule(
      {}, {}, {{1, 0.0, 50.0, 2.0}, {1, 20.0, 30.0, 3.0}});
  EXPECT_DOUBLE_EQ(schedule.gray_factor(1, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(schedule.gray_factor(1, 25.0), 6.0);
  EXPECT_DOUBLE_EQ(schedule.gray_factor(1, 60.0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.gray_factor(0, 25.0), 1.0);
}

TEST(FaultScheduleTest, FailedElementsCombinesCrashAndPartition) {
  // Placement: element u lives on node u. Client 0 at t=10 sees element 2
  // failed (crash) and elements 3, 4 failed (partitioned away); client 3
  // sees elements 0, 1 (other partition side) and 2 (crash) failed.
  const FaultSchedule schedule(
      {{2, 0.0, 100.0}}, {{{0, 1}, {3, 4}, 0.0, 100.0}}, {});
  const core::Placement f = {0, 1, 2, 3, 4};
  EXPECT_EQ(schedule.failed_elements(f, 0, 10.0),
            (std::vector<bool>{false, false, true, true, true}));
  EXPECT_EQ(schedule.failed_elements(f, 3, 10.0),
            (std::vector<bool>{true, true, true, false, false}));
  // After every window: nothing failed.
  EXPECT_EQ(schedule.failed_elements(f, 0, 100.0),
            (std::vector<bool>(5, false)));
}

TEST(FaultScheduleTest, AnyActiveDetectsOverlap) {
  const FaultSchedule schedule({{0, 10.0, 20.0}}, {}, {});
  EXPECT_TRUE(schedule.any_active(0.0, 100.0));
  EXPECT_TRUE(schedule.any_active(15.0, 16.0));
  EXPECT_FALSE(schedule.any_active(0.0, 9.0));
  EXPECT_FALSE(schedule.any_active(20.0, 30.0));  // [10,20) already over
  EXPECT_FALSE(FaultSchedule().any_active(0.0, 1e9));
}

TEST(FaultScheduleTest, ValidatesWindows) {
  EXPECT_THROW(FaultSchedule({{-1, 0.0, 1.0}}, {}, {}),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule({{0, 5.0, 1.0}}, {}, {}),  // until < from
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule({}, {}, {{0, 0.0, 1.0, 0.5}}),  // factor < 1
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule({}, {{{0, 1}, {1, 2}, 0.0, 1.0}}, {}),
               std::invalid_argument);  // sides share node 1
  EXPECT_THROW(FaultSchedule({}, {{{1, 0}, {2, 3}, 0.0, 1.0}}, {}),
               std::invalid_argument);  // unsorted side
}

TEST(FaultScheduleTest, MaxNodeSpansAllWindowKinds) {
  EXPECT_EQ(FaultSchedule().max_node(), -1);
  const FaultSchedule schedule(
      {{1, 0.0, 1.0}}, {{{0, 2}, {7, 9}, 0.0, 1.0}}, {{4, 0.0, 1.0, 2.0}});
  EXPECT_EQ(schedule.max_node(), 9);
}

TEST(FaultScheduleTest, ParseRenderRoundTrips) {
  for (const char* name : {"crash_heavy.json", "partition.json", "gray.json"}) {
    const FaultSchedule schedule = load_fixture(name);
    const std::string rendered = render_fault_schedule(schedule);
    const FaultSchedule reparsed = parse_fault_schedule(rendered);
    EXPECT_EQ(render_fault_schedule(reparsed), rendered) << name;
    EXPECT_EQ(fault_schedule_digest(reparsed), fault_schedule_digest(schedule))
        << name;
  }
}

TEST(FaultScheduleTest, FixtureDigestsArePinned) {
  // The digest is stamped into access logs as "fault_digest"; drift here
  // means previously recorded logs stop cross-checking.
  EXPECT_EQ(fault_schedule_digest(load_fixture("crash_heavy.json")),
            "c865602846f50314");
  EXPECT_EQ(fault_schedule_digest(load_fixture("partition.json")),
            "465e461d9139e1d5");
  EXPECT_EQ(fault_schedule_digest(load_fixture("gray.json")),
            "b0091abcd06434c1");
}

TEST(FaultScheduleTest, ParseRejectsForeignSchemaAndGarbage) {
  EXPECT_THROW(parse_fault_schedule("{\"schema\": \"qplace.faults.v7\"}"),
               std::runtime_error);
  EXPECT_THROW(parse_fault_schedule("{\"crashes\": []}"),
               std::runtime_error);  // schema tag missing
  EXPECT_THROW(parse_fault_schedule("not json"), std::runtime_error);
}

TEST(FaultScheduleTest, RandomScheduleIsDeterministicAndBounded) {
  RandomFaultOptions options;
  options.crash_rate = 1.5;
  options.mean_downtime = 20.0;
  options.partition_rate = 2.0;
  options.mean_partition_duration = 15.0;
  options.gray_rate = 1.0;
  options.mean_gray_duration = 30.0;
  options.gray_factor = 5.0;

  const FaultSchedule a = random_fault_schedule(12, 200.0, options, 42);
  const FaultSchedule b = random_fault_schedule(12, 200.0, options, 42);
  EXPECT_EQ(render_fault_schedule(a), render_fault_schedule(b));
  const FaultSchedule c = random_fault_schedule(12, 200.0, options, 43);
  EXPECT_NE(render_fault_schedule(a), render_fault_schedule(c));

  EXPECT_FALSE(a.empty());
  EXPECT_LT(a.max_node(), 12);
  for (const CrashWindow& w : a.crashes()) {
    EXPECT_GE(w.from, 0.0);
    EXPECT_LE(w.until, 200.0);
  }
  for (const GrayWindow& w : a.gray()) {
    EXPECT_DOUBLE_EQ(w.factor, 5.0);
  }

  // All-zero rates: the empty schedule, for any seed.
  EXPECT_TRUE(
      random_fault_schedule(12, 200.0, RandomFaultOptions{}, 42).empty());
}

// --- Golden fault runs (exact counters) ------------------------------------

TEST(FaultSimulatorTest, CrashHeavyGoldenCounters) {
  // Nodes 0 and 1 down for the whole horizon: 7 of the 10 majority quorums
  // are dead, so most accesses burn one timeout and retry into the live
  // ones -- but every access eventually completes.
  const FaultSchedule schedule = load_fixture("crash_heavy.json");
  const SimulationResult result =
      simulate(golden_instance(), {0, 1, 2, 3, 4}, golden_config(schedule));
  EXPECT_EQ(result.completed_accesses, 431);
  EXPECT_EQ(result.failed_accesses, 0);
  EXPECT_EQ(result.unavailable_accesses, 0);
  EXPECT_EQ(result.timed_out_attempts, 392);
  EXPECT_EQ(result.retries, 388);
  EXPECT_DOUBLE_EQ(result.availability, 1.0);
  EXPECT_TRUE(result.safety_ok);
  EXPECT_EQ(result.availability_series,
            (std::vector<double>{1.0, 1.0, 1.0, 1.0}));
}

TEST(FaultSimulatorTest, PartitionGoldenCounters) {
  // {0,1} vs {2,3,4} during [25, 75): neither side can assemble a
  // 3-element majority it can reach, so mid-run accesses go unavailable
  // and the availability series dips exactly in the middle buckets.
  const FaultSchedule schedule = load_fixture("partition.json");
  const SimulationResult result =
      simulate(golden_instance(), {0, 1, 2, 3, 4}, golden_config(schedule));
  EXPECT_EQ(result.completed_accesses, 400);
  EXPECT_EQ(result.failed_accesses, 86);
  EXPECT_EQ(result.unavailable_accesses, 86);
  EXPECT_EQ(result.timed_out_attempts, 217);
  EXPECT_EQ(result.retries, 131);
  EXPECT_DOUBLE_EQ(result.availability, 400.0 / 486.0);
  EXPECT_TRUE(result.safety_ok);
  ASSERT_EQ(result.availability_series.size(), 4u);
  EXPECT_DOUBLE_EQ(result.availability_series[0], 1.0);
  EXPECT_DOUBLE_EQ(result.availability_series[1], 0.5495495495495496);
  EXPECT_DOUBLE_EQ(result.availability_series[2], 0.70967741935483875);
  EXPECT_DOUBLE_EQ(result.availability_series[3], 1.0);
}

TEST(FaultSimulatorTest, GrayGoldenCounters) {
  // Node 2 slowed 6x for the whole horizon: distance-2 clients see probes
  // arrive at 12 > timeout 10 and must retry around it; nobody fails
  // because liveness never changes -- the signature of a gray failure.
  const FaultSchedule schedule = load_fixture("gray.json");
  const SimulationResult result =
      simulate(golden_instance(), {0, 1, 2, 3, 4}, golden_config(schedule));
  EXPECT_EQ(result.completed_accesses, 450);
  EXPECT_EQ(result.failed_accesses, 0);
  EXPECT_EQ(result.unavailable_accesses, 0);
  EXPECT_EQ(result.timed_out_attempts, 197);
  EXPECT_EQ(result.retries, 195);
  EXPECT_DOUBLE_EQ(result.availability, 1.0);
  EXPECT_TRUE(result.safety_ok);
}

TEST(FaultSimulatorTest, GoldenRunsReplayExactly) {
  // Same schedule + same seed -> identical counters, run-to-run.
  const FaultSchedule schedule = load_fixture("partition.json");
  const core::QppInstance instance = golden_instance();
  const SimulationConfig config = golden_config(schedule);
  const SimulationResult a = simulate(instance, {0, 1, 2, 3, 4}, config);
  const SimulationResult b = simulate(instance, {0, 1, 2, 3, 4}, config);
  EXPECT_EQ(a.completed_accesses, b.completed_accesses);
  EXPECT_EQ(a.failed_accesses, b.failed_accesses);
  EXPECT_EQ(a.timed_out_attempts, b.timed_out_attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.availability_series, b.availability_series);
  EXPECT_DOUBLE_EQ(a.overall_mean_delay, b.overall_mean_delay);
}

// --- Engine semantics beyond the golden runs --------------------------------

TEST(FaultSimulatorTest, TimeoutsWithoutFaultsChangeNothing) {
  // Arming timeouts on a fault-free run must not perturb results: with the
  // deadline above every possible delay, no timeout fires and the RNG draw
  // order is identical to the plain engine's.
  const core::QppInstance instance = golden_instance();
  const core::Placement f = {0, 1, 2, 3, 4};
  SimulationConfig plain;
  plain.duration = 200.0;
  plain.seed = 7;
  SimulationConfig armed = plain;
  armed.probe_timeout = 50.0;
  const SimulationResult a = simulate(instance, f, plain);
  const SimulationResult b = simulate(instance, f, armed);
  EXPECT_EQ(a.completed_accesses, b.completed_accesses);
  EXPECT_DOUBLE_EQ(a.overall_mean_delay, b.overall_mean_delay);
  EXPECT_EQ(b.timed_out_attempts, 0);
  EXPECT_EQ(b.retries, 0);
}

TEST(FaultSimulatorTest, ValidatesFaultConfig) {
  const core::QppInstance instance = golden_instance();
  const core::Placement f = {0, 1, 2, 3, 4};
  const FaultSchedule schedule({{0, 0.0, 10.0}}, {}, {});

  SimulationConfig config;
  config.faults = &schedule;
  config.probe_timeout = 0.0;  // faults demand a positive timeout
  EXPECT_THROW(simulate(instance, f, config), std::invalid_argument);

  config.probe_timeout = 10.0;
  config.max_attempts = 0;
  EXPECT_THROW(simulate(instance, f, config), std::invalid_argument);
  config.max_attempts = 3;
  config.retry_backoff = -1.0;
  EXPECT_THROW(simulate(instance, f, config), std::invalid_argument);
  config.retry_backoff = 0.5;

  // Schedule references node 7; the instance has 5 nodes.
  const FaultSchedule oversized({{7, 0.0, 10.0}}, {}, {});
  config.faults = &oversized;
  EXPECT_THROW(simulate(instance, f, config), std::invalid_argument);
}

TEST(FaultSimulatorTest, SingleAttemptFailsFastUnderCrash) {
  // max_attempts = 1: no retries ever, crash-hit accesses fail with the
  // timeout outcome instead of recovering.
  const FaultSchedule schedule =
      FaultSchedule({{0, 0.0, 100.0}, {1, 0.0, 100.0}}, {}, {});
  SimulationConfig config = golden_config(schedule);
  config.max_attempts = 1;
  const SimulationResult result =
      simulate(golden_instance(), {0, 1, 2, 3, 4}, config);
  EXPECT_EQ(result.retries, 0);
  EXPECT_GT(result.failed_accesses, 0);
  EXPECT_EQ(result.unavailable_accesses, 0);  // quorum {2,3,4} stays live
  EXPECT_LT(result.availability, 1.0);
  EXPECT_EQ(result.failed_accesses, result.timed_out_attempts);
}

TEST(FaultSimulatorTest, SafetyViolationSurfacesOnReadWriteFamily) {
  // read-one-write-all reads do not pairwise intersect, so once a crash
  // forces re-selection the liveness oracle sees two disjoint live reads
  // and must latch safety_ok = false (the simulator keeps running).
  const quorum::CombinedWorkload workload =
      quorum::combine_uniform(quorum::read_one_write_all(3), 0.5);
  ASSERT_FALSE(workload.intersecting);
  core::QppInstance instance(
      graph::Metric::from_graph(graph::path_graph(3)),
      std::vector<double>(3, 1e9), workload.system, workload.strategy);
  const FaultSchedule schedule({{2, 0.0, 100.0}}, {}, {});
  SimulationConfig config;
  config.duration = 100.0;
  config.seed = 5;
  config.faults = &schedule;
  config.probe_timeout = 10.0;
  const SimulationResult result = simulate(instance, {0, 1, 2}, config);
  EXPECT_FALSE(result.safety_ok);
  EXPECT_GT(result.completed_accesses, 0);
}

TEST(FaultSimulatorTest, AvailabilitySeriesDisabledByDefault) {
  const FaultSchedule schedule = load_fixture("crash_heavy.json");
  SimulationConfig config = golden_config(schedule);
  config.availability_bucket = 0.0;
  const SimulationResult result =
      simulate(golden_instance(), {0, 1, 2, 3, 4}, config);
  EXPECT_TRUE(result.availability_series.empty());
}

}  // namespace
}  // namespace qp::sim
