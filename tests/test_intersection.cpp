#include "quorum/intersection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "quorum/constructions.hpp"
#include "quorum/read_write.hpp"

namespace qp::quorum {
namespace {

// Reference implementation: a quorum is live iff none of its elements
// failed; safety is literal all-pairs intersection over the live family.
struct BruteForceReport {
  std::vector<int> live;
  bool intersecting = true;
  std::pair<int, int> violation{-1, -1};
};

BruteForceReport brute_force(const QuorumSystem& system,
                             const std::vector<bool>& failed) {
  BruteForceReport report;
  for (int q = 0; q < system.num_quorums(); ++q) {
    bool alive = true;
    for (int element : system.quorum(q)) {
      if (failed[static_cast<std::size_t>(element)]) {
        alive = false;
        break;
      }
    }
    if (alive) report.live.push_back(q);
  }
  for (std::size_t i = 0; i < report.live.size() && report.intersecting;
       ++i) {
    for (std::size_t j = i + 1; j < report.live.size(); ++j) {
      const Quorum& a = system.quorum(report.live[i]);
      const Quorum& b = system.quorum(report.live[j]);
      bool meets = false;
      for (int element : a) {
        if (std::find(b.begin(), b.end(), element) != b.end()) {
          meets = true;
          break;
        }
      }
      if (!meets) {
        report.intersecting = false;
        report.violation = {report.live[i], report.live[j]};
        break;
      }
    }
  }
  return report;
}

std::vector<bool> random_failures(int universe, double rate,
                                  std::mt19937_64& rng) {
  std::bernoulli_distribution coin(rate);
  std::vector<bool> failed(static_cast<std::size_t>(universe));
  for (std::size_t i = 0; i < failed.size(); ++i) failed[i] = coin(rng);
  return failed;
}

void expect_matches_brute_force(const QuorumSystem& system,
                                const std::vector<bool>& failed) {
  const LivenessReport fast = check_liveness(system, failed);
  const BruteForceReport slow = brute_force(system, failed);
  EXPECT_EQ(fast.live_quorums, slow.live);
  EXPECT_EQ(fast.pairwise_intersecting, slow.intersecting);
  EXPECT_EQ(fast.violation, slow.violation);
  EXPECT_EQ(fast.available(), !slow.live.empty());
}

// --- Property: agreement with brute force across all constructions --------

TEST(IntersectionChecker, MatchesBruteForceAcrossConstructions) {
  std::vector<QuorumSystem> systems;
  systems.push_back(grid(3));
  systems.push_back(grid(4));
  systems.push_back(majority(7));
  systems.push_back(majority(5, 4));
  systems.push_back(projective_plane(2));
  systems.push_back(binary_tree(3));
  systems.push_back(crumbling_wall({1, 3, 4}));
  systems.push_back(wheel(8));
  systems.push_back(star(6));
  systems.push_back(singleton());
  systems.push_back(hierarchical_majority(3, 2));

  std::mt19937_64 rng(20250808);
  for (const QuorumSystem& system : systems) {
    for (double rate : {0.0, 0.1, 0.3, 0.6, 1.0}) {
      for (int trial = 0; trial < 20; ++trial) {
        expect_matches_brute_force(
            system, random_failures(system.universe_size(), rate, rng));
      }
    }
  }
}

// Read/write families are the interesting safety case: the combined family
// is generally NOT pairwise intersecting (reads need not meet reads), so
// the checker must find real violations, not just vacuous truths.
TEST(IntersectionChecker, MatchesBruteForceOnReadWriteFamilies) {
  std::vector<QuorumSystem> systems;
  systems.push_back(combine_uniform(read_one_write_all(5), 0.5).system);
  systems.push_back(combine_uniform(majority_read_write(7, 3, 5), 0.5).system);
  systems.push_back(combine_uniform(grid_read_write(3), 0.5).system);

  std::mt19937_64 rng(77);
  bool saw_violation = false;
  for (const QuorumSystem& system : systems) {
    for (double rate : {0.0, 0.2, 0.5}) {
      for (int trial = 0; trial < 25; ++trial) {
        const auto failed =
            random_failures(system.universe_size(), rate, rng);
        expect_matches_brute_force(system, failed);
        if (!check_liveness(system, failed).safe()) saw_violation = true;
      }
    }
  }
  // The property pass must have exercised the violation branch at least
  // once; otherwise the test is weaker than it claims.
  EXPECT_TRUE(saw_violation);
}

// --- Pinned small cases ----------------------------------------------------

TEST(IntersectionChecker, NoFailuresKeepsEveryQuorumLive) {
  const QuorumSystem system = majority(5);
  const LivenessReport report =
      check_liveness(system, std::vector<bool>(5, false));
  EXPECT_EQ(static_cast<int>(report.live_quorums.size()),
            system.num_quorums());
  EXPECT_TRUE(report.safe());
  EXPECT_TRUE(report.available());
  EXPECT_EQ(report.violation, (std::pair<int, int>{-1, -1}));
}

TEST(IntersectionChecker, AllFailedIsUnavailableButVacuouslySafe) {
  const LivenessReport report =
      check_liveness(majority(5), std::vector<bool>(5, true));
  EXPECT_TRUE(report.live_quorums.empty());
  EXPECT_FALSE(report.available());
  EXPECT_TRUE(report.safe());  // vacuous: fewer than two live quorums
}

TEST(IntersectionChecker, MajorityToleratesMinorityFailures) {
  // majority(7) uses quorums of size 4; any 3 failures leave C(4,4) = 1
  // live quorum over the 4 survivors.
  std::vector<bool> failed(7, false);
  failed[0] = failed[2] = failed[5] = true;
  const LivenessReport report = check_liveness(majority(7), failed);
  EXPECT_EQ(static_cast<int>(report.live_quorums.size()), 1);
  EXPECT_TRUE(report.safe());
}

TEST(IntersectionChecker, GridColumnFailureKillsEveryQuorum) {
  // Every grid quorum contains a full row, so failing one element per row
  // (a full column) kills all of them.
  const QuorumSystem system = grid(3);
  std::vector<bool> failed(9, false);
  failed[0] = failed[3] = failed[6] = true;  // column 0
  EXPECT_FALSE(check_liveness(system, failed).available());
}

TEST(IntersectionChecker, DetectsReadReadViolationWitness) {
  // read-one-write-all on 3 elements: singleton reads {0},{1},{2} plus the
  // full write {0,1,2}. Failing nothing leaves reads {0} and {1} live and
  // disjoint -- the first violation in index order.
  const QuorumSystem system =
      combine_uniform(read_one_write_all(3), 0.5).system;
  const LivenessReport report =
      check_liveness(system, std::vector<bool>(3, false));
  EXPECT_FALSE(report.safe());
  EXPECT_EQ(report.violation, (std::pair<int, int>{0, 1}));
}

TEST(IntersectionChecker, FailuresCanRestoreReadWriteSafety) {
  // Same family: fail elements 1 and 2. Live quorums are read {0} only
  // (the write needs all three) -- fewer than two live, so safe again.
  const QuorumSystem system =
      combine_uniform(read_one_write_all(3), 0.5).system;
  std::vector<bool> failed{false, true, true};
  const LivenessReport report = check_liveness(system, failed);
  EXPECT_EQ(report.live_quorums, (std::vector<int>{0}));
  EXPECT_TRUE(report.safe());
}

TEST(IntersectionChecker, RejectsWrongFailureVectorSize) {
  EXPECT_THROW(check_liveness(majority(5), std::vector<bool>(4, false)),
               std::invalid_argument);
  EXPECT_THROW(check_liveness(majority(5), std::vector<bool>(6, false)),
               std::invalid_argument);
}

}  // namespace
}  // namespace qp::quorum
