#include "quorum/constructions.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace qp::quorum {
namespace {

// --- Grid (paper Sec 4.1) -------------------------------------------------

TEST(GridConstruction, ShapeMatchesPaper) {
  for (int k = 1; k <= 5; ++k) {
    const QuorumSystem qs = grid(k);
    EXPECT_EQ(qs.universe_size(), k * k);
    EXPECT_EQ(qs.num_quorums(), k * k);
    for (int q = 0; q < qs.num_quorums(); ++q) {
      EXPECT_EQ(static_cast<int>(qs.quorum(q).size()), 2 * k - 1);
    }
  }
}

TEST(GridConstruction, QuorumIsRowUnionColumn) {
  const QuorumSystem qs = grid(3);
  // Quorum (r=1, c=2) has index 1*3+2 = 5: row {3,4,5} plus column {2, 8}.
  EXPECT_EQ(qs.quorum(5), (Quorum{2, 3, 4, 5, 8}));
}

TEST(GridConstruction, Intersects) {
  EXPECT_TRUE(grid(4).is_intersecting());
}

TEST(GridConstruction, UniformLoadIsTwoKMinusOneOverKSquared) {
  const int k = 4;
  const QuorumSystem qs = grid(k);
  const auto loads = element_loads(qs, AccessStrategy::uniform(qs));
  for (double load : loads) {
    EXPECT_NEAR(load, static_cast<double>(2 * k - 1) / (k * k), 1e-12);
  }
}

// --- Majority (paper Sec 4.2) ----------------------------------------------

TEST(MajorityConstruction, CountsAndIntersection) {
  const QuorumSystem qs = majority(5, 3);
  EXPECT_EQ(qs.num_quorums(), 10);  // C(5,3)
  EXPECT_TRUE(qs.is_intersecting());
  EXPECT_TRUE(qs.is_minimal());
  EXPECT_TRUE(qs.covers_universe());
}

TEST(MajorityConstruction, DefaultThreshold) {
  EXPECT_EQ(majority(4).num_quorums(), 4);   // C(4,3)
  EXPECT_EQ(majority(7).num_quorums(), 35);  // C(7,4)
}

TEST(MajorityConstruction, RejectsNonIntersectingThreshold) {
  EXPECT_THROW(majority(4, 2), std::invalid_argument);
  EXPECT_THROW(majority(4, 5), std::invalid_argument);
  EXPECT_THROW(majority(4, 0), std::invalid_argument);
}

TEST(MajorityConstruction, UniformLoadIsToverN) {
  const QuorumSystem qs = majority(7, 4);
  const auto loads = element_loads(qs, AccessStrategy::uniform(qs));
  for (double load : loads) EXPECT_NEAR(load, 4.0 / 7.0, 1e-12);
}

TEST(SampledMajority, DistinctIntersectingSubsets) {
  std::mt19937_64 rng(21);
  const QuorumSystem qs = sampled_majority(10, 6, 12, rng);
  EXPECT_EQ(qs.num_quorums(), 12);
  EXPECT_TRUE(qs.is_intersecting());
  std::set<Quorum> unique(qs.quorums().begin(), qs.quorums().end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(SampledMajority, RejectsImpossibleCount) {
  std::mt19937_64 rng(2);
  // C(3,2) = 3 distinct subsets but 5 requested.
  EXPECT_THROW(sampled_majority(3, 2, 5, rng), std::invalid_argument);
}

// --- Weighted majority ------------------------------------------------------

TEST(WeightedMajority, EqualWeightsMatchMajority) {
  const QuorumSystem wm = weighted_majority({1.0, 1.0, 1.0, 1.0, 1.0});
  const QuorumSystem mj = majority(5, 3);
  EXPECT_EQ(wm.num_quorums(), mj.num_quorums());
  EXPECT_TRUE(wm.is_intersecting());
}

TEST(WeightedMajority, DictatorDominates) {
  // Element 0 holds a strict majority of the weight on its own.
  const QuorumSystem qs = weighted_majority({10.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(qs.num_quorums(), 1);
  EXPECT_EQ(qs.quorum(0), (Quorum{0}));
}

TEST(WeightedMajority, IsMinimalAndIntersecting) {
  const QuorumSystem qs = weighted_majority({3.0, 2.0, 2.0, 1.0, 1.0});
  EXPECT_TRUE(qs.is_intersecting());
  EXPECT_TRUE(qs.is_minimal());
}

// --- Star / singleton --------------------------------------------------------

TEST(StarConstruction, PairsThroughCenter) {
  const QuorumSystem qs = star(5);
  EXPECT_EQ(qs.num_quorums(), 4);
  EXPECT_TRUE(qs.is_intersecting());
  const auto loads = element_loads(qs, AccessStrategy::uniform(qs));
  EXPECT_DOUBLE_EQ(loads[0], 1.0);  // center in every quorum
  EXPECT_NEAR(loads[1], 0.25, 1e-12);
}

TEST(SingletonConstruction, OneQuorumOneElement) {
  const QuorumSystem qs = singleton();
  EXPECT_EQ(qs.universe_size(), 1);
  EXPECT_EQ(qs.num_quorums(), 1);
}

// --- Projective plane (Maekawa) ----------------------------------------------

TEST(ProjectivePlane, FanoPlane) {
  const QuorumSystem qs = projective_plane(2);
  EXPECT_EQ(qs.universe_size(), 7);
  EXPECT_EQ(qs.num_quorums(), 7);
  for (int q = 0; q < 7; ++q) {
    EXPECT_EQ(static_cast<int>(qs.quorum(q).size()), 3);
  }
  EXPECT_TRUE(qs.is_intersecting());
  EXPECT_TRUE(qs.is_minimal());
}

TEST(ProjectivePlane, OrderThree) {
  const QuorumSystem qs = projective_plane(3);
  EXPECT_EQ(qs.universe_size(), 13);
  EXPECT_EQ(qs.num_quorums(), 13);
  EXPECT_TRUE(qs.is_intersecting());
  // Perfectly balanced load: (q+1)/(q^2+q+1).
  const auto loads = element_loads(qs, AccessStrategy::uniform(qs));
  for (double load : loads) EXPECT_NEAR(load, 4.0 / 13.0, 1e-12);
}

TEST(ProjectivePlane, AnyTwoLinesMeetInExactlyOnePoint) {
  const QuorumSystem qs = projective_plane(3);
  for (int a = 0; a < qs.num_quorums(); ++a) {
    for (int b = a + 1; b < qs.num_quorums(); ++b) {
      int common = 0;
      for (int u : qs.quorum(a)) {
        for (int v : qs.quorum(b)) common += (u == v);
      }
      EXPECT_EQ(common, 1) << "lines " << a << ", " << b;
    }
  }
}

TEST(ProjectivePlane, RejectsNonPrime) {
  EXPECT_THROW(projective_plane(4), std::invalid_argument);
  EXPECT_THROW(projective_plane(1), std::invalid_argument);
}

// --- Tree quorums --------------------------------------------------------------

TEST(BinaryTree, HeightZeroIsSingleton) {
  const QuorumSystem qs = binary_tree(0);
  EXPECT_EQ(qs.universe_size(), 1);
  EXPECT_EQ(qs.num_quorums(), 1);
}

TEST(BinaryTree, HeightOne) {
  // Root+left, root+right, left+right.
  const QuorumSystem qs = binary_tree(1);
  EXPECT_EQ(qs.universe_size(), 3);
  EXPECT_EQ(qs.num_quorums(), 3);
  EXPECT_TRUE(qs.is_intersecting());
}

TEST(BinaryTree, HeightTwoIntersects) {
  const QuorumSystem qs = binary_tree(2);
  EXPECT_EQ(qs.universe_size(), 7);
  EXPECT_TRUE(qs.is_intersecting());
  EXPECT_TRUE(qs.covers_universe());
}

// --- Crumbling walls -------------------------------------------------------------

TEST(CrumblingWall, SingleRowIsThatRow) {
  const QuorumSystem qs = crumbling_wall({3});
  EXPECT_EQ(qs.num_quorums(), 1);
  EXPECT_EQ(qs.quorum(0), (Quorum{0, 1, 2}));
}

TEST(CrumblingWall, CountsAndIntersection) {
  // Rows of widths {1, 2, 3}: quorums = 1*2*3 (row 0) + 1*3 (row 1) + 1.
  const QuorumSystem qs = crumbling_wall({1, 2, 3});
  EXPECT_EQ(qs.universe_size(), 6);
  EXPECT_EQ(qs.num_quorums(), 6 + 3 + 1);
  EXPECT_TRUE(qs.is_intersecting());
}

TEST(CrumblingWall, RejectsBadWidths) {
  EXPECT_THROW(crumbling_wall({}), std::invalid_argument);
  EXPECT_THROW(crumbling_wall({2, 0}), std::invalid_argument);
}

// --- Wheel -----------------------------------------------------------------------

TEST(WheelConstruction, StructureAndIntersection) {
  const QuorumSystem qs = wheel(5);
  EXPECT_EQ(qs.universe_size(), 5);
  EXPECT_EQ(qs.num_quorums(), 5);  // 4 spokes + rim
  EXPECT_TRUE(qs.is_intersecting());
  EXPECT_TRUE(qs.is_minimal());
  EXPECT_TRUE(qs.covers_universe());
  EXPECT_THROW(wheel(1), std::invalid_argument);
}

TEST(WheelConstruction, TinyWheelIsTwoSingPairs) {
  // n = 2: spoke {0,1} and rim {1}.
  const QuorumSystem qs = wheel(2);
  EXPECT_EQ(qs.num_quorums(), 2);
  EXPECT_TRUE(qs.is_intersecting());
}

TEST(WheelConstruction, HubCarriesSpokeLoad) {
  const QuorumSystem qs = wheel(6);
  const auto loads = element_loads(qs, AccessStrategy::uniform(qs));
  EXPECT_NEAR(loads[0], 5.0 / 6.0, 1e-12);             // hub: all spokes
  for (int i = 1; i < 6; ++i) {
    EXPECT_NEAR(loads[static_cast<std::size_t>(i)], 2.0 / 6.0, 1e-12);
  }
}

TEST(WheelConstruction, FaultToleranceIsTwo) {
  // Killing the hub plus any rim element kills every quorum; any single
  // crash leaves either the rim or a spoke alive.
  // (fault_tolerance lives in quorum/analysis; inline check via hub+rim.)
  const QuorumSystem qs = wheel(5);
  EXPECT_TRUE(qs.is_intersecting());
}

// --- Hierarchical majority ---------------------------------------------------------

TEST(HierarchicalMajority, DepthOneEqualsFlatMajority) {
  const QuorumSystem h = hierarchical_majority(3, 1);
  const QuorumSystem m = majority(3, 2);
  EXPECT_EQ(h.num_quorums(), m.num_quorums());
  EXPECT_TRUE(h.is_intersecting());
}

TEST(HierarchicalMajority, DepthTwoStructure) {
  // 9 elements; quorums = C(3,2) * 3^2 = 27, each of size 2^2 = 4 --
  // smaller than flat majority's quorums of 5.
  const QuorumSystem qs = hierarchical_majority(3, 2);
  EXPECT_EQ(qs.universe_size(), 9);
  EXPECT_EQ(qs.num_quorums(), 27);
  for (const auto& q : qs.quorums()) EXPECT_EQ(q.size(), 4u);
  EXPECT_TRUE(qs.is_intersecting());
  EXPECT_TRUE(qs.is_minimal());
  EXPECT_TRUE(qs.covers_universe());
}

TEST(HierarchicalMajority, QuorumsSmallerThanFlatMajority) {
  const QuorumSystem h = hierarchical_majority(3, 2);
  const QuorumSystem flat = majority(9, 5);
  EXPECT_LT(h.max_quorum_size(), 5);
  EXPECT_EQ(flat.quorum(0).size(), 5u);
}

TEST(HierarchicalMajority, BalancedLoad) {
  const QuorumSystem qs = hierarchical_majority(3, 2);
  const auto loads = element_loads(qs, AccessStrategy::uniform(qs));
  for (double load : loads) EXPECT_NEAR(load, 4.0 / 9.0, 1e-12);
}

TEST(HierarchicalMajority, ValidatesArguments) {
  EXPECT_THROW(hierarchical_majority(2, 2), std::invalid_argument);
  EXPECT_THROW(hierarchical_majority(4, 1), std::invalid_argument);
  EXPECT_THROW(hierarchical_majority(3, 0), std::invalid_argument);
  // Quorum count explodes doubly exponentially: depth 4 over branching 3
  // would need ~14M quorums and must be rejected.
  EXPECT_THROW(hierarchical_majority(3, 4), std::invalid_argument);
}

TEST(HierarchicalMajority, DepthThreeStillIntersects) {
  // 3^3 = 27 elements, 3 * 27^2 = 2187 quorums of size 2^3 = 8.
  const QuorumSystem qs = hierarchical_majority(3, 3);
  EXPECT_EQ(qs.universe_size(), 27);
  EXPECT_EQ(qs.num_quorums(), 2187);
  EXPECT_EQ(qs.max_quorum_size(), 8);
  EXPECT_TRUE(qs.covers_universe());
  // Full pairwise intersection is O(m^2 |Q|) ~ 4.8M set checks; sample.
  for (int i = 0; i < qs.num_quorums(); i += 97) {
    for (int j = i; j < qs.num_quorums(); j += 211) {
      bool intersects = false;
      for (int u : qs.quorum(i)) {
        for (int v : qs.quorum(j)) intersects = intersects || (u == v);
      }
      EXPECT_TRUE(intersects) << i << "," << j;
    }
  }
}

// --- Cross-construction property sweep -------------------------------------------

class IntersectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntersectionProperty, GridIntersects) {
  EXPECT_TRUE(grid(GetParam()).is_intersecting());
}

TEST_P(IntersectionProperty, MajorityIntersectsAndBalances) {
  const int n = GetParam() + 2;
  const QuorumSystem qs = majority(n);
  EXPECT_TRUE(qs.is_intersecting());
  const auto loads = element_loads(qs, AccessStrategy::uniform(qs));
  for (double load : loads) {
    EXPECT_NEAR(load, static_cast<double>(n / 2 + 1) / n, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IntersectionProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace qp::quorum
