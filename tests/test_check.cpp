// Tests for the contract layer (src/check/): validators' accept and reject
// paths, certified-bounds checking for every solver family, and the
// QP_REQUIRE / QP_INVARIANT macros themselves (fatal when contracts are
// compiled in, fully unevaluated when compiled out).

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "check/certificate.hpp"
#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "core/majority_layout.hpp"
#include "core/qpp_solver.hpp"
#include "core/ssqpp_lp.hpp"
#include "core/ssqpp_solver.hpp"
#include "core/total_delay.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::check {
namespace {

core::SsqppInstance make_ssqpp(const graph::Graph& g,
                               quorum::QuorumSystem system, double cap,
                               int source) {
  graph::Metric metric = graph::Metric::from_graph(g);
  std::vector<double> capacities(
      static_cast<std::size_t>(metric.num_points()), cap);
  quorum::AccessStrategy strategy = quorum::AccessStrategy::uniform(system);
  return core::SsqppInstance(std::move(metric), std::move(capacities),
                             std::move(system), std::move(strategy), source);
}

core::QppInstance make_qpp(const graph::Graph& g, quorum::QuorumSystem system,
                           double cap) {
  graph::Metric metric = graph::Metric::from_graph(g);
  std::vector<double> capacities(
      static_cast<std::size_t>(metric.num_points()), cap);
  quorum::AccessStrategy strategy = quorum::AccessStrategy::uniform(system);
  return core::QppInstance(std::move(metric), std::move(capacities),
                           std::move(system), std::move(strategy));
}

bool has_issue(const ValidationReport& report, const std::string& code) {
  return std::any_of(
      report.issues.begin(), report.issues.end(),
      [&](const ValidationIssue& issue) { return issue.code == code; });
}

// ---------------------------------------------------------------- metric

TEST(ValidateMetric, AcceptsShortestPathMetric) {
  const graph::Metric metric = graph::Metric::from_graph(graph::path_graph(6));
  const ValidationReport report = validate_metric(metric);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidateMetric, FlagsTriangleViolation) {
  // Symmetric, zero diagonal, non-negative -- the constructor accepts it --
  // but d(0,2) = 10 > d(0,1) + d(1,2) = 2.
  const graph::Metric metric(3, {0.0, 1.0, 10.0,  //
                                 1.0, 0.0, 1.0,   //
                                 10.0, 1.0, 0.0});
  const ValidationReport report = validate_metric(metric);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "metric/triangle")) << report.to_string();
}

TEST(ValidateMetric, SamplingCatchesViolationInLargeMetric) {
  // Above exhaustive_triangle_limit the validator samples triples; a
  // violation on every triple through point 0 is found immediately.
  const int n = 12;
  std::vector<double> d(static_cast<std::size_t>(n) * n, 1.0);
  for (int i = 0; i < n; ++i) d[static_cast<std::size_t>(i) * n + i] = 0.0;
  d[1] = d[static_cast<std::size_t>(n)] = 50.0;  // d(0,1) = d(1,0) = 50
  const graph::Metric metric(n, std::move(d));
  MetricCheckOptions options;
  options.exhaustive_triangle_limit = 4;  // force the sampled path
  const ValidationReport report = validate_metric(metric, options);
  EXPECT_TRUE(has_issue(report, "metric/triangle")) << report.to_string();
}

TEST(ValidateMetric, ConstructorAlreadyRejectsNonMetricMatrices) {
  // Asymmetry / negative entries never reach the validator: the Metric
  // constructor is the first line of defense for those.
  EXPECT_THROW(graph::Metric(2, {0.0, 1.0, 2.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(graph::Metric(2, {0.0, -1.0, -1.0, 0.0}),
               std::invalid_argument);
}

// -------------------------------------------------------------- strategy

TEST(ValidateStrategy, AcceptsUniform) {
  const quorum::QuorumSystem system = quorum::grid(2);
  const std::vector<double> uniform(
      static_cast<std::size_t>(system.num_quorums()),
      1.0 / system.num_quorums());
  EXPECT_TRUE(validate_strategy(system, uniform).ok());
}

TEST(ValidateStrategy, FlagsMalformedRawData) {
  const quorum::QuorumSystem system = quorum::grid(2);  // 4 quorums
  EXPECT_TRUE(has_issue(validate_strategy(system, {0.5, 0.5}),
                        "strategy/size-mismatch"));
  EXPECT_TRUE(has_issue(validate_strategy(system, {0.5, 0.5, 0.5, -0.5}),
                        "strategy/negative"));
  EXPECT_TRUE(has_issue(validate_strategy(system, {0.5, 0.5, 0.5, 0.5}),
                        "strategy/not-normalized"));
}

// -------------------------------------------------------------- instance

TEST(ValidateInstance, AcceptsWellFormedInstances) {
  const core::QppInstance qpp = make_qpp(graph::path_graph(5),
                                         quorum::grid(2), 1.0);
  EXPECT_TRUE(validate_instance(qpp).ok());
  const core::SsqppInstance ssqpp =
      make_ssqpp(graph::path_graph(5), quorum::grid(2), 1.0, 2);
  EXPECT_TRUE(validate_instance(ssqpp).ok());
}

// ------------------------------------------------------------- placement

TEST(ValidatePlacement, AcceptsSolverOutputWithinAlphaPlusOne) {
  const core::SsqppInstance instance =
      make_ssqpp(graph::path_graph(5), quorum::grid(2), 1.0, 0);
  const auto result = core::solve_ssqpp(instance, 2.0);
  ASSERT_TRUE(result.has_value());
  const ValidationReport report =
      validate_placement(instance, result->placement, {3.0, 1e-6});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidatePlacement, FlagsMalformedPlacements) {
  const core::SsqppInstance instance =
      make_ssqpp(graph::path_graph(5), quorum::grid(2), 1.0, 0);
  EXPECT_TRUE(has_issue(validate_placement(instance, {0, 1}),
                        "placement/size"));
  EXPECT_TRUE(has_issue(validate_placement(instance, {0, 1, 2, 99}),
                        "placement/out-of-range"));
  // All four grid elements (load 3/4 each) on one unit-capacity node.
  EXPECT_TRUE(has_issue(validate_placement(instance, {0, 0, 0, 0}),
                        "placement/over-capacity"));
}

// -------------------------------------------------------------------- LP

TEST(ValidateLpSolution, AcceptsRawOptimum) {
  const core::SsqppInstance instance =
      make_ssqpp(graph::path_graph(5), quorum::grid(2), 1.0, 0);
  const core::FractionalSsqpp lp = core::solve_ssqpp_lp(instance);
  ASSERT_EQ(lp.status, lp::SolveStatus::kOptimal);
  const ValidationReport report = validate_lp_solution(instance, lp);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidateLpSolution, AcceptsAlphaFilteredSolutionAtScaleAlpha) {
  const core::SsqppInstance instance =
      make_ssqpp(graph::path_graph(5), quorum::grid(2), 1.0, 0);
  const core::FractionalSsqpp filtered =
      core::filter_fractional(core::solve_ssqpp_lp(instance), 2.0);
  LpCheckOptions options;
  options.load_scale = 2.0;       // Sec 3.3.1: filtered mass uses alpha * cap
  options.check_objective = false;  // recorded objective is the pre-filter Z*
  const ValidationReport report =
      validate_lp_solution(instance, filtered, options);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidateLpSolution, FlagsTamperedSolutions) {
  const core::SsqppInstance instance =
      make_ssqpp(graph::path_graph(5), quorum::grid(2), 1.0, 0);
  const core::FractionalSsqpp lp = core::solve_ssqpp_lp(instance);
  ASSERT_EQ(lp.status, lp::SolveStatus::kOptimal);

  core::FractionalSsqpp zeroed_column = lp;
  for (int t = 0; t < zeroed_column.num_nodes; ++t) {
    zeroed_column.x_tu[static_cast<std::size_t>(t) *
                       static_cast<std::size_t>(zeroed_column.universe_size)] =
        0.0;
  }
  EXPECT_TRUE(has_issue(validate_lp_solution(instance, zeroed_column),
                        "lp/element-mass"));

  core::FractionalSsqpp wrong_objective = lp;
  wrong_objective.objective += 1.0;
  EXPECT_TRUE(has_issue(validate_lp_solution(instance, wrong_objective),
                        "lp/objective-mismatch"));

  // An unsolved / infeasible struct is not a certificate of anything.
  EXPECT_TRUE(has_issue(validate_lp_solution(instance, core::FractionalSsqpp{}),
                        "lp/not-optimal"));
}

// ---------------------------------------------------------- certificates

TEST(Certificate, SsqppResultIsCertified) {
  const core::SsqppInstance instance =
      make_ssqpp(graph::path_graph(5), quorum::grid(2), 1.0, 0);
  const auto result = core::solve_ssqpp(instance, 2.0);
  ASSERT_TRUE(result.has_value());
  const Certificate cert = check_certificate(instance, *result);
  EXPECT_TRUE(cert.ok()) << cert.to_string();
  EXPECT_GT(cert.opt_lower_bound, 0.0);
}

TEST(Certificate, SsqppRejectsTamperedNumbers) {
  const core::SsqppInstance instance =
      make_ssqpp(graph::path_graph(5), quorum::grid(2), 1.0, 0);
  const auto result = core::solve_ssqpp(instance, 2.0);
  ASSERT_TRUE(result.has_value());

  core::SsqppResult tampered = *result;
  tampered.delay += 0.5;  // reported delay no longer matches the placement
  EXPECT_FALSE(check_certificate(instance, tampered).ok());

  core::SsqppResult wrong_lp = *result;
  wrong_lp.lp_objective *= 0.5;  // claims a lower bound the LP does not give
  EXPECT_FALSE(check_certificate(instance, wrong_lp).ok());
}

TEST(Certificate, SsqppRejectsInvalidPlacement) {
  const core::SsqppInstance instance =
      make_ssqpp(graph::path_graph(5), quorum::grid(2), 1.0, 0);
  const auto result = core::solve_ssqpp(instance, 2.0);
  ASSERT_TRUE(result.has_value());
  core::SsqppResult tampered = *result;
  tampered.placement[0] = -1;
  const Certificate cert = check_certificate(instance, tampered);
  EXPECT_FALSE(cert.ok());
  ASSERT_EQ(cert.checks.size(), 1u);  // stops at placement/valid
  EXPECT_EQ(cert.checks[0].name, "placement/valid");
}

TEST(Certificate, QppResultIsCertifiedWithOptLowerBound) {
  const core::QppInstance instance =
      make_qpp(graph::path_graph(4), quorum::grid(2), 1.0);
  const auto result = core::solve_qpp(instance);
  ASSERT_TRUE(result.has_value());
  const Certificate cert = check_certificate(instance, *result);
  EXPECT_TRUE(cert.ok()) << cert.to_string();
  // Thm 1.2: L / 5 certifies the capacity-respecting OPT from below and the
  // achieved average is within 5 beta = 10 of it for alpha = 2. (The ratio
  // can dip below 1: the rounded placement may use up to (alpha+1) cap.)
  EXPECT_GT(cert.opt_lower_bound, 0.0);
  EXPECT_LE(cert.certified_ratio, 10.0 + 1e-6);
}

TEST(Certificate, QppRejectsTamperedAverageDelay) {
  const core::QppInstance instance =
      make_qpp(graph::path_graph(4), quorum::grid(2), 1.0);
  const auto result = core::solve_qpp(instance);
  ASSERT_TRUE(result.has_value());
  core::QppResult tampered = *result;
  tampered.average_delay *= 0.1;  // too good to be true
  EXPECT_FALSE(check_certificate(instance, tampered).ok());
}

TEST(Certificate, TotalDelayResultIsCertified) {
  const core::QppInstance instance =
      make_qpp(graph::path_graph(4), quorum::grid(2), 1.0);
  const auto result = core::solve_total_delay(instance);
  ASSERT_TRUE(result.has_value());
  const Certificate cert = check_certificate(instance, *result);
  EXPECT_TRUE(cert.ok()) << cert.to_string();

  core::TotalDelayResult tampered = *result;
  tampered.lp_objective += 1.0;
  EXPECT_FALSE(check_certificate(instance, tampered).ok());
}

TEST(Certificate, MajorityLayoutMatchesEq19) {
  const core::SsqppInstance instance =
      make_ssqpp(graph::path_graph(5), quorum::majority(4, 3), 1.0, 0);
  const auto result = core::majority_layout(instance, 3);
  ASSERT_TRUE(result.has_value());
  const Certificate cert = check_certificate(instance, *result, 3);
  EXPECT_TRUE(cert.ok()) << cert.to_string();

  core::MajorityLayoutResult tampered = *result;
  tampered.formula_delay += 0.25;
  EXPECT_FALSE(check_certificate(instance, tampered, 3).ok());
}

// --------------------------------------------------------------- macros

#if QPLACE_CONTRACTS

using CheckContractsDeathTest = ::testing::Test;

TEST(CheckContractsDeathTest, InvariantAbortsWithContext) {
  EXPECT_DEATH(QP_INVARIANT(1 + 1 == 3, "arithmetic broke"),
               "contract violation \\[INVARIANT\\]");
}

TEST(CheckContractsDeathTest, RequireAbortsWithContext) {
  EXPECT_DEATH(QP_REQUIRE(false, "unmet precondition"),
               "contract violation \\[REQUIRE\\]");
}

TEST(CheckContractsDeathTest, HotPathBoundsContractFires) {
  const graph::Metric metric = graph::Metric::from_graph(graph::path_graph(3));
  EXPECT_DEATH(static_cast<void>(metric(0, 99)), "contract violation");
}

#else

TEST(CheckContracts, CompiledOutConditionIsNeverEvaluated) {
  int evaluations = 0;
  QP_REQUIRE(++evaluations > 0, "must not run in release");
  QP_INVARIANT(++evaluations > 0, "must not run in release");
  EXPECT_EQ(evaluations, 0);
}

#endif

}  // namespace
}  // namespace qp::check
