#include "core/design_baselines.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/evaluators.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

TEST(LinBaseline, PicksStarHub) {
  const graph::Metric metric =
      graph::Metric::from_graph(graph::star_graph(7, 2.0));
  const SinglePointDesign design = lin_single_point_design(metric);
  EXPECT_EQ(design.median, 0);
  // Avg distance to the hub: 6 leaves at 2, hub itself at 0.
  EXPECT_NEAR(design.average_delay, 12.0 / 7.0, 1e-12);
  EXPECT_EQ(design.placement, (Placement{0}));
  EXPECT_EQ(design.system.universe_size(), 1);
}

TEST(LinBaseline, PathMedianIsMiddle) {
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(7, 1.0));
  EXPECT_EQ(lin_single_point_design(metric).median, 3);
}

TEST(LinBaseline, WeightsMoveTheMedian) {
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(7, 1.0));
  std::vector<double> weights(7, 0.01);
  weights[6] = 10.0;
  EXPECT_EQ(lin_single_point_design(metric, weights).median, 6);
}

TEST(LinBaseline, ValidatesArguments) {
  const graph::Metric metric = graph::Metric::uniform(3);
  EXPECT_THROW(lin_single_point_design(metric, {1.0}), std::invalid_argument);
  EXPECT_THROW(lin_single_point_design(metric, {0.0, 0.0, 0.0}),
               std::invalid_argument);
}

TEST(LinBaseline, HasSystemLoadOneAndFaultToleranceOne) {
  // The Sec 2 criticism: all load on one element, no crash tolerance.
  const graph::Metric metric = graph::Metric::uniform(5);
  const SinglePointDesign design = lin_single_point_design(metric);
  const auto loads = quorum::element_loads(design.system, design.strategy);
  EXPECT_DOUBLE_EQ(loads[0], 1.0);
}

TEST(ClosestQuorumDelay, PicksTheBestQuorum) {
  // Quorums {0} and {1}; elements placed near and far.
  const graph::Metric metric = graph::Metric::line({0.0, 1.0, 9.0});
  const quorum::QuorumSystem system(2, {{0}, {1}});
  const Placement f = {1, 2};
  EXPECT_DOUBLE_EQ(closest_quorum_delay(metric, system, f, 0), 1.0);
  EXPECT_DOUBLE_EQ(closest_quorum_delay(metric, system, f, 2), 0.0);
}

TEST(ClosestQuorumDelay, LowerBoundsExpectedDelay) {
  std::mt19937_64 rng(7);
  const graph::Metric metric =
      graph::Metric::from_graph(graph::erdos_renyi(9, 0.4, rng, 1.0, 6.0));
  const quorum::QuorumSystem system = quorum::grid(2);
  QppInstance instance(metric, std::vector<double>(9, 1e9), system,
                       quorum::AccessStrategy::uniform(system));
  std::uniform_int_distribution<int> pick(0, 8);
  for (int trial = 0; trial < 10; ++trial) {
    Placement f(4);
    for (int& v : f) v = pick(rng);
    EXPECT_LE(average_closest_quorum_delay(instance, f),
              average_max_delay(instance, f) + 1e-12);
  }
}

TEST(ClosestQuorumDelay, SinglePointDesignDelayMatches) {
  // For Lin's design every delay notion coincides with d(v, median).
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(5, 2.0));
  const SinglePointDesign design = lin_single_point_design(metric);
  QppInstance instance(metric, std::vector<double>(5, 1.0), design.system,
                       design.strategy);
  EXPECT_NEAR(average_closest_quorum_delay(instance, design.placement),
              design.average_delay, 1e-12);
  EXPECT_NEAR(average_max_delay(instance, design.placement),
              design.average_delay, 1e-12);
  EXPECT_NEAR(average_total_delay(instance, design.placement),
              design.average_delay, 1e-12);
}

}  // namespace
}  // namespace qp::core
