#include "core/majority_layout.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

SsqppInstance majority_instance(const graph::Metric& metric, int n, int t,
                                double cap, int source = 0) {
  const quorum::QuorumSystem system = quorum::majority(n, t);
  return SsqppInstance(
      metric,
      std::vector<double>(static_cast<std::size_t>(metric.num_points()), cap),
      system, quorum::AccessStrategy::uniform(system), source);
}

TEST(MajorityFormula, ValidatesArguments) {
  EXPECT_THROW(majority_delay_formula({1.0, 2.0}, 0), std::invalid_argument);
  EXPECT_THROW(majority_delay_formula({1.0, 2.0}, 3), std::invalid_argument);
  EXPECT_THROW(majority_delay_formula({1.0, 2.0, 3.0, 4.0}, 2),
               std::invalid_argument);  // 2t <= n
}

TEST(MajorityFormula, FullQuorumIsMaxDistance) {
  // t = n: single quorum of everything; delay = max distance.
  EXPECT_DOUBLE_EQ(majority_delay_formula({3.0, 1.0, 7.0}, 3), 7.0);
}

TEST(MajorityFormula, HandComputedThreeChooseTwo) {
  // n = 3, t = 2, distances {1, 2, 3}: quorums {12},{13},{23} with maxes
  // 2, 3, 3 -> mean 8/3.
  EXPECT_NEAR(majority_delay_formula({1.0, 2.0, 3.0}, 2), 8.0 / 3.0, 1e-12);
}

TEST(MajorityFormula, MonotoneInDistances) {
  const double base = majority_delay_formula({1.0, 2.0, 3.0, 4.0, 5.0}, 3);
  const double bigger = majority_delay_formula({1.0, 2.0, 3.0, 4.0, 9.0}, 3);
  EXPECT_LT(base, bigger);
}

TEST(MajorityLayout, ValidatesSystem) {
  // grid(3) has 9 quorums of size 5 over 9 elements; the threshold-5 family
  // over 9 elements would need C(9, 5) = 126 quorums.
  const quorum::QuorumSystem grid_system = quorum::grid(3);
  SsqppInstance wrong(
      graph::Metric::from_graph(graph::path_graph(10)),
      std::vector<double>(10, 1.0), grid_system,
      quorum::AccessStrategy::uniform(grid_system), 0);
  EXPECT_THROW(majority_layout(wrong, 5), std::invalid_argument);
}

TEST(MajorityLayout, NulloptWithoutEnoughSlots) {
  const graph::Metric metric = graph::Metric::from_graph(graph::path_graph(3));
  const SsqppInstance instance = majority_instance(metric, 5, 3, 3.0 / 5.0);
  EXPECT_FALSE(majority_layout(instance, 3).has_value());
}

TEST(MajorityLayout, FormulaMatchesMeasuredDelay) {
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(8, 1.5));
  const SsqppInstance instance = majority_instance(metric, 5, 3, 3.0 / 5.0);
  const auto layout = majority_layout(instance, 3);
  ASSERT_TRUE(layout.has_value());
  EXPECT_NEAR(layout->delay, layout->formula_delay, 1e-9);
  EXPECT_TRUE(is_capacity_feasible(instance.element_loads(),
                                   instance.capacities(), layout->placement));
}

TEST(MajorityLayout, PlacementInvarianceOnFixedSlots) {
  // Paper Sec 4.2: any permutation of elements over the same slots has the
  // same expected delay.
  std::mt19937_64 rng(77);
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(7, 2.0));
  const SsqppInstance instance = majority_instance(metric, 5, 3, 3.0 / 5.0);
  const auto layout = majority_layout(instance, 3);
  ASSERT_TRUE(layout.has_value());
  Placement perm = layout->placement;
  for (int trial = 0; trial < 30; ++trial) {
    std::shuffle(perm.begin(), perm.end(), rng);
    EXPECT_NEAR(source_expected_max_delay(instance, perm), layout->delay,
                1e-9);
  }
}

TEST(MajorityLayout, NearestSlotsAreOptimal) {
  const graph::Metric metric =
      graph::Metric::line({0.0, 1.0, 2.5, 3.0, 6.0, 8.0, 9.5});
  const SsqppInstance instance = majority_instance(metric, 5, 3, 3.0 / 5.0);
  const auto layout = majority_layout(instance, 3);
  ASSERT_TRUE(layout.has_value());
  const auto exact = exact_ssqpp(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(layout->delay, exact->delay, 1e-9);
}

class MajorityFormulaSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MajorityFormulaSweep, FormulaEqualsDirectEnumeration) {
  const int n = std::get<0>(GetParam());
  const int t = std::get<1>(GetParam());
  if (2 * t <= n || t > n) GTEST_SKIP();
  std::mt19937_64 rng(static_cast<std::uint64_t>(n) * 37 +
                      static_cast<std::uint64_t>(t));
  std::uniform_real_distribution<double> dist(0.0, 10.0);
  std::vector<double> distances(static_cast<std::size_t>(n));
  for (double& d : distances) d = dist(rng);

  // Direct enumeration over all C(n, t) quorums.
  const quorum::QuorumSystem system = quorum::majority(n, t);
  double direct = 0.0;
  for (const auto& quorum : system.quorums()) {
    double mx = 0.0;
    for (int u : quorum) mx = std::max(mx, distances[static_cast<std::size_t>(u)]);
    direct += mx;
  }
  direct /= system.num_quorums();

  EXPECT_NEAR(majority_delay_formula(distances, t), direct, 1e-9)
      << "n=" << n << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, MajorityFormulaSweep,
                         ::testing::Combine(::testing::Values(3, 4, 5, 6, 7,
                                                              8, 9),
                                            ::testing::Values(2, 3, 4, 5, 6,
                                                              7)));

}  // namespace
}  // namespace qp::core
