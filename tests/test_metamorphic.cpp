/// Metamorphic property tests: transformations of an instance with a known
/// effect on the optimum / evaluators. These catch subtle unit or indexing
/// bugs that example-based tests miss.
///
///  - Scaling every distance by c > 0 scales all delays, LP optima and
///    layout delays by exactly c (the problems are 1-homogeneous in d).
///  - Relabelling nodes by a permutation leaves optima unchanged and maps
///    optimal placements through the permutation.
///  - Duplicating a client's weight is equivalent to doubling its rate.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/grid_layout.hpp"
#include "core/majority_layout.hpp"
#include "core/ssqpp_lp.hpp"
#include "core/ssqpp_solver.hpp"
#include "core/total_delay.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

graph::Metric scaled(const graph::Metric& m, double c) {
  const int n = m.num_points();
  std::vector<double> d(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      d[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
        static_cast<std::size_t>(j)] = c * m(i, j);
    }
  }
  return graph::Metric(n, std::move(d));
}

graph::Metric permuted(const graph::Metric& m, const std::vector<int>& perm) {
  const int n = m.num_points();
  std::vector<double> d(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      d[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]) *
            static_cast<std::size_t>(n) +
        static_cast<std::size_t>(perm[static_cast<std::size_t>(j)])] = m(i, j);
    }
  }
  return graph::Metric(n, std::move(d));
}

class Scaling : public ::testing::TestWithParam<double> {};

TEST_P(Scaling, EvaluatorsAreHomogeneous) {
  const double c = GetParam();
  std::mt19937_64 rng(11);
  const graph::Metric base =
      graph::Metric::from_graph(graph::erdos_renyi(8, 0.5, rng, 1.0, 6.0));
  const quorum::QuorumSystem system = quorum::grid(2);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const std::vector<double> caps(8, 1.0);
  QppInstance a(base, caps, system, strategy);
  QppInstance b(scaled(base, c), caps, system, strategy);
  const Placement f = {0, 3, 5, 7};
  EXPECT_NEAR(average_max_delay(b, f), c * average_max_delay(a, f), 1e-9);
  EXPECT_NEAR(average_total_delay(b, f), c * average_total_delay(a, f), 1e-9);
  EXPECT_NEAR(relay_delay(b, f, 2), c * relay_delay(a, f, 2), 1e-9);
}

TEST_P(Scaling, LpOptimumIsHomogeneous) {
  const double c = GetParam();
  std::mt19937_64 rng(13);
  const graph::Metric base =
      graph::Metric::from_graph(graph::random_tree(9, rng, 1.0, 4.0));
  const quorum::QuorumSystem system = quorum::grid(2);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const std::vector<double> caps(9, 0.8);
  const FractionalSsqpp za =
      solve_ssqpp_lp(SsqppInstance(base, caps, system, strategy, 0));
  const FractionalSsqpp zb =
      solve_ssqpp_lp(SsqppInstance(scaled(base, c), caps, system, strategy, 0));
  ASSERT_EQ(za.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(zb.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(zb.objective, c * za.objective,
              1e-6 * std::max(1.0, c * za.objective));
}

TEST_P(Scaling, LayoutDelaysAreHomogeneous) {
  const double c = GetParam();
  std::mt19937_64 rng(17);
  const graph::Metric base =
      graph::Metric::from_graph(graph::erdos_renyi(10, 0.4, rng, 1.0, 7.0));
  {
    const quorum::QuorumSystem system = quorum::grid(2);
    const quorum::AccessStrategy strategy =
        quorum::AccessStrategy::uniform(system);
    const std::vector<double> caps(10, 0.75);
    const auto la =
        optimal_grid_layout(SsqppInstance(base, caps, system, strategy, 0), 2);
    const auto lb = optimal_grid_layout(
        SsqppInstance(scaled(base, c), caps, system, strategy, 0), 2);
    ASSERT_TRUE(la.has_value());
    ASSERT_TRUE(lb.has_value());
    EXPECT_NEAR(lb->delay, c * la->delay, 1e-9 * std::max(1.0, c));
  }
  {
    const quorum::QuorumSystem system = quorum::majority(5, 3);
    const quorum::AccessStrategy strategy =
        quorum::AccessStrategy::uniform(system);
    const std::vector<double> caps(10, 0.6);
    const auto la =
        majority_layout(SsqppInstance(base, caps, system, strategy, 0), 3);
    const auto lb = majority_layout(
        SsqppInstance(scaled(base, c), caps, system, strategy, 0), 3);
    ASSERT_TRUE(la.has_value());
    ASSERT_TRUE(lb.has_value());
    EXPECT_NEAR(lb->delay, c * la->delay, 1e-9 * std::max(1.0, c));
    EXPECT_NEAR(lb->formula_delay, c * la->formula_delay,
                1e-9 * std::max(1.0, c));
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, Scaling,
                         ::testing::Values(0.25, 2.0, 10.0));

class Permutation : public ::testing::TestWithParam<int> {};

TEST_P(Permutation, ExactOptimaAreInvariant) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 709 + 3);
  const graph::Metric base =
      graph::Metric::from_graph(graph::erdos_renyi(6, 0.6, rng, 1.0, 5.0));
  const quorum::QuorumSystem system = quorum::majority(3);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);

  std::vector<int> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  // Permute capacities along with the metric.
  std::vector<double> caps(6);
  std::uniform_real_distribution<double> cap_dist(0.7, 1.5);
  for (double& x : caps) x = cap_dist(rng);
  std::vector<double> permuted_caps(6);
  for (int v = 0; v < 6; ++v) {
    permuted_caps[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])] =
        caps[static_cast<std::size_t>(v)];
  }

  QppInstance a(base, caps, system, strategy);
  QppInstance b(permuted(base, perm), permuted_caps, system, strategy);

  const auto ea = exact_qpp_max_delay(a);
  const auto eb = exact_qpp_max_delay(b);
  ASSERT_EQ(ea.has_value(), eb.has_value());
  if (ea) {
    EXPECT_NEAR(ea->delay, eb->delay, 1e-9);
    // The permuted image of a's optimal placement achieves the optimum in b.
    Placement mapped = ea->placement;
    for (int& v : mapped) v = perm[static_cast<std::size_t>(v)];
    EXPECT_NEAR(average_max_delay(b, mapped), eb->delay, 1e-9);
  }

  const auto ta = exact_qpp_total_delay(a);
  const auto tb = exact_qpp_total_delay(b);
  ASSERT_EQ(ta.has_value(), tb.has_value());
  if (ta) {
    EXPECT_NEAR(ta->delay, tb->delay, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Permutation, ::testing::Range(0, 8));

TEST(ClientWeights, DoublingAWeightEqualsDuplicatingTheClient) {
  // Weighted average with w(3) doubled equals the uniform average over the
  // client multiset {0,1,2,3,3}.
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(4, 2.0));
  const quorum::QuorumSystem system = quorum::majority(3);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  QppInstance weighted(metric, std::vector<double>(4, 10.0), system, strategy,
                       {1.0, 1.0, 1.0, 2.0});
  QppInstance uniform(metric, std::vector<double>(4, 10.0), system, strategy);
  const Placement f = {0, 1, 3};
  double duplicated = 0.0;
  for (int v : {0, 1, 2, 3, 3}) {
    duplicated += expected_max_delay(metric, system, strategy, f, v) / 5.0;
  }
  EXPECT_NEAR(average_max_delay(weighted, f), duplicated, 1e-12);
}

TEST(TotalDelaySolver, ScalingPreservesChosenPlacementCost) {
  std::mt19937_64 rng(31);
  const graph::Metric base =
      graph::Metric::from_graph(graph::erdos_renyi(7, 0.5, rng, 1.0, 6.0));
  const quorum::QuorumSystem system = quorum::majority(3);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const std::vector<double> caps(7, 1.0);
  const auto a = solve_total_delay(QppInstance(base, caps, system, strategy));
  const auto b =
      solve_total_delay(QppInstance(scaled(base, 3.0), caps, system, strategy));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(b->average_delay, 3.0 * a->average_delay, 1e-6);
  EXPECT_NEAR(b->lp_objective, 3.0 * a->lp_objective, 1e-6);
}

}  // namespace
}  // namespace qp::core
