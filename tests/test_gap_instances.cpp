#include "core/gap_instances.hpp"

#include <gtest/gtest.h>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/ssqpp_lp.hpp"

namespace qp::core {
namespace {

TEST(GeneralMetricGap, ValidatesArguments) {
  EXPECT_THROW(general_metric_gap_instance(1, 10.0), std::invalid_argument);
  EXPECT_THROW(general_metric_gap_instance(5, 1.0), std::invalid_argument);
}

TEST(GeneralMetricGap, IntegralOptimumIsM) {
  const GapConstruction c = general_metric_gap_instance(6, 50.0);
  EXPECT_DOUBLE_EQ(c.integral_optimum, 50.0);
  const auto exact = exact_ssqpp(c.instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(exact->delay, 50.0);
}

TEST(GeneralMetricGap, LpIsNearAverageDistance) {
  const int n = 6;
  const double m_distance = 50.0;
  const GapConstruction c = general_metric_gap_instance(n, m_distance);
  const FractionalSsqpp f = solve_ssqpp_lp(c.instance);
  ASSERT_EQ(f.status, lp::SolveStatus::kOptimal);
  // Fractional optimum <= (sum of distances)/n = (n - 2 + M)/n.
  EXPECT_LE(f.objective, (n - 2 + m_distance) / n + 1e-6);
  // Demonstrated gap grows ~ n * M/(M + n): at least n/2 for M >= n.
  EXPECT_GE(c.integral_optimum / f.objective, n / 2.0);
}

TEST(BroomGap, IntegralOptimumIsK) {
  const int k = 3;
  const GapConstruction c = broom_gap_instance(k);
  EXPECT_DOUBLE_EQ(c.integral_optimum, static_cast<double>(k));
  const auto exact = exact_ssqpp(c.instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(exact->delay, static_cast<double>(k));
}

TEST(BroomGap, LpNearThreeHalves) {
  const GapConstruction c = broom_gap_instance(3);
  const FractionalSsqpp f = solve_ssqpp_lp(c.instance);
  ASSERT_EQ(f.status, lp::SolveStatus::kOptimal);
  // Appendix A estimates the LP value as ~3/2 via the uniform spread; the
  // exact optimum is the mean distance from v0 (the source's own node has
  // d = 0): (0 + (n-k)*1 + 2 + ... + k)/n = (n - k + k(k+1)/2 - 1)/n.
  const double n = 9.0, k = 3.0;
  EXPECT_NEAR(f.objective, (n - k + k * (k + 1) / 2 - 1) / n, 1e-6);
}

TEST(BroomGap, MetricIsUnweightedGraphMetric) {
  const GapConstruction c = broom_gap_instance(4);
  EXPECT_TRUE(c.instance.metric().satisfies_triangle_inequality());
  EXPECT_DOUBLE_EQ(c.instance.metric().diameter(),
                   4.0 + 1.0 /* opposite star leaf */);
}

}  // namespace
}  // namespace qp::core
