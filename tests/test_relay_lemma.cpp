/// Property tests for the structural Lemma 3.1: for any placement f there is
/// a node v0 (the argmin of Delta_f) whose relay delay is at most 5 times
/// the average max-delay; and the pairwise bound d(v,v') <= Delta_f(v) +
/// Delta_f(v') driven by the quorum intersection property.

#include <gtest/gtest.h>

#include <random>

#include "core/evaluators.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

Placement random_placement(int universe, int nodes, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  Placement f(static_cast<std::size_t>(universe));
  for (int& v : f) v = pick(rng);
  return f;
}

class RelayLemma : public ::testing::TestWithParam<int> {};

TEST_P(RelayLemma, FactorFiveOnRandomGeometric) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 3);
  const graph::GeometricGraph gg = graph::random_geometric(20, 0.45, rng);
  const graph::Metric metric = graph::Metric::from_graph(gg.graph);
  const quorum::QuorumSystem system = quorum::grid(3);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  QppInstance instance(metric,
                       std::vector<double>(20, 1.0), system, strategy);
  for (int trial = 0; trial < 5; ++trial) {
    const Placement f = random_placement(9, 20, rng);
    const int v0 = best_relay_node(instance, f);
    const double relayed = relay_delay(instance, f, v0);
    const double direct = average_max_delay(instance, f);
    EXPECT_LE(relayed, 5.0 * direct + 1e-9)
        << "trial " << trial << " relay node " << v0;
  }
}

TEST_P(RelayLemma, FactorFiveOnMajorityOverCliqueRing) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 71 + 9);
  const graph::Graph g = graph::ring_of_cliques(4, 4, 1.0, 8.0);
  const graph::Metric metric = graph::Metric::from_graph(g);
  const quorum::QuorumSystem system = quorum::majority(5);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  QppInstance instance(metric, std::vector<double>(16, 1.0), system, strategy);
  for (int trial = 0; trial < 5; ++trial) {
    const Placement f = random_placement(5, 16, rng);
    const int v0 = best_relay_node(instance, f);
    EXPECT_LE(relay_delay(instance, f, v0),
              5.0 * average_max_delay(instance, f) + 1e-9);
  }
}

TEST_P(RelayLemma, PairwiseIntersectionBound) {
  // d(v, v') <= Delta_f(v) + Delta_f(v') for intersecting quorum systems
  // (first step of the Lemma 3.1 proof).
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 53 + 17);
  const graph::Graph g = graph::erdos_renyi(12, 0.4, rng, 1.0, 5.0);
  const graph::Metric metric = graph::Metric::from_graph(g);
  const quorum::QuorumSystem system = quorum::projective_plane(2);
  ASSERT_TRUE(system.is_intersecting());
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const Placement f = random_placement(7, 12, rng);
  for (int v = 0; v < 12; ++v) {
    for (int w = 0; w < 12; ++w) {
      const double dv = expected_max_delay(metric, system, strategy, f, v);
      const double dw = expected_max_delay(metric, system, strategy, f, w);
      EXPECT_LE(metric(v, w), dv + dw + 1e-9);
    }
  }
}

TEST_P(RelayLemma, WeightedClientsStillFactorFive) {
  // Paper Sec 6: the lemma survives non-uniform client rates.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 29 + 31);
  const graph::Graph g = graph::erdos_renyi(14, 0.35, rng, 1.0, 4.0);
  const graph::Metric metric = graph::Metric::from_graph(g);
  const quorum::QuorumSystem system = quorum::grid(2);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  std::uniform_real_distribution<double> weight(0.1, 3.0);
  std::vector<double> weights(14);
  for (double& w : weights) w = weight(rng);
  QppInstance instance(metric, std::vector<double>(14, 1.0), system, strategy,
                       weights);
  const Placement f = random_placement(4, 14, rng);
  // For weighted clients, v0 = argmin Delta still certifies the bound: the
  // proof only uses the metric and intersection, never uniformity.
  const int v0 = best_relay_node(instance, f);
  EXPECT_LE(relay_delay(instance, f, v0),
            5.0 * average_max_delay(instance, f) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelayLemma, ::testing::Range(0, 10));

TEST(RelayLemma, TightPathExampleStaysUnderFive) {
  // Adversarial hand-built case: all elements at one end of a path, clients
  // spread along it.
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(10, 1.0));
  const quorum::QuorumSystem system = quorum::star(3);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  QppInstance instance(metric, std::vector<double>(10, 1.0), system, strategy);
  const Placement f = {9, 9, 8};
  const int v0 = best_relay_node(instance, f);
  EXPECT_EQ(v0, 9);
  EXPECT_LE(relay_delay(instance, f, v0),
            5.0 * average_max_delay(instance, f) + 1e-9);
}

}  // namespace
}  // namespace qp::core
