/// Unit tests for qplace-lint (tools/lint/): each rule family is driven
/// against a small fixture tree under tests/lint_fixtures/<name>/ with its
/// own config directory, and the diagnostics are asserted *exactly* --
/// rule, file, line, and message -- so a change in analyzer behavior is a
/// reviewable test diff, not a silent drift.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using qp::lint::Result;

/// Loads the fixture's own three config files and runs the analyzer over
/// its src/ tree, auditing src/core for contract coverage.
Result run_fixture(const std::string& name) {
  const std::string root = std::string(QPLACE_LINT_FIXTURES) + "/" + name;
  std::vector<std::string> errors;
  const qp::lint::LayerConfig layers =
      qp::lint::load_layer_config(root + "/lint/layers.conf", errors);
  const qp::lint::Allowlist allowlist =
      qp::lint::load_allowlist(root + "/lint/allowlist.conf", errors);
  const qp::lint::ContractManifest manifest =
      qp::lint::load_contract_manifest(root + "/lint/contracts.manifest",
                                       errors);
  qp::lint::Options options;
  options.root = root;
  options.scan_paths = {"src"};
  options.audit_dirs = {"src/core"};
  Result result = qp::lint::run(options, layers, allowlist, manifest);
  result.config_errors.insert(result.config_errors.begin(), errors.begin(),
                              errors.end());
  return result;
}

std::vector<std::string> rendered(const Result& result) {
  std::vector<std::string> out;
  out.reserve(result.findings.size());
  for (const qp::lint::Finding& finding : result.findings) {
    out.push_back(finding.to_string());
  }
  return out;
}

constexpr const char* kBanTail =
    "' is banned in deterministic code (docs/CONTRACTS.md); use a seeded "
    "RNG / ordered container, or add an escape pragma with a reason";

TEST(LintDeterminism, ExactDiagnosticsPerSite) {
  const Result result = run_fixture("determinism");
  ASSERT_TRUE(result.config_errors.empty());

  const std::vector<std::string> expected = {
      "src/core/bad.cpp:4: [unordered-container] 'unordered_map" +
          std::string(kBanTail),
      "src/core/bad.cpp:5: [ambient-rng] 'rand" + std::string(kBanTail),
      "src/core/bad.cpp:6: [wall-clock] 'system_clock" +
          std::string(kBanTail),
      "src/core/dead.cpp:1: [allowlist-stale] escape pragma for rule "
      "'ambient-rng' suppresses no finding; remove it",
      "src/core/escapes.cpp:4: [pragma-missing-reason] escape pragma must "
      "name rules and carry a reason: // qplace-lint: allow(<rule>) -- "
      "<reason>",
      "src/core/escapes.cpp:5: [ambient-rng] 'rand" + std::string(kBanTail),
      "src/core/stale.cpp:1: [allowlist-stale] allowlist manifest lists "
      "'pragma src/core/stale.cpp wall-clock' but no matching pragma "
      "suppresses a hit",
      "src/core/unlisted.cpp:1: [pragma-unlisted] escape pragma for rule "
      "'wall-clock' is not in the allowlist manifest; add: pragma "
      "src/core/unlisted.cpp wall-clock",
  };
  EXPECT_EQ(rendered(result), expected);
}

TEST(LintDeterminism, GrantedDirAndListedPragmaSuppress) {
  const Result result = run_fixture("determinism");
  // src/obs/timer.cpp (dir grant) and src/core/escapes.cpp line 2 (listed
  // multi-rule pragma) must produce no findings at their sites.
  for (const qp::lint::Finding& finding : result.findings) {
    EXPECT_NE(finding.file, "src/obs/timer.cpp") << finding.to_string();
    EXPECT_FALSE(finding.file == "src/core/escapes.cpp" && finding.line == 2)
        << finding.to_string();
  }
}

TEST(LintLayering, ReportsOffendingIncludeChains) {
  const Result result = run_fixture("layering");
  ASSERT_TRUE(result.config_errors.empty());

  const std::vector<std::string> expected = {
      "src/a/a.cpp:2: [layering] module 'a' may not depend on 'd' (chain: "
      "src/a/a.cpp -> src/b/b.hpp -> src/d/d.hpp)",
      "src/b/b.hpp:2: [layering] module 'b' may not depend on 'd' (chain: "
      "src/b/b.hpp -> src/d/d.hpp)",
      "src/unmapped.cpp:1: [layering] file is not mapped to any module in "
      "layers.conf",
  };
  EXPECT_EQ(rendered(result), expected);
}

TEST(LintLayering, TransitiveReachabilityIsAllowed) {
  const Result result = run_fixture("layering");
  // a -> b -> c is legal: `allow a b` plus `allow b c` makes c reachable
  // from a, so neither the direct b include nor the transitive c include
  // may fire.
  for (const qp::lint::Finding& finding : result.findings) {
    EXPECT_EQ(finding.message.find("'c'"), std::string::npos)
        << finding.to_string();
  }
}

TEST(LintLayering, DeclaredCycleIsAConfigError) {
  const Result result = run_fixture("cycle");
  ASSERT_FALSE(result.config_errors.empty());
  EXPECT_NE(result.config_errors.front().find("cycle"), std::string::npos)
      << result.config_errors.front();
}

TEST(LintCoverage, UncoveredDriftAndGhostsAreFindings) {
  const Result result = run_fixture("coverage");
  ASSERT_TRUE(result.config_errors.empty());

  const std::vector<std::string> expected = {
      "src/core/widgets.cpp:19: [contract-coverage] public solver function "
      "'make_uncovered' returns a certified result type but never reaches "
      "a QP_REQUIRE / QP_INVARIANT / validate_* call",
      "src/core/widgets.hpp:1: [manifest-drift] audited function "
      "'make_direct' moved from src/core/other.hpp to src/core/widgets.hpp; "
      "update contracts.manifest",
      "src/core/widgets.hpp:1: [manifest-drift] audited function "
      "'make_uncovered' is not in contracts.manifest; add: function "
      "make_uncovered src/core/widgets.hpp (qplace-lint --print-manifest "
      "regenerates the list)",
      "src/core/widgets.hpp:1: [manifest-drift] contracts.manifest lists "
      "'ghost_widget' but no audited declaration was found; remove the "
      "stale entry",
      "src/core/widgets.hpp:11: [contract-coverage] no definition found "
      "for audited function 'make_undefined' in the audited directories",
  };
  EXPECT_EQ(rendered(result), expected);
}

TEST(LintCoverage, CoverageReachesThroughInternalHelpers) {
  const Result result = run_fixture("coverage");
  // make_direct has a QP_REQUIRE in its body; make_delegating only calls
  // helper_make(), whose QP_INVARIANT must count as reached.
  for (const qp::lint::Finding& finding : result.findings) {
    EXPECT_EQ(finding.message.find("'make_direct' returns"),
              std::string::npos)
        << finding.to_string();
    EXPECT_EQ(finding.message.find("'make_delegating' returns"),
              std::string::npos)
        << finding.to_string();
  }
}

TEST(LintCoverage, RecomputedManifestListsEveryAuditedFunction) {
  const Result result = run_fixture("coverage");
  EXPECT_EQ(qp::lint::format_manifest(result.computed_functions),
            "function make_delegating src/core/widgets.hpp\n"
            "function make_direct src/core/widgets.hpp\n"
            "function make_uncovered src/core/widgets.hpp\n"
            "function make_undefined src/core/widgets.hpp\n");
}

TEST(LintClean, FullyContractedTreeIsClean) {
  const Result result = run_fixture("clean");
  EXPECT_TRUE(result.clean()) << (result.findings.empty()
                                      ? result.config_errors.front()
                                      : result.findings.front().to_string());
  EXPECT_EQ(result.files_scanned, 2);
}

}  // namespace
