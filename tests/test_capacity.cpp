#include "core/capacity.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.hpp"

namespace qp::core {
namespace {

TEST(CapacitySlots, ValidatesInput) {
  const graph::Metric metric = graph::Metric::uniform(3);
  EXPECT_THROW(capacity_slots(metric, {1.0, 1.0, 1.0}, 0.0, 0, 10),
               std::invalid_argument);
  EXPECT_THROW(capacity_slots(metric, {1.0, 1.0}, 1.0, 0, 10),
               std::invalid_argument);
  EXPECT_THROW(capacity_slots(metric, {1.0, 1.0, 1.0}, 1.0, 5, 10),
               std::invalid_argument);
  EXPECT_THROW(capacity_slots(metric, {1.0, 1.0, 1.0}, 1.0, 0, 0),
               std::invalid_argument);
}

TEST(CapacitySlots, HugeCapacityClampedToMaxCopies) {
  // Effectively-infinite capacity must not materialize billions of slots.
  const graph::Metric metric = graph::Metric::uniform(2);
  const auto slots = capacity_slots(metric, {1e12, 1e12}, 0.5, 0, 7);
  EXPECT_EQ(slots.size(), 14u);
}

TEST(CapacitySlots, SuppressesSmallNodes) {
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(3));
  // Node 1 below the element load: contributes no slot.
  const auto slots = capacity_slots(metric, {1.0, 0.4, 1.0}, 0.5, 0, 10);
  ASSERT_EQ(slots.size(), 4u);  // nodes 0 and 2, two slots each
  EXPECT_EQ(slots[0].node, 0);
  EXPECT_EQ(slots[1].node, 0);
  EXPECT_EQ(slots[2].node, 2);
  EXPECT_EQ(slots[3].node, 2);
}

TEST(CapacitySlots, ReplicatesLargeNodes) {
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(2, 3.0));
  const auto slots = capacity_slots(metric, {2.5, 1.0}, 1.0, 0, 10);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0].node, 0);
  EXPECT_EQ(slots[1].node, 0);
  EXPECT_EQ(slots[2].node, 1);
  EXPECT_DOUBLE_EQ(slots[2].distance, 3.0);
}

TEST(CapacitySlots, SortedByDistanceFromSource) {
  const graph::Metric metric = graph::Metric::line({0.0, 5.0, 2.0, 8.0});
  const auto slots = capacity_slots(metric, {1.0, 1.0, 1.0, 1.0}, 1.0, 0, 10);
  ASSERT_EQ(slots.size(), 4u);
  for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
    EXPECT_LE(slots[i].distance, slots[i + 1].distance);
  }
  EXPECT_EQ(slots[0].node, 0);
  EXPECT_EQ(slots[1].node, 2);
}

TEST(CapacitySlots, ToleratesFloatingPointCapacityMultiples) {
  // cap = 3 * load up to floating error must still yield 3 slots.
  const graph::Metric metric = graph::Metric::uniform(1);
  const double load = 0.1 + 0.2;  // 0.30000000000000004
  const auto slots = capacity_slots(metric, {0.9}, load, 0, 10);
  EXPECT_EQ(slots.size(), 3u);
}

}  // namespace
}  // namespace qp::core
