/// Cross-product coverage: every shipped quorum construction driven through
/// the paper's three algorithmic pipelines (Thm 3.7 single-source rounding,
/// Thm 1.2 full QPP, Thm 5.1 total delay) on a random topology, asserting
/// each pipeline's proved bounds. Catches construction-specific corner
/// cases (non-uniform loads, singleton quorums, large quorums).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>

#include "core/evaluators.hpp"
#include "core/qpp_solver.hpp"
#include "core/ssqpp_solver.hpp"
#include "core/total_delay.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "quorum/read_write.hpp"

namespace qp::core {
namespace {

struct PipelineCase {
  std::string name;
  quorum::QuorumSystem system;
};

std::vector<PipelineCase> all_constructions() {
  std::vector<PipelineCase> cases;
  cases.push_back({"grid2", quorum::grid(2)});
  cases.push_back({"grid3", quorum::grid(3)});
  cases.push_back({"majority5", quorum::majority(5)});
  cases.push_back({"majority7t5", quorum::majority(7, 5)});
  cases.push_back({"fpp2", quorum::projective_plane(2)});
  cases.push_back({"tree-h2", quorum::binary_tree(2)});
  cases.push_back({"wall-2-3", quorum::crumbling_wall({2, 3})});
  cases.push_back({"star5", quorum::star(5)});
  cases.push_back({"weighted", quorum::weighted_majority({3, 2, 2, 1, 1})});
  cases.push_back({"singleton", quorum::singleton()});
  cases.push_back(
      {"rw-grid2-mixed",
       quorum::combine_uniform(quorum::grid_read_write(2), 0.7).system});
  return cases;
}

class PipelineSweep : public ::testing::TestWithParam<int> {};

TEST_P(PipelineSweep, AllBoundsAcrossConstructions) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 1063 + 29);
  const graph::Metric metric =
      graph::Metric::from_graph(graph::erdos_renyi(12, 0.35, rng, 1.0, 9.0));

  for (PipelineCase& c : all_constructions()) {
    SCOPED_TRACE(c.name);
    quorum::AccessStrategy strategy = quorum::AccessStrategy::uniform(c.system);
    if (c.name == "rw-grid2-mixed") {
      strategy = quorum::combine_uniform(quorum::grid_read_write(2), 0.7)
                     .strategy;
    }
    const std::vector<double> loads = quorum::element_loads(c.system, strategy);
    const double max_load = *std::max_element(loads.begin(), loads.end());
    const std::vector<double> caps(12, 1.05 * max_load);

    // Thm 3.7 single-source pipeline.
    const SsqppInstance ssqpp(metric, caps, c.system, strategy, seed % 12);
    const auto rounded = solve_ssqpp(ssqpp, 2.0);
    ASSERT_TRUE(rounded.has_value());
    EXPECT_LE(rounded->delay, 2.0 * rounded->lp_objective + 1e-6);
    EXPECT_LE(rounded->load_violation, 3.0 + 1e-6);

    // Thm 5.1 total-delay pipeline.
    const QppInstance qpp(metric, caps, c.system, strategy);
    const auto total = solve_total_delay(qpp);
    ASSERT_TRUE(total.has_value());
    EXPECT_LE(total->load_violation, 2.0 + 1e-6);
    // Thm 5.1: delay <= LP optimum (the rounding can even undercut the LP,
    // which prices capacities the integral solution is allowed to exceed).
    EXPECT_LE(total->average_delay, total->lp_objective + 1e-6);

    // Thm 1.2 full pipeline (restricted source set to keep runtime sane);
    // its factor-5 relay argument needs pairwise intersection, which every
    // case except the read/write mix provides.
    QppSolveOptions options;
    options.candidate_sources = {0, 5};
    const auto full = solve_qpp(qpp, options);
    ASSERT_TRUE(full.has_value());
    EXPECT_LE(full->load_violation, 3.0 + 1e-6);
    EXPECT_NEAR(full->average_delay,
                average_max_delay(qpp, full->placement), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweep, ::testing::Range(0, 4));

}  // namespace
}  // namespace qp::core
