#include "assign/gap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace qp::assign {
namespace {

GapInstance tiny_instance() {
  // 2 jobs, 2 machines. Machine 0 cheap for job 0, machine 1 cheap for job 1.
  GapInstance g(2, 2);
  g.set_capacity(0, 1.0);
  g.set_capacity(1, 1.0);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      g.set_load(i, j, 1.0);
      g.set_cost(i, j, i == j ? 1.0 : 5.0);
    }
  }
  return g;
}

TEST(GapInstance, ValidatesIndices) {
  GapInstance g(2, 3);
  EXPECT_THROW(g.set_cost(3, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.set_load(0, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(g.set_capacity(1, -1.0), std::invalid_argument);
}

TEST(GapInstance, DefaultPairsForbidden) {
  GapInstance g(1, 1);
  g.set_capacity(0, 10.0);
  EXPECT_FALSE(g.allowed(0, 0));
  g.set_load(0, 0, 2.0);
  EXPECT_TRUE(g.allowed(0, 0));
}

TEST(GapInstance, OverCapacityLoadForbidden) {
  GapInstance g(1, 1);
  g.set_capacity(0, 1.0);
  g.set_load(0, 0, 2.0);
  EXPECT_FALSE(g.allowed(0, 0));
}

TEST(GapLp, DiagonalOptimum) {
  const FractionalGap f = solve_gap_lp(tiny_instance());
  ASSERT_EQ(f.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(f.objective, 2.0, 1e-8);
}

TEST(GapLp, InfeasibleWhenTotalLoadExceedsCapacity) {
  GapInstance g(2, 1);
  g.set_capacity(0, 1.0);
  for (int j = 0; j < 2; ++j) {
    g.set_load(0, j, 1.0);
    g.set_cost(0, j, 1.0);
  }
  EXPECT_EQ(solve_gap_lp(g).status, lp::SolveStatus::kInfeasible);
}

TEST(GapRounding, RoundsIntegralFractionalDirectly) {
  const GapInstance g = tiny_instance();
  FractionalGap f;
  f.status = lp::SolveStatus::kOptimal;
  f.y = {1.0, 0.0,   // machine 0 takes job 0
         0.0, 1.0};  // machine 1 takes job 1
  const auto rounded = shmoys_tardos_round(g, f);
  ASSERT_TRUE(rounded.has_value());
  EXPECT_EQ(rounded->job_to_machine, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(rounded->total_cost, 2.0);
}

TEST(GapRounding, RejectsPartialFractional) {
  const GapInstance g = tiny_instance();
  FractionalGap f;
  f.status = lp::SolveStatus::kOptimal;
  f.y = {0.5, 0.0, 0.0, 0.5};  // each job only half-assigned
  EXPECT_FALSE(shmoys_tardos_round(g, f).has_value());
}

TEST(SolveGap, EndToEndRespectsShmoysTardosGuarantees) {
  const auto result = solve_gap(tiny_instance());
  ASSERT_TRUE(result.has_value());
  const FractionalGap f = solve_gap_lp(tiny_instance());
  EXPECT_LE(result->total_cost, f.objective + 1e-7);  // cost <= LP optimum
  // Load <= T_i + pmax_i = 1 + 1.
  for (double load : result->machine_loads) EXPECT_LE(load, 2.0 + 1e-9);
}

TEST(SolveGap, NulloptOnInfeasible) {
  GapInstance g(1, 1);
  g.set_capacity(0, 0.5);
  g.set_load(0, 0, 1.0);  // does not fit anywhere
  EXPECT_FALSE(solve_gap(g).has_value());
}

TEST(GreedyGap, AssignsCheapestFitting) {
  const auto result = greedy_gap(tiny_instance());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->job_to_machine, (std::vector<int>{0, 1}));
}

TEST(GreedyGap, FailsWhenOrderBlocks) {
  // Job 0 greedily takes the only machine that job 1 could use.
  GapInstance g(2, 2);
  g.set_capacity(0, 1.0);
  g.set_capacity(1, 1.0);
  g.set_load(0, 0, 1.0);
  g.set_cost(0, 0, 0.0);
  g.set_load(1, 0, 1.0);
  g.set_cost(1, 0, 1.0);
  g.set_load(0, 1, 1.0);  // job 1 fits only on machine 0
  g.set_cost(0, 1, 0.0);
  const auto result = greedy_gap(g);
  EXPECT_FALSE(result.has_value());
  // The LP-based solver handles it.
  EXPECT_TRUE(solve_gap(g).has_value());
}

/// Property sweep: random GAP instances; whenever the LP is feasible the
/// rounding must deliver cost <= LP and per-machine load <= T_i + pmax_i.
class GapRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(GapRandomProperty, ShmoysTardosBoundsHold) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  std::uniform_real_distribution<double> cost_dist(0.0, 10.0);
  std::uniform_real_distribution<double> load_dist(0.2, 1.0);
  const int jobs = 6;
  const int machines = 4;
  GapInstance g(jobs, machines);
  for (int i = 0; i < machines; ++i) {
    g.set_capacity(i, 1.5);
    for (int j = 0; j < jobs; ++j) {
      g.set_cost(i, j, cost_dist(rng));
      g.set_load(i, j, load_dist(rng));
    }
  }
  const FractionalGap f = solve_gap_lp(g);
  if (f.status != lp::SolveStatus::kOptimal) {
    GTEST_SKIP() << "random instance infeasible";
  }
  const auto rounded = shmoys_tardos_round(g, f);
  ASSERT_TRUE(rounded.has_value());
  EXPECT_LE(rounded->total_cost, f.objective + 1e-6);
  for (int i = 0; i < machines; ++i) {
    double pmax = 0.0;
    for (int j = 0; j < jobs; ++j) {
      if (rounded->job_to_machine[static_cast<std::size_t>(j)] == i) {
        pmax = std::max(pmax, g.load(i, j));
      }
    }
    EXPECT_LE(rounded->machine_loads[static_cast<std::size_t>(i)],
              g.capacity(i) + pmax + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GapRandomProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace qp::assign
