#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "graph/shortest_paths.hpp"

namespace qp::graph {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g(4);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, RejectsNegativeSize) {
  EXPECT_THROW(Graph(-1), std::invalid_argument);
}

TEST(Graph, AddEdgePopulatesBothAdjacencyLists) {
  Graph g(3);
  g.add_edge(0, 2, 1.5);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  ASSERT_EQ(g.neighbors(2).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].to, 2);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].length, 1.5);
  EXPECT_EQ(g.neighbors(2)[0].to, 0);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1, 1.0), std::invalid_argument);
}

TEST(Graph, RejectsNonPositiveLength) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -2.0), std::invalid_argument);
}

TEST(Graph, RejectsInfiniteLength) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 1, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(-1, 1, 1.0), std::invalid_argument);
}

TEST(Graph, EdgesReportsEachEdgeOnce) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 1, 2.0);
  g.add_edge(3, 0, 3.0);
  const std::vector<Edge> edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  for (const Edge& e : edges) EXPECT_LT(e.a, e.b);
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2, 1.0);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, SingleNodeIsConnected) {
  EXPECT_TRUE(Graph(1).is_connected());
  EXPECT_TRUE(Graph(0).is_connected());
}

TEST(Graph, TotalEdgeLength) {
  Graph g(3);
  g.add_edge(0, 1, 1.25);
  g.add_edge(1, 2, 2.75);
  EXPECT_DOUBLE_EQ(g.total_edge_length(), 4.0);
}

TEST(Graph, DescribeMentionsCounts) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_EQ(g.describe(), "Graph(n=3, m=1)");
}

TEST(Dijkstra, PathGraphDistances) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 4.0);
  const ShortestPathTree tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.distance[2], 3.0);
  EXPECT_DOUBLE_EQ(tree.distance[3], 7.0);
}

TEST(Dijkstra, PicksShorterOfTwoRoutes) {
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 1, 2.0);
  const ShortestPathTree tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.distance[1], 3.0);
  EXPECT_EQ(tree.parent[1], 2);
}

TEST(Dijkstra, ParallelEdgesUseShortest) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).distance[1], 2.0);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const ShortestPathTree tree = dijkstra(g, 0);
  EXPECT_EQ(tree.distance[2], kUnreachable);
  EXPECT_TRUE(tree.path_to(2).empty());
}

TEST(Dijkstra, PathReconstruction) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 3, 10.0);
  const ShortestPathTree tree = dijkstra(g, 0);
  EXPECT_EQ(tree.path_to(3), (std::vector<int>{0, 1, 2, 3}));
}

TEST(Dijkstra, RejectsBadSource) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(dijkstra(g, 2), std::invalid_argument);
  EXPECT_THROW(dijkstra(g, -1), std::invalid_argument);
}

TEST(AllPairs, SymmetricZeroDiagonalAndShortcuts) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(3, 0, 4.0);
  const std::vector<double> d = all_pairs_distances(g);
  const int n = 4;
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i * n + i)], 0.0);
    for (int j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i * n + j)],
                       d[static_cast<std::size_t>(j * n + i)]);
    }
  }
  EXPECT_DOUBLE_EQ(d[0 * 4 + 2], 3.0);  // via 0-1-2
  EXPECT_DOUBLE_EQ(d[0 * 4 + 3], 4.0);  // direct edge
}

}  // namespace
}  // namespace qp::graph
