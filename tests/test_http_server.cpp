/// Unit tests for the embedded admin HTTP server (src/net/http_server.*):
/// routing, error statuses, query-string stripping, ephemeral ports, and
/// stop() idempotence. The client side is a bare blocking socket speaking
/// just enough HTTP/1.1 -- the server closes every connection after one
/// response, so "read until EOF" is a complete client.

#include "net/http_server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>

namespace qp {
namespace {

/// Sends \p request verbatim to 127.0.0.1:\p port and returns the whole
/// response (headers + body; the server sends Connection: close).
std::string roundtrip(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("client socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("client connect() failed");
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      throw std::runtime_error("client send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;  // EOF: server closed after the response
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(int port, const std::string& target,
                const char* method = "GET") {
  return roundtrip(port, std::string(method) + " " + target +
                             " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

TEST(HttpServer, ServesRegisteredRoutes) {
  net::HttpServer server;
  server.handle("/metrics", [](const net::HttpRequest& request) {
    EXPECT_EQ(request.method, "GET");
    EXPECT_EQ(request.path, "/metrics");
    net::HttpResponse response;
    response.body = "metric 1\n";
    return response;
  });
  server.handle("/healthz", [](const net::HttpRequest&) {
    net::HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  server.start(0);  // ephemeral port
  ASSERT_GT(server.port(), 0);
  ASSERT_TRUE(server.running());

  const std::string metrics = get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("Content-Type: text/plain; charset=utf-8"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("Connection: close"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("\r\n\r\nmetric 1\n"), std::string::npos) << metrics;

  // Consecutive requests on fresh connections (one connection per request).
  EXPECT_NE(get(server.port(), "/healthz").find("ok\n"), std::string::npos);
  EXPECT_NE(get(server.port(), "/healthz").find("ok\n"), std::string::npos);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServer, StripsQueryStringsBeforeRouting) {
  net::HttpServer server;
  server.handle("/report", [](const net::HttpRequest& request) {
    EXPECT_EQ(request.path, "/report");
    net::HttpResponse response;
    response.body = "{}";
    return response;
  });
  server.start(0);
  const std::string response = get(server.port(), "/report?pretty=1&x=2");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  server.stop();
}

TEST(HttpServer, UnknownPathIs404) {
  net::HttpServer server;
  server.handle("/known", [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  server.start(0);
  const std::string response = get(server.port(), "/unknown");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos) << response;
  server.stop();
}

TEST(HttpServer, NonGetIs405) {
  net::HttpServer server;
  server.handle("/metrics", [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  server.start(0);
  const std::string response = get(server.port(), "/metrics", "POST");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos) << response;
  server.stop();
}

TEST(HttpServer, MalformedRequestLineIs400) {
  net::HttpServer server;
  server.start(0);
  const std::string response =
      roundtrip(server.port(), "not-http\r\n\r\n");  // no spaces to split
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  server.stop();
}

TEST(HttpServer, ThrowingHandlerIs500WithExceptionText) {
  net::HttpServer server;
  server.handle("/boom", [](const net::HttpRequest&) -> net::HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  server.start(0);
  const std::string response = get(server.port(), "/boom");
  EXPECT_NE(response.find("HTTP/1.1 500"), std::string::npos) << response;
  EXPECT_NE(response.find("handler exploded"), std::string::npos) << response;
  server.stop();
}

TEST(HttpServer, StopIsIdempotentAndSafeBeforeStart) {
  net::HttpServer never_started;
  never_started.stop();  // no-op
  EXPECT_FALSE(never_started.running());

  net::HttpServer server;
  server.handle("/x", [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  server.start(0);
  const int port = server.port();
  EXPECT_NE(get(port, "/x").find("200 OK"), std::string::npos);
  server.stop();
  server.stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
  // The port is released: a connect attempt now fails.
  EXPECT_THROW(get(port, "/x"), std::runtime_error);
}

TEST(HttpServer, RejectsDoubleStart) {
  net::HttpServer server;
  server.start(0);
  EXPECT_THROW(server.start(0), std::runtime_error);
  server.stop();
}

}  // namespace
}  // namespace qp
