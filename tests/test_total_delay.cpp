#include "core/total_delay.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

QppInstance make_instance(const graph::Graph& g,
                          const quorum::QuorumSystem& system, double cap) {
  return QppInstance(
      graph::Metric::from_graph(g),
      std::vector<double>(static_cast<std::size_t>(g.num_nodes()), cap),
      system, quorum::AccessStrategy::uniform(system));
}

TEST(TotalDelay, NulloptWhenInfeasible) {
  const QppInstance instance =
      make_instance(graph::path_graph(4), quorum::grid(2), 0.5);
  EXPECT_FALSE(solve_total_delay(instance).has_value());
}

TEST(TotalDelay, Theorem51DelayAtMostCapacityFeasibleOptimum) {
  const QppInstance instance =
      make_instance(graph::cycle_graph(7), quorum::grid(2), 0.8);
  const auto result = solve_total_delay(instance);
  ASSERT_TRUE(result.has_value());
  const auto exact = exact_qpp_total_delay(instance);
  ASSERT_TRUE(exact.has_value());
  // Thm 5.1: delay no worse than the best capacity-feasible placement...
  EXPECT_LE(result->average_delay, exact->delay + 1e-7);
  // ...with load inflated by at most 2.
  EXPECT_LE(result->load_violation, 2.0 + 1e-9);
  // LP lower-bounds the capacity-feasible optimum.
  EXPECT_LE(result->lp_objective, exact->delay + 1e-7);
}

TEST(TotalDelay, MeasuredDelayMatchesEvaluator) {
  const QppInstance instance =
      make_instance(graph::path_graph(6), quorum::majority(3), 1.0);
  const auto result = solve_total_delay(instance);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->average_delay,
              average_total_delay(instance, result->placement), 1e-12);
}

TEST(TotalDelay, LooseCapacitiesCollapseToOneMedianNode) {
  // With no effective capacity limit the separable objective puts every
  // element on the 1-median of the metric.
  const QppInstance instance =
      make_instance(graph::star_graph(7), quorum::majority(3), 100.0);
  const auto result = solve_total_delay(instance);
  ASSERT_TRUE(result.has_value());
  for (int v : result->placement) EXPECT_EQ(v, 0);  // star center
}

TEST(TotalDelay, ClientWeightsShiftPlacement) {
  // All client weight at node 5 of a path: elements should cluster there.
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(6, 1.0));
  const quorum::QuorumSystem system = quorum::majority(3);
  std::vector<double> weights(6, 0.0);
  weights[5] = 1.0;
  QppInstance instance(metric, std::vector<double>(6, 100.0), system,
                       quorum::AccessStrategy::uniform(system), weights);
  const auto result = solve_total_delay(instance);
  ASSERT_TRUE(result.has_value());
  for (int v : result->placement) EXPECT_EQ(v, 5);
}

class TotalDelaySweep : public ::testing::TestWithParam<int> {};

TEST_P(TotalDelaySweep, BoundsOnRandomInstances) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 59 + 13);
  const graph::Graph g = graph::erdos_renyi(8, 0.45, rng, 1.0, 6.0);
  const quorum::QuorumSystem system =
      (GetParam() % 2 == 0) ? quorum::majority(5) : quorum::grid(2);
  std::uniform_real_distribution<double> cap_dist(0.6, 1.5);
  std::vector<double> caps(8);
  for (double& c : caps) c = cap_dist(rng);
  QppInstance instance(graph::Metric::from_graph(g), caps, system,
                       quorum::AccessStrategy::uniform(system));
  const auto result = solve_total_delay(instance);
  if (!result) GTEST_SKIP() << "fractionally infeasible capacities";
  const auto exact = exact_qpp_total_delay(instance);
  if (exact) {
    EXPECT_LE(result->average_delay, exact->delay + 1e-6);
  }
  EXPECT_LE(result->load_violation, 2.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TotalDelaySweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace qp::core
