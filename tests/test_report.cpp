#include "report/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "report/stats.hpp"

namespace qp::report {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "1.0"});
  t.add_row({"longer", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  banner(os, "Experiment 1");
  EXPECT_NE(os.str().find("== Experiment 1 =="), std::string::npos);
}

TEST(Summarize, BasicStatistics) {
  const Summary s = summarize({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.mean, 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.geomean, 2.0, 1e-12);
  EXPECT_EQ(s.count, 3);
}

TEST(Summarize, GeomeanZeroWhenNonPositive) {
  EXPECT_DOUBLE_EQ(summarize({0.0, 1.0}).geomean, 0.0);
}

TEST(Summarize, RejectsEmpty) {
  EXPECT_THROW(summarize({}), std::invalid_argument);
}

}  // namespace
}  // namespace qp::report
