#include "core/ssqpp_solver.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

SsqppInstance make_instance(const graph::Graph& g,
                            const quorum::QuorumSystem& system, double cap,
                            int source) {
  return SsqppInstance(
      graph::Metric::from_graph(g),
      std::vector<double>(static_cast<std::size_t>(g.num_nodes()), cap),
      system, quorum::AccessStrategy::uniform(system), source);
}

TEST(SsqppSolver, RejectsBadAlpha) {
  const SsqppInstance instance =
      make_instance(graph::path_graph(5), quorum::grid(2), 1.0, 0);
  EXPECT_THROW(solve_ssqpp(instance, 1.0), std::invalid_argument);
}

TEST(SsqppSolver, NulloptWhenInfeasible) {
  const SsqppInstance instance =
      make_instance(graph::path_graph(5), quorum::grid(2), 0.5, 0);
  EXPECT_FALSE(solve_ssqpp(instance).has_value());
}

TEST(SsqppSolver, Theorem37BoundsOnPath) {
  const SsqppInstance instance =
      make_instance(graph::path_graph(8), quorum::grid(2), 0.8, 0);
  const auto result = solve_ssqpp(instance, 2.0);
  ASSERT_TRUE(result.has_value());
  // Delay <= (alpha/(alpha-1)) Z* = 2 Z*.
  EXPECT_LE(result->delay, result->delay_bound + 1e-7);
  EXPECT_NEAR(result->delay_bound, 2.0 * result->lp_objective, 1e-9);
  // Load violation <= alpha + 1 = 3.
  EXPECT_LE(result->load_violation, 3.0 + 1e-9);
  // And the LP lower-bounds the true optimum.
  const auto exact = exact_ssqpp(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(result->lp_objective, exact->delay + 1e-7);
}

TEST(SsqppSolver, GreedyBaselineFeasibility) {
  const SsqppInstance instance =
      make_instance(graph::path_graph(8), quorum::grid(2), 0.8, 0);
  const auto greedy = greedy_nearest_placement(instance);
  ASSERT_TRUE(greedy.has_value());
  EXPECT_TRUE(is_capacity_feasible(instance.element_loads(),
                                   instance.capacities(), *greedy));
}

TEST(SsqppSolver, GreedyNulloptWhenNoFit) {
  const SsqppInstance instance =
      make_instance(graph::path_graph(3), quorum::grid(2), 0.5, 0);
  EXPECT_FALSE(greedy_nearest_placement(instance).has_value());
}

TEST(SsqppSolver, TightCapacityForcesSpread) {
  // Exactly one grid(2) element fits per node: placement must be injective.
  const SsqppInstance instance =
      make_instance(graph::path_graph(4), quorum::grid(2), 0.8, 0);
  const auto result = solve_ssqpp(instance, 2.0);
  ASSERT_TRUE(result.has_value());
  std::vector<int> count(4, 0);
  for (int v : result->placement) ++count[static_cast<std::size_t>(v)];
  // Load 3/4 per element, cap 0.8 * (alpha + 1) = 2.4 allows up to 3 per
  // node; just verify total assignment and bound rather than injectivity.
  int placed = 0;
  for (int c : count) placed += c;
  EXPECT_EQ(placed, 4);
  EXPECT_LE(result->load_violation, 3.0 + 1e-9);
}

class SsqppSolverSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(SsqppSolverSweep, BoundsHoldAcrossTopologiesAndAlpha) {
  const double alpha = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 131 + 7);

  const graph::Graph g = (seed % 2 == 0)
                             ? graph::erdos_renyi(10, 0.4, rng, 1.0, 6.0)
                             : graph::random_tree(10, rng, 1.0, 4.0);
  const quorum::QuorumSystem system =
      (seed % 3 == 0) ? quorum::grid(2) : quorum::majority(4);
  const SsqppInstance instance = make_instance(g, system, 1.0, seed % 10);

  const auto result = solve_ssqpp(instance, alpha);
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->delay,
            alpha / (alpha - 1.0) * result->lp_objective + 1e-6);
  EXPECT_LE(result->load_violation, alpha + 1.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaSeeds, SsqppSolverSweep,
    ::testing::Combine(::testing::Values(1.5, 2.0, 3.0, 4.0),
                       ::testing::Range(0, 6)));

}  // namespace
}  // namespace qp::core
