#include "assign/hungarian.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace qp::assign {
namespace {

TEST(Hungarian, TrivialOneByOne) {
  const auto m = min_cost_assignment(1, 1, {7.0});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->row_to_column, (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(m->total_cost, 7.0);
}

TEST(Hungarian, ClassicThreeByThree) {
  // Known optimum 5 with assignment (0->1, 1->0, 2->2) or similar.
  const std::vector<double> cost = {4, 1, 3,   //
                                    2, 0, 5,   //
                                    3, 2, 2};
  const auto m = min_cost_assignment(3, 3, cost);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->total_cost, 5.0);
}

TEST(Hungarian, RectangularPicksCheapColumns) {
  const std::vector<double> cost = {10, 1, 10, 10,  //
                                    10, 10, 2, 10};
  const auto m = min_cost_assignment(2, 4, cost);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->row_to_column[0], 1);
  EXPECT_EQ(m->row_to_column[1], 2);
  EXPECT_DOUBLE_EQ(m->total_cost, 3.0);
}

TEST(Hungarian, ForbiddenEdgesAvoided) {
  const std::vector<double> cost = {kForbidden, 5.0,  //
                                    3.0, kForbidden};
  const auto m = min_cost_assignment(2, 2, cost);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->row_to_column[0], 1);
  EXPECT_EQ(m->row_to_column[1], 0);
  EXPECT_DOUBLE_EQ(m->total_cost, 8.0);
}

TEST(Hungarian, InfeasibleWhenRowFullyForbidden) {
  const std::vector<double> cost = {kForbidden, kForbidden,  //
                                    1.0, 2.0};
  EXPECT_FALSE(min_cost_assignment(2, 2, cost).has_value());
}

TEST(Hungarian, InfeasibleByHallViolation) {
  // Both rows can only use column 0.
  const std::vector<double> cost = {1.0, kForbidden,  //
                                    1.0, kForbidden};
  EXPECT_FALSE(min_cost_assignment(2, 2, cost).has_value());
}

TEST(Hungarian, NegativeCostsSupported) {
  const std::vector<double> cost = {-5.0, 0.0,  //
                                    0.0, -5.0};
  const auto m = min_cost_assignment(2, 2, cost);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->total_cost, -10.0);
}

TEST(Hungarian, RejectsBadShapes) {
  EXPECT_THROW(min_cost_assignment(3, 2, std::vector<double>(6, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(min_cost_assignment(2, 2, std::vector<double>(3, 1.0)),
               std::invalid_argument);
}

TEST(Hungarian, ZeroRowsIsEmptyMatching) {
  const auto m = min_cost_assignment(0, 3, {});
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->row_to_column.empty());
  EXPECT_DOUBLE_EQ(m->total_cost, 0.0);
}

/// Property: on random square instances the Hungarian optimum matches brute
/// force over all permutations.
class HungarianRandom : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandom, MatchesBruteForce) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 77 + 1);
  std::uniform_real_distribution<double> dist(0.0, 10.0);
  const int n = 5;
  std::vector<double> cost(static_cast<std::size_t>(n * n));
  for (double& c : cost) c = dist(rng);

  const auto m = min_cost_assignment(n, n, cost);
  ASSERT_TRUE(m.has_value());

  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  double best = 1e100;
  do {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      total += cost[static_cast<std::size_t>(i * n + perm[static_cast<std::size_t>(i)])];
    }
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));

  EXPECT_NEAR(m->total_cost, best, 1e-9);
  // And the matching must be a permutation.
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  for (int c : m->row_to_column) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, n);
    EXPECT_FALSE(used[static_cast<std::size_t>(c)]);
    used[static_cast<std::size_t>(c)] = 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianRandom, ::testing::Range(0, 12));

}  // namespace
}  // namespace qp::assign
