#include "quorum/read_write.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "core/evaluators.hpp"
#include "core/ssqpp_solver.hpp"
#include "core/total_delay.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::quorum {
namespace {

TEST(ReadWriteSystem, ValidatesFamilies) {
  EXPECT_THROW(ReadWriteSystem(3, {}, {{0}}), std::invalid_argument);
  EXPECT_THROW(ReadWriteSystem(3, {{0}}, {}), std::invalid_argument);
  EXPECT_THROW(ReadWriteSystem(3, {{3}}, {{0}}), std::invalid_argument);
  EXPECT_THROW(ReadWriteSystem(3, {{0, 0}}, {{1}}), std::invalid_argument);
}

TEST(ReadWriteSystem, IntersectionChecks) {
  // Reads {0}, {1}; writes {0,1}: valid bicoterie.
  const ReadWriteSystem good(2, {{0}, {1}}, {{0, 1}});
  EXPECT_TRUE(good.reads_intersect_writes());
  EXPECT_TRUE(good.writes_intersect_writes());
  EXPECT_TRUE(good.is_valid());
  // Writes {0}, {1} do not pairwise intersect.
  const ReadWriteSystem bad(2, {{0, 1}}, {{0}, {1}});
  EXPECT_TRUE(bad.reads_intersect_writes());
  EXPECT_FALSE(bad.writes_intersect_writes());
  EXPECT_FALSE(bad.is_valid());
}

TEST(ReadOneWriteAll, StructureAndValidity) {
  const ReadWriteSystem rw = read_one_write_all(5);
  EXPECT_EQ(rw.read_quorums().size(), 5u);
  EXPECT_EQ(rw.write_quorums().size(), 1u);
  EXPECT_EQ(rw.write_quorums()[0].size(), 5u);
  EXPECT_TRUE(rw.is_valid());
}

TEST(MajorityReadWrite, ThresholdsEnforced) {
  EXPECT_THROW(majority_read_write(5, 2, 3), std::invalid_argument);  // r+w=n
  EXPECT_THROW(majority_read_write(4, 3, 2), std::invalid_argument);  // 2w=n
  const ReadWriteSystem rw = majority_read_write(5, 2, 4);
  EXPECT_EQ(rw.read_quorums().size(), 10u);   // C(5,2)
  EXPECT_EQ(rw.write_quorums().size(), 5u);   // C(5,4)
  EXPECT_TRUE(rw.is_valid());
}

TEST(GridReadWrite, RowsReadRowColumnWrite) {
  const ReadWriteSystem rw = grid_read_write(3);
  EXPECT_EQ(rw.read_quorums().size(), 3u);
  EXPECT_EQ(rw.write_quorums().size(), 9u);
  EXPECT_EQ(rw.read_quorums()[1], (Quorum{3, 4, 5}));
  EXPECT_TRUE(rw.is_valid());
  // Reads do NOT intersect each other (rows are disjoint) -- that is the
  // point of the cheaper read quorums.
  EXPECT_FALSE(QuorumSystem(9, rw.read_quorums()).is_intersecting());
}

TEST(Combine, MixesStrategies) {
  const ReadWriteSystem rw = read_one_write_all(3);
  const CombinedWorkload wl = combine_uniform(rw, 0.75);
  EXPECT_EQ(wl.system.num_quorums(), 4);
  EXPECT_EQ(wl.num_read_quorums, 3);
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(wl.strategy.probability(q), 0.25, 1e-12);
  }
  EXPECT_NEAR(wl.strategy.probability(3), 0.25, 1e-12);
  // ROWA loads: element u read w.p. 0.75/3, written w.p. 0.25.
  const auto loads = element_loads(wl.system, wl.strategy);
  for (double load : loads) EXPECT_NEAR(load, 0.25 + 0.25, 1e-12);
}

TEST(Combine, ReadHeavyLowersGridLoad) {
  const ReadWriteSystem rw = grid_read_write(3);
  const auto read_heavy = combine_uniform(rw, 0.9);
  const auto write_heavy = combine_uniform(rw, 0.1);
  EXPECT_LT(system_load(read_heavy.system, read_heavy.strategy),
            system_load(write_heavy.system, write_heavy.strategy));
}

TEST(Combine, IntersectionFlagReflectsFamily) {
  // Pure writes (fraction 0) of the grid protocol pairwise intersect, but
  // the combined family including disjoint read rows does not.
  const ReadWriteSystem rw = grid_read_write(3);
  EXPECT_FALSE(combine_uniform(rw, 0.5).intersecting);
  // ROWA: every quorum contains... reads are singletons {u}, writes all;
  // {0} and {1} do not intersect.
  EXPECT_FALSE(combine_uniform(read_one_write_all(3), 0.5).intersecting);
  // Majority r=w=3 over 5: any two 3-sets intersect.
  EXPECT_TRUE(combine_uniform(majority_read_write(5, 3, 3), 0.5).intersecting);
}

TEST(Combine, ValidatesArguments) {
  const ReadWriteSystem rw = read_one_write_all(3);
  EXPECT_THROW(combine_uniform(rw, -0.1), std::invalid_argument);
  EXPECT_THROW(combine_uniform(rw, 1.1), std::invalid_argument);
  EXPECT_THROW(combine(rw, {1.0}, {1.0}, 0.5), std::invalid_argument);
}

TEST(Combine, DegenerateFractionsZeroOutAFamily) {
  const ReadWriteSystem rw = read_one_write_all(3);
  const auto reads_only = combine_uniform(rw, 1.0);
  EXPECT_NEAR(reads_only.strategy.probability(3), 0.0, 1e-12);
  const auto writes_only = combine_uniform(rw, 0.0);
  EXPECT_NEAR(writes_only.strategy.probability(3), 1.0, 1e-12);
}

/// End-to-end: read/write workloads run through the paper's single-source
/// and total-delay algorithms (which never need pairwise intersection).
TEST(ReadWritePlacement, SsqppAndTotalDelayPipelines) {
  std::mt19937_64 rng(5);
  const graph::Metric metric =
      graph::Metric::from_graph(graph::erdos_renyi(10, 0.4, rng, 1.0, 6.0));
  const CombinedWorkload wl = combine_uniform(grid_read_write(2), 0.8);

  core::SsqppInstance ssqpp(metric, std::vector<double>(10, 1.0), wl.system,
                            wl.strategy, 0);
  const auto rounded = core::solve_ssqpp(ssqpp, 2.0);
  ASSERT_TRUE(rounded.has_value());
  EXPECT_LE(rounded->delay, 2.0 * rounded->lp_objective + 1e-6);
  EXPECT_LE(rounded->load_violation, 3.0 + 1e-9);

  core::QppInstance qpp(metric, std::vector<double>(10, 1.0), wl.system,
                        wl.strategy);
  const auto total = core::solve_total_delay(qpp);
  ASSERT_TRUE(total.has_value());
  EXPECT_LE(total->load_violation, 2.0 + 1e-9);
}

class ReadFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReadFractionSweep, LoadInterpolatesLinearly) {
  const double fraction = GetParam();
  const ReadWriteSystem rw = grid_read_write(3);
  const auto wl = combine_uniform(rw, fraction);
  const auto loads = element_loads(wl.system, wl.strategy);
  // Element (r, c): read load fraction/k (its row read w.p. 1/k), write
  // load (1-fraction) * (2k-1)/k^2.
  const int k = 3;
  for (double load : loads) {
    EXPECT_NEAR(load,
                fraction / k + (1.0 - fraction) * (2.0 * k - 1) / (k * k),
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, ReadFractionSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace qp::quorum
