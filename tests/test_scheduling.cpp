#include "sched/scheduling.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "sched/exact.hpp"

namespace qp::sched {
namespace {

SchedulingInstance chain_instance() {
  // Three unit jobs in a chain 0 -> 1 -> 2 with weights 1, 2, 3.
  return SchedulingInstance({{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}},
                            {{0, 1}, {1, 2}});
}

TEST(SchedulingInstance, ValidatesJobs) {
  EXPECT_THROW(SchedulingInstance({{-1.0, 0.0}}, {}), std::invalid_argument);
  EXPECT_THROW(SchedulingInstance({{1.0, -2.0}}, {}), std::invalid_argument);
}

TEST(SchedulingInstance, ValidatesPrecedences) {
  EXPECT_THROW(SchedulingInstance({{1, 1}, {1, 1}}, {{0, 2}}),
               std::invalid_argument);
  EXPECT_THROW(SchedulingInstance({{1, 1}}, {{0, 0}}), std::invalid_argument);
}

TEST(SchedulingInstance, RejectsCycles) {
  EXPECT_THROW(SchedulingInstance({{1, 1}, {1, 1}}, {{0, 1}, {1, 0}}),
               std::invalid_argument);
}

TEST(SchedulingInstance, FeasibilityCheck) {
  const SchedulingInstance inst = chain_instance();
  EXPECT_TRUE(inst.is_feasible_order({0, 1, 2}));
  EXPECT_FALSE(inst.is_feasible_order({1, 0, 2}));
  EXPECT_FALSE(inst.is_feasible_order({0, 1}));
  EXPECT_FALSE(inst.is_feasible_order({0, 0, 2}));
}

TEST(SchedulingInstance, CostComputation) {
  const SchedulingInstance inst = chain_instance();
  // C = (1, 2, 3); cost = 1*1 + 2*2 + 3*3 = 14.
  EXPECT_DOUBLE_EQ(inst.cost({0, 1, 2}), 14.0);
  EXPECT_THROW(inst.cost({2, 1, 0}), std::invalid_argument);
}

TEST(SchedulingInstance, CostWithZeroProcessingTimes) {
  // Weight job after a time job completes at time 1.
  const SchedulingInstance inst({{1.0, 0.0}, {0.0, 1.0}}, {{0, 1}});
  EXPECT_DOUBLE_EQ(inst.cost({0, 1}), 1.0);
}

TEST(WoegingerForm, Detection) {
  const SchedulingInstance good({{1.0, 0.0}, {0.0, 1.0}}, {{0, 1}});
  EXPECT_TRUE(good.is_woeginger_form());
  const SchedulingInstance bad_jobs({{2.0, 0.0}, {0.0, 1.0}}, {});
  EXPECT_FALSE(bad_jobs.is_woeginger_form());
  // Edge from weight job to time job violates the form.
  const SchedulingInstance bad_edge({{0.0, 1.0}, {1.0, 0.0}}, {{0, 1}});
  EXPECT_FALSE(bad_edge.is_woeginger_form());
}

TEST(RandomWoeginger, ProducesWoegingerForm) {
  std::mt19937_64 rng(3);
  const SchedulingInstance inst = random_woeginger_instance(5, 4, 0.5, rng);
  EXPECT_EQ(inst.num_jobs(), 9);
  EXPECT_TRUE(inst.is_woeginger_form());
}

TEST(ListSchedule, FeasibleOnChains) {
  const SchedulingInstance inst = chain_instance();
  EXPECT_TRUE(inst.is_feasible_order(list_schedule(inst)));
}

TEST(ListSchedule, PrefersHeavyShortJobs) {
  // No precedences: WSPT puts the (T=0, w=1) job first.
  const SchedulingInstance inst({{1.0, 0.0}, {0.0, 1.0}}, {});
  const std::vector<int> order = list_schedule(inst);
  EXPECT_EQ(order.front(), 1);
  EXPECT_DOUBLE_EQ(inst.cost(order), 0.0);
}

TEST(SmithRule, RejectsPrecedences) {
  EXPECT_THROW(smith_rule(chain_instance()), std::invalid_argument);
}

TEST(SmithRule, SortsByRatio) {
  // Ratios: job0 2/1, job1 4/1, job2 1/2 -> order 1, 0, 2.
  const SchedulingInstance inst({{1.0, 2.0}, {1.0, 4.0}, {2.0, 1.0}}, {});
  EXPECT_EQ(smith_rule(inst), (std::vector<int>{1, 0, 2}));
}

TEST(SmithRule, ZeroTimeHighWeightFirst) {
  const SchedulingInstance inst({{1.0, 1.0}, {0.0, 1.0}}, {});
  EXPECT_EQ(smith_rule(inst).front(), 1);
}

class SmithVsExact : public ::testing::TestWithParam<int> {};

TEST_P(SmithVsExact, OptimalWithoutPrecedences) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  std::uniform_real_distribution<double> dist(0.0, 5.0);
  std::vector<Job> jobs;
  for (int j = 0; j < 8; ++j) jobs.push_back({dist(rng), dist(rng)});
  const SchedulingInstance inst(jobs, {});
  const std::vector<int> order = smith_rule(inst);
  ASSERT_TRUE(inst.is_feasible_order(order));
  EXPECT_NEAR(inst.cost(order), solve_exact(inst).cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmithVsExact, ::testing::Range(0, 10));

TEST(ExactSolver, TrivialInstances) {
  EXPECT_DOUBLE_EQ(solve_exact(SchedulingInstance({}, {})).cost, 0.0);
  const SchedulingInstance one({{2.0, 3.0}}, {});
  const ExactScheduleResult r = solve_exact(one);
  EXPECT_DOUBLE_EQ(r.cost, 6.0);
  EXPECT_EQ(r.order, (std::vector<int>{0}));
}

TEST(ExactSolver, ChainForcedOrder) {
  const ExactScheduleResult r = solve_exact(chain_instance());
  EXPECT_DOUBLE_EQ(r.cost, 14.0);
  EXPECT_EQ(r.order, (std::vector<int>{0, 1, 2}));
}

TEST(ExactSolver, SmithRuleWithoutPrecedences) {
  // Optimal order by w/T ratio: job1 (4/1), job0 (2/1), job2 (1/2).
  const SchedulingInstance inst({{1.0, 2.0}, {1.0, 4.0}, {2.0, 1.0}}, {});
  const ExactScheduleResult r = solve_exact(inst);
  EXPECT_TRUE(inst.is_feasible_order(r.order));
  // cost = 4*1 + 2*2 + 1*4 = 12.
  EXPECT_DOUBLE_EQ(r.cost, 12.0);
}

TEST(ExactSolver, RespectsPrecedenceEvenWhenCostly) {
  // Without the edge, job 1 (heavy) would go first.
  const SchedulingInstance inst({{1.0, 0.0}, {1.0, 10.0}}, {{0, 1}});
  const ExactScheduleResult r = solve_exact(inst);
  EXPECT_EQ(r.order, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(r.cost, 20.0);
}

TEST(ExactSolver, RejectsHugeInstances) {
  std::vector<Job> jobs(21, Job{1.0, 1.0});
  EXPECT_THROW(solve_exact(SchedulingInstance(jobs, {})), std::invalid_argument);
}

/// Property: exact solver never beats the cost of any sampled feasible order
/// and never exceeds the list heuristic.
class ExactVsSampled : public ::testing::TestWithParam<int> {};

TEST_P(ExactVsSampled, ExactIsMinimal) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 13 + 7);
  const SchedulingInstance inst = random_woeginger_instance(5, 4, 0.4, rng);
  const ExactScheduleResult exact = solve_exact(inst);
  EXPECT_TRUE(inst.is_feasible_order(exact.order));
  EXPECT_NEAR(inst.cost(exact.order), exact.cost, 1e-9);

  const std::vector<int> heuristic = list_schedule(inst);
  EXPECT_LE(exact.cost, inst.cost(heuristic) + 1e-9);

  // Sample random topological orders via randomized list scheduling.
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> remaining(static_cast<std::size_t>(inst.num_jobs()), 0);
    std::vector<std::vector<int>> succ(static_cast<std::size_t>(inst.num_jobs()));
    for (const auto& [b, a] : inst.precedences()) {
      ++remaining[static_cast<std::size_t>(a)];
      succ[static_cast<std::size_t>(b)].push_back(a);
    }
    std::vector<int> ready, order;
    for (int j = 0; j < inst.num_jobs(); ++j) {
      if (remaining[static_cast<std::size_t>(j)] == 0) ready.push_back(j);
    }
    while (!ready.empty()) {
      std::uniform_int_distribution<std::size_t> pick(0, ready.size() - 1);
      const std::size_t idx = pick(rng);
      const int j = ready[idx];
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(idx));
      order.push_back(j);
      for (int s : succ[static_cast<std::size_t>(j)]) {
        if (--remaining[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
      }
    }
    EXPECT_LE(exact.cost, inst.cost(order) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsSampled, ::testing::Range(0, 15));

}  // namespace
}  // namespace qp::sched
