#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "lp/model.hpp"

namespace qp::lp {
namespace {

TEST(Model, TracksVariablesAndConstraints) {
  Model m;
  const int x = m.add_variable(1.0, "x");
  const int y = m.add_variable(-2.0);
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.variable_name(x), "x");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0);
  EXPECT_EQ(m.num_constraints(), 1);
  m.set_objective_coefficient(y, 2.0);
  EXPECT_DOUBLE_EQ(m.objective()[1], 2.0);
}

TEST(Model, RejectsUnknownVariable) {
  Model m;
  m.add_variable(1.0);
  EXPECT_THROW(m.add_constraint({{3, 1.0}}, Relation::kEqual, 1.0),
               std::invalid_argument);
  EXPECT_THROW(m.set_objective_coefficient(7, 1.0), std::invalid_argument);
}

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max x + y s.t. x <= 2, y <= 3  ->  min -x - y; optimum -(2+3).
  Model m;
  const int x = m.add_variable(-1.0);
  const int y = m.add_variable(-1.0);
  m.add_constraint({{x, 1.0}}, Relation::kLessEqual, 2.0);
  m.add_constraint({{y, 1.0}}, Relation::kLessEqual, 3.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -5.0, 1e-9);
  EXPECT_NEAR(s.values[0], 2.0, 1e-9);
  EXPECT_NEAR(s.values[1], 3.0, 1e-9);
}

TEST(Simplex, ClassicTwoVariableProblem) {
  // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig's example);
  // optimum at (2, 6) with value -36.
  Model m;
  const int x = m.add_variable(-3.0);
  const int y = m.add_variable(-5.0);
  m.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
  EXPECT_NEAR(s.values[0], 2.0, 1e-8);
  EXPECT_NEAR(s.values[1], 6.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, x - y = 1  ->  x = 2, y = 1.
  Model m;
  const int x = m.add_variable(1.0);
  const int y = m.add_variable(2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 3.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEqual, 1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 2.0, 1e-9);
  EXPECT_NEAR(s.values[1], 1.0, 1e-9);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  ->  (4, 0) value 8.
  Model m;
  const int x = m.add_variable(2.0);
  const int y = m.add_variable(3.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 4.0);
  m.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  const int x = m.add_variable(1.0);
  m.add_constraint({{x, 1.0}}, Relation::kLessEqual, 1.0);
  m.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model m;
  const int x = m.add_variable(-1.0);
  const int y = m.add_variable(0.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kLessEqual, 1.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  Model m;
  const int x = m.add_variable(1.0);
  m.add_constraint({{x, -1.0}}, Relation::kLessEqual, -3.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 3.0, 1e-9);
}

TEST(Simplex, DuplicateTermsAreSummed) {
  // x + x <= 4  ->  x <= 2 for min -x.
  Model m;
  const int x = m.add_variable(-1.0);
  m.add_constraint({{x, 1.0}, {x, 1.0}}, Relation::kLessEqual, 4.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 2.0, 1e-9);
}

TEST(Simplex, NoConstraintsOptimalAtZero) {
  Model m;
  m.add_variable(5.0);
  m.add_variable(0.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(Simplex, NoConstraintsUnboundedWithNegativeCost) {
  Model m;
  m.add_variable(-1.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic cycling-prone degenerate LP (Beale); Bland fallback must
  // terminate at optimum -0.05.
  Model m;
  const int x1 = m.add_variable(-0.75);
  const int x2 = m.add_variable(150.0);
  const int x3 = m.add_variable(-0.02);
  const int x4 = m.add_variable(6.0);
  m.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                   Relation::kLessEqual, 0.0);
  m.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                   Relation::kLessEqual, 0.0);
  m.add_constraint({{x3, 1.0}}, Relation::kLessEqual, 1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
}

TEST(Simplex, TransportationProblem) {
  // 2 supplies (10, 20), 3 demands (5, 10, 15); costs row-major.
  const double cost[2][3] = {{2.0, 4.0, 5.0}, {3.0, 1.0, 7.0}};
  const double supply[2] = {10.0, 20.0};
  const double demand[3] = {5.0, 10.0, 15.0};
  Model m;
  int x[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) x[i][j] = m.add_variable(cost[i][j]);
  }
  for (int i = 0; i < 2; ++i) {
    m.add_constraint({{x[i][0], 1.0}, {x[i][1], 1.0}, {x[i][2], 1.0}},
                     Relation::kLessEqual, supply[i]);
  }
  for (int j = 0; j < 3; ++j) {
    m.add_constraint({{x[0][j], 1.0}, {x[1][j], 1.0}},
                     Relation::kGreaterEqual, demand[j]);
  }
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  // Optimal: x[1][0]=5, x[1][1]=10, x[0][2]=10, x[1][2]=5:
  // 15 + 10 + 50 + 35 = 110.
  EXPECT_NEAR(s.objective, 110.0, 1e-8);
}

TEST(Simplex, RedundantEqualityRowsHandled) {
  // Second row is 2x the first: phase 1 leaves a degenerate artificial in a
  // dependent row, which must not disturb phase 2.
  Model m;
  const int x = m.add_variable(1.0);
  const int y = m.add_variable(1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2.0);
  m.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::kEqual, 4.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
  EXPECT_NEAR(s.values[0] + s.values[1], 2.0, 1e-9);
}

TEST(Simplex, InconsistentDependentRowsInfeasible) {
  Model m;
  const int x = m.add_variable(1.0);
  const int y = m.add_variable(1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2.0);
  m.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::kEqual, 5.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, ZeroRhsEqualityPinned) {
  // x - y = 0 with min x + 2y: optimum at the origin.
  Model m;
  const int x = m.add_variable(1.0);
  const int y = m.add_variable(2.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEqual, 0.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
}

TEST(Simplex, AssignmentLpIsIntegral) {
  // 3x3 assignment polytope has integral vertices; simplex must return a
  // permutation matrix matching the Hungarian optimum (value 5, see
  // test_hungarian.cpp).
  const double cost[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  Model m;
  int x[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) x[i][j] = m.add_variable(cost[i][j]);
  }
  for (int i = 0; i < 3; ++i) {
    m.add_constraint({{x[i][0], 1.0}, {x[i][1], 1.0}, {x[i][2], 1.0}},
                     Relation::kEqual, 1.0);
    m.add_constraint({{x[0][i], 1.0}, {x[1][i], 1.0}, {x[2][i], 1.0}},
                     Relation::kEqual, 1.0);
  }
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
  for (const double v : s.values) {
    EXPECT_TRUE(std::abs(v) < 1e-7 || std::abs(v - 1.0) < 1e-7)
        << "fractional vertex: " << v;
  }
}

TEST(Simplex, IterationLimitReported) {
  Model m;
  const int x = m.add_variable(-1.0);
  m.add_constraint({{x, 1.0}}, Relation::kLessEqual, 5.0);
  SimplexOptions options;
  options.max_iterations = 0;
  EXPECT_EQ(solve(m, options).status, SolveStatus::kIterationLimit);
}

TEST(SolveStatusToString, AllValues) {
  EXPECT_EQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_EQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
}

/// Randomized property check: on random bounded LPs with known feasible box,
/// the simplex optimum must match a brute-force grid-vertex check... instead
/// we verify weak duality via feasibility: the returned point satisfies all
/// constraints and has objective <= any sampled feasible point.
class RandomLpProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpProperty, OptimumDominatesSampledFeasiblePoints) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  std::uniform_real_distribution<double> positive(0.5, 2.0);
  const int num_vars = 4;
  const int num_rows = 5;

  Model m;
  std::vector<double> costs;
  for (int v = 0; v < num_vars; ++v) {
    const double c = coeff(rng);
    costs.push_back(c);
    m.add_variable(c);
  }
  // Box constraints keep it bounded; random extra rows keep it interesting.
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  for (int v = 0; v < num_vars; ++v) {
    m.add_constraint({{v, 1.0}}, Relation::kLessEqual, 3.0);
    std::vector<double> row(num_vars, 0.0);
    row[static_cast<std::size_t>(v)] = 1.0;
    rows.push_back(row);
    rhs.push_back(3.0);
  }
  for (int r = 0; r < num_rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    std::vector<double> row(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      row[static_cast<std::size_t>(v)] = positive(rng);
      terms.emplace_back(v, row[static_cast<std::size_t>(v)]);
    }
    const double b = positive(rng) * 4.0;
    m.add_constraint(std::move(terms), Relation::kLessEqual, b);
    rows.push_back(row);
    rhs.push_back(b);
  }

  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  // Returned point is feasible.
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double lhs = 0.0;
    for (int v = 0; v < num_vars; ++v) {
      lhs += rows[r][static_cast<std::size_t>(v)] *
             s.values[static_cast<std::size_t>(v)];
    }
    EXPECT_LE(lhs, rhs[r] + 1e-7);
  }
  for (double value : s.values) EXPECT_GE(value, -1e-9);
  // Objective dominates random feasible samples.
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int sample = 0; sample < 200; ++sample) {
    std::vector<double> point(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      point[static_cast<std::size_t>(v)] = unit(rng) * 3.0;
    }
    bool feasible = true;
    for (std::size_t r = 0; r < rows.size() && feasible; ++r) {
      double lhs = 0.0;
      for (int v = 0; v < num_vars; ++v) {
        lhs += rows[r][static_cast<std::size_t>(v)] *
               point[static_cast<std::size_t>(v)];
      }
      feasible = lhs <= rhs[r];
    }
    if (!feasible) continue;
    double objective = 0.0;
    for (int v = 0; v < num_vars; ++v) {
      objective +=
          costs[static_cast<std::size_t>(v)] * point[static_cast<std::size_t>(v)];
    }
    EXPECT_GE(objective, s.objective - 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace qp::lp
