#include "core/placement_report.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/evaluators.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

QppInstance make_instance() {
  const quorum::QuorumSystem system = quorum::grid(2);
  return QppInstance(graph::Metric::from_graph(graph::path_graph(6, 1.0)),
                     std::vector<double>(6, 0.75), system,
                     quorum::AccessStrategy::uniform(system));
}

TEST(PlacementReport, MatchesIndividualEvaluators) {
  const QppInstance instance = make_instance();
  const Placement f = {0, 1, 2, 3};
  const PlacementReport report = evaluate_placement(instance, f);
  EXPECT_DOUBLE_EQ(report.average_max_delay, average_max_delay(instance, f));
  EXPECT_DOUBLE_EQ(report.average_total_delay,
                   average_total_delay(instance, f));
  EXPECT_DOUBLE_EQ(report.average_closest_delay,
                   average_closest_quorum_delay(instance, f));
  EXPECT_EQ(report.best_relay, best_relay_node(instance, f));
  EXPECT_DOUBLE_EQ(report.relay_delay,
                   relay_delay(instance, f, report.best_relay));
  EXPECT_EQ(report.distinct_nodes_used, 4);
  EXPECT_TRUE(report.capacity_feasible);
}

TEST(PlacementReport, DetectsViolationAndStacking) {
  const QppInstance instance = make_instance();
  const Placement f = {0, 0, 0, 0};  // 4 elements of load 0.75 on node 0
  const PlacementReport report = evaluate_placement(instance, f);
  EXPECT_FALSE(report.capacity_feasible);
  EXPECT_NEAR(report.max_load, 3.0, 1e-12);
  EXPECT_NEAR(report.max_capacity_violation, 4.0, 1e-12);
  EXPECT_EQ(report.distinct_nodes_used, 1);
}

TEST(PlacementReport, InvariantOrderingOfDelayNotions) {
  // closest <= average-max <= worst-client; avg-max <= avg-total for
  // non-singleton quorums... (only closest/avg/worst are universally
  // ordered; check those).
  std::mt19937_64 rng(3);
  const graph::Metric metric =
      graph::Metric::from_graph(graph::erdos_renyi(9, 0.4, rng, 1.0, 6.0));
  const quorum::QuorumSystem system = quorum::majority(5);
  QppInstance instance(metric, std::vector<double>(9, 1e9), system,
                       quorum::AccessStrategy::uniform(system));
  std::uniform_int_distribution<int> pick(0, 8);
  for (int trial = 0; trial < 20; ++trial) {
    Placement f(5);
    for (int& v : f) v = pick(rng);
    const PlacementReport report = evaluate_placement(instance, f);
    EXPECT_LE(report.average_closest_delay,
              report.average_max_delay + 1e-12);
    EXPECT_LE(report.average_max_delay,
              report.worst_client_max_delay + 1e-12);
    // delta <= gamma pointwise, so the averages are ordered too.
    EXPECT_LE(report.average_max_delay, report.average_total_delay + 1e-12);
    // Lemma 3.1 on the bundle's own relay.
    EXPECT_LE(report.relay_delay, 5.0 * report.average_max_delay + 1e-9);
  }
}

TEST(PlacementReport, ToStringMentionsKeyFields) {
  const QppInstance instance = make_instance();
  const std::string text =
      evaluate_placement(instance, {0, 1, 2, 3}).to_string();
  EXPECT_NE(text.find("avg max-delay"), std::string::npos);
  EXPECT_NE(text.find("feasible"), std::string::npos);
  EXPECT_NE(text.find("best relay"), std::string::npos);
}

TEST(PlacementReport, RejectsInvalidPlacement) {
  const QppInstance instance = make_instance();
  EXPECT_THROW(evaluate_placement(instance, {0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace qp::core
