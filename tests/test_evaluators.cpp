#include "core/evaluators.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

using graph::Metric;
using quorum::AccessStrategy;
using quorum::QuorumSystem;

/// Line metric 0-1-2-3 with unit spacing; two quorums {0,1} and {1,2} over
/// a 3-element universe.
struct Fixture {
  Metric metric = Metric::line({0.0, 1.0, 2.0, 3.0});
  QuorumSystem system{3, {{0, 1}, {1, 2}}};
  AccessStrategy strategy{system, {0.5, 0.5}};
};

TEST(MaxDelay, TakesFarthestElement) {
  const Fixture f;
  // u0 -> node3, u1 -> node0, u2 -> node1.
  const Placement placement = {3, 0, 1};
  EXPECT_DOUBLE_EQ(max_delay(f.metric, f.system.quorum(0), placement, 0), 3.0);
  EXPECT_DOUBLE_EQ(max_delay(f.metric, f.system.quorum(1), placement, 0), 1.0);
  EXPECT_DOUBLE_EQ(max_delay(f.metric, f.system.quorum(0), placement, 3), 3.0);
}

TEST(TotalDelayEval, SumsDistances) {
  const Fixture f;
  const Placement placement = {3, 0, 1};
  EXPECT_DOUBLE_EQ(total_delay(f.metric, f.system.quorum(0), placement, 0),
                   3.0 + 0.0);
  EXPECT_DOUBLE_EQ(total_delay(f.metric, f.system.quorum(1), placement, 2),
                   2.0 + 1.0);
}

TEST(ExpectedDelays, WeightedByStrategy) {
  const Fixture f;
  const Placement placement = {3, 0, 1};
  EXPECT_DOUBLE_EQ(
      expected_max_delay(f.metric, f.system, f.strategy, placement, 0),
      0.5 * 3.0 + 0.5 * 1.0);
  EXPECT_DOUBLE_EQ(
      expected_total_delay(f.metric, f.system, f.strategy, placement, 0),
      0.5 * 3.0 + 0.5 * 1.0);
}

TEST(AverageDelays, UniformClients) {
  const Fixture f;
  QppInstance instance(f.metric, {1, 1, 1, 1}, f.system, f.strategy);
  const Placement placement = {0, 1, 2};
  double expected = 0.0;
  for (int v = 0; v < 4; ++v) {
    expected +=
        0.25 * expected_max_delay(f.metric, f.system, f.strategy, placement, v);
  }
  EXPECT_NEAR(average_max_delay(instance, placement), expected, 1e-12);
}

TEST(AverageDelays, ClientWeightsChangeObjective) {
  const Fixture f;
  // All weight on client 3.
  QppInstance weighted(f.metric, {1, 1, 1, 1}, f.system, f.strategy,
                       {0.0, 0.0, 0.0, 1.0});
  const Placement placement = {0, 1, 2};
  EXPECT_NEAR(
      average_max_delay(weighted, placement),
      expected_max_delay(f.metric, f.system, f.strategy, placement, 3), 1e-12);
}

TEST(AverageDelays, RejectsInvalidPlacement) {
  const Fixture f;
  QppInstance instance(f.metric, {1, 1, 1, 1}, f.system, f.strategy);
  EXPECT_THROW(average_max_delay(instance, {0, 1}), std::invalid_argument);
  EXPECT_THROW(average_max_delay(instance, {0, 1, 9}), std::invalid_argument);
}

TEST(SourceDelay, MatchesExpectedMaxDelayAtSource) {
  const Fixture f;
  SsqppInstance instance(f.metric, {1, 1, 1, 1}, f.system, f.strategy, 2);
  const Placement placement = {0, 1, 3};
  EXPECT_DOUBLE_EQ(
      source_expected_max_delay(instance, placement),
      expected_max_delay(f.metric, f.system, f.strategy, placement, 2));
}

TEST(NodeLoads, AggregatesByPlacement) {
  const std::vector<double> loads = {0.5, 0.3, 0.2};
  const Placement placement = {1, 1, 3};
  const std::vector<double> node = node_loads(loads, placement, 4);
  EXPECT_DOUBLE_EQ(node[0], 0.0);
  EXPECT_DOUBLE_EQ(node[1], 0.8);
  EXPECT_DOUBLE_EQ(node[3], 0.2);
}

TEST(CapacityViolation, RatioAndFeasibility) {
  const std::vector<double> loads = {0.5, 0.5};
  const std::vector<double> caps = {0.4, 1.0};
  EXPECT_DOUBLE_EQ(max_capacity_violation(loads, caps, {0, 1}), 1.25);
  EXPECT_FALSE(is_capacity_feasible(loads, caps, {0, 1}));
  EXPECT_TRUE(is_capacity_feasible(loads, caps, {1, 1}));
}

TEST(CapacityViolation, ZeroCapacityWithLoadIsInfinite) {
  const std::vector<double> loads = {0.5};
  const std::vector<double> caps = {0.0, 1.0};
  EXPECT_TRUE(std::isinf(max_capacity_violation(loads, caps, {0})));
}

TEST(RelayDelay, DecomposesPerEquation8) {
  const Fixture f;
  QppInstance instance(f.metric, {1, 1, 1, 1}, f.system, f.strategy);
  const Placement placement = {0, 1, 2};
  const int relay = 1;
  double avg_dist = 0.0;
  for (int v = 0; v < 4; ++v) avg_dist += 0.25 * f.metric(v, relay);
  EXPECT_NEAR(relay_delay(instance, placement, relay),
              avg_dist + expected_max_delay(f.metric, f.system, f.strategy,
                                            placement, relay),
              1e-12);
}

TEST(BestRelayNode, MinimizesExpectedDelay) {
  const Fixture f;
  QppInstance instance(f.metric, {1, 1, 1, 1}, f.system, f.strategy);
  const Placement placement = {0, 1, 2};
  const int v0 = best_relay_node(instance, placement);
  const double delay_v0 =
      expected_max_delay(f.metric, f.system, f.strategy, placement, v0);
  for (int v = 0; v < 4; ++v) {
    EXPECT_LE(delay_v0, expected_max_delay(f.metric, f.system, f.strategy,
                                           placement, v) +
                            1e-12);
  }
}

}  // namespace
}  // namespace qp::core
