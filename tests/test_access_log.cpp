/// Tests for the per-access event log (obs/access_log.hpp), its analyzer
/// (analyze/analyze.hpp), and the run-report diff: schema round-trip, the
/// sampling subset/prefix guarantees, simulator population, and the
/// empirical-vs-analytic cross-checks of docs/OBSERVABILITY.md.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/evaluators.hpp"
#include "core/instance.hpp"
#include "core/qpp_solver.hpp"
#include "graph/generators.hpp"
#include "graph/metric.hpp"
#include "obs/access_log.hpp"
#include "analyze/analyze.hpp"
#include "obs/json.hpp"
#include "quorum/constructions.hpp"
#include "sim/simulator.hpp"

namespace qp {
namespace {

core::QppInstance grid_instance() {
  const quorum::QuorumSystem system = quorum::grid(2);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const graph::Metric metric = graph::Metric::from_graph(graph::grid_mesh(4));
  return core::QppInstance(metric, std::vector<double>(16, 1.0), system,
                           strategy);
}

core::QppInstance majority_instance() {
  std::mt19937_64 rng(9);
  const quorum::QuorumSystem system = quorum::majority(5);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const graph::Metric metric = graph::Metric::from_graph(
      graph::erdos_renyi(14, 0.4, rng, 1.0, 6.0));
  return core::QppInstance(metric, std::vector<double>(14, 1.0), system,
                           strategy);
}

std::vector<obs::AccessRecord> sample_records() {
  std::vector<obs::AccessRecord> records;
  for (int i = 0; i < 5; ++i) {
    obs::AccessRecord record;
    record.id = i;
    record.client = i % 3;
    record.quorum = i % 2;
    record.relay = i == 2 ? 7 : -1;
    record.start = 0.25 * i + 0.125;
    record.finish = record.start + 1.0 / (i + 1);
    for (int p = 0; p <= i % 2; ++p) {
      record.probes.push_back({p, 3 - p, 0.5 + 0.25 * p, 0.125 * p});
    }
    // Exercise the v2 fields: one retried access, one timeout (with a
    // dropped probe, net_delay = -1), one unavailable.
    if (i == 2) record.attempts = 2;
    if (i == 3) {
      record.attempts = 3;
      record.outcome = obs::AccessOutcome::kTimeout;
      record.probes.front().net_delay = -1.0;
    }
    if (i == 4) record.outcome = obs::AccessOutcome::kUnavailable;
    records.push_back(record);
  }
  return records;
}

std::string write_log(const std::vector<obs::AccessRecord>& records,
                      obs::AccessLogConfig config) {
  std::ostringstream out;
  obs::AccessLogWriter writer(out, config);
  writer.set_context("mode", "parallel");
  writer.set_context("seed", "1");
  for (const obs::AccessRecord& record : records) {
    if (writer.sampled(record.id)) writer.record(record);
  }
  writer.close();
  return out.str();
}

TEST(AccessLog, RenderParseRoundTrip) {
  const std::vector<obs::AccessRecord> records = sample_records();
  std::istringstream in(write_log(records, {}));
  const obs::ParsedAccessLog parsed = obs::parse_access_log(in);
  EXPECT_EQ(parsed.context_or("mode", ""), "parallel");
  EXPECT_EQ(parsed.context_or("seed", ""), "1");
  EXPECT_EQ(parsed.context_or("absent", "fallback"), "fallback");
  ASSERT_EQ(parsed.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const obs::AccessRecord& expected = records[i];
    const obs::AccessRecord& actual = parsed.records[i];
    EXPECT_EQ(actual.id, expected.id);
    EXPECT_EQ(actual.client, expected.client);
    EXPECT_EQ(actual.quorum, expected.quorum);
    EXPECT_EQ(actual.relay, expected.relay);
    EXPECT_EQ(actual.attempts, expected.attempts);
    EXPECT_EQ(actual.outcome, expected.outcome);
    EXPECT_EQ(actual.start, expected.start);    // %.17g round-trips exactly
    EXPECT_EQ(actual.finish, expected.finish);
    ASSERT_EQ(actual.probes.size(), expected.probes.size());
    for (std::size_t p = 0; p < expected.probes.size(); ++p) {
      EXPECT_EQ(actual.probes[p].element, expected.probes[p].element);
      EXPECT_EQ(actual.probes[p].node, expected.probes[p].node);
      EXPECT_EQ(actual.probes[p].net_delay, expected.probes[p].net_delay);
      EXPECT_EQ(actual.probes[p].queue_wait, expected.probes[p].queue_wait);
    }
  }
}

TEST(AccessLog, WriterSortsRecordsById) {
  // Completion order is not id order; the byte stream must be.
  std::vector<obs::AccessRecord> records = sample_records();
  std::reverse(records.begin(), records.end());
  std::istringstream in(write_log(records, {}));
  const obs::ParsedAccessLog parsed = obs::parse_access_log(in);
  ASSERT_EQ(parsed.records.size(), records.size());
  for (std::size_t i = 1; i < parsed.records.size(); ++i) {
    EXPECT_LT(parsed.records[i - 1].id, parsed.records[i].id);
  }
}

TEST(AccessLog, SampledLogIsOrderedSubset) {
  const std::vector<obs::AccessRecord> records = sample_records();
  obs::AccessLogConfig sampled;
  sampled.sample_rate = 0.5;
  sampled.sample_seed = 3;
  std::istringstream full_in(write_log(records, {}));
  std::istringstream sampled_in(write_log(records, sampled));
  const obs::ParsedAccessLog full = obs::parse_access_log(full_in);
  const obs::ParsedAccessLog subset = obs::parse_access_log(sampled_in);
  EXPECT_LE(subset.records.size(), full.records.size());
  // Every surviving id appears in the full log, in the same relative order,
  // and survival agrees with the pure decision function.
  std::size_t cursor = 0;
  for (const obs::AccessRecord& record : subset.records) {
    EXPECT_TRUE(obs::access_log_sampled(sampled, record.id));
    while (cursor < full.records.size() &&
           full.records[cursor].id != record.id) {
      ++cursor;
    }
    ASSERT_LT(cursor, full.records.size()) << "id " << record.id;
  }
  for (const obs::AccessRecord& record : full.records) {
    const bool kept =
        std::any_of(subset.records.begin(), subset.records.end(),
                    [&](const obs::AccessRecord& r) { return r.id == record.id; });
    EXPECT_EQ(kept, obs::access_log_sampled(sampled, record.id));
  }
}

TEST(AccessLog, HeadLimitedLogIsExactBytePrefix) {
  const std::vector<obs::AccessRecord> records = sample_records();
  obs::AccessLogConfig limited;
  limited.head_limit = 3;
  const std::string full = write_log(records, {});
  const std::string head = write_log(records, limited);
  ASSERT_LT(head.size(), full.size());
  EXPECT_EQ(full.compare(0, head.size(), head), 0);
  std::istringstream in(head);
  EXPECT_EQ(obs::parse_access_log(in).records.size(), 3u);
}

TEST(AccessLog, SamplingDecisionIsDeterministicAndSeedSensitive) {
  obs::AccessLogConfig config;
  config.sample_rate = 0.5;
  config.sample_seed = 1;
  int kept = 0;
  for (std::int64_t id = 0; id < 1000; ++id) {
    const bool a = obs::access_log_sampled(config, id);
    const bool b = obs::access_log_sampled(config, id);
    EXPECT_EQ(a, b);
    if (a) ++kept;
  }
  // Loose binomial bound: ~500 +/- 5 sigma.
  EXPECT_GT(kept, 400);
  EXPECT_LT(kept, 600);
  obs::AccessLogConfig reseeded = config;
  reseeded.sample_seed = 2;
  bool differs = false;
  for (std::int64_t id = 0; id < 1000 && !differs; ++id) {
    differs = obs::access_log_sampled(config, id) !=
              obs::access_log_sampled(reseeded, id);
  }
  EXPECT_TRUE(differs);
  // Degenerate rates are exact, not probabilistic.
  config.sample_rate = 1.0;
  EXPECT_TRUE(obs::access_log_sampled(config, 123));
  config.sample_rate = 0.0;
  EXPECT_FALSE(obs::access_log_sampled(config, 123));
}

TEST(AccessLog, RejectsBadConfigAndUseAfterClose) {
  std::ostringstream out;
  obs::AccessLogConfig bad_rate;
  bad_rate.sample_rate = 1.5;
  EXPECT_THROW(obs::AccessLogWriter(out, bad_rate), std::invalid_argument);
  obs::AccessLogConfig bad_head;
  bad_head.head_limit = -1;
  EXPECT_THROW(obs::AccessLogWriter(out, bad_head), std::invalid_argument);

  obs::AccessLogWriter writer(out, {});
  writer.close();
  writer.close();  // idempotent
  EXPECT_THROW(writer.record({}), std::logic_error);
}

TEST(AccessLog, ParsesLegacyV1LogsWithDefaults) {
  // Pre-fault logs carry no attempts/outcome members; the parser must
  // accept the v1 schema tag and default to a single successful attempt.
  std::istringstream in(
      "{\"schema\": \"qplace.access_log.v1\", \"context\": {\"mode\": "
      "\"parallel\"}}\n"
      "{\"id\": 0, \"client\": 1, \"quorum\": 2, \"relay\": -1, "
      "\"start\": 0.5, \"finish\": 1.5, \"probes\": [[0, 3, 1.0, 0.0]]}\n");
  const obs::ParsedAccessLog parsed = obs::parse_access_log(in);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].attempts, 1);
  EXPECT_EQ(parsed.records[0].outcome, obs::AccessOutcome::kOk);
  EXPECT_EQ(parsed.records[0].client, 1);
}

TEST(AccessLog, OutcomeNamesRoundTrip) {
  for (obs::AccessOutcome outcome :
       {obs::AccessOutcome::kOk, obs::AccessOutcome::kTimeout,
        obs::AccessOutcome::kUnavailable}) {
    EXPECT_EQ(obs::access_outcome_from_name(obs::access_outcome_name(outcome)),
              outcome);
  }
  EXPECT_THROW(obs::access_outcome_from_name("exploded"), std::runtime_error);
}

TEST(AccessLog, RejectsNonPositiveAttempts) {
  std::istringstream in(
      "{\"schema\": \"qplace.access_log.v2\", \"context\": {}}\n"
      "{\"id\": 0, \"client\": 0, \"quorum\": 0, \"relay\": -1, "
      "\"attempts\": 0, \"outcome\": \"ok\", \"start\": 0, \"finish\": 1, "
      "\"probes\": []}\n");
  EXPECT_THROW(obs::parse_access_log(in), std::runtime_error);
}

TEST(AccessLog, ParseRejectsForeignSchemaAndGarbage) {
  std::istringstream foreign(
      "{\"schema\": \"qplace.run_report.v1\", \"context\": {}}\n");
  EXPECT_THROW(obs::parse_access_log(foreign), std::runtime_error);
  std::istringstream garbage("not json at all\n");
  EXPECT_THROW(obs::parse_access_log(garbage), std::runtime_error);
  std::istringstream empty("");
  EXPECT_THROW(obs::parse_access_log(empty), std::runtime_error);
}

/// Runs solve + simulate with an attached log writer and parses the result.
obs::ParsedAccessLog simulate_with_log(const core::QppInstance& instance,
                                       const core::Placement& placement,
                                       sim::SimulationConfig config,
                                       sim::SimulationResult* result_out,
                                       obs::AccessLogConfig log_config = {}) {
  std::ostringstream out;
  obs::AccessLogWriter writer(out, log_config);
  config.access_log = &writer;
  const sim::SimulationResult result =
      sim::simulate(instance, placement, config);
  writer.close();
  if (result_out != nullptr) *result_out = result;
  std::istringstream in(out.str());
  return obs::parse_access_log(in);
}

TEST(SimulatorAccessLog, RecordsMatchAggregateStatistics) {
  const core::QppInstance instance = grid_instance();
  core::QppSolveOptions options;
  options.alpha = 2.0;
  const auto solved = core::solve_qpp(instance, options);
  ASSERT_TRUE(solved.has_value());

  sim::SimulationConfig config;
  config.duration = 150.0;
  config.warmup = 10.0;
  sim::SimulationResult result;
  const obs::ParsedAccessLog log =
      simulate_with_log(instance, solved->placement, config, &result);

  // Same population as the aggregate statistics: every completed
  // post-warmup access, nothing else.
  ASSERT_GT(result.completed_accesses, 0);
  ASSERT_EQ(static_cast<std::int64_t>(log.records.size()),
            result.completed_accesses);

  double reconstructed_sum = 0.0;
  std::int64_t last_id = -1;
  for (const obs::AccessRecord& record : log.records) {
    EXPECT_GT(record.id, last_id);  // strictly increasing ids
    last_id = record.id;
    EXPECT_GE(record.start, config.warmup);
    EXPECT_LE(record.finish, config.duration);
    EXPECT_EQ(record.relay, -1);
    ASSERT_EQ(record.probes.size(),
              instance.system().quorum(record.quorum).size());
    double max_net = 0.0;
    for (const obs::AccessProbe& probe : record.probes) {
      EXPECT_EQ(probe.node,
                solved->placement[static_cast<std::size_t>(probe.element)]);
      EXPECT_NEAR(probe.net_delay,
                  instance.metric()(record.client, probe.node), 1e-12);
      EXPECT_EQ(probe.queue_wait, 0.0);  // infinite service rate
      max_net = std::max(max_net, probe.net_delay);
    }
    // Without queueing/jitter the wall-clock delay IS the max net delay.
    EXPECT_NEAR(record.finish - record.start, max_net, 1e-9);
    reconstructed_sum += record.finish - record.start;
  }
  EXPECT_NEAR(reconstructed_sum / static_cast<double>(log.records.size()),
              result.overall_mean_delay, 1e-9);
}

TEST(SimulatorAccessLog, RelayModeRecordsRelayPaths) {
  const core::QppInstance instance = grid_instance();
  core::QppSolveOptions options;
  options.alpha = 2.0;
  const auto solved = core::solve_qpp(instance, options);
  ASSERT_TRUE(solved.has_value());
  const int relay = solved->chosen_source;

  sim::SimulationConfig config;
  config.duration = 80.0;
  config.relay_node = relay;
  sim::SimulationResult result;
  const obs::ParsedAccessLog log =
      simulate_with_log(instance, solved->placement, config, &result);
  ASSERT_GT(log.records.size(), 0u);
  for (const obs::AccessRecord& record : log.records) {
    EXPECT_EQ(record.relay, relay);
    for (const obs::AccessProbe& probe : record.probes) {
      // Paper eq. (4): every probe is routed client -> v0 -> node.
      EXPECT_NEAR(probe.net_delay,
                  instance.metric()(record.client, relay) +
                      instance.metric()(relay, probe.node),
                  1e-12);
    }
  }
}

TEST(SimulatorAccessLog, SampledRunIsSubsetOfFullRun) {
  const core::QppInstance instance = grid_instance();
  core::QppSolveOptions options;
  options.alpha = 2.0;
  const auto solved = core::solve_qpp(instance, options);
  ASSERT_TRUE(solved.has_value());

  sim::SimulationConfig config;
  config.duration = 100.0;
  const obs::ParsedAccessLog full =
      simulate_with_log(instance, solved->placement, config, nullptr);
  obs::AccessLogConfig sampling;
  sampling.sample_rate = 0.25;
  sampling.sample_seed = 11;
  const obs::ParsedAccessLog sampled = simulate_with_log(
      instance, solved->placement, config, nullptr, sampling);

  // Sampling must not perturb the simulation: the surviving records are
  // byte-for-byte the same accesses the full log saw.
  ASSERT_LT(sampled.records.size(), full.records.size());
  ASSERT_GT(sampled.records.size(), 0u);
  std::size_t cursor = 0;
  for (const obs::AccessRecord& record : sampled.records) {
    while (cursor < full.records.size() &&
           full.records[cursor].id != record.id) {
      ++cursor;
    }
    ASSERT_LT(cursor, full.records.size()) << "id " << record.id;
    EXPECT_EQ(obs::render_access_record(record),
              obs::render_access_record(full.records[cursor]));
  }
}

TEST(AnalyzeAccessLog, GridParallelRunChecksOut) {
  const core::QppInstance instance = grid_instance();
  core::QppSolveOptions options;
  options.alpha = 2.0;
  const auto solved = core::solve_qpp(instance, options);
  ASSERT_TRUE(solved.has_value());

  sim::SimulationConfig config;
  config.duration = 400.0;
  config.warmup = 20.0;
  sim::SimulationResult result;
  obs::ParsedAccessLog log =
      simulate_with_log(instance, solved->placement, config, &result);
  log.context["mode"] = "parallel";

  obs::AnalyzeOptions analyze;
  analyze.z = 4.0;  // fixed seed: widen the CI so the check is not a coin flip
  const obs::AccessLogAnalysis analysis =
      obs::analyze_access_log(instance, solved->placement, log, analyze);
  EXPECT_EQ(analysis.total_accesses, result.completed_accesses);
  EXPECT_FALSE(analysis.sequential);
  EXPECT_GT(analysis.clients_checked, 0);
  EXPECT_TRUE(analysis.overall_checked);
  EXPECT_TRUE(analysis.delays_ok());
  EXPECT_TRUE(analysis.loads_ok);
  EXPECT_TRUE(analysis.ok());
  EXPECT_NEAR(analysis.overall_analytic,
              core::average_max_delay(instance, solved->placement), 1e-12);

  // Quorum shares cover every quorum and sum to 1.
  double share = 0.0;
  for (const obs::QuorumBreakdown& breakdown : analysis.quorums) {
    share += breakdown.share;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(AnalyzeAccessLog, MajoritySequentialRunChecksOut) {
  const core::QppInstance instance = majority_instance();
  core::QppSolveOptions options;
  options.alpha = 2.0;
  const auto solved = core::solve_qpp(instance, options);
  ASSERT_TRUE(solved.has_value());

  sim::SimulationConfig config;
  config.duration = 400.0;
  config.mode = sim::AccessMode::kSequential;
  sim::SimulationResult result;
  obs::ParsedAccessLog log =
      simulate_with_log(instance, solved->placement, config, &result);
  log.context["mode"] = "sequential";

  obs::AnalyzeOptions analyze;
  analyze.z = 4.0;
  const obs::AccessLogAnalysis analysis =
      obs::analyze_access_log(instance, solved->placement, log, analyze);
  EXPECT_TRUE(analysis.sequential);
  EXPECT_TRUE(analysis.ok());
  EXPECT_NEAR(analysis.overall_analytic,
              core::average_total_delay(instance, solved->placement), 1e-12);
}

TEST(AnalyzeAccessLog, JitteredParallelRunSkipsTheBiasedCheck) {
  const core::QppInstance instance = grid_instance();
  core::QppSolveOptions options;
  options.alpha = 2.0;
  const auto solved = core::solve_qpp(instance, options);
  ASSERT_TRUE(solved.has_value());

  sim::SimulationConfig config;
  config.duration = 100.0;
  config.latency_jitter = 0.3;
  obs::ParsedAccessLog log =
      simulate_with_log(instance, solved->placement, config, nullptr);
  log.context["jitter"] = "0.3";

  // max of jittered probes is biased above the analytic max; the analyzer
  // must refuse to call that a failure.
  const obs::AccessLogAnalysis analysis =
      obs::analyze_access_log(instance, solved->placement, log, {});
  EXPECT_FALSE(analysis.overall_checked);
  EXPECT_EQ(analysis.clients_checked, 0);
  EXPECT_TRUE(analysis.ok());
  EXPECT_GT(analysis.total_accesses, 0);
}

TEST(AnalyzeAccessLog, DetectsCorruptedDelays) {
  const core::QppInstance instance = grid_instance();
  core::QppSolveOptions options;
  options.alpha = 2.0;
  const auto solved = core::solve_qpp(instance, options);
  ASSERT_TRUE(solved.has_value());

  sim::SimulationConfig config;
  config.duration = 300.0;
  obs::ParsedAccessLog log =
      simulate_with_log(instance, solved->placement, config, nullptr);

  // A log whose delays do not come from this (instance, placement) -- here
  // uniformly inflated by 50% -- must trip the empirical-vs-analytic check.
  for (obs::AccessRecord& record : log.records) {
    for (obs::AccessProbe& probe : record.probes) {
      probe.net_delay *= 1.5;
    }
  }
  const obs::AccessLogAnalysis analysis =
      obs::analyze_access_log(instance, solved->placement, log, {});
  EXPECT_GT(analysis.clients_checked, 0);
  EXPECT_FALSE(analysis.delays_ok());
  EXPECT_FALSE(analysis.ok());
}

// ------------------------------------------------------------- fault replay

/// The same pinned instance the golden fault fixtures run on
/// (tests/test_faults.cpp): path P5, majority(5), identity placement.
core::QppInstance fault_instance() {
  const quorum::QuorumSystem system = quorum::majority(5);
  return core::QppInstance(
      graph::Metric::from_graph(graph::path_graph(5)),
      std::vector<double>(5, 1e9), system,
      quorum::AccessStrategy::uniform(system));
}

sim::FaultSchedule crash_fixture() {
  std::ifstream in(std::string(QPLACE_FAULT_FIXTURES) + "/crash_heavy.json");
  EXPECT_TRUE(in.good());
  return sim::load_fault_schedule(in);
}

/// Fault run with an attached log, context stamped the way the CLI stamps
/// it (the analyzer keys off "fault_digest" and "timeout").
obs::ParsedAccessLog fault_run(const sim::FaultSchedule& schedule,
                               sim::SimulationResult* result_out) {
  const core::QppInstance instance = fault_instance();
  sim::SimulationConfig config;
  config.duration = 100.0;
  config.seed = 99;
  config.faults = &schedule;
  config.probe_timeout = 10.0;
  config.max_attempts = 3;
  obs::ParsedAccessLog log = simulate_with_log(instance, {0, 1, 2, 3, 4},
                                               config, result_out);
  log.context["fault_digest"] = sim::fault_schedule_digest(schedule);
  log.context["timeout"] = "10";
  log.context["retries"] = "3";
  return log;
}

TEST(AnalyzeAccessLog, FaultRunCrossChecksAgainstSchedule) {
  const sim::FaultSchedule schedule = crash_fixture();
  sim::SimulationResult result;
  const obs::ParsedAccessLog log = fault_run(schedule, &result);

  const obs::AccessLogAnalysis analysis = obs::analyze_access_log(
      fault_instance(), {0, 1, 2, 3, 4}, log, {}, &schedule);
  EXPECT_TRUE(analysis.faulty);
  EXPECT_TRUE(analysis.faults_checked);
  EXPECT_TRUE(analysis.faults_ok())
      << (analysis.fault_findings.empty() ? std::string()
                                          : analysis.fault_findings.front());
  EXPECT_TRUE(analysis.ok());
  // The replayed counters agree with what the simulator reported: same
  // resolved-access population, so exact equality.
  EXPECT_EQ(analysis.failed_accesses, result.failed_accesses);
  EXPECT_EQ(analysis.unavailable_accesses, result.unavailable_accesses);
  EXPECT_DOUBLE_EQ(analysis.availability, result.availability);
  // total_retries counts attempts-1 over *resolved* accesses; the engine
  // counter additionally sees retries still in flight at the horizon.
  EXPECT_GT(analysis.total_retries, 0);
  EXPECT_LE(analysis.total_retries, result.retries);
  // Delay/load CI gating is suspended under faults (the estimators are
  // biased by retries), never failed.
  EXPECT_EQ(analysis.clients_checked, 0);
  EXPECT_FALSE(analysis.overall_checked);
}

TEST(AnalyzeAccessLog, FaultCrossCheckFlagsTamperedLog) {
  const sim::FaultSchedule schedule = crash_fixture();
  obs::ParsedAccessLog log = fault_run(schedule, nullptr);

  // Claim an access burned more attempts than the run allowed.
  ASSERT_FALSE(log.records.empty());
  log.records.front().attempts = 9;
  const obs::AccessLogAnalysis analysis = obs::analyze_access_log(
      fault_instance(), {0, 1, 2, 3, 4}, log, {}, &schedule);
  EXPECT_TRUE(analysis.faults_checked);
  EXPECT_FALSE(analysis.faults_ok());
  EXPECT_FALSE(analysis.ok());
  EXPECT_FALSE(analysis.fault_findings.empty());
}

TEST(AnalyzeAccessLog, FaultRunWithoutScheduleSkipsCIQuietly) {
  // No schedule handed to the analyzer: it can still see the run was
  // faulty (outcome/attempts fields) and must skip the biased CI checks
  // without failing anything.
  sim::SimulationResult result;
  const obs::ParsedAccessLog log = fault_run(crash_fixture(), &result);
  const obs::AccessLogAnalysis analysis =
      obs::analyze_access_log(fault_instance(), {0, 1, 2, 3, 4}, log, {});
  EXPECT_TRUE(analysis.faulty);
  EXPECT_FALSE(analysis.faults_checked);
  EXPECT_EQ(analysis.clients_checked, 0);
  EXPECT_TRUE(analysis.ok());
  EXPECT_EQ(analysis.failed_accesses, result.failed_accesses);
}

TEST(AnalyzeAccessLog, RejectsOutOfRangeRecords) {
  const core::QppInstance instance = grid_instance();
  core::QppSolveOptions options;
  options.alpha = 2.0;
  const auto solved = core::solve_qpp(instance, options);
  ASSERT_TRUE(solved.has_value());

  obs::ParsedAccessLog log;
  obs::AccessRecord record;
  record.client = instance.num_nodes();  // out of range
  log.records.push_back(record);
  EXPECT_THROW(
      obs::analyze_access_log(instance, solved->placement, log, {}),
      std::invalid_argument);
}

// ---------------------------------------------------------------- report diff

obs::json::Value make_report(const std::string& counters,
                             const std::string& context = "{}") {
  return obs::json::parse(
      "{\"schema\": \"qplace.run_report.v1\", \"context\": " + context +
      ", \"deterministic\": {\"counters\": " + counters +
      ", \"series\": {}, \"histograms\": {}}, "
      "\"nondeterministic\": {\"timers\": {}, \"gauges\": {}}}");
}

TEST(ReportDiff, ZeroDriftOnIdenticalCounters) {
  const obs::json::Value report =
      make_report("{\"lp.pivots\": 768, \"exec.chunks\": 30}");
  const obs::ReportDiff diff = obs::diff_run_reports(report, report);
  EXPECT_TRUE(diff.error.empty());
  EXPECT_EQ(diff.max_deterministic_drift(), 0.0);
  EXPECT_TRUE(diff.deterministic_ok(0.0));
  ASSERT_EQ(diff.counters.size(), 2u);
}

TEST(ReportDiff, ComputesRelativeDriftAndGatesOnTolerance) {
  const obs::ReportDiff diff = obs::diff_run_reports(
      make_report("{\"lp.pivots\": 100}"), make_report("{\"lp.pivots\": 108}"));
  EXPECT_TRUE(diff.error.empty());
  EXPECT_NEAR(diff.max_deterministic_drift(), 0.08, 1e-12);
  EXPECT_FALSE(diff.deterministic_ok(0.05));
  EXPECT_TRUE(diff.deterministic_ok(0.10));
}

TEST(ReportDiff, OneSidedCounterIsInfiniteDrift) {
  const obs::ReportDiff diff = obs::diff_run_reports(
      make_report("{}"), make_report("{\"lp.pivots\": 5}"));
  EXPECT_TRUE(diff.error.empty());
  EXPECT_TRUE(std::isinf(diff.max_deterministic_drift()));
  EXPECT_FALSE(diff.deterministic_ok(1e9));
}

TEST(ReportDiff, RefusesDisagreeingInstanceDigests) {
  const obs::ReportDiff diff = obs::diff_run_reports(
      make_report("{}", "{\"instance_digest\": \"aaaa\"}"),
      make_report("{}", "{\"instance_digest\": \"bbbb\"}"));
  EXPECT_FALSE(diff.error.empty());
  EXPECT_FALSE(diff.deterministic_ok(0.0));
}

TEST(ReportDiff, AcceptsBenchBaselineFormat) {
  const obs::json::Value bench = obs::json::parse(
      "{\"schema\": \"qplace.bench.v1\", "
      "\"solver_counters\": {\"lp.pivots\": 768}}");
  const obs::ReportDiff diff =
      obs::diff_run_reports(bench, make_report("{\"lp.pivots\": 768}"));
  EXPECT_TRUE(diff.error.empty());
  EXPECT_EQ(diff.max_deterministic_drift(), 0.0);
}

TEST(ReportDiff, RejectsDocumentsWithoutCounters) {
  const obs::ReportDiff diff = obs::diff_run_reports(
      obs::json::parse("{\"hello\": 1}"), make_report("{}"));
  EXPECT_FALSE(diff.error.empty());
}

TEST(ReportDiff, FlagsObsOffBuilds) {
  const obs::ReportDiff diff = obs::diff_run_reports(
      make_report("{}", "{\"obs_compiled_in\": \"false\"}"),
      make_report("{}", "{\"obs_compiled_in\": \"true\"}"));
  EXPECT_TRUE(diff.error.empty());
  EXPECT_TRUE(diff.obs_off_base);
  EXPECT_FALSE(diff.obs_off_cand);
}

TEST(ReportDiff, ReportsSeriesDivergenceAsInfiniteDrift) {
  const obs::json::Value base = obs::json::parse(
      "{\"deterministic\": {\"counters\": {}, "
      "\"series\": {\"lp.objective\": [1.0, 2.0]}, \"histograms\": {}}}");
  const obs::json::Value cand = obs::json::parse(
      "{\"deterministic\": {\"counters\": {}, "
      "\"series\": {\"lp.objective\": [1.0, 2.5]}, \"histograms\": {}}}");
  const obs::ReportDiff diff = obs::diff_run_reports(base, cand);
  EXPECT_TRUE(diff.error.empty());
  EXPECT_TRUE(std::isinf(diff.max_deterministic_drift()));
  const obs::ReportDiff same = obs::diff_run_reports(base, base);
  EXPECT_EQ(same.max_deterministic_drift(), 0.0);
}

/// Report JSON with one histogram rendered the way LogHistogram::to_json
/// does: an empty histogram has null mean/p50/p90/p99.
obs::json::Value make_histogram_report(bool empty) {
  const std::string stats =
      empty ? "\"count\": 0, \"mean\": null, \"p50\": null, "
              "\"p90\": null, \"p99\": null"
            : "\"count\": 5, \"mean\": 2.0, \"p50\": 2.0, "
              "\"p90\": 3.0, \"p99\": 3.0";
  return obs::json::parse(
      "{\"deterministic\": {\"counters\": {}, \"series\": {}, "
      "\"histograms\": {\"sim.queue_wait\": {" + stats + "}}}}");
}

TEST(ReportDiff, NullVsNumberHistogramIsSchemaDrift) {
  // One run measured queue waits, the other measured none: the null-vs-2.0
  // difference is not a numeric drift of 2.0 -- the distributions are not
  // comparable at all, which must gate like an infinite counter drift.
  const obs::ReportDiff diff = obs::diff_run_reports(
      make_histogram_report(/*empty=*/true),
      make_histogram_report(/*empty=*/false));
  EXPECT_TRUE(diff.error.empty());
  ASSERT_EQ(diff.histograms.size(), 1u);
  EXPECT_TRUE(diff.histograms.front().null_base);
  EXPECT_FALSE(diff.histograms.front().null_cand);
  EXPECT_TRUE(diff.histograms.front().schema_drift());
  EXPECT_TRUE(std::isinf(diff.max_deterministic_drift()));
  EXPECT_FALSE(diff.deterministic_ok(1e9));
}

TEST(ReportDiff, NullVsNullHistogramIsNotDrift) {
  const obs::ReportDiff diff = obs::diff_run_reports(
      make_histogram_report(/*empty=*/true),
      make_histogram_report(/*empty=*/true));
  EXPECT_TRUE(diff.error.empty());
  ASSERT_EQ(diff.histograms.size(), 1u);
  EXPECT_FALSE(diff.histograms.front().schema_drift());
  EXPECT_EQ(diff.max_deterministic_drift(), 0.0);
}

TEST(InstanceDigest, SensitiveToEveryDefiningDatum) {
  const core::QppInstance a = grid_instance();
  EXPECT_EQ(core::instance_digest(a), core::instance_digest(grid_instance()));
  EXPECT_NE(core::instance_digest(a),
            core::instance_digest(majority_instance()));
  // Capacity change only -- same metric, system, strategy.
  const quorum::QuorumSystem system = quorum::grid(2);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const graph::Metric metric = graph::Metric::from_graph(graph::grid_mesh(4));
  const core::QppInstance recapped(metric, std::vector<double>(16, 2.0),
                                   system, strategy);
  EXPECT_NE(core::instance_digest(a), core::instance_digest(recapped));
  EXPECT_EQ(core::instance_digest_hex(a).size(), 16u);
}

}  // namespace
}  // namespace qp
