#include "graph/metric.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.hpp"

namespace qp::graph {
namespace {

TEST(Metric, ValidatesSymmetry) {
  EXPECT_THROW(Metric(2, {0.0, 1.0, 2.0, 0.0}), std::invalid_argument);
}

TEST(Metric, ValidatesZeroDiagonal) {
  EXPECT_THROW(Metric(2, {1.0, 1.0, 1.0, 0.0}), std::invalid_argument);
}

TEST(Metric, ValidatesShape) {
  EXPECT_THROW(Metric(2, {0.0, 1.0, 1.0}), std::invalid_argument);
}

TEST(Metric, ValidatesNonNegativity) {
  EXPECT_THROW(Metric(2, {0.0, -1.0, -1.0, 0.0}), std::invalid_argument);
}

TEST(Metric, FromGraphMatchesShortestPaths) {
  const Graph g = path_graph(4, 2.0);
  const Metric m = Metric::from_graph(g);
  EXPECT_EQ(m.num_points(), 4);
  EXPECT_DOUBLE_EQ(m(0, 3), 6.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 2.0);
  EXPECT_TRUE(m.satisfies_triangle_inequality());
}

TEST(Metric, FromGraphRejectsDisconnected) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(Metric::from_graph(g), std::invalid_argument);
}

TEST(Metric, UniformMetric) {
  const Metric m = Metric::uniform(5);
  EXPECT_DOUBLE_EQ(m(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(m(2, 2), 0.0);
  EXPECT_TRUE(m.satisfies_triangle_inequality());
}

TEST(Metric, LineMetric) {
  const Metric m = Metric::line({0.0, 1.5, 4.0});
  EXPECT_DOUBLE_EQ(m(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 2.5);
  EXPECT_TRUE(m.satisfies_triangle_inequality());
}

TEST(Metric, TriangleInequalityViolationDetected) {
  // d(0,2) = 10 but d(0,1) + d(1,2) = 2: not a metric.
  const Metric m(3, {0.0, 1.0, 10.0,  //
                     1.0, 0.0, 1.0,   //
                     10.0, 1.0, 0.0});
  EXPECT_FALSE(m.satisfies_triangle_inequality());
}

TEST(Metric, Diameter) {
  const Metric m = Metric::line({0.0, 3.0, 7.0});
  EXPECT_DOUBLE_EQ(m.diameter(), 7.0);
}

TEST(Metric, NodesByDistanceSortsStably) {
  const Metric m = Metric::line({5.0, 0.0, 2.0, 5.0});
  const std::vector<int> order = m.nodes_by_distance_from(1);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  // Nodes 0 and 3 tie at distance 5; stable sort keeps id order.
  EXPECT_EQ(order[2], 0);
  EXPECT_EQ(order[3], 3);
}

TEST(Metric, NodesByDistanceRejectsBadOrigin) {
  const Metric m = Metric::uniform(3);
  EXPECT_THROW(m.nodes_by_distance_from(3), std::invalid_argument);
}

TEST(Metric, DistanceSumFrom) {
  const Metric m = Metric::line({0.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(m.distance_sum_from(0), 4.0);
  EXPECT_DOUBLE_EQ(m.distance_sum_from(1), 3.0);
}

TEST(Metric, GraphMetricsSatisfyTriangleInequality) {
  std::mt19937_64 rng(17);
  const Metric m = Metric::from_graph(erdos_renyi(20, 0.3, rng, 1.0, 9.0));
  EXPECT_TRUE(m.satisfies_triangle_inequality());
}

}  // namespace
}  // namespace qp::graph
