#pragma once

struct Widget {
  int id = 0;
};

Widget make_clean();
