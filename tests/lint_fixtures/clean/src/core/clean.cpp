#include "core/clean.hpp"

Widget make_clean() {
  Widget w;
  QP_REQUIRE(w.id == 0, "fresh widget starts at id 0");
  return w;
}
