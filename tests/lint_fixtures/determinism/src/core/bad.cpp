#include <map>

int bad_entropy() {
  std::unordered_map<int, int> cache;
  int seed = rand();
  auto stamp = std::chrono::system_clock::now();
  (void)stamp;
  return seed + static_cast<int>(cache.size());
}
