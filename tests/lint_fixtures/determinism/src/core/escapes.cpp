// qplace-lint: allow(unordered-container,ambient-rng) -- fixture: one pragma, two rules
int escape_both() { std::unordered_map<int, int> m; return rand() + static_cast<int>(m.size()); }

// qplace-lint: allow(ambient-rng)
int missing_reason() { return rand(); }
