// qplace-lint: allow(ambient-rng) -- fixture: suppresses nothing at all
int dead_pragma() { return 7; }
