// qplace-lint: allow(wall-clock) -- fixture: suppresses a hit but is not in the manifest
long unlisted_clock() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
