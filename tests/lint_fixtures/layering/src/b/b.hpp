#include "c/c.hpp"
#include "d/d.hpp"
