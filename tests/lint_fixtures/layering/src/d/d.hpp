// module d: leaf, no includes; nobody is allowed to depend on it
