// module c: leaf, no includes
