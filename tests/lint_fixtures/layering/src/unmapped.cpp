// deliberately not assigned to any module in layers.conf
