#include "b/b.hpp"
