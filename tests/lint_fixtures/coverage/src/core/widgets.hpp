#pragma once
#include <optional>

struct Widget {
  int id = 0;
};

Widget make_direct();
Widget make_delegating();
std::optional<Widget> make_uncovered();
Widget make_undefined();
