#include "core/widgets.hpp"

Widget make_direct() {
  Widget w;
  QP_REQUIRE(w.id == 0, "fresh widget starts at id 0");
  return w;
}

static Widget helper_make() {
  Widget w;
  QP_INVARIANT(w.id >= 0, "ids are non-negative");
  return w;
}

Widget make_delegating() {
  return helper_make();
}

std::optional<Widget> make_uncovered() {
  return Widget{};
}
