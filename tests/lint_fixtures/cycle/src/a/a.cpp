// module a
