#include "sched/reduction.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "sched/exact.hpp"

namespace qp::sched {
namespace {

SchedulingInstance small_woeginger() {
  // Time jobs 0, 1, 2 (T=1, w=0); weight jobs 3, 4 (T=0, w=1);
  // 0 and 1 precede 3; 2 precedes 4.
  return SchedulingInstance(
      {{1, 0}, {1, 0}, {1, 0}, {0, 1}, {0, 1}},
      {{0, 3}, {1, 3}, {2, 4}});
}

TEST(Reduction, RejectsNonWoegingerForm) {
  const SchedulingInstance general({{2.0, 1.0}}, {});
  EXPECT_THROW(reduce_to_ssqpp(general), std::invalid_argument);
}

TEST(Reduction, ConstructionShape) {
  const ReductionResult r = reduce_to_ssqpp(small_woeginger());
  EXPECT_EQ(r.num_time_jobs, 3);
  EXPECT_EQ(r.num_weight_jobs, 2);
  // Universe: e_0 plus one element per time job.
  EXPECT_EQ(r.instance.system().universe_size(), 4);
  // Quorums: 2 type-1 + 3 type-2.
  EXPECT_EQ(r.instance.system().num_quorums(), 5);
  EXPECT_TRUE(r.instance.system().is_intersecting());
  // Path metric: d(v0, v_t) = t.
  EXPECT_DOUBLE_EQ(r.instance.metric()(0, 3), 3.0);
  // e_0 has load 1 and only fits on v0.
  EXPECT_DOUBLE_EQ(r.instance.element_loads()[0], 1.0);
  EXPECT_DOUBLE_EQ(r.instance.capacity(0), 1.0);
  for (int v = 1; v <= 3; ++v) EXPECT_LT(r.instance.capacity(v), 1.0);
}

TEST(Reduction, EpsilonSatisfiesPaperConstraints) {
  const ReductionResult r = reduce_to_ssqpp(small_woeginger());
  const int nt = r.num_time_jobs;
  // eps < (1-eps)/(n-m): probability ordering used in the proof.
  EXPECT_LT(r.epsilon, (1.0 - r.epsilon) / nt);
  // Every element other than e_0 fits on every non-source node, but no two
  // elements fit together (capacity separation).
  const auto& loads = r.instance.element_loads();
  for (int e = 1; e <= nt; ++e) {
    EXPECT_LE(loads[static_cast<std::size_t>(e)], r.instance.capacity(1));
    EXPECT_GT(2 * loads[static_cast<std::size_t>(e)] -
                  loads[static_cast<std::size_t>(e)] * 1e-9,
              r.instance.capacity(1) - 1.0);  // loose sanity: loads ~ cap/2..cap
  }
  for (int e1 = 1; e1 <= nt; ++e1) {
    for (int e2 = 1; e2 <= nt; ++e2) {
      EXPECT_GT(loads[static_cast<std::size_t>(e1)] +
                    loads[static_cast<std::size_t>(e2)],
                r.instance.capacity(1) + 1e-12);
    }
  }
}

TEST(Reduction, ScheduleRoundTrip) {
  const SchedulingInstance sched = small_woeginger();
  const ReductionResult r = reduce_to_ssqpp(sched);
  const std::vector<int> order = {0, 1, 3, 2, 4};
  ASSERT_TRUE(sched.is_feasible_order(order));
  const core::Placement placement = placement_from_schedule(sched, r, order);
  // e_0 on v0; elements of jobs 0,1,2 at positions 1,2,3.
  EXPECT_EQ(placement[0], 0);
  const auto back = schedule_from_placement(sched, r, placement);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(sched.is_feasible_order(*back));
  EXPECT_DOUBLE_EQ(sched.cost(*back), sched.cost(order));
}

TEST(Reduction, DelayFormulaMatchesEvaluator) {
  const SchedulingInstance sched = small_woeginger();
  const ReductionResult r = reduce_to_ssqpp(sched);
  const std::vector<int> order = {0, 1, 3, 2, 4};
  const core::Placement placement = placement_from_schedule(sched, r, order);
  const double delay =
      core::source_expected_max_delay(r.instance, placement);
  // The schedule realized by the placement is the ASAP schedule, whose cost
  // may be lower than `order`'s; compare against the ASAP round trip.
  const auto asap = schedule_from_placement(sched, r, placement);
  ASSERT_TRUE(asap.has_value());
  EXPECT_NEAR(delay, r.delay_for_schedule_cost(sched.cost(*asap)), 1e-9);
  EXPECT_NEAR(r.schedule_cost_for_delay(delay), sched.cost(*asap), 1e-7);
}

TEST(Reduction, RejectsNonBijectivePlacements) {
  const SchedulingInstance sched = small_woeginger();
  const ReductionResult r = reduce_to_ssqpp(sched);
  // e_0 not on v0.
  EXPECT_FALSE(schedule_from_placement(sched, r, {1, 0, 2, 3}).has_value());
  // Two elements on one node.
  EXPECT_FALSE(schedule_from_placement(sched, r, {0, 1, 1, 3}).has_value());
}

/// The crux of Thm 3.6: optimal schedule cost and optimal SSQPP delay
/// correspond through the affine delay map, on random Woeginger instances.
class ReductionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ReductionEquivalence, OptimaCorrespond) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 97 + 11);
  const SchedulingInstance sched = random_woeginger_instance(4, 3, 0.5, rng);
  const ReductionResult r = reduce_to_ssqpp(sched);

  const ExactScheduleResult sched_opt = solve_exact(sched);
  const auto place_opt = core::exact_ssqpp(r.instance);
  ASSERT_TRUE(place_opt.has_value());

  EXPECT_NEAR(place_opt->delay,
              r.delay_for_schedule_cost(sched_opt.cost), 1e-9);

  // And the optimal placement converts into an optimal schedule.
  const auto order = schedule_from_placement(sched, r, place_opt->placement);
  ASSERT_TRUE(order.has_value());
  EXPECT_NEAR(sched.cost(*order), sched_opt.cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionEquivalence, ::testing::Range(0, 8));

}  // namespace
}  // namespace qp::sched
