#include "core/ssqpp_lp.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/exact.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

SsqppInstance line_grid_instance(int k, int num_nodes, double cap) {
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(num_nodes, 1.0));
  const quorum::QuorumSystem system = quorum::grid(k);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  return SsqppInstance(metric, std::vector<double>(
                                   static_cast<std::size_t>(num_nodes), cap),
                       system, strategy, 0);
}

TEST(SsqppLp, SolvesAndOrdersNodes) {
  const SsqppInstance instance = line_grid_instance(2, 6, 1.0);
  const FractionalSsqpp f = solve_ssqpp_lp(instance);
  ASSERT_EQ(f.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(f.num_nodes, 6);
  EXPECT_EQ(f.universe_size, 4);
  EXPECT_EQ(f.num_quorums, 4);
  for (int t = 0; t + 1 < f.num_nodes; ++t) {
    EXPECT_LE(f.sorted_distance[static_cast<std::size_t>(t)],
              f.sorted_distance[static_cast<std::size_t>(t + 1)]);
  }
  EXPECT_EQ(f.node_order[0], 0);  // the source is nearest to itself
}

TEST(SsqppLp, MassConservationConstraints) {
  const SsqppInstance instance = line_grid_instance(2, 6, 1.0);
  const FractionalSsqpp f = solve_ssqpp_lp(instance);
  ASSERT_EQ(f.status, lp::SolveStatus::kOptimal);
  for (int u = 0; u < f.universe_size; ++u) {
    double mass = 0.0;
    for (int t = 0; t < f.num_nodes; ++t) mass += f.xu(t, u);
    EXPECT_NEAR(mass, 1.0, 1e-7) << "element " << u;
  }
  for (int q = 0; q < f.num_quorums; ++q) {
    double mass = 0.0;
    for (int t = 0; t < f.num_nodes; ++t) mass += f.xq(t, q);
    EXPECT_NEAR(mass, 1.0, 1e-7) << "quorum " << q;
  }
}

TEST(SsqppLp, PrefixDominanceConstraint14) {
  const SsqppInstance instance = line_grid_instance(2, 6, 1.0);
  const FractionalSsqpp f = solve_ssqpp_lp(instance);
  ASSERT_EQ(f.status, lp::SolveStatus::kOptimal);
  for (int q = 0; q < f.num_quorums; ++q) {
    for (int u : instance.system().quorum(q)) {
      double prefix_q = 0.0, prefix_u = 0.0;
      for (int t = 0; t < f.num_nodes; ++t) {
        prefix_q += f.xq(t, q);
        prefix_u += f.xu(t, u);
        EXPECT_LE(prefix_q, prefix_u + 1e-6)
            << "q=" << q << " u=" << u << " t=" << t;
      }
    }
  }
}

TEST(SsqppLp, CapacityConstraintRespectedFractionally) {
  const SsqppInstance instance = line_grid_instance(2, 4, 0.8);
  const FractionalSsqpp f = solve_ssqpp_lp(instance);
  ASSERT_EQ(f.status, lp::SolveStatus::kOptimal);
  const auto& loads = instance.element_loads();
  for (int t = 0; t < f.num_nodes; ++t) {
    double node_load = 0.0;
    for (int u = 0; u < f.universe_size; ++u) {
      node_load += loads[static_cast<std::size_t>(u)] * f.xu(t, u);
    }
    EXPECT_LE(node_load, 0.8 + 1e-6);
  }
}

TEST(SsqppLp, LowerBoundsExactOptimum) {
  const SsqppInstance instance = line_grid_instance(2, 5, 0.8);
  const FractionalSsqpp f = solve_ssqpp_lp(instance);
  ASSERT_EQ(f.status, lp::SolveStatus::kOptimal);
  const auto exact = exact_ssqpp(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(f.objective, exact->delay + 1e-7);
}

TEST(SsqppLp, InfeasibleWhenElementFitsNowhere) {
  // Capacities below every element load (grid(2) load = 3/4).
  const SsqppInstance instance = line_grid_instance(2, 6, 0.5);
  EXPECT_EQ(solve_ssqpp_lp(instance).status, lp::SolveStatus::kInfeasible);
}

TEST(SsqppLp, InfeasibleWhenAggregateCapacityTooSmall) {
  // Each node holds exactly one of the four elements but only 3 nodes.
  const SsqppInstance instance = line_grid_instance(2, 3, 0.8);
  EXPECT_EQ(solve_ssqpp_lp(instance).status, lp::SolveStatus::kInfeasible);
}

TEST(SsqppLp, ObjectiveMatchesQuorumDistances) {
  const SsqppInstance instance = line_grid_instance(2, 6, 1.0);
  const FractionalSsqpp f = solve_ssqpp_lp(instance);
  ASSERT_EQ(f.status, lp::SolveStatus::kOptimal);
  double total = 0.0;
  for (int q = 0; q < f.num_quorums; ++q) {
    total += f.quorum_probability[static_cast<std::size_t>(q)] *
             f.quorum_distance(q);
  }
  EXPECT_NEAR(total, f.objective, 1e-7);
}

// --- Filtering (Sec 3.3.1) ---------------------------------------------------

TEST(Filtering, RejectsBadAlpha) {
  const SsqppInstance instance = line_grid_instance(2, 5, 1.0);
  const FractionalSsqpp f = solve_ssqpp_lp(instance);
  EXPECT_THROW(filter_fractional(f, 1.0), std::invalid_argument);
  EXPECT_THROW(filter_fractional(f, 0.5), std::invalid_argument);
}

class FilteringProperty : public ::testing::TestWithParam<double> {};

TEST_P(FilteringProperty, InvariantsHold) {
  const double alpha = GetParam();
  const SsqppInstance instance = line_grid_instance(2, 7, 0.8);
  const FractionalSsqpp f = solve_ssqpp_lp(instance);
  ASSERT_EQ(f.status, lp::SolveStatus::kOptimal);
  const FractionalSsqpp filtered = filter_fractional(f, alpha);

  for (int u = 0; u < f.universe_size; ++u) {
    double mass = 0.0;
    for (int t = 0; t < f.num_nodes; ++t) {
      const double x = filtered.xu(t, u);
      EXPECT_GE(x, -1e-12);
      EXPECT_LE(x, alpha * f.xu(t, u) + 1e-9);  // x~ <= alpha x
      mass += x;
    }
    EXPECT_NEAR(mass, 1.0, 1e-6);  // (10) preserved exactly
  }
  for (int q = 0; q < f.num_quorums; ++q) {
    double mass = 0.0;
    for (int t = 0; t < f.num_nodes; ++t) mass += filtered.xq(t, q);
    EXPECT_NEAR(mass, 1.0, 1e-6);  // (11) preserved
  }
  // (14) still holds after filtering (paper argument).
  for (int q = 0; q < f.num_quorums; ++q) {
    for (int u : instance.system().quorum(q)) {
      double prefix_q = 0.0, prefix_u = 0.0;
      for (int t = 0; t < f.num_nodes; ++t) {
        prefix_q += filtered.xq(t, q);
        prefix_u += filtered.xu(t, u);
        EXPECT_LE(prefix_q, prefix_u + 1e-6);
      }
    }
  }
  // Claim 3.8 analogue: support confined to d_t <= (alpha/(alpha-1)) D_Q.
  for (int q = 0; q < f.num_quorums; ++q) {
    const double dq = f.quorum_distance(q);
    for (int t = 0; t < f.num_nodes; ++t) {
      if (filtered.xq(t, q) > 1e-9) {
        EXPECT_LE(f.sorted_distance[static_cast<std::size_t>(t)],
                  alpha / (alpha - 1.0) * dq + 1e-6);
      }
    }
  }
  // Objective does not grow.
  EXPECT_LE(filtered.objective, f.objective + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Alphas, FilteringProperty,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0));

}  // namespace
}  // namespace qp::core
