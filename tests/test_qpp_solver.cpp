#include "core/qpp_solver.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

QppInstance make_instance(const graph::Graph& g,
                          const quorum::QuorumSystem& system, double cap) {
  return QppInstance(
      graph::Metric::from_graph(g),
      std::vector<double>(static_cast<std::size_t>(g.num_nodes()), cap),
      system, quorum::AccessStrategy::uniform(system));
}

TEST(QppSolver, SingleSourceViewSharesData) {
  const QppInstance instance =
      make_instance(graph::path_graph(5), quorum::grid(2), 1.0);
  const SsqppInstance view = single_source_view(instance, 3);
  EXPECT_EQ(view.source(), 3);
  EXPECT_EQ(view.num_nodes(), 5);
  EXPECT_EQ(view.system().num_quorums(), 4);
}

TEST(QppSolver, NulloptWhenAllSourcesInfeasible) {
  const QppInstance instance =
      make_instance(graph::path_graph(4), quorum::grid(2), 0.5);
  EXPECT_FALSE(solve_qpp(instance).has_value());
}

TEST(QppSolver, Theorem12BoundAgainstExactOptimum) {
  const QppInstance instance =
      make_instance(graph::cycle_graph(6), quorum::grid(2), 0.8);
  QppSolveOptions options;
  options.alpha = 2.0;
  const auto result = solve_qpp(instance, options);
  ASSERT_TRUE(result.has_value());

  const auto exact = exact_qpp_max_delay(instance);
  ASSERT_TRUE(exact.has_value());
  // Thm 1.2: Avg delay <= 5 alpha/(alpha-1) OPT = 10 OPT for alpha = 2.
  // (The placement may beat OPT outright since capacities are relaxed.)
  EXPECT_LE(result->average_delay, 10.0 * exact->delay + 1e-7);
  EXPECT_LE(result->load_violation, 3.0 + 1e-9);
}

TEST(QppSolver, CandidateSubsetRestrictsSearch) {
  const QppInstance instance =
      make_instance(graph::path_graph(6), quorum::grid(2), 1.0);
  QppSolveOptions options;
  options.candidate_sources = {2};
  const auto result = solve_qpp(instance, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->chosen_source, 2);
}

TEST(QppSolver, TryingAllSourcesIsNoWorseThanOne) {
  const QppInstance instance =
      make_instance(graph::star_graph(7), quorum::majority(3), 1.0);
  QppSolveOptions one;
  one.candidate_sources = {6};
  const auto single = solve_qpp(instance, one);
  const auto all = solve_qpp(instance);
  ASSERT_TRUE(single.has_value());
  ASSERT_TRUE(all.has_value());
  EXPECT_LE(all->average_delay, single->average_delay + 1e-9);
}

TEST(QppSolver, MaxCandidatesRestrictsToMedianOrder) {
  // On a path, the 1-median order starts at the middle nodes; with
  // max_candidates = 2 the chosen source must be one of them.
  const QppInstance instance =
      make_instance(graph::path_graph(9), quorum::grid(2), 1.0);
  QppSolveOptions options;
  options.max_candidates = 2;
  const auto result = solve_qpp(instance, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->chosen_source == 3 || result->chosen_source == 4 ||
              result->chosen_source == 5)
      << "source " << result->chosen_source;
}

TEST(QppSolver, MaxCandidatesMatchesFullSearchQuality) {
  std::mt19937_64 rng(5);
  const QppInstance instance = make_instance(
      graph::erdos_renyi(10, 0.4, rng, 1.0, 6.0), quorum::majority(3), 1.0);
  QppSolveOptions full;
  const auto exhaustive = solve_qpp(instance, full);
  QppSolveOptions sampled;
  sampled.max_candidates = 3;
  const auto quick = solve_qpp(instance, sampled);
  ASSERT_TRUE(exhaustive.has_value());
  ASSERT_TRUE(quick.has_value());
  // Restricting candidates can only do the same or worse...
  EXPECT_GE(quick->average_delay, exhaustive->average_delay - 1e-9);
  // ...but median-order candidates stay competitive in practice.
  EXPECT_LE(quick->average_delay, 2.0 * exhaustive->average_delay + 1e-9);
}

class QppSolverSweep : public ::testing::TestWithParam<int> {};

TEST_P(QppSolverSweep, BoundsOnRandomInstances) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 313 + 29);
  const graph::Graph g = graph::erdos_renyi(7, 0.5, rng, 1.0, 5.0);
  const QppInstance instance = make_instance(g, quorum::majority(3), 1.0);
  QppSolveOptions options;
  options.alpha = 2.0;
  const auto result = solve_qpp(instance, options);
  ASSERT_TRUE(result.has_value());
  const auto exact = exact_qpp_max_delay(instance);
  ASSERT_TRUE(exact.has_value());
  // Capacity-relaxed placements may beat the feasible OPT; only the upper
  // bound of Thm 1.2 is guaranteed.
  EXPECT_LE(result->average_delay, 10.0 * exact->delay + 1e-6);
  EXPECT_LE(result->load_violation, 3.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QppSolverSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace qp::core
