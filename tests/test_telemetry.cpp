/// Unit tests for the live-telemetry layer (src/obs/telemetry.*,
/// docs/OBSERVABILITY.md "Live telemetry"): snapshotter ring semantics,
/// the qplace.timeseries.v1 JSONL rendering and its deterministic /
/// nondeterministic split, Prometheus summary exposition, the TTY progress
/// meter, and -- the load-bearing property -- byte-identical deterministic
/// series from the simulator at 1 vs 8 threads.

#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/qpp_solver.hpp"
#include "graph/generators.hpp"
#include "exec/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/prom.hpp"
#include "quorum/constructions.hpp"
#include "sim/simulator.hpp"

namespace qp {
namespace {

/// Splits a JSONL document into lines (no trailing empty line).
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(Telemetry, RejectsZeroCapacity) {
  obs::TelemetryConfig config;
  config.capacity = 0;
  EXPECT_THROW(obs::MetricsSnapshotter{config}, std::invalid_argument);
}

TEST(Telemetry, SampleCapturesRegistryAndCallerValues) {
  obs::Registry::instance().reset_all();
  obs::Registry::instance().counter("telemetry_test.events").add(7);
  obs::Registry::instance().gauge("telemetry_test.depth").set(3.5);

  obs::MetricsSnapshotter snapshotter;
  EXPECT_EQ(snapshotter.size(), 0u);
  EXPECT_FALSE(snapshotter.latest().has_value());

  snapshotter.sample(10.0, {{"availability", 0.25}});
  ASSERT_EQ(snapshotter.size(), 1u);
  const obs::MetricsSnapshot snap = *snapshotter.latest();
  EXPECT_EQ(snap.sim_time, 10.0);
  EXPECT_EQ(snap.counters.at("telemetry_test.events"), 7u);
  EXPECT_EQ(snap.values.at("availability"), 0.25);
  EXPECT_EQ(snap.gauges.at("telemetry_test.depth"), 3.5);
  EXPECT_GE(snap.wall_ms, 0.0);
}

TEST(Telemetry, RingEvictsOldestAndCountsDrops) {
  obs::TelemetryConfig config;
  config.capacity = 2;
  obs::MetricsSnapshotter snapshotter(config);
  snapshotter.sample(1.0);
  snapshotter.sample(2.0);
  snapshotter.sample(3.0);
  EXPECT_EQ(snapshotter.size(), 2u);
  EXPECT_EQ(snapshotter.dropped(), 1u);
  const std::vector<obs::MetricsSnapshot> held = snapshotter.snapshots();
  ASSERT_EQ(held.size(), 2u);
  EXPECT_EQ(held.front().sim_time, 2.0);  // t=1 evicted
  EXPECT_EQ(held.back().sim_time, 3.0);
}

TEST(Telemetry, WatchedHistogramsAreDigestedAndUnregisterable) {
  obs::MetricsSnapshotter snapshotter;
  obs::LogHistogram delays;
  for (int i = 1; i <= 100; ++i) delays.record(static_cast<double>(i));
  snapshotter.watch_histogram("delays", &delays);

  snapshotter.sample(1.0);
  const obs::HistogramPoint point =
      snapshotter.latest()->histograms.at("delays");
  EXPECT_EQ(point.count, 100u);
  EXPECT_EQ(point.sum, delays.sum());
  EXPECT_EQ(point.p50, delays.quantile(0.50));
  EXPECT_EQ(point.p99, delays.quantile(0.99));

  // nullptr unregisters: the next sample no longer touches the histogram
  // (the simulator relies on this before its result goes out of scope).
  snapshotter.watch_histogram("delays", nullptr);
  snapshotter.sample(2.0);
  EXPECT_EQ(snapshotter.latest()->histograms.count("delays"), 0u);
}

TEST(Telemetry, EmptyHistogramQuantilesRenderAsNull) {
  obs::MetricsSnapshotter snapshotter;
  obs::LogHistogram empty;
  snapshotter.watch_histogram("empty", &empty);
  snapshotter.sample(1.0);

  const obs::HistogramPoint point =
      snapshotter.latest()->histograms.at("empty");
  EXPECT_EQ(point.count, 0u);
  EXPECT_TRUE(std::isnan(point.p50));

  const std::vector<std::string> lines = lines_of(snapshotter.to_jsonl());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"p50\": null"), std::string::npos) << lines[1];
  // The line still parses, and the nulls type as JSON null, not 0.
  const obs::json::Value parsed = obs::json::parse(lines[1]);
  const obs::json::Value* hist =
      parsed.find("deterministic")->find("histograms")->find("empty");
  ASSERT_NE(hist, nullptr);
  EXPECT_TRUE(hist->find("p99")->is_null());
}

TEST(Telemetry, JsonlFollowsSchemaAndSplitsDeterminism) {
  obs::Registry::instance().reset_all();
  obs::MetricsSnapshotter snapshotter;
  snapshotter.set_context("seed", "42");
  snapshotter.sample(5.0, {{"availability", 1.0}});
  snapshotter.sample(10.0, {{"availability", 0.5}});

  const std::vector<std::string> lines = lines_of(snapshotter.to_jsonl());
  ASSERT_EQ(lines.size(), 3u);

  const obs::json::Value header = obs::json::parse(lines[0]);
  EXPECT_EQ(header.get_string("schema", ""), "qplace.timeseries.v1");
  EXPECT_EQ(header.get_number("samples", -1.0), 2.0);
  EXPECT_EQ(header.get_number("dropped", -1.0), 0.0);
  EXPECT_EQ(header.find("context")->get_string("seed", ""), "42");

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const obs::json::Value record = obs::json::parse(lines[i]);
    const obs::json::Value* det = record.find("deterministic");
    const obs::json::Value* nondet = record.find("nondeterministic");
    ASSERT_NE(det, nullptr) << lines[i];
    ASSERT_NE(nondet, nullptr) << lines[i];
    // Wall time lives only on the nondeterministic side.
    EXPECT_EQ(det->find("wall_ms"), nullptr);
    EXPECT_NE(nondet->find("wall_ms"), nullptr);
    EXPECT_NE(det->find("t"), nullptr);
    EXPECT_NE(det->find("counters"), nullptr);
  }
  const obs::json::Value first = obs::json::parse(lines[1]);
  EXPECT_EQ(first.find("deterministic")->get_number("t", -1.0), 5.0);
  EXPECT_EQ(first.find("deterministic")
                ->find("values")
                ->get_number("availability", -1.0),
            1.0);
}

TEST(Telemetry, PrometheusSummariesRenderLatestHistograms) {
  obs::MetricsSnapshotter snapshotter;
  EXPECT_EQ(snapshotter.prometheus_summaries(), "");  // no snapshot yet

  obs::LogHistogram delays;
  for (int i = 1; i <= 50; ++i) delays.record(static_cast<double>(i));
  obs::LogHistogram empty;
  snapshotter.watch_histogram("sim.access_delay", &delays);
  snapshotter.watch_histogram("sim.queue_wait", &empty);
  snapshotter.sample(1.0);

  const std::string text = snapshotter.prometheus_summaries();
  EXPECT_NE(text.find("# TYPE qplace_sim_access_delay summary"),
            std::string::npos);
  EXPECT_NE(text.find("qplace_sim_access_delay{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("qplace_sim_access_delay_count 50"), std::string::npos);
  // The empty histogram has no quantiles to expose, but count/sum exist.
  EXPECT_EQ(text.find("qplace_sim_queue_wait{quantile"), std::string::npos);
  EXPECT_NE(text.find("qplace_sim_queue_wait_count 0"), std::string::npos);
}

TEST(Telemetry, RenderPrometheusCoversEveryInstrumentKind) {
  obs::Registry& registry = obs::Registry::instance();
  registry.counter("prom_test.events").add(41);
  registry.gauge("prom_test.depth").set(2.5);
  registry.timer("prom_test.phase").add(1500000000);  // 1.5 s in nanos
  registry.append_series("prom_test.series", 0.25);
  registry.append_series("prom_test.series", 0.75);

  const std::string text = obs::render_prometheus(registry);
  EXPECT_NE(text.find("# TYPE qplace_prom_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("qplace_prom_test_events_total 41"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qplace_prom_test_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("qplace_prom_test_depth 2.5"), std::string::npos);
  // Timers split into accumulated seconds and a call count.
  EXPECT_NE(text.find("qplace_prom_test_phase_seconds_total 1.5"),
            std::string::npos);
  EXPECT_NE(text.find("qplace_prom_test_phase_calls_total 1"),
            std::string::npos);
  // A series exposes its latest value as a gauge.
  EXPECT_NE(text.find("# TYPE qplace_prom_test_series gauge"),
            std::string::npos);
  EXPECT_NE(text.find("qplace_prom_test_series 0.75"), std::string::npos);
  EXPECT_EQ(text.find("qplace_prom_test_series 0.25"), std::string::npos);
  // The whole exposition is TYPE comments and samples -- nothing else.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(line.rfind("# TYPE qplace_", 0) == 0 ||
                line.rfind("qplace_", 0) == 0)
        << line;
  }
}

TEST(Telemetry, ProgressMeterDrawsAndFinishesIdempotently) {
  std::ostringstream out;
  obs::ProgressMeter meter(out, 2.0);
  obs::ProgressStats stats;
  stats.sim_time = 500.0;
  stats.duration = 1000.0;
  stats.resolved = 105;
  stats.completed = 100;
  stats.failed = 5;
  stats.availability = 100.0 / 105.0;
  stats.p99 = 3.0;
  meter.update(stats);
  meter.finish();
  meter.finish();  // idempotent: no second newline

  const std::string text = out.str();
  EXPECT_NE(text.find("sim  50%"), std::string::npos) << text;
  EXPECT_NE(text.find("t=500/1000"), std::string::npos) << text;
  EXPECT_NE(text.find("100 ok + 5 failed"), std::string::npos) << text;
  EXPECT_NE(text.find("avail 0.9524"), std::string::npos) << text;
  EXPECT_NE(text.find("1.50x bound"), std::string::npos) << text;
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

TEST(Telemetry, ProgressMeterNonLiveSuppressesRedrawsUntilFinish) {
  std::ostringstream out;
  obs::ProgressMeter meter(out, 2.0, /*live=*/false);
  EXPECT_FALSE(meter.live());
  obs::ProgressStats stats;
  stats.sim_time = 250.0;
  stats.duration = 1000.0;
  stats.resolved = 10;
  stats.completed = 10;
  meter.update(stats);
  EXPECT_TRUE(out.str().empty()) << out.str();  // updates only record stats
  stats.sim_time = 900.0;
  stats.completed = 42;
  meter.update(stats);
  EXPECT_TRUE(out.str().empty()) << out.str();
  meter.finish();

  // One plain summary line of the *latest* stats: no carriage returns to
  // re-draw in place, no erase padding -- safe in a redirected log.
  const std::string text = out.str();
  EXPECT_EQ(text.find('\r'), std::string::npos) << text;
  EXPECT_NE(text.find("sim  90%"), std::string::npos) << text;
  EXPECT_NE(text.find("42 ok"), std::string::npos) << text;
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Telemetry, ProgressMeterExplicitLiveKeepsCarriageReturns) {
  std::ostringstream out;
  obs::ProgressMeter meter(out, std::nan(""), /*live=*/true);
  EXPECT_TRUE(meter.live());
  obs::ProgressStats stats;
  stats.sim_time = 1.0;
  stats.duration = 10.0;
  meter.update(stats);
  EXPECT_NE(out.str().find('\r'), std::string::npos);
}

TEST(Telemetry, ProgressMeterAutoDetectTreatsPlainStreamsAsLive) {
  // An ostringstream has no file descriptor to consult; the two-argument
  // constructor must keep the historical live behavior for it.
  std::ostringstream out;
  obs::ProgressMeter meter(out, 2.0);
  EXPECT_TRUE(meter.live());
}

TEST(Telemetry, RenderBuildInfoEmitsConstantGaugeWithEscapedLabels) {
  const std::string text =
      obs::render_build_info("abc1234", "1.2.3", /*obs_compiled_in=*/true);
  EXPECT_NE(text.find("# TYPE qplace_build_info gauge"), std::string::npos)
      << text;
  EXPECT_NE(
      text.find("qplace_build_info{git_sha=\"abc1234\",obs=\"true\","
                "version=\"1.2.3\"} 1\n"),
      std::string::npos)
      << text;

  const std::string hostile =
      obs::render_build_info("a\"b\\c\nd", "v", /*obs_compiled_in=*/false);
  EXPECT_NE(hostile.find("git_sha=\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << hostile;
  EXPECT_NE(hostile.find("obs=\"false\""), std::string::npos) << hostile;
}

TEST(Telemetry, ProgressMeterOmitsP99AndBoundWhenUnavailable) {
  std::ostringstream out;
  obs::ProgressMeter meter(out, std::nan(""));  // no certified bound
  obs::ProgressStats stats;
  stats.sim_time = 10.0;
  stats.duration = 100.0;
  stats.p99 = std::nan("");  // empty histogram so far
  meter.update(stats);
  meter.finish();
  const std::string text = out.str();
  EXPECT_EQ(text.find("p99"), std::string::npos) << text;
  EXPECT_EQ(text.find("bound"), std::string::npos) << text;
}

// ------------------------------------------------------- simulator coupling

core::QppInstance make_instance() {
  std::mt19937_64 rng(17);
  const graph::Metric metric = graph::Metric::from_graph(
      graph::erdos_renyi(12, 0.5, rng, 1.0, 5.0));
  const quorum::QuorumSystem system = quorum::grid(3);
  return core::QppInstance(
      metric, std::vector<double>(12, 1e9), system,
      quorum::AccessStrategy::uniform(system));
}

/// One telemetry-enabled simulation under a pool of \p threads.
std::string run_with_telemetry(const core::QppInstance& instance,
                               const core::Placement& placement,
                               int threads) {
  exec::set_num_threads(threads);
  obs::Registry::instance().reset_all();
  obs::MetricsSnapshotter snapshotter;
  sim::SimulationConfig config;
  config.seed = 9;
  config.duration = 200.0;
  config.warmup = 10.0;
  config.service_rate = 40.0;
  config.telemetry = &snapshotter;
  config.telemetry_interval = 20.0;
  sim::simulate(instance, placement, config);
  exec::set_num_threads(0);
  return snapshotter.to_jsonl();
}

/// Strips each snapshot line down to its deterministic object.
std::vector<std::string> deterministic_parts(const std::string& jsonl) {
  std::vector<std::string> out;
  const std::vector<std::string> lines = lines_of(jsonl);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string needle = "\"nondeterministic\"";
    const std::size_t cut = lines[i].find(needle);
    EXPECT_NE(cut, std::string::npos) << lines[i];
    out.push_back(lines[i].substr(0, cut));
  }
  return out;
}

TEST(Telemetry, SimulatorSeriesIsIdenticalAcrossThreadCounts) {
  const core::QppInstance instance = make_instance();
  const auto solved = core::solve_qpp(instance, core::QppSolveOptions{});
  ASSERT_TRUE(solved.has_value());

  const std::string one =
      run_with_telemetry(instance, solved->placement, 1);
  const std::string eight =
      run_with_telemetry(instance, solved->placement, 8);

  const std::vector<std::string> det_one = deterministic_parts(one);
  const std::vector<std::string> det_eight = deterministic_parts(eight);
  ASSERT_FALSE(det_one.empty());
  // Byte-identical deterministic prefixes, line by line: the sampling grid,
  // every counter, every histogram digest (docs/PARALLEL.md contract).
  ASSERT_EQ(det_one.size(), det_eight.size());
  for (std::size_t i = 0; i < det_one.size(); ++i) {
    EXPECT_EQ(det_one[i], det_eight[i]) << "snapshot " << i;
  }
}

TEST(Telemetry, SimulatorSamplesOnTheGridWithFinalSampleAtDuration) {
  const core::QppInstance instance = make_instance();
  const auto solved = core::solve_qpp(instance, core::QppSolveOptions{});
  ASSERT_TRUE(solved.has_value());

  obs::Registry::instance().reset_all();
  obs::MetricsSnapshotter snapshotter;
  sim::SimulationConfig config;
  config.seed = 9;
  config.duration = 100.0;
  config.telemetry = &snapshotter;
  config.telemetry_interval = 25.0;
  const sim::SimulationResult result =
      sim::simulate(instance, solved->placement, config);

  const std::vector<obs::MetricsSnapshot> snaps = snapshotter.snapshots();
  ASSERT_EQ(snaps.size(), 4u);  // t = 25, 50, 75 in-loop + final t = 100
  EXPECT_EQ(snaps[0].sim_time, 25.0);
  EXPECT_EQ(snaps[1].sim_time, 50.0);
  EXPECT_EQ(snaps[2].sim_time, 75.0);
  EXPECT_EQ(snaps[3].sim_time, 100.0);

  // Counters only ever grow along the series, and the counter *set* is
  // identical in every snapshot (zero-add registration up front -- the set
  // must not depend on which events happened to fire).
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    ASSERT_EQ(snaps[i].counters.size(), snaps[0].counters.size());
    for (const auto& [name, value] : snaps[i].counters) {
      ASSERT_TRUE(snaps[i - 1].counters.count(name)) << name;
      EXPECT_GE(value, snaps[i - 1].counters.at(name)) << name;
    }
  }
  // The final snapshot agrees with the run's result where both report the
  // same quantity.
  if (obs::compiled_in()) {
    EXPECT_EQ(snaps.back().counters.at("sim.completed_accesses"),
              static_cast<std::uint64_t>(result.completed_accesses));
  }
  // The simulator unregisters its watched result histograms before
  // returning; a sample taken now must not touch the (still alive here,
  // but in general destroyed) result.
  snapshotter.sample(101.0);
  EXPECT_EQ(snapshotter.latest()->histograms.count("sim.access_delay"), 0u);
}

}  // namespace
}  // namespace qp
