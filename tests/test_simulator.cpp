#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>

#include "core/evaluators.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::sim {
namespace {

// Seeding discipline (prerequisite for the parallel determinism suite,
// tests/test_parallel_determinism.cpp): every case owns its seeds
// explicitly -- the topology seed through make_er_instance, the simulation
// seed through make_config -- and no engine is shared between cases. A
// failure therefore reproduces in isolation under
// --gtest_filter=Simulator.<Case> regardless of execution order.

core::QppInstance make_instance(const graph::Graph& g,
                                const quorum::QuorumSystem& system) {
  return core::QppInstance(
      graph::Metric::from_graph(g),
      std::vector<double>(static_cast<std::size_t>(g.num_nodes()), 1e9),
      system, quorum::AccessStrategy::uniform(system));
}

/// Erdos-Renyi instance with a per-case topology seed.
core::QppInstance make_er_instance(int nodes, double p, double max_length,
                                   std::uint64_t topology_seed,
                                   const quorum::QuorumSystem& system) {
  std::mt19937_64 rng(topology_seed);
  return make_instance(graph::erdos_renyi(nodes, p, rng, 1.0, max_length),
                       system);
}

/// Shared config factory: pins the per-case simulation seed, checks the
/// warmup < duration precondition at the test site (not just deep in the
/// engine), and pins the fault knobs to the failure-free baseline so a
/// future default change cannot silently turn these convergence tests into
/// fault runs. Fault behaviour itself is covered by tests/test_faults.cpp.
SimulationConfig make_config(std::uint64_t seed, double duration,
                             double warmup = 0.0) {
  EXPECT_LT(warmup, duration) << "test misconfiguration: warmup >= duration";
  SimulationConfig config;
  config.seed = seed;
  config.duration = duration;
  config.warmup = warmup;
  config.faults = nullptr;
  config.probe_timeout = 0.0;
  config.availability_bucket = 0.0;
  return config;
}

TEST(Simulator, ValidatesArguments) {
  // Deliberately invalid configs, so this case builds them by hand instead
  // of through make_config (whose job is to rule these out).
  const core::QppInstance instance =
      make_instance(graph::path_graph(4), quorum::grid(2));
  const core::Placement f = {0, 1, 2, 3};
  SimulationConfig config;
  config.duration = 0.0;
  EXPECT_THROW(simulate(instance, f, config), std::invalid_argument);
  config.duration = 10.0;
  config.warmup = 20.0;
  EXPECT_THROW(simulate(instance, f, config), std::invalid_argument);
  config.warmup = 0.0;
  EXPECT_THROW(simulate(instance, {0, 1}, config), std::invalid_argument);
}

TEST(Simulator, ParallelDelayMatchesAnalyticExpectation) {
  // No queueing: measured mean delay of client v must converge to the
  // paper's Delta_f(v).
  const core::QppInstance instance =
      make_er_instance(8, 0.5, 5.0, /*topology_seed=*/3, quorum::grid(2));
  const core::Placement f = {1, 3, 5, 7};

  SimulationConfig config = make_config(/*seed=*/11, /*duration=*/4000.0);
  config.arrival_rate_per_client = 1.0;
  config.mode = AccessMode::kParallel;
  const SimulationResult result = simulate(instance, f, config);

  ASSERT_GT(result.completed_accesses, 10000);
  for (int v = 0; v < 8; ++v) {
    const double analytic = core::expected_max_delay(
        instance.metric(), instance.system(), instance.strategy(), f, v);
    EXPECT_NEAR(result.per_client_mean_delay[static_cast<std::size_t>(v)],
                analytic, 0.05 * analytic + 0.05)
        << "client " << v;
  }
  EXPECT_NEAR(result.overall_mean_delay, core::average_max_delay(instance, f),
              0.05 * core::average_max_delay(instance, f) + 0.05);
}

TEST(Simulator, SequentialDelayMatchesTotalDelay) {
  const core::QppInstance instance =
      make_er_instance(8, 0.5, 5.0, /*topology_seed=*/5, quorum::majority(3));
  const core::Placement f = {0, 4, 6};

  SimulationConfig config = make_config(/*seed=*/17, /*duration=*/4000.0);
  config.mode = AccessMode::kSequential;
  const SimulationResult result = simulate(instance, f, config);

  const double analytic = core::average_total_delay(instance, f);
  EXPECT_NEAR(result.overall_mean_delay, analytic, 0.05 * analytic + 0.05);
}

TEST(Simulator, NodeAccessShareMatchesLoad) {
  // The fraction of probes hitting node v converges to load_f(v).
  const core::QppInstance instance =
      make_er_instance(6, 0.6, 4.0, /*topology_seed=*/7, quorum::grid(2));
  const core::Placement f = {2, 2, 4, 5};  // two elements stacked on node 2

  const SimulationConfig config =
      make_config(/*seed=*/23, /*duration=*/3000.0);
  const SimulationResult result = simulate(instance, f, config);

  const std::vector<double> loads = core::node_loads(
      instance.element_loads(), f, instance.num_nodes());
  for (int v = 0; v < 6; ++v) {
    EXPECT_NEAR(result.per_node_access_share[static_cast<std::size_t>(v)],
                loads[static_cast<std::size_t>(v)], 0.03)
        << "node " << v;
  }
}

TEST(Simulator, WarmupExcludesEarlyAccesses) {
  const core::QppInstance instance =
      make_instance(graph::path_graph(4), quorum::grid(2));
  const core::Placement f = {0, 1, 2, 3};
  const SimulationConfig with_warmup =
      make_config(/*seed=*/3, /*duration=*/500.0, /*warmup=*/400.0);
  const SimulationConfig without = make_config(/*seed=*/3, /*duration=*/500.0);
  const auto a = simulate(instance, f, with_warmup);
  const auto b = simulate(instance, f, without);
  EXPECT_LT(a.completed_accesses, b.completed_accesses);
  EXPECT_GT(a.completed_accesses, 0);
}

TEST(Simulator, HistogramCoversSamePopulationAsMeans) {
  // The latency histogram applies the identical warmup exclusion as the
  // means: same count, and (the samples being summed in the same order)
  // bit-identical mean.
  const core::QppInstance instance =
      make_instance(graph::path_graph(4), quorum::grid(2));
  const core::Placement f = {0, 1, 2, 3};
  const SimulationConfig config =
      make_config(/*seed=*/11, /*duration=*/500.0, /*warmup=*/100.0);
  const SimulationResult result = simulate(instance, f, config);
  EXPECT_EQ(result.access_delay.count(),
            static_cast<std::uint64_t>(result.completed_accesses));
  EXPECT_EQ(result.access_delay.mean(), result.overall_mean_delay);
  EXPECT_GT(result.access_delay.quantile(0.99),
            result.access_delay.quantile(0.50) * (1.0 - 1e-12));
  EXPECT_GE(result.access_delay.max(), result.overall_mean_delay);
  // No queueing configured: the queue-wait histogram stays empty and all
  // queue depths are zero.
  EXPECT_EQ(result.queue_wait.count(), 0u);
  for (double depth : result.per_node_mean_queue_depth) {
    EXPECT_EQ(depth, 0.0);
  }
}

TEST(Simulator, QueueDepthStatsTrackContention) {
  // One node hosts every element with a service rate well below the offered
  // probe rate: its queue must build up, all other nodes stay idle.
  const core::QppInstance instance =
      make_instance(graph::path_graph(4), quorum::grid(2));
  const core::Placement f = {0, 0, 0, 0};
  SimulationConfig config = make_config(/*seed=*/13, /*duration=*/300.0);
  config.arrival_rate_per_client = 2.0;
  config.service_rate = 1.0;
  const SimulationResult result = simulate(instance, f, config);
  EXPECT_GT(result.per_node_max_queue_depth[0], 1);
  EXPECT_GT(result.per_node_mean_queue_depth[0], 0.0);
  for (int v = 1; v < 4; ++v) {
    EXPECT_EQ(result.per_node_max_queue_depth[static_cast<std::size_t>(v)], 0);
    EXPECT_EQ(result.per_node_mean_queue_depth[static_cast<std::size_t>(v)],
              0.0);
  }
  EXPECT_GT(result.queue_wait.count(), 0u);
  // Under heavy overload most probes wait: p90 wait strictly positive.
  EXPECT_GT(result.queue_wait.quantile(0.9), 0.0);
}

TEST(Simulator, QueueingInflatesDelayUnderOverload) {
  // One node hosts everything; a service rate below the offered probe rate
  // must blow delays up well beyond the analytic (queue-free) value.
  const core::QppInstance instance =
      make_instance(graph::star_graph(6), quorum::grid(2));
  const core::Placement all_on_hub = {0, 0, 0, 0};

  const SimulationConfig free_config =
      make_config(/*seed=*/9, /*duration=*/800.0);
  const double no_queue =
      simulate(instance, all_on_hub, free_config).overall_mean_delay;

  SimulationConfig loaded = free_config;
  // Offered probe load on the hub: 6 clients * rate 1 * 3 probes = 18/s.
  loaded.service_rate = 10.0;  // below offered load -> saturation
  const double saturated =
      simulate(instance, all_on_hub, loaded).overall_mean_delay;
  EXPECT_GT(saturated, no_queue + 5.0);

  SimulationConfig provisioned = free_config;
  provisioned.service_rate = 200.0;  // far above offered load
  const double provisioned_delay =
      simulate(instance, all_on_hub, provisioned).overall_mean_delay;
  EXPECT_NEAR(provisioned_delay, no_queue + 1.0 / 200.0, 0.05);
}

TEST(Simulator, UtilizationTracksServiceShare) {
  const core::QppInstance instance =
      make_instance(graph::star_graph(5), quorum::majority(3));
  const core::Placement f = {1, 2, 3};
  SimulationConfig config = make_config(/*seed=*/31, /*duration=*/2000.0);
  config.service_rate = 50.0;
  const SimulationResult result = simulate(instance, f, config);
  // majority(3) has t = 2, so load(u) = 2/3. Offered probe rate per replica
  // node = total access rate (5/s) * 2/3 = 10/3; utilization = (10/3)/50.
  for (int v = 1; v <= 3; ++v) {
    EXPECT_NEAR(result.per_node_utilization[static_cast<std::size_t>(v)],
                10.0 / 3.0 / 50.0, 0.01)
        << "node " << v;
  }
  EXPECT_DOUBLE_EQ(result.per_node_utilization[0], 0.0);
}

TEST(Simulator, DeterministicUnderFixedSeed) {
  const core::QppInstance instance =
      make_instance(graph::path_graph(5), quorum::majority(3));
  const core::Placement f = {0, 2, 4};
  const SimulationConfig config =
      make_config(/*seed=*/77, /*duration=*/200.0);
  const auto a = simulate(instance, f, config);
  const auto b = simulate(instance, f, config);
  EXPECT_EQ(a.completed_accesses, b.completed_accesses);
  EXPECT_DOUBLE_EQ(a.overall_mean_delay, b.overall_mean_delay);
}

TEST(Simulator, NearestQuorumPolicyMatchesClosestQuorumDelay) {
  const core::QppInstance instance =
      make_er_instance(8, 0.5, 5.0, /*topology_seed=*/41, quorum::grid(2));
  const core::Placement f = {0, 2, 5, 7};
  SimulationConfig config = make_config(/*seed=*/43, /*duration=*/2000.0);
  config.selection = SelectionPolicy::kNearestQuorum;
  const SimulationResult result = simulate(instance, f, config);
  double analytic = 0.0;
  for (int v = 0; v < 8; ++v) {
    analytic += core::closest_quorum_delay(instance.metric(),
                                           instance.system(), f, v) /
                8.0;
  }
  EXPECT_NEAR(result.overall_mean_delay, analytic, 0.05 * analytic + 0.05);
}

TEST(Simulator, NearestQuorumNeverSlowerThanStrategy) {
  const core::QppInstance instance =
      make_er_instance(10, 0.4, 6.0, /*topology_seed=*/47, quorum::majority(5));
  const core::Placement f = {0, 2, 4, 6, 8};
  const SimulationConfig strategy_config =
      make_config(/*seed=*/3, /*duration=*/1500.0);
  SimulationConfig nearest_config = strategy_config;
  nearest_config.selection = SelectionPolicy::kNearestQuorum;
  const double by_strategy =
      simulate(instance, f, strategy_config).overall_mean_delay;
  const double by_nearest =
      simulate(instance, f, nearest_config).overall_mean_delay;
  // Sampling noise aside, min over quorums <= expectation over quorums.
  EXPECT_LE(by_nearest, by_strategy + 0.05 * by_strategy + 0.05);
}

TEST(Simulator, JitterValidated) {
  const core::QppInstance instance =
      make_instance(graph::path_graph(4), quorum::grid(2));
  SimulationConfig config = make_config(/*seed=*/1, /*duration=*/100.0);
  config.latency_jitter = 1.0;
  EXPECT_THROW(simulate(instance, {0, 1, 2, 3}, config),
               std::invalid_argument);
  config.latency_jitter = -0.1;
  EXPECT_THROW(simulate(instance, {0, 1, 2, 3}, config),
               std::invalid_argument);
}

TEST(Simulator, JitterBiasesParallelDelayUpward) {
  // Mean-preserving per-probe jitter raises E[max], leaves E[sum] intact.
  const core::QppInstance instance =
      make_er_instance(8, 0.5, 5.0, /*topology_seed=*/53, quorum::grid(2));
  const core::Placement f = {0, 2, 4, 6};

  const SimulationConfig clean = make_config(/*seed=*/7, /*duration=*/3000.0);
  SimulationConfig noisy = clean;
  noisy.latency_jitter = 0.5;

  const double clean_parallel = simulate(instance, f, clean).overall_mean_delay;
  const double noisy_parallel = simulate(instance, f, noisy).overall_mean_delay;
  EXPECT_GT(noisy_parallel, clean_parallel);

  SimulationConfig clean_seq = clean;
  clean_seq.mode = AccessMode::kSequential;
  SimulationConfig noisy_seq = noisy;
  noisy_seq.mode = AccessMode::kSequential;
  const double clean_total =
      simulate(instance, f, clean_seq).overall_mean_delay;
  const double noisy_total =
      simulate(instance, f, noisy_seq).overall_mean_delay;
  EXPECT_NEAR(noisy_total, clean_total, 0.05 * clean_total + 0.02);
}

TEST(Simulator, ZeroWeightClientsNeverIssue) {
  const graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(4));
  const quorum::QuorumSystem system = quorum::majority(3);
  std::vector<double> weights = {1.0, 1.0, 0.0, 0.0};
  core::QppInstance instance(metric, std::vector<double>(4, 1e9), system,
                             quorum::AccessStrategy::uniform(system), weights);
  const SimulationConfig config = make_config(/*seed=*/5, /*duration=*/300.0);
  const auto result = simulate(instance, {0, 1, 2}, config);
  EXPECT_EQ(result.per_client_count[2], 0);
  EXPECT_EQ(result.per_client_count[3], 0);
  EXPECT_GT(result.per_client_count[0], 0);
}

}  // namespace
}  // namespace qp::sim
