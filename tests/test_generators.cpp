#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/shortest_paths.hpp"

namespace qp::graph {
namespace {

TEST(PathGraph, ShapeAndDistances) {
  const Graph g = path_graph(5, 2.0);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.is_connected());
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).distance[4], 8.0);
}

TEST(PathGraph, SingleNode) {
  const Graph g = path_graph(1);
  EXPECT_EQ(g.num_nodes(), 1);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(CycleGraph, Shape) {
  const Graph g = cycle_graph(6);
  EXPECT_EQ(g.num_edges(), 6);
  // Opposite node is 3 hops either way.
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).distance[3], 3.0);
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
}

TEST(StarGraph, AllLeavesAtUnitDistance) {
  const Graph g = star_graph(7, 1.0);
  const auto d = dijkstra(g, 0).distance;
  for (int v = 1; v < 7; ++v) EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(v)], 1.0);
  // Leaf to leaf goes through the center.
  EXPECT_DOUBLE_EQ(dijkstra(g, 1).distance[2], 2.0);
}

TEST(CompleteGraph, EdgeCount) {
  const Graph g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_TRUE(g.is_connected());
}

TEST(GridMesh, ManhattanDistances) {
  const Graph g = grid_mesh(3);
  EXPECT_EQ(g.num_nodes(), 9);
  EXPECT_EQ(g.num_edges(), 12);
  // Corner to corner: 4 unit steps.
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).distance[8], 4.0);
}

TEST(BroomGraph, MatchesPaperFigure1Distances) {
  // Figure 1 / Claim A.1: distances from v0 sorted are
  // 1 (n - k of them), then 2, 3, ..., k.
  const int k = 4;
  const int n = k * k;
  const Graph g = broom_graph(k);
  EXPECT_EQ(g.num_nodes(), n);
  ASSERT_TRUE(g.is_connected());
  auto d = dijkstra(g, 0).distance;
  std::sort(d.begin(), d.end());
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  for (int i = 1; i <= n - k; ++i) {
    EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i)], 1.0) << "i=" << i;
  }
  for (int j = 2; j <= k; ++j) {
    EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(n - k + j - 1)],
                     static_cast<double>(j));
  }
}

TEST(BroomGraph, RejectsTinyK) {
  EXPECT_THROW(broom_graph(1), std::invalid_argument);
}

TEST(RandomTree, IsSpanningTree) {
  std::mt19937_64 rng(7);
  const Graph g = random_tree(20, rng);
  EXPECT_EQ(g.num_edges(), 19);
  EXPECT_TRUE(g.is_connected());
}

TEST(RandomTree, EdgeLengthsWithinRange) {
  std::mt19937_64 rng(11);
  const Graph g = random_tree(30, rng, 2.0, 5.0);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.length, 2.0);
    EXPECT_LE(e.length, 5.0);
  }
}

TEST(ErdosRenyi, ConnectedSample) {
  std::mt19937_64 rng(13);
  const Graph g = erdos_renyi(24, 0.3, rng);
  EXPECT_EQ(g.num_nodes(), 24);
  EXPECT_TRUE(g.is_connected());
}

TEST(ErdosRenyi, Deterministic) {
  std::mt19937_64 rng_a(99), rng_b(99);
  const Graph a = erdos_renyi(15, 0.4, rng_a);
  const Graph b = erdos_renyi(15, 0.4, rng_b);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(ErdosRenyi, RejectsBadProbability) {
  std::mt19937_64 rng(1);
  EXPECT_THROW(erdos_renyi(5, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(erdos_renyi(5, 1.5, rng), std::invalid_argument);
}

TEST(RandomGeometric, ConnectedWithEuclideanLengths) {
  std::mt19937_64 rng(5);
  const GeometricGraph gg = random_geometric(30, 0.4, rng);
  EXPECT_TRUE(gg.graph.is_connected());
  ASSERT_EQ(gg.x.size(), 30u);
  for (const Edge& e : gg.graph.edges()) {
    const double dx = gg.x[static_cast<std::size_t>(e.a)] -
                      gg.x[static_cast<std::size_t>(e.b)];
    const double dy = gg.y[static_cast<std::size_t>(e.a)] -
                      gg.y[static_cast<std::size_t>(e.b)];
    EXPECT_NEAR(e.length, std::sqrt(dx * dx + dy * dy), 1e-12);
    EXPECT_LE(e.length, 0.4 + 1e-12);
  }
}

TEST(BarabasiAlbert, ShapeAndConnectivity) {
  std::mt19937_64 rng(3);
  const Graph g = barabasi_albert(40, 2, rng);
  EXPECT_EQ(g.num_nodes(), 40);
  EXPECT_TRUE(g.is_connected());
  // Seed clique of 3 nodes has 3 edges; each later node adds 2.
  EXPECT_EQ(g.num_edges(), 3 + (40 - 3) * 2);
}

TEST(RingOfCliques, Shape) {
  const Graph g = ring_of_cliques(4, 5, 1.0, 10.0);
  EXPECT_EQ(g.num_nodes(), 20);
  EXPECT_TRUE(g.is_connected());
  // Intra-clique distance 1, crossing a WAN link costs 10.
  EXPECT_DOUBLE_EQ(dijkstra(g, 1).distance[2], 1.0);
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).distance[5], 10.0);
}

TEST(RingOfCliques, TwoCliquesSingleBridge) {
  const Graph g = ring_of_cliques(2, 3, 1.0, 4.0);
  EXPECT_TRUE(g.is_connected());
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).distance[3], 4.0);
}

TEST(Hypercube, ShapeAndHammingDistances) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16);
  EXPECT_EQ(g.num_edges(), 32);  // n * d / 2
  const auto d = dijkstra(g, 0).distance;
  for (int v = 0; v < 16; ++v) {
    EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(v)],
                     __builtin_popcount(static_cast<unsigned>(v)));
  }
}

TEST(Hypercube, DimensionZeroIsSingleNode) {
  EXPECT_EQ(hypercube(0).num_nodes(), 1);
}

TEST(Torus, WrapAroundShortens) {
  const Graph g = torus(5);
  EXPECT_EQ(g.num_nodes(), 25);
  EXPECT_EQ(g.num_edges(), 50);
  // (0,0) to (0,4): one wrap step, not four.
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).distance[4], 1.0);
  // (0,0) to (2,2): Manhattan 4 (no shortcut).
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).distance[12], 4.0);
  EXPECT_THROW(torus(2), std::invalid_argument);
}

TEST(FatTree, TierDistances) {
  const Graph g = fat_tree(2, 3, 4, 2.0, 1.0);
  EXPECT_EQ(g.num_nodes(), 12 + 3 + 2);
  EXPECT_TRUE(g.is_connected());
  const auto d = dijkstra(g, 0).distance;  // host 0 under leaf 0
  EXPECT_DOUBLE_EQ(d[1], 2.0);    // same-leaf host: up and down
  EXPECT_DOUBLE_EQ(d[4], 6.0);    // host under leaf 1: 1 + 2 + 2 + 1
  EXPECT_DOUBLE_EQ(d[12], 1.0);   // own leaf switch
  EXPECT_DOUBLE_EQ(d[15], 3.0);   // spine 0
}

TEST(Waxman, ConnectedEuclidean) {
  std::mt19937_64 rng(19);
  const GeometricGraph gg = waxman(40, 0.9, 0.5, rng);
  EXPECT_TRUE(gg.graph.is_connected());
  for (const Edge& e : gg.graph.edges()) {
    const double dx = gg.x[static_cast<std::size_t>(e.a)] -
                      gg.x[static_cast<std::size_t>(e.b)];
    const double dy = gg.y[static_cast<std::size_t>(e.a)] -
                      gg.y[static_cast<std::size_t>(e.b)];
    EXPECT_NEAR(e.length, std::sqrt(dx * dx + dy * dy), 1e-12);
  }
}

TEST(Waxman, LocalityBiasRelativeToUniform) {
  // Waxman prefers short edges: its mean edge length should undercut the
  // all-pairs mean distance of its own vertex set.
  std::mt19937_64 rng(23);
  const GeometricGraph gg = waxman(60, 0.8, 0.25, rng);
  double edge_mean = 0.0;
  const auto edges = gg.graph.edges();
  for (const Edge& e : edges) edge_mean += e.length;
  edge_mean /= static_cast<double>(edges.size());
  double pair_mean = 0.0;
  int pairs = 0;
  for (int i = 0; i < 60; ++i) {
    for (int j = i + 1; j < 60; ++j) {
      const double dx = gg.x[static_cast<std::size_t>(i)] -
                        gg.x[static_cast<std::size_t>(j)];
      const double dy = gg.y[static_cast<std::size_t>(i)] -
                        gg.y[static_cast<std::size_t>(j)];
      pair_mean += std::sqrt(dx * dx + dy * dy);
      ++pairs;
    }
  }
  pair_mean /= pairs;
  EXPECT_LT(edge_mean, pair_mean);
}

}  // namespace
}  // namespace qp::graph
