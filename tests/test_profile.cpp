/// Work-attribution profiler suite (obs/profile.hpp, analyze/profile_diff.hpp,
/// analyze/trend.hpp): span-path folding edge cases (duplicate siblings,
/// ring eviction, empty traces), counter self-attribution, ambient frames,
/// the metamorphic byte-identity of the deterministic subtree across thread
/// counts, and the profile-diff / bench-history trend analyses the CLI gates
/// on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analyze/profile_diff.hpp"
#include "analyze/trend.hpp"
#include "core/qpp_solver.hpp"
#include "exec/thread_pool.hpp"
#include "graph/generators.hpp"
#include "graph/metric.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "quorum/constructions.hpp"

namespace qp {
namespace {

obs::ProfileCollector& collector() {
  return obs::ProfileCollector::instance();
}

/// RAII profiling window: the collector is process-global, so every test
/// starts from a clean slate and leaves recording off for the next one.
struct ProfileSession {
  ProfileSession() {
    collector().clear();
    collector().set_enabled(true);
  }
  ~ProfileSession() {
    collector().set_enabled(false);
    collector().clear();
  }
};

std::vector<std::string> counter_names() {
  return obs::Registry::instance().counter_names();
}

/// Sum of one counter over the whole tree -- ring eviction may move
/// attribution to `<truncated>`, but it must never lose any of it.
std::uint64_t tree_counter_sum(const obs::ProfileNode& node,
                               const std::string& name) {
  std::uint64_t total = 0;
  const auto it = node.counters.find(name);
  if (it != node.counters.end()) total = it->second;
  for (const auto& [child_name, child] : node.children) {
    total += tree_counter_sum(child, name);
  }
  return total;
}

TEST(Profile, EmptyTraceYieldsEmptyButValidProfile) {
  ProfileSession session;
  const obs::Profile profile = collector().fold(counter_names());
  EXPECT_EQ(profile.dropped, 0u);
  EXPECT_TRUE(profile.root.counters.empty());
  EXPECT_TRUE(profile.root.children.empty());
  EXPECT_EQ(profile.root.calls, 0u);

  // The document still parses and carries the schema marker...
  const std::string json = profile.to_json("unit-test", {});
  const obs::json::Value doc = obs::json::parse(json);
  EXPECT_EQ(doc.get_string("schema", ""), "qplace.profile.v1");
  ASSERT_NE(doc.find("deterministic"), nullptr);
  ASSERT_NE(doc.find("nondeterministic"), nullptr);
  // ...and the folded-stack rendering is empty, not malformed.
  EXPECT_EQ(profile.to_folded(), "");
}

TEST(Profile, DuplicateSiblingSpansMergeIntoOneNode) {
  ProfileSession session;
  obs::ProfileCollector& c = collector();
  c.on_span_enter("test.profile.parent");
  c.on_span_enter("test.profile.leaf");
  c.on_span_exit("test.profile.leaf", 1000);
  c.on_span_enter("test.profile.leaf");
  c.on_span_exit("test.profile.leaf", 2000);
  c.on_span_exit("test.profile.parent", 5000);

  const obs::Profile profile = c.fold(counter_names());
  ASSERT_EQ(profile.root.children.size(), 1u);
  const obs::ProfileNode& parent =
      profile.root.children.at("test.profile.parent");
  EXPECT_EQ(parent.calls, 1u);
  EXPECT_EQ(parent.total_nanos, 5000);
  // Both sibling activations folded into one node, durations summed, and
  // the parent's self time excludes them.
  ASSERT_EQ(parent.children.size(), 1u);
  const obs::ProfileNode& leaf = parent.children.at("test.profile.leaf");
  EXPECT_EQ(leaf.calls, 2u);
  EXPECT_EQ(leaf.total_nanos, 3000);
  EXPECT_EQ(parent.self_nanos(), 2000);
  // Folded stacks use ';'-joined paths with self-time in microseconds.
  const std::string folded = profile.to_folded();
  EXPECT_NE(folded.find("test.profile.parent;test.profile.leaf 3\n"),
            std::string::npos)
      << folded;
}

TEST(Profile, CountersAttributeToInnermostOpenSpan) {
  ProfileSession session;
  obs::ProfileCollector& c = collector();
  obs::Registry& registry = obs::Registry::instance();

  registry.counter("test.profile.glue").add(7);  // no span open -> root
  c.on_span_enter("test.profile.outer");
  registry.counter("test.profile.work").add(3);
  c.on_span_enter("test.profile.inner");
  registry.counter("test.profile.work").add(11);
  c.on_span_exit("test.profile.inner", 100);
  registry.counter("test.profile.work").add(2);
  c.on_span_exit("test.profile.outer", 400);

  const obs::Profile profile = c.fold(counter_names());
  EXPECT_EQ(profile.root.counters.at("test.profile.glue"), 7u);
  const obs::ProfileNode& outer =
      profile.root.children.at("test.profile.outer");
  // Self attribution: the outer span keeps only the adds made while it was
  // innermost (3 + 2); the nested span's 11 never leaks upward.
  EXPECT_EQ(outer.counters.at("test.profile.work"), 5u);
  EXPECT_EQ(outer.children.at("test.profile.inner")
                .counters.at("test.profile.work"),
            11u);
}

TEST(Profile, AmbientScopeAnchorsAttributionWithoutCalls) {
  ProfileSession session;
  obs::ProfileCollector& c = collector();

  c.on_span_enter("test.profile.submit");
  const std::vector<const char*> path = c.current_path();
  ASSERT_EQ(path.size(), 1u);
  c.on_span_exit("test.profile.submit", 1000);

  // A worker-thread chunk re-installs the submission path as an ambient
  // frame: adds land on the absolute path, nested spans hang under it, and
  // call counts are untouched.
  {
    obs::ProfileAmbientScope scope(&path);
    obs::Registry::instance().counter("test.profile.chunk_work").add(9);
    c.on_span_enter("test.profile.nested");
    const std::vector<const char*> nested = c.current_path();
    ASSERT_EQ(nested.size(), 2u);
    EXPECT_STREQ(nested[0], "test.profile.submit");
    EXPECT_STREQ(nested[1], "test.profile.nested");
    c.on_span_exit("test.profile.nested", 50);
  }
  // A null path makes the scope a no-op (the profiling-off case).
  { obs::ProfileAmbientScope noop(nullptr); }

  const obs::Profile profile = c.fold(counter_names());
  const obs::ProfileNode& submit =
      profile.root.children.at("test.profile.submit");
  EXPECT_EQ(submit.calls, 1u);  // the ambient frame bumped no calls
  EXPECT_EQ(submit.counters.at("test.profile.chunk_work"), 9u);
  EXPECT_EQ(submit.children.at("test.profile.nested").calls, 1u);
}

TEST(Profile, RingEvictionReparentsUnderTruncatedNode) {
  ProfileSession session;
  obs::ProfileCollector& c = collector();
  obs::Registry& registry = obs::Registry::instance();
  obs::Counter& work = registry.counter("test.profile.evicted_work");

  // 2 * pairs + 2 events overflow the 2^16-event ring: the parent's enter
  // and the oldest child pairs are evicted.
  const std::size_t pairs = 40000;
  c.on_span_enter("test.profile.evicted_parent");
  for (std::size_t i = 0; i < pairs; ++i) {
    c.on_span_enter("test.profile.evicted_child");
    work.add(1);
    c.on_span_exit("test.profile.evicted_child", 10);
  }
  c.on_span_exit("test.profile.evicted_parent", 1000);

  const obs::Profile profile = c.fold(counter_names());
  EXPECT_EQ(profile.dropped,
            2 * pairs + 2 - obs::ProfileCollector::kRingCapacity);

  // The parent's enter is gone, so orphaned children re-parent under the
  // explicit `<truncated>` node -- never directly under the root, and the
  // evicted parent never materializes as a node of its own.
  ASSERT_EQ(profile.root.children.size(), 1u);
  const auto truncated_it =
      profile.root.children.find(obs::ProfileCollector::kTruncatedName);
  ASSERT_NE(truncated_it, profile.root.children.end());
  const obs::ProfileNode& truncated = truncated_it->second;
  EXPECT_GT(truncated.calls, 0u);  // salvaged evicted exits
  ASSERT_EQ(truncated.children.size(), 1u);
  EXPECT_EQ(truncated.children.begin()->first, "test.profile.evicted_child");

  // Eviction loses placement, not totals: every add is somewhere in the
  // tree (surviving child node, or salvaged into `<truncated>`).
  EXPECT_EQ(tree_counter_sum(profile.root, "test.profile.evicted_work"),
            static_cast<std::uint64_t>(pairs));
}

/// Extracts the deterministic subtree's exact bytes from a rendered
/// `qplace.profile.v1` document.
std::string deterministic_slice(const std::string& json) {
  const std::size_t begin = json.find("\"deterministic\"");
  const std::size_t end = json.find("\"nondeterministic\"");
  if (begin == std::string::npos || end == std::string::npos || end < begin) {
    ADD_FAILURE() << "malformed profile document: " << json;
    return json;
  }
  return json.substr(begin, end - begin);
}

TEST(Profile, DeterministicSubtreeByteIdenticalAcrossThreadCounts) {
  const quorum::QuorumSystem system = quorum::grid(2);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const graph::Metric metric = graph::Metric::from_graph(graph::grid_mesh(4));
  const core::QppInstance instance(metric, std::vector<double>(16, 1.0),
                                   system, strategy);

  const auto profiled_solve = [&instance](int threads) {
    obs::Registry::instance().reset_all();
    obs::ProfileCollector& c = collector();
    c.clear();
    c.set_enabled(true);
    exec::set_num_threads(threads);
    core::QppSolveOptions options;
    options.alpha = 2.0;
    core::solve_qpp(instance, options);
    exec::set_num_threads(0);
    c.set_enabled(false);
    const obs::Profile profile =
        c.fold(obs::Registry::instance().counter_names());
    c.clear();
    EXPECT_EQ(profile.dropped, 0u) << "ring overflow voids the contract";
    return profile.to_json("unit-test",
                           {{"algorithm", "qpp"}, {"seed", "7"}});
  };

  const std::string at_one = profiled_solve(1);
  const std::string at_eight = profiled_solve(8);
  // The docs/PARALLEL.md contract extended to attribution: per-span-path
  // counter sums are byte-identical regardless of how chunks were spread
  // across worker threads. Wall times and thread counts may differ.
  EXPECT_EQ(deterministic_slice(at_one), deterministic_slice(at_eight));
}

// ---------------------------------------------------------------- diffing

/// Renders a small but realistic profile document through the real emitter,
/// so the diff tests also round-trip to_json -> json::parse.
std::string profile_doc(const std::string& digest, std::uint64_t candidates,
                        std::uint64_t chunks, double sweep_ms,
                        bool extra_node = false, int extra_feasible = -1) {
  obs::Profile profile;
  profile.threads = 1;
  obs::ProfileNode& sweep = profile.root.children["qpp.relay_sweep"];
  sweep.calls = 1;
  sweep.total_nanos = static_cast<std::int64_t>(sweep_ms * 1e6);
  sweep.counters["qpp.relay_candidates"] = candidates;
  if (extra_feasible >= 0) {
    sweep.counters["qpp.relay_feasible"] =
        static_cast<std::uint64_t>(extra_feasible);
  }
  profile.root.counters["exec.chunks"] = chunks;
  if (extra_node) {
    obs::ProfileNode& lp = profile.root.children["lp.solve"];
    lp.calls = 2;
    lp.counters["lp.pivots"] = 64;
  }
  profile.root.total_nanos = sweep.total_nanos;
  std::map<std::string, std::string> context;
  if (!digest.empty()) context["instance_digest"] = digest;
  return profile.to_json("solve", context);
}

obs::ProfileDiff diff_docs(const std::string& base, const std::string& cand) {
  return obs::diff_profiles(obs::json::parse(base), obs::json::parse(cand));
}

TEST(ProfileDiff, IdenticalProfilesShowZeroDrift) {
  const std::string doc = profile_doc("abc", 100, 4, 10.0);
  const obs::ProfileDiff diff = diff_docs(doc, doc);
  EXPECT_TRUE(diff.error.empty()) << diff.error;
  EXPECT_TRUE(diff.structure.empty());
  EXPECT_EQ(diff.max_deterministic_drift(), 0.0);
  EXPECT_TRUE(diff.deterministic_ok(0.0));
  EXPECT_EQ(diff.max_wall_drift(), 0.0);
}

TEST(ProfileDiff, CounterValueDriftIsDetectedAndLocated) {
  const obs::ProfileDiff diff = diff_docs(profile_doc("abc", 100, 4, 10.0),
                                          profile_doc("abc", 120, 4, 10.0));
  EXPECT_TRUE(diff.error.empty()) << diff.error;
  EXPECT_NEAR(diff.max_deterministic_drift(), 0.2, 1e-12);
  EXPECT_FALSE(diff.deterministic_ok(0.1));
  EXPECT_TRUE(diff.deterministic_ok(0.25));
  // The drifted counter is named at its node path.
  bool located = false;
  for (const obs::ProfileCounterDiff& counter : diff.counters) {
    if (counter.path == "qpp.relay_sweep" &&
        counter.counter == "qpp.relay_candidates") {
      located = true;
      EXPECT_EQ(counter.base, 100u);
      EXPECT_EQ(counter.cand, 120u);
    }
  }
  EXPECT_TRUE(located);
}

TEST(ProfileDiff, OneSidedPathGatesAsStructuralDrift) {
  const obs::ProfileDiff diff =
      diff_docs(profile_doc("abc", 100, 4, 10.0),
                profile_doc("abc", 100, 4, 10.0, /*extra_node=*/true));
  EXPECT_TRUE(diff.error.empty()) << diff.error;
  ASSERT_EQ(diff.structure.size(), 1u);
  EXPECT_EQ(diff.structure[0].path, "lp.solve");
  EXPECT_FALSE(diff.structure[0].in_base);
  EXPECT_TRUE(diff.structure[0].in_cand);
  EXPECT_TRUE(std::isinf(diff.max_deterministic_drift()));
  EXPECT_FALSE(diff.deterministic_ok(1e9));
}

TEST(ProfileDiff, OneSidedCounterGatesOnlyWhenNonzero) {
  // A counter present on one side with value 0 is indistinguishable from an
  // absent one (work never happened) -- drift 0, not infinity.
  const obs::ProfileDiff zero =
      diff_docs(profile_doc("abc", 100, 4, 10.0),
                profile_doc("abc", 100, 4, 10.0, false, /*extra_feasible=*/0));
  EXPECT_EQ(zero.max_deterministic_drift(), 0.0);
  // Nonzero one-sided counter: infinite drift, always gated.
  const obs::ProfileDiff nonzero =
      diff_docs(profile_doc("abc", 100, 4, 10.0),
                profile_doc("abc", 100, 4, 10.0, false, /*extra_feasible=*/5));
  EXPECT_TRUE(std::isinf(nonzero.max_deterministic_drift()));
}

TEST(ProfileDiff, DisagreeingInstanceDigestsAreRefused) {
  const obs::ProfileDiff refused = diff_docs(profile_doc("abc", 100, 4, 10.0),
                                             profile_doc("xyz", 100, 4, 10.0));
  EXPECT_FALSE(refused.error.empty());
  EXPECT_FALSE(refused.deterministic_ok(1e9));
  // A missing digest on either side is tolerated (older artifacts).
  const obs::ProfileDiff tolerated = diff_docs(
      profile_doc("", 100, 4, 10.0), profile_doc("abc", 100, 4, 10.0));
  EXPECT_TRUE(tolerated.error.empty()) << tolerated.error;
}

TEST(ProfileDiff, WrongSchemaIsRefused) {
  const obs::ProfileDiff diff =
      diff_docs("{\"schema\": \"qplace.run_report.v1\"}",
                profile_doc("abc", 100, 4, 10.0));
  EXPECT_FALSE(diff.error.empty());
}

TEST(ProfileDiff, WallDriftIsReportedButSeparateFromDeterministic) {
  const obs::ProfileDiff diff = diff_docs(profile_doc("abc", 100, 4, 10.0),
                                          profile_doc("abc", 100, 4, 15.0));
  EXPECT_TRUE(diff.error.empty()) << diff.error;
  // Same work, slower wall clock: deterministic gate passes at tolerance 0,
  // while the wall-side drift is visible for the opt-in gate.
  EXPECT_TRUE(diff.deterministic_ok(0.0));
  EXPECT_NEAR(diff.max_wall_drift(), 0.5, 1e-9);
}

// ------------------------------------------------------------------ trend

obs::json::Value history_entry(
    const std::string& digest,
    const std::map<std::string, std::uint64_t>& counters,
    const std::string& schema = "qplace.bench_history.v1") {
  std::string text = "{\"schema\": \"" + schema +
                     "\", \"git_sha\": \"abc1234\", \"instance_digest\": \"" +
                     digest + "\", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) text += ", ";
    first = false;
    text += "\"" + name + "\": " + std::to_string(value);
  }
  text += "}}";
  return obs::json::parse(text);
}

std::vector<obs::json::Value> pivot_history(
    const std::vector<std::uint64_t>& values) {
  std::vector<obs::json::Value> entries;
  for (const std::uint64_t value : values) {
    entries.push_back(history_entry("d", {{"lp.pivots", value}}));
  }
  return entries;
}

const obs::TrendCounter* find_counter(const obs::TrendAnalysis& trend,
                                      const std::string& name) {
  for (const obs::TrendCounter& counter : trend.counters) {
    if (counter.name == name) return &counter;
  }
  return nullptr;
}

TEST(Trend, SteadyHistoryPassesTheGate) {
  const obs::TrendAnalysis trend = obs::analyze_trend(
      pivot_history({100, 102, 101}));
  EXPECT_TRUE(trend.error.empty()) << trend.error;
  EXPECT_TRUE(trend.gated);
  EXPECT_EQ(trend.entries_total, 3u);
  EXPECT_EQ(trend.baseline_entries, 2u);
  const obs::TrendCounter* pivots = find_counter(trend, "lp.pivots");
  ASSERT_NE(pivots, nullptr);
  // Median of {100, 102} is 101 -- exactly the newest value.
  EXPECT_EQ(pivots->baseline, 101.0);
  EXPECT_EQ(pivots->latest, 101u);
  EXPECT_EQ(pivots->regression(), 0.0);
  EXPECT_EQ(pivots->history, (std::vector<double>{100.0, 102.0}));
  EXPECT_TRUE(trend.ok(0.10));
}

TEST(Trend, RegressionBeyondToleranceGates) {
  const obs::TrendAnalysis trend = obs::analyze_trend(
      pivot_history({100, 100, 100, 125}));
  EXPECT_TRUE(trend.gated);
  EXPECT_NEAR(trend.max_regression(), 0.25, 1e-12);
  EXPECT_FALSE(trend.ok(0.10));
  EXPECT_TRUE(trend.ok(0.30));
}

TEST(Trend, ImprovementIsNeverGated) {
  const obs::TrendAnalysis trend = obs::analyze_trend(
      pivot_history({100, 100, 60}));
  const obs::TrendCounter* pivots = find_counter(trend, "lp.pivots");
  ASSERT_NE(pivots, nullptr);
  EXPECT_LT(pivots->rel_change(), 0.0);
  EXPECT_EQ(pivots->regression(), 0.0);
  EXPECT_TRUE(trend.ok(0.0));
}

TEST(Trend, VanishedCounterGatesLikeInfiniteDrift) {
  std::vector<obs::json::Value> entries;
  entries.push_back(history_entry("d", {{"a", 100}, {"b", 50}}));
  entries.push_back(history_entry("d", {{"a", 100}, {"b", 50}}));
  entries.push_back(history_entry("d", {{"a", 100}}));
  const obs::TrendAnalysis trend = obs::analyze_trend(entries);
  const obs::TrendCounter* vanished = find_counter(trend, "b");
  ASSERT_NE(vanished, nullptr);
  EXPECT_FALSE(vanished->in_latest);
  EXPECT_TRUE(std::isinf(vanished->regression()));
  EXPECT_FALSE(trend.ok(1e9));
}

TEST(Trend, NewCounterIsReportedButNotGated) {
  std::vector<obs::json::Value> entries;
  entries.push_back(history_entry("d", {{"a", 100}}));
  entries.push_back(history_entry("d", {{"a", 100}}));
  entries.push_back(history_entry("d", {{"a", 100}, {"b", 7}}));
  const obs::TrendAnalysis trend = obs::analyze_trend(entries);
  const obs::TrendCounter* fresh = find_counter(trend, "b");
  ASSERT_NE(fresh, nullptr);
  EXPECT_FALSE(fresh->in_baseline);
  EXPECT_EQ(fresh->rel_change(), 0.0);
  EXPECT_TRUE(trend.ok(0.0));
}

TEST(Trend, SingleEntryHasNoBaselineAndDoesNotGate) {
  const obs::TrendAnalysis trend = obs::analyze_trend(pivot_history({900}));
  EXPECT_TRUE(trend.error.empty()) << trend.error;
  EXPECT_FALSE(trend.gated);
  EXPECT_EQ(trend.baseline_entries, 0u);
  EXPECT_TRUE(trend.ok(0.0));
}

TEST(Trend, DigestMismatchedPriorEntriesAreSkipped) {
  // The bench instance changed at the newest entry: history restarts, the
  // old-digest entries are skipped, and with no comparable prior entries
  // nothing gates.
  std::vector<obs::json::Value> entries;
  entries.push_back(history_entry("old", {{"a", 10}}));
  entries.push_back(history_entry("old", {{"a", 10}}));
  entries.push_back(history_entry("new", {{"a", 500}}));
  const obs::TrendAnalysis trend = obs::analyze_trend(entries);
  EXPECT_EQ(trend.instance_digest, "new");
  EXPECT_EQ(trend.entries_skipped, 2u);
  EXPECT_FALSE(trend.gated);
  EXPECT_TRUE(trend.ok(0.0));
}

TEST(Trend, WindowBoundsTheRollingBaseline) {
  obs::TrendOptions options;
  options.window = 2;
  // Priors are {10, 100, 100, 100}; a window of 2 keeps only the last two,
  // so the outlier 10 cannot drag the median down.
  const obs::TrendAnalysis trend = obs::analyze_trend(
      pivot_history({10, 100, 100, 100, 130}), options);
  const obs::TrendCounter* pivots = find_counter(trend, "lp.pivots");
  ASSERT_NE(pivots, nullptr);
  EXPECT_EQ(pivots->samples, 2u);
  EXPECT_EQ(pivots->baseline, 100.0);
  EXPECT_NEAR(trend.max_regression(), 0.30, 1e-12);
}

TEST(Trend, HistoryWithoutValidEntriesIsAnError) {
  EXPECT_FALSE(obs::analyze_trend({}).error.empty());
  std::vector<obs::json::Value> entries;
  entries.push_back(history_entry("d", {{"a", 1}}, "some.other.schema"));
  const obs::TrendAnalysis trend = obs::analyze_trend(entries);
  EXPECT_FALSE(trend.error.empty());
  EXPECT_FALSE(trend.ok(1e9));
}

}  // namespace
}  // namespace qp
