#include "report/export.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.hpp"

namespace qp::report {
namespace {

TEST(ToDot, ContainsNodesAndLabelledEdges) {
  graph::Graph g(3);
  g.add_edge(0, 1, 2.5);
  g.add_edge(1, 2, 1.0);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("2.5"), std::string::npos);
  EXPECT_NE(dot.find("n2"), std::string::npos);
}

TEST(PlacementToDot, MarksHostsAsBoxes) {
  const graph::Graph g = graph::path_graph(4);
  const core::Placement f = {1, 1, 3};
  const std::string dot = placement_to_dot(g, f);
  EXPECT_NE(dot.find("n1 [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("u0,u1"), std::string::npos);
  EXPECT_NE(dot.find("n3 [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("n0 [shape=circle"), std::string::npos);
}

TEST(PlacementToDot, ValidatesPlacement) {
  const graph::Graph g = graph::path_graph(2);
  EXPECT_THROW(placement_to_dot(g, {5}), std::invalid_argument);
}

TEST(ToCsv, BasicAndEscaped) {
  const std::string csv = to_csv({"a", "b"}, {{"1", "x,y"}, {"2", "q\"uote"}});
  EXPECT_EQ(csv, "a,b\n1,\"x,y\"\n2,\"q\"\"uote\"\n");
}

TEST(ToCsv, ValidatesShape) {
  EXPECT_THROW(to_csv({}, {}), std::invalid_argument);
  EXPECT_THROW(to_csv({"a"}, {{"1", "2"}}), std::invalid_argument);
}

}  // namespace
}  // namespace qp::report
