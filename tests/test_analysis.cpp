#include "quorum/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "quorum/constructions.hpp"

namespace qp::quorum {
namespace {

TEST(FaultTolerance, SingletonDiesWithOneElement) {
  EXPECT_EQ(fault_tolerance(singleton()), 1);
}

TEST(FaultTolerance, StarDiesAtCenter) {
  EXPECT_EQ(fault_tolerance(star(6)), 1);
}

TEST(FaultTolerance, MajorityTolerance) {
  // Threshold-t over n elements dies iff more than n - t elements die:
  // fault tolerance = n - t + 1.
  EXPECT_EQ(fault_tolerance(majority(5, 3)), 3);
  EXPECT_EQ(fault_tolerance(majority(7, 4)), 4);
}

TEST(FaultTolerance, GridToleranceIsK) {
  // Killing a full row of the k x k grid (k elements) kills every quorum
  // (each quorum contains a full row... each quorum crosses every row via
  // its column, so a dead row kills all); fewer than k cannot.
  EXPECT_EQ(fault_tolerance(grid(2)), 2);
  EXPECT_EQ(fault_tolerance(grid(3)), 3);
}

TEST(FaultTolerance, ProjectivePlaneIsLineSize) {
  // Killing a full line (q + 1 points) hits every other line.
  EXPECT_EQ(fault_tolerance(projective_plane(2)), 3);
}

TEST(FaultTolerance, WheelDiesWithHubPlusOneRim) {
  // {hub, any rim element} hits every spoke and the rim quorum.
  EXPECT_EQ(fault_tolerance(wheel(6)), 2);
}

TEST(FailureProbability, ZeroAndOneEdges) {
  const QuorumSystem qs = majority(5, 3);
  EXPECT_DOUBLE_EQ(failure_probability_exact(qs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(failure_probability_exact(qs, 1.0), 1.0);
}

TEST(FailureProbability, SingletonMatchesElementFailure) {
  EXPECT_NEAR(failure_probability_exact(singleton(), 0.3), 0.3, 1e-12);
}

TEST(FailureProbability, MajorityClosedForm) {
  // Majority(3, 2) fails iff >= 2 of 3 elements fail.
  const double p = 0.2;
  const double expected = 3 * p * p * (1 - p) + p * p * p;
  EXPECT_NEAR(failure_probability_exact(majority(3, 2), p), expected, 1e-12);
}

TEST(FailureProbability, MajorityIsHighlyAvailableBelowHalf) {
  // Peleg-Wool: for p < 1/2, larger majorities get more available.
  const double p = 0.2;
  const double f3 = failure_probability_exact(majority(3), p);
  const double f5 = failure_probability_exact(majority(5), p);
  const double f7 = failure_probability_exact(majority(7), p);
  EXPECT_GT(f3, f5);
  EXPECT_GT(f5, f7);
}

TEST(FailureProbability, RejectsBadArguments) {
  EXPECT_THROW(failure_probability_exact(majority(3), -0.1),
               std::invalid_argument);
  EXPECT_THROW(failure_probability_exact(majority(3), 1.1),
               std::invalid_argument);
  std::mt19937_64 rng(1);
  EXPECT_THROW(failure_probability_monte_carlo(majority(3), 0.5, 0, rng),
               std::invalid_argument);
}

TEST(FailureProbability, MonteCarloTracksExact) {
  std::mt19937_64 rng(123);
  const QuorumSystem qs = grid(3);
  const double exact = failure_probability_exact(qs, 0.3);
  const double estimate =
      failure_probability_monte_carlo(qs, 0.3, 20000, rng);
  EXPECT_NEAR(estimate, exact, 0.02);
}

TEST(LoadLowerBound, NaorWoolBounds) {
  // Grid k: smallest quorum 2k-1; bound = max(1/(2k-1), (2k-1)/k^2).
  EXPECT_NEAR(load_lower_bound(grid(3)), 5.0 / 9.0, 1e-12);
  // Majority(5, 3): max(1/3, 3/5) = 3/5.
  EXPECT_NEAR(load_lower_bound(majority(5, 3)), 0.6, 1e-12);
  // FPP order 2: max(1/3, 3/7) = 3/7.
  EXPECT_NEAR(load_lower_bound(projective_plane(2)), 3.0 / 7.0, 1e-12);
}

TEST(OptimalStrategy, UniformIsOptimalForSymmetricSystems) {
  // Grid and Majority are element-transitive: uniform is load-optimal and
  // the LP must match the uniform strategy's load.
  for (const QuorumSystem& qs :
       {grid(2), grid(3), majority(5, 3), projective_plane(2)}) {
    const OptimalStrategy best = optimal_load_strategy(qs);
    const double uniform_load = system_load(qs, AccessStrategy::uniform(qs));
    EXPECT_NEAR(best.load, uniform_load, 1e-7) << qs.describe();
    EXPECT_NEAR(system_load(qs, best.strategy), best.load, 1e-7);
  }
}

TEST(OptimalStrategy, BeatsUniformOnAsymmetricSystems) {
  // Universe {0,1,2,3}; quorums {0,1}, {0,2}, {1,2}, {0,3}: uniform puts
  // load 3/4 on element 0, but weighting {1,2} more can spread it.
  const QuorumSystem qs(4, {{0, 1}, {0, 2}, {1, 2}, {0, 3}});
  const OptimalStrategy best = optimal_load_strategy(qs);
  const double uniform_load = system_load(qs, AccessStrategy::uniform(qs));
  EXPECT_LT(best.load, uniform_load - 1e-6);
  EXPECT_GE(best.load, load_lower_bound(qs) - 1e-9);
}

TEST(OptimalStrategy, RespectsLoadLowerBound) {
  for (const QuorumSystem& qs : {grid(4), majority(7, 4), binary_tree(2)}) {
    const OptimalStrategy best = optimal_load_strategy(qs);
    EXPECT_GE(best.load, load_lower_bound(qs) - 1e-7) << qs.describe();
  }
}

class AvailabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(AvailabilitySweep, ExactMatchesMonteCarloAcrossP) {
  const double p = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(p * 1000));
  const QuorumSystem qs = majority(7, 4);
  const double exact = failure_probability_exact(qs, p);
  const double mc = failure_probability_monte_carlo(qs, p, 30000, rng);
  EXPECT_NEAR(mc, exact, 0.015) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, AvailabilitySweep,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8));

}  // namespace
}  // namespace qp::quorum
