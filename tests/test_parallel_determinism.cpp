/// Metamorphic determinism suite for the exec engine (docs/PARALLEL.md):
/// every solver mode must produce bit-identical metrics, placements, delays,
/// and certificate verdicts whether the pool has 1 thread or 8. EXPECT_EQ on
/// doubles is deliberate -- the contract is exact equality, not tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/certificate.hpp"
#include "core/evaluators.hpp"
#include "core/local_search.hpp"
#include "core/majority_layout.hpp"
#include "core/qpp_solver.hpp"
#include "core/ssqpp_solver.hpp"
#include "core/total_delay.hpp"
#include "exec/thread_pool.hpp"
#include "graph/generators.hpp"
#include "graph/metric.hpp"
#include "obs/obs.hpp"
#include "quorum/constructions.hpp"
#include "sim/simulator.hpp"

namespace qp {
namespace {

/// Runs \p body under a pool of exactly \p threads, restoring the default
/// pool size afterwards.
template <typename Body>
auto with_threads(int threads, Body&& body) {
  exec::set_num_threads(threads);
  auto result = body();
  exec::set_num_threads(0);
  return result;
}

struct NamedInstance {
  std::string name;
  core::QppInstance instance;
};

/// Fixed-seed instance families: deterministic mesh, ER with majority, ER
/// with grid. Capacities leave a bit of slack so every solver is feasible.
std::vector<NamedInstance> make_instances() {
  std::vector<NamedInstance> out;
  {
    const quorum::QuorumSystem system = quorum::grid(2);
    const quorum::AccessStrategy strategy =
        quorum::AccessStrategy::uniform(system);
    const graph::Metric metric =
        graph::Metric::from_graph(graph::grid_mesh(4));
    out.push_back(
        {"grid2/mesh4",
         core::QppInstance(metric, std::vector<double>(16, 1.0), system,
                           strategy)});
  }
  {
    std::mt19937_64 rng(9);
    const quorum::QuorumSystem system = quorum::majority(5);
    const quorum::AccessStrategy strategy =
        quorum::AccessStrategy::uniform(system);
    const graph::Metric metric = graph::Metric::from_graph(
        graph::erdos_renyi(14, 0.4, rng, 1.0, 6.0));
    out.push_back(
        {"majority5/er14",
         core::QppInstance(metric, std::vector<double>(14, 1.0), system,
                           strategy)});
  }
  {
    std::mt19937_64 rng(23);
    const quorum::QuorumSystem system = quorum::grid(2);
    const quorum::AccessStrategy strategy =
        quorum::AccessStrategy::uniform(system);
    const graph::Metric metric = graph::Metric::from_graph(
        graph::erdos_renyi(12, 0.5, rng, 1.0, 8.0));
    out.push_back(
        {"grid2/er12",
         core::QppInstance(metric, std::vector<double>(12, 1.0), system,
                           strategy)});
  }
  return out;
}

TEST(ParallelDeterminism, MetricBuildBitIdentical) {
  // The all-pairs Dijkstra sweep is the innermost parallel loop; the whole
  // distance matrix must match bit for bit.
  const auto build = [] {
    std::mt19937_64 rng(5);
    const graph::Graph g = graph::erdos_renyi(48, 0.25, rng, 1.0, 9.0);
    const graph::Metric metric = graph::Metric::from_graph(g);
    std::vector<double> flat;
    for (int i = 0; i < metric.num_points(); ++i) {
      for (int j = 0; j < metric.num_points(); ++j) {
        flat.push_back(metric(i, j));
      }
    }
    return flat;
  };
  const std::vector<double> at_one = with_threads(1, build);
  const std::vector<double> at_eight = with_threads(8, build);
  ASSERT_EQ(at_one.size(), at_eight.size());
  for (std::size_t i = 0; i < at_one.size(); ++i) {
    ASSERT_EQ(at_one[i], at_eight[i]) << "distance entry " << i;
  }
}

TEST(ParallelDeterminism, QppModeBitIdentical) {
  for (const NamedInstance& named : make_instances()) {
    const auto solve = [&named] {
      core::QppSolveOptions options;
      options.alpha = 2.0;
      return core::solve_qpp(named.instance, options);
    };
    const auto at_one = with_threads(1, solve);
    const auto at_eight = with_threads(8, solve);
    ASSERT_EQ(at_one.has_value(), at_eight.has_value()) << named.name;
    if (!at_one) continue;
    EXPECT_EQ(at_one->placement, at_eight->placement) << named.name;
    EXPECT_EQ(at_one->chosen_source, at_eight->chosen_source) << named.name;
    EXPECT_EQ(at_one->average_delay, at_eight->average_delay) << named.name;
    EXPECT_EQ(at_one->best_lp_bound, at_eight->best_lp_bound) << named.name;
    EXPECT_EQ(at_one->load_violation, at_eight->load_violation) << named.name;

    // Certificate verdicts (and every printed bound) must agree too.
    const auto certify = [&](const core::QppResult& result) {
      check::CertificateOptions options;
      options.alpha = 2.0;
      options.derive_opt_lower_bound = false;  // keep the suite fast
      return check::check_certificate(named.instance, result, options);
    };
    const check::Certificate cert_one =
        with_threads(1, [&] { return certify(*at_one); });
    const check::Certificate cert_eight =
        with_threads(8, [&] { return certify(*at_eight); });
    EXPECT_EQ(cert_one.ok(), cert_eight.ok()) << named.name;
    EXPECT_EQ(cert_one.to_string(), cert_eight.to_string()) << named.name;
    EXPECT_TRUE(cert_one.ok()) << named.name << "\n" << cert_one.to_string();
  }
}

TEST(ParallelDeterminism, SsqppModeBitIdentical) {
  for (const NamedInstance& named : make_instances()) {
    const core::SsqppInstance view = core::single_source_view(named.instance, 0);
    const auto solve = [&view] { return core::solve_ssqpp(view, 2.0); };
    const auto at_one = with_threads(1, solve);
    const auto at_eight = with_threads(8, solve);
    ASSERT_EQ(at_one.has_value(), at_eight.has_value()) << named.name;
    if (!at_one) continue;
    EXPECT_EQ(at_one->placement, at_eight->placement) << named.name;
    EXPECT_EQ(at_one->lp_objective, at_eight->lp_objective) << named.name;
    EXPECT_EQ(at_one->delay, at_eight->delay) << named.name;
    EXPECT_EQ(at_one->load_violation, at_eight->load_violation) << named.name;

    const auto certify = [&](const core::SsqppResult& result) {
      check::CertificateOptions options;
      options.alpha = 2.0;
      return check::check_certificate(view, result, options);
    };
    const check::Certificate cert_one =
        with_threads(1, [&] { return certify(*at_one); });
    const check::Certificate cert_eight =
        with_threads(8, [&] { return certify(*at_eight); });
    EXPECT_EQ(cert_one.ok(), cert_eight.ok()) << named.name;
    EXPECT_EQ(cert_one.to_string(), cert_eight.to_string()) << named.name;
  }
}

TEST(ParallelDeterminism, TotalModeBitIdentical) {
  for (const NamedInstance& named : make_instances()) {
    const auto solve = [&named] {
      return core::solve_total_delay(named.instance);
    };
    const auto at_one = with_threads(1, solve);
    const auto at_eight = with_threads(8, solve);
    ASSERT_EQ(at_one.has_value(), at_eight.has_value()) << named.name;
    if (!at_one) continue;
    EXPECT_EQ(at_one->placement, at_eight->placement) << named.name;
    EXPECT_EQ(at_one->average_delay, at_eight->average_delay) << named.name;
    EXPECT_EQ(at_one->lp_objective, at_eight->lp_objective) << named.name;

    const auto certify = [&](const core::TotalDelayResult& result) {
      check::CertificateOptions options;
      return check::check_certificate(named.instance, result, options);
    };
    const check::Certificate cert_one =
        with_threads(1, [&] { return certify(*at_one); });
    const check::Certificate cert_eight =
        with_threads(8, [&] { return certify(*at_eight); });
    EXPECT_EQ(cert_one.ok(), cert_eight.ok()) << named.name;
    EXPECT_EQ(cert_one.to_string(), cert_eight.to_string()) << named.name;
  }
}

TEST(ParallelDeterminism, MajorityModeBitIdentical) {
  std::mt19937_64 rng(31);
  const quorum::QuorumSystem system = quorum::majority(5);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const graph::Metric metric = graph::Metric::from_graph(
      graph::erdos_renyi(16, 0.35, rng, 1.0, 7.0));
  const core::SsqppInstance view(metric, std::vector<double>(16, 1.0), system,
                                 strategy, 2);
  const auto solve = [&view] { return core::majority_layout(view, 3); };
  const auto at_one = with_threads(1, solve);
  const auto at_eight = with_threads(8, solve);
  ASSERT_EQ(at_one.has_value(), at_eight.has_value());
  ASSERT_TRUE(at_one.has_value());
  EXPECT_EQ(at_one->placement, at_eight->placement);
  EXPECT_EQ(at_one->delay, at_eight->delay);
  EXPECT_EQ(at_one->formula_delay, at_eight->formula_delay);

  const auto certify = [&](const core::MajorityLayoutResult& result) {
    return check::check_certificate(view, result, 3, {});
  };
  const check::Certificate cert_one =
      with_threads(1, [&] { return certify(*at_one); });
  const check::Certificate cert_eight =
      with_threads(8, [&] { return certify(*at_eight); });
  EXPECT_EQ(cert_one.ok(), cert_eight.ok());
  EXPECT_EQ(cert_one.to_string(), cert_eight.to_string());
}

TEST(ParallelDeterminism, LocalSearchTrajectoryBitIdentical) {
  // First-improvement descent applies one canonical move per round; the
  // whole trajectory (not just the final objective) must be thread-count
  // independent.
  for (const NamedInstance& named : make_instances()) {
    const auto descend = [&named] {
      // Element u starts on node u: distinct nodes, loads <= 1 = cap.
      core::Placement start(
          static_cast<std::size_t>(named.instance.system().universe_size()));
      for (std::size_t u = 0; u < start.size(); ++u) {
        start[u] = static_cast<int>(u);
      }
      core::LocalSearchOptions options;
      options.max_moves = 40;
      return core::local_search_max_delay(named.instance, std::move(start),
                                          options);
    };
    const auto at_one = with_threads(1, descend);
    const auto at_eight = with_threads(8, descend);
    EXPECT_EQ(at_one.placement, at_eight.placement) << named.name;
    EXPECT_EQ(at_one.delay, at_eight.delay) << named.name;
    EXPECT_EQ(at_one.moves, at_eight.moves) << named.name;
  }
}

TEST(ParallelDeterminism, ObsCountersAndSeriesBitIdentical) {
  // The observability extension of the contract (docs/OBSERVABILITY.md):
  // every counter total and every series trajectory in the registry must be
  // bit-identical whether the pool has 1 thread or 8. Timers/gauges carry
  // wall time and are deliberately excluded.
  const std::vector<NamedInstance> instances = make_instances();
  const auto run = [&](int threads) {
    obs::Registry::instance().reset_all();
    with_threads(threads, [&] {
      for (const NamedInstance& named : instances) {
        core::QppSolveOptions options;
        options.alpha = 2.0;
        core::solve_qpp(named.instance, options);
        // The QPP placement may violate capacities (the guarantee is
        // bicriteria), so descend from a seeded feasible start instead.
        std::mt19937_64 rng(7);
        const auto start =
            core::random_feasible_placement(named.instance, rng);
        if (!start) continue;
        core::LocalSearchOptions search;
        search.max_moves = 20;
        core::local_search_max_delay(named.instance, *start, search);
      }
      return 0;
    });
    return std::make_pair(obs::Registry::instance().counter_values(),
                          obs::Registry::instance().series_values());
  };
  const auto at_one = run(1);
  const auto at_eight = run(8);
  EXPECT_EQ(at_one.first, at_eight.first);
  EXPECT_EQ(at_one.second, at_eight.second);
  if (obs::compiled_in()) {
    // The run must actually have produced instrumentation to compare.
    EXPECT_GT(at_one.first.at("lp.solves"), 0u);
    EXPECT_FALSE(at_one.second.empty());
  }
}

TEST(ParallelDeterminism, SimulatorHistogramsBitIdentical) {
  // The simulator is sequential, but its inputs (the solved placement) come
  // from the parallel solver; histogram bucket vectors must match exactly
  // end to end.
  const NamedInstance named = make_instances().front();
  const auto run = [&](int threads) {
    return with_threads(threads, [&] {
      core::QppSolveOptions options;
      options.alpha = 2.0;
      const auto solved = core::solve_qpp(named.instance, options);
      sim::SimulationConfig config;
      config.duration = 100.0;
      config.warmup = 10.0;
      config.service_rate = 50.0;
      return sim::simulate(named.instance, solved->placement, config);
    });
  };
  const sim::SimulationResult at_one = run(1);
  const sim::SimulationResult at_eight = run(8);
  EXPECT_EQ(at_one.access_delay.buckets(), at_eight.access_delay.buckets());
  EXPECT_EQ(at_one.access_delay.count(), at_eight.access_delay.count());
  EXPECT_EQ(at_one.access_delay.sum(), at_eight.access_delay.sum());
  EXPECT_EQ(at_one.queue_wait.buckets(), at_eight.queue_wait.buckets());
  EXPECT_EQ(at_one.per_node_mean_queue_depth,
            at_eight.per_node_mean_queue_depth);
  EXPECT_EQ(at_one.per_node_max_queue_depth,
            at_eight.per_node_max_queue_depth);
  EXPECT_GT(at_one.access_delay.count(), 0u);
}

TEST(ParallelDeterminism, AccessLogBytesIdenticalAcrossThreadCounts) {
  // The access log (docs/OBSERVABILITY.md, qplace.access_log.v2) is a
  // deterministic artifact: solving on 1 or 8 threads and simulating with
  // the same seed must produce byte-identical JSONL, record for record.
  const NamedInstance named = make_instances().front();
  const auto run = [&](int threads, obs::AccessLogConfig log_config) {
    return with_threads(threads, [&] {
      core::QppSolveOptions options;
      options.alpha = 2.0;
      const auto solved = core::solve_qpp(named.instance, options);
      std::ostringstream out;
      obs::AccessLogWriter writer(out, log_config);
      sim::SimulationConfig config;
      config.duration = 120.0;
      config.warmup = 10.0;
      config.service_rate = 50.0;
      config.access_log = &writer;
      sim::simulate(named.instance, solved->placement, config);
      writer.close();
      return out.str();
    });
  };
  const std::string at_one = run(1, {});
  const std::string at_eight = run(8, {});
  EXPECT_EQ(at_one, at_eight);
  EXPECT_GT(at_one.size(), 0u);

  // And the sampled log is the same deterministic subset at every thread
  // count -- an exact byte match again, not just record-count equality.
  obs::AccessLogConfig sampling;
  sampling.sample_rate = 0.5;
  sampling.sample_seed = 5;
  const std::string sampled_one = run(1, sampling);
  const std::string sampled_eight = run(8, sampling);
  EXPECT_EQ(sampled_one, sampled_eight);
  EXPECT_LT(sampled_one.size(), at_one.size());
}

TEST(ParallelDeterminism, FaultRunArtifactsBitIdenticalAcrossThreadCounts) {
  // The determinism contract extends to fault injection unchanged
  // (docs/SIMULATION.md): a fixed schedule + fixed seed must produce
  // byte-identical v2 access logs (attempts/outcome fields included),
  // identical fault counters, and identical registry state at any thread
  // count. Retry decisions draw no randomness, so this holds exactly.
  const NamedInstance named = make_instances().front();
  // Crash a node the placement actually uses (solved once, deterministic)
  // -- and among those, the one hosting the fewest elements, so some
  // quorum stays live and the run exercises timeout, re-selection AND
  // successful retries rather than going fully unavailable.
  const core::Placement reference_placement = [&] {
    core::QppSolveOptions options;
    options.alpha = 2.0;
    return core::solve_qpp(named.instance, options)->placement;
  }();
  std::map<int, int> elements_on_node;
  for (int node : reference_placement) ++elements_on_node[node];
  const int crash_node =
      std::min_element(elements_on_node.begin(), elements_on_node.end(),
                       [](const auto& a, const auto& b) {
                         return a.second < b.second;
                       })
          ->first;
  const sim::FaultSchedule schedule({{crash_node, 0.0, 120.0}}, {}, {});

  struct FaultRun {
    std::string log;
    sim::SimulationResult result;
    std::map<std::string, std::uint64_t> counters;
  };
  const auto run = [&](int threads, obs::AccessLogConfig log_config) {
    obs::Registry::instance().reset_all();
    return with_threads(threads, [&] {
      core::QppSolveOptions options;
      options.alpha = 2.0;
      const auto solved = core::solve_qpp(named.instance, options);
      std::ostringstream out;
      obs::AccessLogWriter writer(out, log_config);
      sim::SimulationConfig config;
      config.duration = 120.0;
      config.warmup = 10.0;
      config.seed = 99;
      config.faults = &schedule;
      config.probe_timeout = 10.0;
      config.max_attempts = 3;
      config.availability_bucket = 25.0;
      config.access_log = &writer;
      sim::SimulationResult result =
          sim::simulate(named.instance, solved->placement, config);
      writer.close();
      return FaultRun{out.str(), std::move(result),
                      obs::Registry::instance().counter_values()};
    });
  };

  const FaultRun at_one = run(1, {});
  const FaultRun at_eight = run(8, {});
  EXPECT_EQ(at_one.log, at_eight.log);
  EXPECT_GT(at_one.log.size(), 0u);
  EXPECT_EQ(at_one.result.failed_accesses, at_eight.result.failed_accesses);
  EXPECT_EQ(at_one.result.timed_out_attempts,
            at_eight.result.timed_out_attempts);
  EXPECT_EQ(at_one.result.retries, at_eight.result.retries);
  EXPECT_EQ(at_one.result.availability_series,
            at_eight.result.availability_series);
  EXPECT_EQ(at_one.counters, at_eight.counters);
  // The run must actually have exercised the fault path, and recovered:
  // timeouts fired, retries launched, and accesses still completed.
  EXPECT_GT(at_one.result.retries, 0);
  EXPECT_GT(at_one.result.timed_out_attempts, 0);
  EXPECT_GT(at_one.result.completed_accesses, 0);

  // Sampling invariance: the sampled fault log is the identical subset at
  // every thread count, and every sampled line appears verbatim in the
  // full log (per-record hash sampling, not positional).
  obs::AccessLogConfig sampling;
  sampling.sample_rate = 0.5;
  sampling.sample_seed = 5;
  const FaultRun sampled_one = run(1, sampling);
  const FaultRun sampled_eight = run(8, sampling);
  EXPECT_EQ(sampled_one.log, sampled_eight.log);
  EXPECT_LT(sampled_one.log.size(), at_one.log.size());
  std::istringstream lines(sampled_one.log);
  std::string line;
  bool first = true;
  while (std::getline(lines, line)) {
    if (first) {  // header carries the sampling config; not a record
      first = false;
      continue;
    }
    EXPECT_NE(at_one.log.find(line), std::string::npos)
        << "sampled record missing from full log: " << line;
  }
}

TEST(ParallelDeterminism, EvaluatorsBitIdenticalAcrossThreadCounts) {
  // Direct check on the chunked reductions, including an instance large
  // enough (> exec::kReductionGrain clients) to use several chunks.
  std::mt19937_64 rng(41);
  const quorum::QuorumSystem system = quorum::grid(3);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const graph::Metric metric = graph::Metric::from_graph(
      graph::erdos_renyi(96, 0.12, rng, 1.0, 10.0));
  const core::QppInstance instance(metric, std::vector<double>(96, 10.0),
                                   system, strategy);
  core::Placement f(9);
  for (int u = 0; u < 9; ++u) f[static_cast<std::size_t>(u)] = (u * 11) % 96;

  const auto evaluate = [&] {
    return std::vector<double>{
        core::average_max_delay(instance, f),
        core::average_total_delay(instance, f),
        core::average_closest_quorum_delay(instance, f),
        static_cast<double>(core::best_relay_node(instance, f))};
  };
  const std::vector<double> at_one = with_threads(1, evaluate);
  const std::vector<double> at_eight = with_threads(8, evaluate);
  const std::vector<double> at_five = with_threads(5, evaluate);
  EXPECT_EQ(at_one, at_eight);
  EXPECT_EQ(at_one, at_five);
}

}  // namespace
}  // namespace qp
