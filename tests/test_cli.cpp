#include "cli/options.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace qp::cli {
namespace {

TEST(ParseArgs, CommandAndFlagForms) {
  const ParsedArgs args =
      parse_args({"solve", "--system=grid", "--k", "3", "--dot"});
  EXPECT_EQ(args.command(), "solve");
  EXPECT_EQ(args.get("system", ""), "grid");
  EXPECT_EQ(args.get_int("k", 0), 3);
  EXPECT_TRUE(args.has("dot"));
  EXPECT_EQ(args.get("dot", ""), "true");
}

TEST(ParseArgs, RejectsMissingCommand) {
  EXPECT_THROW(parse_args({}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--system=grid"}), std::invalid_argument);
}

TEST(ParseArgs, RejectsBareValues) {
  EXPECT_THROW(parse_args({"solve", "grid"}), std::invalid_argument);
}

TEST(ParseArgs, TypedAccessorsValidate) {
  const ParsedArgs args = parse_args({"x", "--n=abc", "--p=0.5"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(ParseArgs, RequireThrowsWhenAbsent) {
  const ParsedArgs args = parse_args({"x", "--a=1"});
  EXPECT_EQ(args.require("a"), "1");
  EXPECT_THROW(args.require("b"), std::invalid_argument);
}

TEST(ParseArgs, UnreadFlagsTracked) {
  const ParsedArgs args = parse_args({"x", "--a=1", "--typo=2"});
  (void)args.get("a", "");
  const auto unread = args.unread_flags();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "typo");
}

TEST(MakeSystem, BuildsEachKind) {
  EXPECT_EQ(make_system(parse_args({"x", "--system=grid", "--k=2"}))
                .universe_size(),
            4);
  EXPECT_EQ(make_system(parse_args({"x", "--system=majority", "--n=5"}))
                .num_quorums(),
            10);
  EXPECT_EQ(make_system(parse_args({"x", "--system=fpp", "--q=2"}))
                .universe_size(),
            7);
  EXPECT_EQ(make_system(parse_args({"x", "--system=tree", "--height=1"}))
                .universe_size(),
            3);
  EXPECT_EQ(
      make_system(parse_args({"x", "--system=wall", "--widths=1,2"}))
          .universe_size(),
      3);
  EXPECT_EQ(make_system(parse_args({"x", "--system=star", "--n=4"}))
                .num_quorums(),
            3);
  EXPECT_EQ(make_system(parse_args({"x", "--system=singleton"}))
                .universe_size(),
            1);
  EXPECT_THROW(make_system(parse_args({"x", "--system=bogus"})),
               std::invalid_argument);
}

TEST(MakeTopology, BuildsEachKind) {
  std::mt19937_64 rng(1);
  EXPECT_EQ(make_topology(parse_args({"x", "--topology=path", "--nodes=5"}),
                          rng)
                .num_nodes(),
            5);
  EXPECT_EQ(make_topology(parse_args({"x", "--topology=mesh", "--k=3"}), rng)
                .num_nodes(),
            9);
  EXPECT_EQ(
      make_topology(parse_args({"x", "--topology=hypercube", "--dim=3"}), rng)
          .num_nodes(),
      8);
  EXPECT_TRUE(
      make_topology(parse_args({"x", "--topology=waxman", "--nodes=15"}), rng)
          .is_connected());
  EXPECT_TRUE(make_topology(
                  parse_args({"x", "--topology=cliques", "--cliques=3",
                              "--clique-size=3"}),
                  rng)
                  .is_connected());
  EXPECT_THROW(make_topology(parse_args({"x", "--topology=bogus"}), rng),
               std::invalid_argument);
}

TEST(MakeTopology, LoadsGraphFile) {
  const std::string path = ::testing::TempDir() + "qplace_cli_graph.txt";
  {
    std::ofstream out(path);
    out << "n 3\ne 0 1 1.0\ne 1 2 2.0\n";
  }
  std::mt19937_64 rng(1);
  const graph::Graph g =
      make_topology(parse_args({"x", "--graph-file", path}), rng);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  std::remove(path.c_str());
}

TEST(MakeTopology, DefaultIsConnectedGeometric) {
  std::mt19937_64 rng(2);
  const graph::Graph g = make_topology(parse_args({"x"}), rng);
  EXPECT_EQ(g.num_nodes(), 16);
  EXPECT_TRUE(g.is_connected());
}

}  // namespace
}  // namespace qp::cli
