#include "core/grid_layout.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

SsqppInstance grid_instance(const graph::Graph& g, int k, double cap,
                            int source = 0) {
  const quorum::QuorumSystem system = quorum::grid(k);
  return SsqppInstance(
      graph::Metric::from_graph(g),
      std::vector<double>(static_cast<std::size_t>(g.num_nodes()), cap),
      system, quorum::AccessStrategy::uniform(system), source);
}

double grid_load(int k) { return static_cast<double>(2 * k - 1) / (k * k); }

TEST(GridShellOrder, MatchesPaperStrategy) {
  // k = 3: (0,0); column of shell 1 then row; column of shell 2 then row.
  const auto order = grid_shell_fill_order(3);
  const std::vector<std::pair<int, int>> expected = {
      {0, 0},
      {0, 1}, {1, 0}, {1, 1},
      {0, 2}, {1, 2}, {2, 0}, {2, 1}, {2, 2}};
  EXPECT_EQ(order, expected);
}

TEST(GridShellOrder, CoversMatrixExactlyOnce) {
  for (int k = 1; k <= 6; ++k) {
    const auto order = grid_shell_fill_order(k);
    ASSERT_EQ(static_cast<int>(order.size()), k * k);
    std::vector<char> seen(static_cast<std::size_t>(k * k), 0);
    for (const auto& [r, c] : order) {
      ASSERT_GE(r, 0);
      ASSERT_LT(r, k);
      ASSERT_GE(c, 0);
      ASSERT_LT(c, k);
      EXPECT_FALSE(seen[static_cast<std::size_t>(r * k + c)]);
      seen[static_cast<std::size_t>(r * k + c)] = 1;
    }
  }
}

TEST(GridLayout, ValidatesSystemShape) {
  // Star(4) has the right universe but 3 quorums, not 4.
  const quorum::QuorumSystem system = quorum::star(4);
  SsqppInstance instance(
      graph::Metric::from_graph(graph::path_graph(6)),
      std::vector<double>(6, 1.0), system,
      quorum::AccessStrategy::uniform(system), 0);
  EXPECT_THROW(optimal_grid_layout(instance, 2), std::invalid_argument);
}

TEST(GridLayout, ValidatesQuorumStructureNotJustCounts) {
  // Majority(9, 5) over a trimmed set could match counts only by accident;
  // build a 4-element system with 4 quorums that are NOT row/column sets.
  const quorum::QuorumSystem system(4, {{0, 1}, {0, 2}, {0, 3}, {0, 1, 2}});
  SsqppInstance instance(
      graph::Metric::from_graph(graph::path_graph(6)),
      std::vector<double>(6, 1.0), system,
      quorum::AccessStrategy::uniform(system), 0);
  EXPECT_THROW(optimal_grid_layout(instance, 2), std::invalid_argument);
}

TEST(GridLayout, AcceptsMajority4Coincidence) {
  // majority(4, 3) IS the 2x2 grid system (every 3-subset is a row+column),
  // so the layout must accept it.
  const quorum::QuorumSystem system = quorum::majority(4);
  SsqppInstance instance(
      graph::Metric::from_graph(graph::path_graph(6)),
      std::vector<double>(6, 0.75), system,
      quorum::AccessStrategy::uniform(system), 0);
  EXPECT_TRUE(optimal_grid_layout(instance, 2).has_value());
}

TEST(GridLayout, ValidatesUniformStrategy) {
  const quorum::QuorumSystem system = quorum::grid(2);
  SsqppInstance instance(
      graph::Metric::from_graph(graph::path_graph(6)),
      std::vector<double>(6, 1.0), system,
      quorum::AccessStrategy(system, {0.7, 0.1, 0.1, 0.1}), 0);
  EXPECT_THROW(optimal_grid_layout(instance, 2), std::invalid_argument);
}

TEST(GridLayout, NulloptWhenTooFewSlots) {
  const SsqppInstance instance =
      grid_instance(graph::path_graph(3), 2, grid_load(2));
  EXPECT_FALSE(optimal_grid_layout(instance, 2).has_value());
}

TEST(GridLayout, CapacityFeasibleAndComplete) {
  const SsqppInstance instance =
      grid_instance(graph::path_graph(9), 3, grid_load(3));
  const auto layout = optimal_grid_layout(instance, 3);
  ASSERT_TRUE(layout.has_value());
  EXPECT_TRUE(is_capacity_feasible(instance.element_loads(),
                                   instance.capacities(), layout->placement));
  EXPECT_NEAR(layout->delay,
              source_expected_max_delay(instance, layout->placement), 1e-12);
}

TEST(GridLayout, MatrixHoldsLargestDistanceTopLeft) {
  const SsqppInstance instance =
      grid_instance(graph::path_graph(10), 3, grid_load(3));
  const auto layout = optimal_grid_layout(instance, 3);
  ASSERT_TRUE(layout.has_value());
  double largest = 0.0;
  for (double d : layout->matrix) largest = std::max(largest, d);
  EXPECT_DOUBLE_EQ(layout->cell(0, 0), largest);
}

TEST(GridLayout, MultiSlotNodesAreReplicated) {
  // One node with capacity for all k^2 = 4 elements right at the source.
  graph::Graph g(2);
  g.add_edge(0, 1, 5.0);
  SsqppInstance instance(
      graph::Metric::from_graph(g),
      {4.0, 0.0}, quorum::grid(2),
      quorum::AccessStrategy::uniform(quorum::grid(2)), 0);
  const auto layout = optimal_grid_layout(instance, 2);
  ASSERT_TRUE(layout.has_value());
  for (int v : layout->placement) EXPECT_EQ(v, 0);
  EXPECT_DOUBLE_EQ(layout->delay, 0.0);
}

/// Exhaustive optimality check of Thm B.1 on small instances: the shell
/// strategy matches brute force over all capacity-feasible placements.
class GridLayoutOptimality : public ::testing::TestWithParam<int> {};

TEST_P(GridLayoutOptimality, MatchesBruteForceOnRandomMetrics) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 193 + 41);
  const int k = 2;
  const graph::Graph g = graph::erdos_renyi(5, 0.6, rng, 1.0, 7.0);
  // Capacity exactly one element per node.
  const SsqppInstance instance = grid_instance(g, k, grid_load(k),
                                               GetParam() % 5);
  const auto layout = optimal_grid_layout(instance, k);
  ASSERT_TRUE(layout.has_value());
  const auto exact = exact_ssqpp(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(layout->delay, exact->delay, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridLayoutOptimality, ::testing::Range(0, 10));

TEST(GridLayoutOptimalityK3, MatchesBruteForceOnLine) {
  // k = 3: 9 elements on 9 nodes; line metric with irregular spacing.
  const graph::Metric metric = graph::Metric::line(
      {0.0, 1.0, 1.5, 4.0, 4.2, 7.0, 7.5, 9.0, 12.0});
  const quorum::QuorumSystem system = quorum::grid(3);
  SsqppInstance instance(metric, std::vector<double>(9, grid_load(3)), system,
                         quorum::AccessStrategy::uniform(system), 0);
  const auto layout = optimal_grid_layout(instance, 3);
  ASSERT_TRUE(layout.has_value());
  const auto exact = exact_ssqpp(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(layout->delay, exact->delay, 1e-9);
}

TEST(GridLayout, BeatsOrMatchesRowMajorAndRandomLayouts) {
  std::mt19937_64 rng(2024);
  const SsqppInstance instance =
      grid_instance(graph::path_graph(16), 4, grid_load(4));
  const auto layout = optimal_grid_layout(instance, 4);
  ASSERT_TRUE(layout.has_value());

  // Row-major baseline: element i on the i-th nearest node.
  Placement row_major(16);
  const auto order = instance.metric().nodes_by_distance_from(0);
  for (int u = 0; u < 16; ++u) {
    row_major[static_cast<std::size_t>(u)] =
        order[static_cast<std::size_t>(u)];
  }
  EXPECT_LE(layout->delay,
            source_expected_max_delay(instance, row_major) + 1e-9);

  // Random permutations of the same slots.
  Placement perm = row_major;
  for (int trial = 0; trial < 50; ++trial) {
    std::shuffle(perm.begin(), perm.end(), rng);
    EXPECT_LE(layout->delay,
              source_expected_max_delay(instance, perm) + 1e-9);
  }
}

}  // namespace
}  // namespace qp::core
