#include "quorum/quorum_system.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qp::quorum {
namespace {

TEST(QuorumSystem, SortsAndValidates) {
  const QuorumSystem qs(4, {{2, 0}, {1, 2, 3}});
  EXPECT_EQ(qs.universe_size(), 4);
  EXPECT_EQ(qs.num_quorums(), 2);
  EXPECT_EQ(qs.quorum(0), (Quorum{0, 2}));
  EXPECT_EQ(qs.max_quorum_size(), 3);
}

TEST(QuorumSystem, RejectsEmptyQuorum) {
  EXPECT_THROW(QuorumSystem(3, {{}}), std::invalid_argument);
}

TEST(QuorumSystem, RejectsDuplicateElement) {
  EXPECT_THROW(QuorumSystem(3, {{1, 1}}), std::invalid_argument);
}

TEST(QuorumSystem, RejectsOutOfRangeElement) {
  EXPECT_THROW(QuorumSystem(3, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW(QuorumSystem(3, {{-1, 0}}), std::invalid_argument);
}

TEST(QuorumSystem, IntersectionDetection) {
  const QuorumSystem good(4, {{0, 1}, {1, 2}, {1, 3}});
  EXPECT_TRUE(good.is_intersecting());
  const QuorumSystem bad(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(bad.is_intersecting());
}

TEST(QuorumSystem, MinimalityDetection) {
  const QuorumSystem minimal(4, {{0, 1}, {1, 2}});
  EXPECT_TRUE(minimal.is_minimal());
  const QuorumSystem redundant(4, {{0, 1}, {0, 1, 2}});
  EXPECT_FALSE(redundant.is_minimal());
}

TEST(QuorumSystem, UniverseCoverage) {
  EXPECT_TRUE(QuorumSystem(3, {{0, 1}, {1, 2}}).covers_universe());
  EXPECT_FALSE(QuorumSystem(3, {{0, 1}}).covers_universe());
}

TEST(QuorumSystem, DescribeSummarizes) {
  const QuorumSystem qs(5, {{0, 1, 2}});
  EXPECT_EQ(qs.describe(), "QuorumSystem(|U|=5, m=1, max|Q|=3)");
}

TEST(AccessStrategy, UniformProbabilities) {
  const QuorumSystem qs(3, {{0, 1}, {1, 2}, {0, 2}});
  const AccessStrategy p = AccessStrategy::uniform(qs);
  for (int q = 0; q < 3; ++q) EXPECT_DOUBLE_EQ(p.probability(q), 1.0 / 3.0);
}

TEST(AccessStrategy, RejectsWrongArity) {
  const QuorumSystem qs(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(AccessStrategy(qs, {1.0}), std::invalid_argument);
}

TEST(AccessStrategy, RejectsNegative) {
  const QuorumSystem qs(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(AccessStrategy(qs, {1.5, -0.5}), std::invalid_argument);
}

TEST(AccessStrategy, RejectsNonUnitSum) {
  const QuorumSystem qs(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(AccessStrategy(qs, {0.3, 0.3}), std::invalid_argument);
}

TEST(ElementLoads, MatchesDefinition) {
  // load(u) = sum of p over quorums containing u (paper Sec 1.2).
  const QuorumSystem qs(3, {{0, 1}, {1, 2}});
  const AccessStrategy p(qs, {0.25, 0.75});
  const std::vector<double> loads = element_loads(qs, p);
  EXPECT_DOUBLE_EQ(loads[0], 0.25);
  EXPECT_DOUBLE_EQ(loads[1], 1.0);
  EXPECT_DOUBLE_EQ(loads[2], 0.75);
  EXPECT_DOUBLE_EQ(system_load(qs, p), 1.0);
}

TEST(ElementLoads, UncoveredElementHasZeroLoad) {
  const QuorumSystem qs(3, {{0, 1}});
  const AccessStrategy p = AccessStrategy::uniform(qs);
  EXPECT_DOUBLE_EQ(element_loads(qs, p)[2], 0.0);
}

}  // namespace
}  // namespace qp::quorum
