#include "core/exact.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/evaluators.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace qp::core {
namespace {

TEST(ExactSsqpp, SingleElementGoesToSource) {
  const quorum::QuorumSystem system = quorum::singleton();
  SsqppInstance instance(
      graph::Metric::from_graph(graph::path_graph(4)),
      std::vector<double>(4, 1.0), system,
      quorum::AccessStrategy::uniform(system), 0);
  const auto result = exact_ssqpp(instance);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->delay, 0.0);
  EXPECT_EQ(result->placement, (Placement{0}));
}

TEST(ExactSsqpp, CapacityForcesSecondBest) {
  // Source cannot host the element: it must land one hop away.
  const quorum::QuorumSystem system = quorum::singleton();
  SsqppInstance instance(
      graph::Metric::from_graph(graph::path_graph(3, 2.0)),
      {0.0, 1.0, 1.0}, system, quorum::AccessStrategy::uniform(system), 0);
  const auto result = exact_ssqpp(instance);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->delay, 2.0);
  EXPECT_EQ(result->placement, (Placement{1}));
}

TEST(ExactSsqpp, InfeasibleReturnsNullopt) {
  const quorum::QuorumSystem system = quorum::grid(2);
  SsqppInstance instance(
      graph::Metric::from_graph(graph::path_graph(4)),
      std::vector<double>(4, 0.5), system,
      quorum::AccessStrategy::uniform(system), 0);
  EXPECT_FALSE(exact_ssqpp(instance).has_value());
}

TEST(ExactSsqpp, StateBudgetEnforced) {
  const quorum::QuorumSystem system = quorum::majority(5);
  SsqppInstance instance(
      graph::Metric::from_graph(graph::path_graph(8)),
      std::vector<double>(8, 1.0), system,
      quorum::AccessStrategy::uniform(system), 0);
  ExactOptions options;
  options.max_states = 3;
  EXPECT_THROW(exact_ssqpp(instance, options), std::runtime_error);
}

TEST(ExactSsqpp, MatchesExhaustiveEnumerationOnTinyInstance) {
  std::mt19937_64 rng(5);
  const graph::Graph g = graph::erdos_renyi(4, 0.7, rng, 1.0, 4.0);
  const quorum::QuorumSystem system = quorum::majority(3);
  SsqppInstance instance(
      graph::Metric::from_graph(g), std::vector<double>(4, 2.0), system,
      quorum::AccessStrategy::uniform(system), 1);
  const auto result = exact_ssqpp(instance);
  ASSERT_TRUE(result.has_value());

  // Exhaustive: all 4^3 placements (capacity 2.0 >= 3 * load never binds...
  // load = 2/3 each, 3 elements = 2.0 exactly, all placements feasible).
  double best = 1e100;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        const Placement f = {a, b, c};
        if (!is_capacity_feasible(instance.element_loads(),
                                  instance.capacities(), f)) {
          continue;
        }
        best = std::min(best, source_expected_max_delay(instance, f));
      }
    }
  }
  EXPECT_NEAR(result->delay, best, 1e-12);
}

TEST(ExactQppMaxDelay, MatchesExhaustiveEnumeration) {
  std::mt19937_64 rng(9);
  const graph::Graph g = graph::erdos_renyi(4, 0.7, rng, 1.0, 5.0);
  const quorum::QuorumSystem system = quorum::star(3);
  QppInstance instance(graph::Metric::from_graph(g),
                       std::vector<double>(4, 2.0), system,
                       quorum::AccessStrategy::uniform(system));
  const auto result = exact_qpp_max_delay(instance);
  ASSERT_TRUE(result.has_value());
  double best = 1e100;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        const Placement f = {a, b, c};
        if (!is_capacity_feasible(instance.element_loads(),
                                  instance.capacities(), f)) {
          continue;
        }
        best = std::min(best, average_max_delay(instance, f));
      }
    }
  }
  EXPECT_NEAR(result->delay, best, 1e-12);
}

TEST(ExactQppTotalDelay, MatchesExhaustiveEnumeration) {
  std::mt19937_64 rng(11);
  const graph::Graph g = graph::erdos_renyi(4, 0.7, rng, 1.0, 5.0);
  const quorum::QuorumSystem system = quorum::majority(3);
  QppInstance instance(graph::Metric::from_graph(g),
                       std::vector<double>(4, 1.5), system,
                       quorum::AccessStrategy::uniform(system));
  const auto result = exact_qpp_total_delay(instance);
  ASSERT_TRUE(result.has_value());
  double best = 1e100;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        const Placement f = {a, b, c};
        if (!is_capacity_feasible(instance.element_loads(),
                                  instance.capacities(), f)) {
          continue;
        }
        best = std::min(best, average_total_delay(instance, f));
      }
    }
  }
  EXPECT_NEAR(result->delay, best, 1e-12);
}

TEST(ExactSolvers, ReportExploredStates) {
  const quorum::QuorumSystem system = quorum::majority(3);
  SsqppInstance instance(
      graph::Metric::from_graph(graph::path_graph(4)),
      std::vector<double>(4, 1.0), system,
      quorum::AccessStrategy::uniform(system), 0);
  const auto result = exact_ssqpp(instance);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->explored_states, 0u);
}

/// Property: the exact optimum is a lower bound for any feasible heuristic
/// placement sampled at random.
class ExactLowerBound : public ::testing::TestWithParam<int> {};

TEST_P(ExactLowerBound, NoSampledPlacementBeatsExact) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 211 + 3);
  const graph::Graph g = graph::erdos_renyi(5, 0.6, rng, 1.0, 3.0);
  const quorum::QuorumSystem system = quorum::majority(4);
  QppInstance instance(graph::Metric::from_graph(g),
                       std::vector<double>(5, 1.6), system,
                       quorum::AccessStrategy::uniform(system));
  const auto exact = exact_qpp_max_delay(instance);
  ASSERT_TRUE(exact.has_value());
  std::uniform_int_distribution<int> pick(0, 4);
  for (int trial = 0; trial < 50; ++trial) {
    Placement f(4);
    for (int& v : f) v = pick(rng);
    if (!is_capacity_feasible(instance.element_loads(), instance.capacities(),
                              f)) {
      continue;
    }
    EXPECT_GE(average_max_delay(instance, f), exact->delay - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactLowerBound, ::testing::Range(0, 8));

}  // namespace
}  // namespace qp::core
