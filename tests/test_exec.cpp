#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace qp::exec {
namespace {

TEST(Exec, PoolRejectsNonPositiveSize) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  EXPECT_THROW(ThreadPool(-3), std::invalid_argument);
}

TEST(Exec, ChunkPlanIsPureFunctionOfSizeAndGrain) {
  const ChunkPlan empty = plan_chunks(0, 1);
  EXPECT_EQ(empty.num_chunks, 0u);

  const ChunkPlan one = plan_chunks(1, 1);
  EXPECT_EQ(one.num_chunks, 1u);
  EXPECT_EQ(one.begin(0), 0u);
  EXPECT_EQ(one.end(0), 1u);

  // Chunks cover [0, n) exactly once, for assorted (n, grain) shapes.
  for (const std::size_t n : {1u, 7u, 64u, 65u, 1000u, 5000u}) {
    for (const std::size_t grain : {1u, 4u, 64u}) {
      const ChunkPlan plan = plan_chunks(n, grain);
      ASSERT_GE(plan.num_chunks, 1u);
      ASSERT_LE(plan.num_chunks, kMaxChunksPerCall);
      std::size_t covered = 0;
      for (std::size_t c = 0; c < plan.num_chunks; ++c) {
        ASSERT_EQ(plan.begin(c), covered);
        ASSERT_GT(plan.end(c), plan.begin(c));
        covered = plan.end(c);
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(Exec, ParallelForEmptyRange) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Exec, ParallelForSingleItem) {
  std::vector<int> out(1, 0);
  parallel_for(1, [&](std::size_t i) { out[i] = 42; });
  EXPECT_EQ(out[0], 42);
}

TEST(Exec, ParallelForItemsFewerThanThreads) {
  // 3 items on an 8-thread pool: every index runs exactly once.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.run_chunks(3, [&](std::size_t c) { ++hits[c]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Exec, ParallelForCoversEveryIndexOnce) {
  set_num_threads(8);
  constexpr std::size_t kN = 10000;
  std::vector<int> hits(kN, 0);
  parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
  set_num_threads(0);
}

TEST(Exec, MapReduceMatchesSequentialFoldForAnyThreadCount) {
  constexpr std::size_t kN = 2500;
  const auto square = [](std::size_t i) {
    return static_cast<double>(i) * 1e-3;
  };
  const auto add = [](double a, double b) { return a + b; };

  set_num_threads(1);
  const double at_one = parallel_map_reduce(kN, 0.0, square, add);
  set_num_threads(8);
  const double at_eight = parallel_map_reduce(kN, 0.0, square, add);
  set_num_threads(3);
  const double at_three = parallel_map_reduce(kN, 0.0, square, add);
  set_num_threads(0);

  // Bit-identical, not just approximately equal: the chunk structure and
  // reduction order never depend on the pool size.
  EXPECT_EQ(at_one, at_eight);
  EXPECT_EQ(at_one, at_three);
}

TEST(Exec, MapReduceEmptyAndSingle) {
  const auto identity = [](std::size_t i) { return static_cast<double>(i); };
  const auto add = [](double a, double b) { return a + b; };
  EXPECT_EQ(parallel_map_reduce(0, 7.5, identity, add), 7.5);
  EXPECT_EQ(parallel_map_reduce(1, 0.0, identity, add), 0.0);
}

TEST(Exec, ExceptionPropagatesOutOfTask) {
  set_num_threads(4);
  try {
    parallel_for(500, [](std::size_t i) {
      if (i == 137) throw std::runtime_error("task failure at 137");
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failure at 137");
  }
  set_num_threads(0);
}

TEST(Exec, LowestIndexedExceptionWins) {
  // Several failing chunks: the caller sees the failure from the
  // lowest-indexed chunk, deterministically.
  ThreadPool pool(4);
  try {
    pool.run_chunks(64, [](std::size_t c) {
      if (c % 2 == 1) throw std::runtime_error("chunk " + std::to_string(c));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1");
  }
}

TEST(Exec, PoolStaysUsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_chunks(8, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::atomic<int> done{0};
  pool.run_chunks(8, [&](std::size_t) { ++done; });
  EXPECT_EQ(done.load(), 8);
}

TEST(Exec, NestedSubmissionRejected) {
  ThreadPool pool(2);
  std::atomic<bool> saw_logic_error{false};
  pool.run_chunks(2, [&](std::size_t) {
    try {
      pool.run_chunks(2, [](std::size_t) {});
    } catch (const std::logic_error&) {
      saw_logic_error = true;
    }
  });
  EXPECT_TRUE(saw_logic_error.load());
}

TEST(Exec, NestedParallelHelpersFallBackInline) {
  // The high-level helpers must NOT throw from inside a task: they degrade
  // to inline execution over the same chunk structure.
  set_num_threads(4);
  std::vector<double> inner_sums(64, 0.0);
  parallel_for(64, [&](std::size_t i) {
    inner_sums[i] = parallel_map_reduce(
        256, 0.0, [](std::size_t j) { return static_cast<double>(j); },
        [](double a, double b) { return a + b; });
  });
  for (const double s : inner_sums) EXPECT_EQ(s, 255.0 * 256.0 / 2.0);
  set_num_threads(0);
}

TEST(Exec, FindFirstMatchesSequentialScan) {
  set_num_threads(8);
  // Hits at 900 and 137: the sequential answer is 137, and the parallel scan
  // must agree even though a later chunk may find 900 first.
  const auto scan = [](std::size_t begin,
                       std::size_t end) -> std::optional<std::size_t> {
    for (std::size_t i = begin; i < end; ++i) {
      if (i == 137 || i == 900) return i;
    }
    return std::nullopt;
  };
  const auto hit = parallel_find_first<std::size_t>(2048, 1, scan);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 137u);

  const auto miss = parallel_find_first<std::size_t>(
      2048, 1,
      [](std::size_t, std::size_t) -> std::optional<std::size_t> {
        return std::nullopt;
      });
  EXPECT_FALSE(miss.has_value());

  const auto empty = parallel_find_first<std::size_t>(0, 1, scan);
  EXPECT_FALSE(empty.has_value());
  set_num_threads(0);
}

TEST(Exec, SetNumThreadsControlsPoolSize) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
#if QPLACE_PARALLEL
  EXPECT_EQ(global_pool().num_threads(), 3);
#endif
  set_num_threads(0);  // back to default
  EXPECT_GE(num_threads(), 1);
}

TEST(Exec, InTaskFlagTracksExecution) {
  EXPECT_FALSE(ThreadPool::in_task());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.run_chunks(4, [&](std::size_t) {
    if (ThreadPool::in_task()) ++inside;
  });
  EXPECT_EQ(inside.load(), 4);
  EXPECT_FALSE(ThreadPool::in_task());
}

}  // namespace
}  // namespace qp::exec
