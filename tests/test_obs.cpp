/// Unit tests for the instrumentation layer (src/obs/, docs/OBSERVABILITY.md):
/// counter/gauge/timer/registry semantics, trace JSON well-formedness,
/// histogram quantiles against exact sorted-sample quantiles, and the
/// run-report schema. The whole file also compiles (and the macro tests stay
/// meaningful) under -DQPLACE_OBS=OFF via obs::compiled_in().

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/obs.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"

namespace qp {
namespace {

/// Structural JSON sanity: balanced braces/brackets outside strings and no
/// dangling commas. (CI additionally validates outputs with python3 -- this
/// is the dependency-free smoke check.)
bool looks_like_json_object(const std::string& text) {
  if (text.empty() || text.front() != '{' || text.back() != '}') return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(Obs, CounterAccumulatesAndResets) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add(3);
  counter.add(4);
  EXPECT_EQ(counter.value(), 7u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Obs, RegistryReturnsStableInstruments) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset_all();
  obs::Counter& a = registry.counter("test.registry_stable");
  obs::Counter& b = registry.counter("test.registry_stable");
  EXPECT_EQ(&a, &b);  // same name -> same instrument (macros cache the ref)
  a.add(5);
  EXPECT_EQ(registry.counter_values().at("test.registry_stable"), 5u);
  registry.reset_all();
  // Addresses survive reset_all(); values are zeroed but stay listed.
  EXPECT_EQ(&registry.counter("test.registry_stable"), &a);
  EXPECT_EQ(registry.counter_values().at("test.registry_stable"), 0u);
}

TEST(Obs, GaugeIsLastWriteWins) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset_all();
  registry.gauge("test.gauge").set(1.5);
  registry.gauge("test.gauge").set(-2.25);
  EXPECT_EQ(registry.gauge_values().at("test.gauge"), -2.25);
}

TEST(Obs, SeriesPreservesAppendOrder) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset_all();
  registry.append_series("test.series", 3.0);
  registry.append_series("test.series", 1.0);
  registry.append_series("test.series", 2.0);
  EXPECT_EQ(registry.series_values().at("test.series"),
            (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Obs, MacrosRespectCompileTimeSwitch) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset_all();
  QP_COUNTER_ADD("test.macro_counter", 2);
  QP_COUNTER_ADD("test.macro_counter", 3);
  const auto counters = registry.counter_values();
  if (obs::compiled_in()) {
    EXPECT_EQ(counters.at("test.macro_counter"), 5u);
  } else {
    // -DQPLACE_OBS=OFF: the macro must compile to nothing, registering no
    // instrument at all.
    EXPECT_EQ(counters.count("test.macro_counter"), 0u);
  }
}

TEST(Obs, ScopedTimerCountsCalls) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset_all();
  for (int i = 0; i < 3; ++i) {
    QP_SPAN("test.span");
  }
  const auto timers = registry.timer_values();
  if (obs::compiled_in()) {
    ASSERT_EQ(timers.count("test.span"), 1u);
    EXPECT_EQ(timers.at("test.span").first, 3u);
    EXPECT_GE(timers.at("test.span").second, 0.0);
  } else {
    EXPECT_EQ(timers.count("test.span"), 0u);
  }
}

TEST(Obs, TraceRecorderDisabledByDefault) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  recorder.clear();
  ASSERT_FALSE(recorder.enabled());
  recorder.record("test.ignored", 0.0, 1.0);
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(Obs, TraceJsonIsWellFormed) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  recorder.clear();
  recorder.set_enabled(true);
  recorder.record("test.phase_a", 1.0, 2.0);
  recorder.record("quote\"and\\slash", 3.0, 0.5);
  {
    QP_SPAN("test.span_via_macro");
  }
  recorder.set_enabled(false);

  const std::string json = recorder.to_chrome_json();
  EXPECT_TRUE(looks_like_json_object(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("test.phase_a"), std::string::npos);
  // Escaping: the quote and backslash must be escaped in the output.
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
  if (obs::compiled_in()) {
    EXPECT_EQ(recorder.event_count(), 3u);
    EXPECT_NE(json.find("test.span_via_macro"), std::string::npos);
  } else {
    EXPECT_EQ(recorder.event_count(), 2u);  // direct record() still works
  }
  EXPECT_EQ(recorder.dropped_count(), 0u);
  recorder.clear();
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(Histogram, BucketLayoutIsFixed) {
  // Bucket boundaries are a pure function of the layout constants.
  EXPECT_EQ(obs::LogHistogram::bucket_index(0.0), -1);
  EXPECT_EQ(obs::LogHistogram::bucket_index(-3.0), -1);
  EXPECT_EQ(obs::LogHistogram::bucket_index(
                std::ldexp(1.0, obs::LogHistogram::kMaxExponent)),
            obs::LogHistogram::kNumBuckets);
  const int bucket_of_one = obs::LogHistogram::bucket_index(1.0);
  EXPECT_EQ(bucket_of_one, -obs::LogHistogram::kMinExponent *
                               obs::LogHistogram::kBucketsPerOctave);
  EXPECT_LE(obs::LogHistogram::bucket_lower_bound(bucket_of_one), 1.0);
  EXPECT_GT(obs::LogHistogram::bucket_upper_bound(bucket_of_one), 1.0);
}

TEST(Histogram, QuantilesTrackExactSortedSampleQuantiles) {
  // The quantile contract: the reported value is the upper bound of the
  // bucket holding the ceil(q * count)-th smallest sample, so it is >= the
  // exact sample quantile and at most one relative bucket width above it.
  std::mt19937_64 rng(17);
  std::exponential_distribution<double> delay(0.25);
  obs::LogHistogram histogram;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double value = delay(rng) + 1e-3;
    samples.push_back(value);
    histogram.record(value);
  }
  std::sort(samples.begin(), samples.end());
  const double relative_width =
      std::pow(2.0, 1.0 / obs::LogHistogram::kBucketsPerOctave);  // ~1.0905
  for (double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double exact = samples[rank - 1];
    const double estimated = histogram.quantile(q);
    EXPECT_GE(estimated, exact * (1.0 - 1e-12)) << "q=" << q;
    EXPECT_LE(estimated, exact * relative_width * (1.0 + 1e-12)) << "q=" << q;
  }
  EXPECT_EQ(histogram.count(), samples.size());
  EXPECT_EQ(histogram.min(), samples.front());
  EXPECT_EQ(histogram.max(), samples.back());
  EXPECT_THROW(histogram.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(histogram.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, QuantileEdgeCases) {
  obs::LogHistogram empty;
  // An empty histogram has no distribution: quantiles and mean are NaN (not
  // a fake 0 a caller could mistake for a measurement), while q validation
  // still throws first.
  EXPECT_TRUE(std::isnan(empty.quantile(0.5)));
  EXPECT_TRUE(std::isnan(empty.mean()));
  EXPECT_THROW(empty.quantile(-0.1), std::invalid_argument);
  EXPECT_EQ(empty.min(), 0.0);
  EXPECT_EQ(empty.max(), 0.0);

  obs::LogHistogram h;
  h.record(0.0);   // underflow
  h.record(1e12);  // overflow (above 2^30)
  h.record(4.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
  // q small enough to land in the underflow bucket resolves to min().
  EXPECT_EQ(h.quantile(0.0), 0.0);
  // q = 1 lands in the overflow bucket and resolves to max().
  EXPECT_EQ(h.quantile(1.0), 1e12);
}

TEST(Histogram, MergeIsOrderIndependentAndMatchesSingleFeed) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> value(1e-8, 2e9);  // spans the range
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) samples.push_back(value(rng));

  obs::LogHistogram all;
  for (double v : samples) all.record(v);

  // Four shards, merged in two different orders.
  std::vector<obs::LogHistogram> shards(4);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    shards[i % 4].record(samples[i]);
  }
  obs::LogHistogram forward;
  for (const auto& shard : shards) forward.merge(shard);
  obs::LogHistogram backward;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    backward.merge(*it);
  }

  EXPECT_EQ(forward.buckets(), all.buckets());
  EXPECT_EQ(backward.buckets(), all.buckets());
  EXPECT_EQ(forward.count(), all.count());
  EXPECT_EQ(forward.underflow(), all.underflow());
  EXPECT_EQ(forward.overflow(), all.overflow());
  EXPECT_EQ(forward.min(), all.min());
  EXPECT_EQ(forward.max(), all.max());
  EXPECT_EQ(forward.to_json(), backward.to_json());
}

TEST(Histogram, JsonIsWellFormed) {
  obs::LogHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const std::string json = h.to_json();
  EXPECT_TRUE(looks_like_json_object(json)) << json;
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(RunReport, JsonFollowsSchema) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset_all();
  QP_COUNTER_ADD("test.report_counter", 7);
  QP_SERIES_APPEND("test.report_series", 1.5);

  obs::RunReport report("unit-test");
  report.set_context("algorithm", "qpp");
  report.set_context("needs \"escaping\"", "back\\slash");
  obs::LogHistogram h;
  h.record(2.0);
  report.add_histogram("test.hist", h);
  report.add_nondeterministic_json("pool", "{\"threads\": 1}");

  const std::string json = report.to_json();
  EXPECT_TRUE(looks_like_json_object(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"qplace.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"command\": \"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"deterministic\""), std::string::npos);
  EXPECT_NE(json.find("\"nondeterministic\""), std::string::npos);
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"pool\": {\"threads\": 1}"), std::string::npos);
  if (obs::compiled_in()) {
    EXPECT_NE(json.find("\"test.report_counter\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"test.report_series\""), std::string::npos);
  }
#if defined(__unix__) || defined(__APPLE__)
  // Process resource footprint rides in the nondeterministic section on
  // POSIX hosts (getrusage): peak RSS plus major/minor page faults.
  EXPECT_NE(json.find("\"resources\": {\"max_rss_kb\": "), std::string::npos);
  EXPECT_NE(json.find("\"page_faults_major\": "), std::string::npos);
  EXPECT_NE(json.find("\"page_faults_minor\": "), std::string::npos);
#endif
  // Equal data must serialize to equal bytes (sorted keys, no timestamps in
  // the deterministic section; the getrusage sample is frozen at the first
  // serialization).
  EXPECT_EQ(json, report.to_json());
}

TEST(Histogram, SingleBucketQuantilesStayInsideTheBucket) {
  // Every sample identical: exactly one populated bucket. All quantiles
  // must resolve within that bucket's bounds, and the extremes pin to the
  // tracked exact min/max.
  obs::LogHistogram h;
  for (int i = 0; i < 25; ++i) h.record(3.0);
  EXPECT_EQ(h.quantile(0.0), 3.0);  // min()
  EXPECT_EQ(h.quantile(1.0), 3.0);  // max()
  // Interior quantiles report the bucket's upper bound, which is within
  // one relative bucket width (2^(1/8) - 1 < 9.1%) of the true value.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 3.0);
  EXPECT_LE(p50, 3.0 * std::pow(2.0, 1.0 / 8.0));
}

TEST(Histogram, MergeIsAssociative) {
  std::mt19937_64 rng(41);
  std::uniform_real_distribution<double> value(0.5, 512.0);
  obs::LogHistogram a, b, c;
  for (int i = 0; i < 300; ++i) a.record(value(rng));
  for (int i = 0; i < 200; ++i) b.record(value(rng));
  for (int i = 0; i < 100; ++i) c.record(value(rng));

  obs::LogHistogram ab_then_c = a;  // (a + b) + c
  ab_then_c.merge(b);
  ab_then_c.merge(c);
  obs::LogHistogram bc = b;  // a + (b + c)
  bc.merge(c);
  obs::LogHistogram a_then_bc = a;
  a_then_bc.merge(bc);

  EXPECT_EQ(ab_then_c.buckets(), a_then_bc.buckets());
  EXPECT_EQ(ab_then_c.count(), a_then_bc.count());
  EXPECT_EQ(ab_then_c.min(), a_then_bc.min());
  EXPECT_EQ(ab_then_c.max(), a_then_bc.max());
  EXPECT_EQ(ab_then_c.to_json(), a_then_bc.to_json());
}

TEST(Histogram, MergeWithEmptyIsIdentityBothWays) {
  obs::LogHistogram h;
  for (int i = 1; i <= 40; ++i) h.record(static_cast<double>(i));
  const std::string before = h.to_json();

  obs::LogHistogram empty;
  h.merge(empty);  // right identity
  EXPECT_EQ(h.to_json(), before);

  obs::LogHistogram other;  // left identity: empty absorbs h into a copy
  other.merge(h);
  EXPECT_EQ(other.to_json(), before);

  // Empty + empty stays empty -- and in particular keeps NaN quantiles
  // (min/max sentinels must not leak through the merge as fake samples).
  obs::LogHistogram still_empty;
  still_empty.merge(empty);
  EXPECT_EQ(still_empty.count(), 0u);
  EXPECT_TRUE(std::isnan(still_empty.quantile(0.5)));
}

TEST(Histogram, EmptyHistogramJsonRendersNullStatistics) {
  // docs/OBSERVABILITY.md: an empty histogram has measured nothing, so its
  // mean/p50/p90/p99 are JSON null -- a 0.0 would be indistinguishable from
  // a real measured zero, and `analyze --diff` treats null-vs-number as
  // schema drift rather than numeric drift.
  obs::LogHistogram empty;
  const std::string json = empty.to_json();
  EXPECT_TRUE(looks_like_json_object(json)) << json;
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\": null"), std::string::npos) << json;

  obs::LogHistogram full;
  full.record(1.0);
  EXPECT_EQ(full.to_json().find("null"), std::string::npos);
}

}  // namespace
}  // namespace qp
