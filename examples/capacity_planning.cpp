/// Capacity planning with heterogeneous nodes: a fleet mixing beefy servers
/// and constrained edge devices (the paper's "PDA on the network" concern).
/// Sweeps the Thm 3.7 knob alpha to show the delay/load-violation trade-off
/// Delta <= alpha/(alpha-1) * OPT_LP  vs  load <= (alpha+1) * cap, and shows
/// that low-capacity devices are never over-packed beyond the bound.

#include <iostream>
#include <random>

#include "core/evaluators.hpp"
#include "core/ssqpp_solver.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/table.hpp"

int main() {
  using namespace qp;

  // 14-node tree network: node 0 is the service gateway (the single source
  // issuing quorum accesses on behalf of external clients).
  std::mt19937_64 rng(11);
  const graph::Graph g = graph::random_tree(14, rng, 1.0, 6.0);
  const graph::Metric metric = graph::Metric::from_graph(g);

  // Grid quorum system over 9 elements.
  const quorum::QuorumSystem system = quorum::grid(3);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const double element_load = 5.0 / 9.0;  // (2k-1)/k^2 for k = 3

  // Heterogeneous capacities: 4 servers can host two elements' load,
  // the rest are edge devices that can host at most one.
  std::vector<double> capacities(14, element_load);
  for (int v = 0; v < 4; ++v) capacities[static_cast<std::size_t>(v)] =
      2.0 * element_load;

  const core::SsqppInstance instance(metric, capacities, system, strategy, 0);
  std::cout << "Network: " << g.describe()
            << "; 4 servers (2x capacity), 10 edge devices (1x)\n"
            << "System:  " << system.describe() << ", source node 0\n\n";

  report::Table table({"alpha", "delay", "bound a/(a-1)*Z*", "max load/cap",
                       "bound a+1"});
  for (const double alpha : {1.25, 1.5, 2.0, 3.0, 4.0, 8.0}) {
    const auto result = core::solve_ssqpp(instance, alpha);
    if (!result) {
      table.add_row({report::Table::num(alpha, 2), "infeasible", "-", "-", "-"});
      continue;
    }
    table.add_row({report::Table::num(alpha, 2),
                   report::Table::num(result->delay, 3),
                   report::Table::num(result->delay_bound, 3),
                   report::Table::num(result->load_violation, 3),
                   report::Table::num(alpha + 1.0, 2)});
  }
  table.print(std::cout);

  std::cout << "\nLarge alpha tightens the delay guarantee toward the LP "
               "optimum but allows\nmore load stacking; small alpha keeps "
               "devices near their rated capacity\nat the price of delay. "
               "Both measured columns must stay under their bounds.\n";
  return 0;
}
