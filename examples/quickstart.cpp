/// Quickstart: place a 2x2 Grid quorum system on a small random WAN so that
/// client access delays are low and node capacities respected, using the
/// paper's Theorem 1.2 algorithm. Demonstrates the core API end to end.

#include <iostream>
#include <random>

#include "core/evaluators.hpp"
#include "core/qpp_solver.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/table.hpp"

int main() {
  using namespace qp;

  // 1. A physical network: 12 points of presence in the unit square, links
  //    between PoPs within radius 0.5, latency = Euclidean distance.
  std::mt19937_64 rng(2025);
  const graph::GeometricGraph wan = graph::random_geometric(12, 0.5, rng);
  const graph::Metric metric = graph::Metric::from_graph(wan.graph);
  std::cout << "Network: " << wan.graph.describe()
            << ", diameter " << report::Table::num(metric.diameter(), 3)
            << "\n";

  // 2. A logical quorum system: the 2x2 Grid (4 elements, 4 quorums of 3)
  //    with the load-optimal uniform access strategy.
  const quorum::QuorumSystem system = quorum::grid(2);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  std::cout << "Quorum system: " << system.describe() << "\n";

  // 3. Per-node capacity: each node may carry one element's load.
  const std::vector<double> capacities(12, 0.75);

  // 4. Solve the Quorum Placement Problem (Thm 1.2, alpha = 2).
  const core::QppInstance instance(metric, capacities, system, strategy);
  core::QppSolveOptions options;
  options.alpha = 2.0;
  const auto result = core::solve_qpp(instance, options);
  if (!result) {
    std::cerr << "no capacity-respecting placement exists\n";
    return 1;
  }

  // 5. Inspect the placement.
  report::Table table({"element", "node", "d(v0, node)"});
  for (int u = 0; u < system.universe_size(); ++u) {
    const int node = result->placement[static_cast<std::size_t>(u)];
    table.add_row({std::to_string(u), std::to_string(node),
                   report::Table::num(metric(result->chosen_source, node))});
  }
  table.print(std::cout);

  std::cout << "\naverage max-delay : "
            << report::Table::num(result->average_delay, 4)
            << "\nchosen relay v0   : " << result->chosen_source
            << "\nload violation    : "
            << report::Table::num(result->load_violation, 3)
            << "  (Thm 1.2 bound: alpha + 1 = 3)"
            << "\nLP lower bound    : "
            << report::Table::num(result->best_lp_bound, 4) << "\n";
  return 0;
}
