/// Distributed mutual exclusion a la Maekawa: each client must collect
/// grants from a full quorum before entering the critical section, so its
/// lock-acquisition latency is the max-delay delta_f(v, Q) of the paper.
/// We place a finite-projective-plane quorum system (the ideal sqrt(n)
/// Maekawa coterie) on a scale-free overlay with the Thm 1.2 solver and
/// report per-client lock latencies against a random placement.

#include <iostream>
#include <random>

#include "core/evaluators.hpp"
#include "core/qpp_solver.hpp"
#include "graph/generators.hpp"
#include "quorum/analysis.hpp"
#include "quorum/constructions.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

int main() {
  using namespace qp;

  // Scale-free overlay of 20 peers (preferential attachment), unit-latency
  // links.
  std::mt19937_64 rng(77);
  const graph::Graph g = graph::barabasi_albert(20, 2, rng);
  const graph::Metric metric = graph::Metric::from_graph(g);

  // Fano-plane coterie: 7 lock managers, quorums of 3, pairwise
  // intersections of exactly one manager (deadlock-avoidance friendly).
  const quorum::QuorumSystem system = quorum::projective_plane(2);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  std::cout << "Overlay: " << g.describe() << "\n"
            << "Coterie: " << system.describe()
            << " (finite projective plane of order 2)\n";

  // Peers can serve ~one manager each.
  const std::vector<double> capacities(20, 0.5);
  const core::QppInstance instance(metric, capacities, system, strategy);

  core::QppSolveOptions options;
  options.alpha = 2.0;
  const auto placed = core::solve_qpp(instance, options);
  if (!placed) {
    std::cerr << "infeasible capacities\n";
    return 1;
  }

  // Random placement baseline.
  std::uniform_int_distribution<int> pick(0, 19);
  core::Placement random_placement(7);
  for (int& v : random_placement) v = pick(rng);

  const auto latencies = [&](const core::Placement& f) {
    std::vector<double> out;
    for (int v = 0; v < 20; ++v) {
      out.push_back(core::expected_max_delay(metric, system, strategy, f, v));
    }
    return out;
  };
  const report::Summary optimized = report::summarize(latencies(placed->placement));
  const report::Summary naive = report::summarize(latencies(random_placement));

  report::Table table(
      {"placement", "min lock latency", "mean", "max", "load/cap"});
  table.add_row({"Thm 1.2 (alpha=2)", report::Table::num(optimized.min, 3),
                 report::Table::num(optimized.mean, 3),
                 report::Table::num(optimized.max, 3),
                 report::Table::num(placed->load_violation, 2)});
  table.add_row({"random", report::Table::num(naive.min, 3),
                 report::Table::num(naive.mean, 3),
                 report::Table::num(naive.max, 3),
                 report::Table::num(core::max_capacity_violation(
                                        instance.element_loads(),
                                        instance.capacities(),
                                        random_placement),
                                    2)});
  std::cout << '\n';
  table.print(std::cout);

  std::cout << "\nEach row averages the expected grant-collection latency "
               "Delta_f(v) over\nall 20 peers; the optimizer trades a bounded "
               "capacity overshoot for\nconsistently lower lock latency.\n";

  // Why an FPP coterie, not a central lock server: the quality metrics the
  // placement preserves (the quorum/analysis module).
  std::cout << "\nCoterie quality (placement-independent):\n"
            << "  fault tolerance     : "
            << quorum::fault_tolerance(system) << " crashed managers survived\n"
            << "  optimal system load : "
            << report::Table::num(
                   quorum::optimal_load_strategy(system).load, 3)
            << " (lower bound "
            << report::Table::num(quorum::load_lower_bound(system), 3) << ")\n"
            << "  availability        : "
            << report::Table::num(
                   1.0 - quorum::failure_probability_exact(system, 0.05), 4)
            << " with 5% manager failure probability\n";
  return 0;
}
