/// WAN data replication: place Majority voting replicas (Gifford/Thomas)
/// across clustered data centers connected by long-haul links, comparing
/// three placement strategies under both delay measures of the paper:
///   - the Sec 4.2 optimal single-source Majority layout + relay reduction,
///   - the Thm 5.1 total-delay GAP placement,
///   - a naive spread-one-replica-per-cluster baseline.

#include <iostream>
#include <vector>

#include "core/evaluators.hpp"
#include "core/majority_layout.hpp"
#include "core/total_delay.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/table.hpp"

int main() {
  using namespace qp;

  // Four data centers of 4 machines; 1 ms within a rack, 25 ms across DCs.
  const int num_dcs = 4, dc_size = 4;
  const graph::Graph g = graph::ring_of_cliques(num_dcs, dc_size, 1.0, 25.0);
  const graph::Metric metric = graph::Metric::from_graph(g);
  const int n_nodes = g.num_nodes();

  // Majority voting over 5 replicas, quorum size 3.
  const int replicas = 5, threshold = 3;
  const quorum::QuorumSystem system = quorum::majority(replicas, threshold);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const double replica_load = static_cast<double>(threshold) / replicas;

  // Every machine can host one replica.
  const std::vector<double> capacities(
      static_cast<std::size_t>(n_nodes), replica_load);
  const core::QppInstance qpp(metric, capacities, system, strategy);

  std::cout << "Topology: " << num_dcs << " data centers x " << dc_size
            << " machines (intra 1ms, inter 25ms)\n"
            << "System:   Majority, " << replicas << " replicas, quorum "
            << threshold << "\n";

  // --- Strategy A: Sec 4.2 optimal layout per source, best relay.
  core::Placement best_majority;
  double best_majority_delay = 1e100;
  for (int v0 = 0; v0 < n_nodes; ++v0) {
    core::SsqppInstance view(metric, capacities, system, strategy, v0);
    const auto layout = core::majority_layout(view, threshold);
    if (!layout) continue;
    const double delay = core::average_max_delay(qpp, layout->placement);
    if (delay < best_majority_delay) {
      best_majority_delay = delay;
      best_majority = layout->placement;
    }
  }

  // --- Strategy B: Thm 5.1 GAP placement for the total-delay measure.
  const auto total = core::solve_total_delay(qpp);

  // --- Strategy C: naive geographic spread, one replica per DC round-robin.
  core::Placement spread(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    spread[static_cast<std::size_t>(r)] = (r % num_dcs) * dc_size;
  }

  report::Table table({"strategy", "avg max-delay (ms)",
                       "avg total-delay (ms)", "max load/cap"});
  const auto add = [&](const char* name, const core::Placement& f) {
    table.add_row({name,
                   report::Table::num(core::average_max_delay(qpp, f), 2),
                   report::Table::num(core::average_total_delay(qpp, f), 2),
                   report::Table::num(core::max_capacity_violation(
                                          qpp.element_loads(),
                                          qpp.capacities(), f),
                                      2)});
  };
  if (!best_majority.empty()) add("majority-layout (Sec 4.2)", best_majority);
  if (total) add("total-delay GAP (Thm 5.1)", total->placement);
  add("one-per-DC baseline", spread);
  std::cout << '\n';
  table.print(std::cout);

  std::cout << "\nReading: the Sec 4.2 layout clusters the quorum near the "
               "best relay,\ncutting max-delay; the naive spread pays an "
               "inter-DC round trip on\nnearly every access.\n";
  return 0;
}
