/// Replicated key-value store with read/write quorums (the grid protocol of
/// Cheung et al., the paper's reference [5]): reads contact one grid row,
/// writes a row plus a column. This example sweeps the read fraction of the
/// workload, places the replicas for each mix with the total-delay solver
/// (Thm 5.1 -- applicable since it never needs pairwise intersection), and
/// validates the resulting analytic delays against the discrete-event
/// simulator.

#include <iostream>
#include <random>

#include "core/evaluators.hpp"
#include "core/total_delay.hpp"
#include "graph/generators.hpp"
#include "quorum/read_write.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace qp;

  // A Waxman internet-like topology of 18 routers.
  std::mt19937_64 rng(8);
  const graph::GeometricGraph net = graph::waxman(18, 0.9, 0.4, rng);
  const graph::Metric metric = graph::Metric::from_graph(net.graph);

  // 3x3 grid protocol: 9 replicas, row reads (3 nodes), row+column writes
  // (5 nodes).
  const quorum::ReadWriteSystem rw = quorum::grid_read_write(3);
  std::cout << "Store: 3x3 grid protocol on " << net.graph.describe()
            << " (row reads, row+column writes)\n\n";

  report::Table table({"read fraction", "element load", "avg total delay",
                       "simulated", "avg max delay", "load/cap"});
  for (const double fraction : {0.0, 0.5, 0.9, 0.99}) {
    const quorum::CombinedWorkload wl = quorum::combine_uniform(rw, fraction);
    const double element_load =
        quorum::system_load(wl.system, wl.strategy);
    // Each router can absorb ~one replica's load at the heaviest mix.
    core::QppInstance instance(metric, std::vector<double>(18, 0.6),
                               wl.system, wl.strategy);
    const auto placed = core::solve_total_delay(instance);
    if (!placed) {
      table.add_row({report::Table::num(fraction, 2), "-", "infeasible", "-",
                     "-", "-"});
      continue;
    }
    sim::SimulationConfig config;
    config.duration = 1500.0;
    config.mode = sim::AccessMode::kSequential;
    config.seed = 42;
    const sim::SimulationResult simulated =
        sim::simulate(instance, placed->placement, config);

    table.add_row(
        {report::Table::num(fraction, 2),
         report::Table::num(element_load, 3),
         report::Table::num(placed->average_delay, 3),
         report::Table::num(simulated.overall_mean_delay, 3),
         report::Table::num(
             core::average_max_delay(instance, placed->placement), 3),
         report::Table::num(placed->load_violation, 2)});
  }
  table.print(std::cout);

  std::cout << "\nHigher read fractions shrink the per-replica load "
               "(3-element row reads\ninstead of 5-element writes), letting "
               "the solver pull replicas closer to\nclients; the simulated "
               "column replays the placement message-by-message\nand should "
               "track the analytic total delay.\n";
  return 0;
}
