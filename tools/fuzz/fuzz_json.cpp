/// libFuzzer harness for the strict JSON reader (src/obs/json.cpp), the
/// parser every `qplace analyze` invocation feeds with run reports, access
/// logs, and the committed bench baseline. The reader's contract is simple:
/// parse valid JSON, throw std::runtime_error on anything else -- so the
/// only bugs a fuzzer can find are the interesting ones (crashes, UB,
/// unbounded recursion), not "rejected bad input".

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const qp::obs::json::Value value = qp::obs::json::parse(text);
    // Exercise the accessors on whatever shape came back.
    (void)value.find("schema");
    (void)value.get_string("schema", "");
    (void)value.get_number("counters", 0.0);
  } catch (const std::runtime_error&) {
    // Malformed input rejected with position context: the documented path.
  }
  return 0;
}
