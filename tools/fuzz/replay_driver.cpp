/// Standalone replay driver: links a harness's LLVMFuzzerTestOneInput and
/// feeds it every file passed on the command line. This is the gcc / no-
/// libFuzzer fallback that keeps the committed corpus running under ctest
/// (fuzz_json_corpus_replay, fuzz_graph_corpus_replay) on every toolchain;
/// actual coverage-guided fuzzing needs the clang + -fsanitize=fuzzer
/// build that CI's fuzz-smoke job uses.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "replay: cannot open " << argv[i] << "\n";
      return 2;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::cout << "replayed " << replayed << " corpus file(s)\n";
  return 0;
}
