/// libFuzzer harness for the edge-list graph parser (src/graph/io.cpp),
/// the entry point through which deployments feed real topologies into the
/// CLI. Contract: parse the documented format, throw std::invalid_argument
/// on anything else. The round-trip check on accepted inputs also fuzzes
/// the serializer against its own parser.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const qp::graph::Graph g = qp::graph::parse_edge_list(text);
    // Accepted input must round-trip through the matching serializer.
    const qp::graph::Graph again =
        qp::graph::parse_edge_list(qp::graph::to_edge_list(g));
    if (again.num_nodes() != g.num_nodes()) __builtin_trap();
  } catch (const std::invalid_argument&) {
    // Malformed input rejected: the documented path.
  }
  return 0;
}
