/// qplace -- command-line driver for the quorum placement library.
///
///   qplace topology --topology waxman --nodes 20 --seed 1      # DOT output
///   qplace analyze  --system majority --n 7 --t 4 --p 0.1      # quorum metrics
///   qplace solve    --system grid --k 2 --topology geometric
///                   --nodes 16 --algorithm qpp --alpha 2 --cap 1.0 [--dot]
///   qplace simulate --system grid --k 2 --topology waxman --nodes 16
///                   --duration 1000 [--service-rate 20]
///   qplace check    --system grid --k 2 --topology geometric --nodes 16
///                   --algorithm qpp --alpha 2                # certify bounds
///
/// `solve` algorithms: qpp (Thm 1.2), ssqpp (Thm 3.7, needs --source),
/// total (Thm 5.1), grid (Thm 1.3 via Sec 4.1), majority (Thm 1.3 via
/// Sec 4.2). Capacities are uniform: --cap multiplies the max element load.
///
/// `check` solves like `solve` (algorithms qpp | ssqpp | total | majority),
/// then re-derives the LP lower bounds and verifies every reported
/// approximation guarantee (Thm 1.2 / Thm 3.7 / Thm 5.1 / Eq. (19)) with
/// check::check_certificate. Exit code 0 iff the whole certificate holds.

#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "check/certificate.hpp"
#include "check/validate.hpp"
#include "cli/options.hpp"
#include "exec/thread_pool.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "core/evaluators.hpp"
#include "core/majority_layout.hpp"
#include "core/placement_report.hpp"
#include "core/qpp_solver.hpp"
#include "core/specialized.hpp"
#include "core/ssqpp_solver.hpp"
#include "core/total_delay.hpp"
#include "graph/metric.hpp"
#include "quorum/analysis.hpp"
#include "quorum/constructions.hpp"
#include "report/export.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qp;

int usage() {
  std::cout <<
      "usage: qplace <command> [flags]\n"
      "commands:\n"
      "  topology   generate a topology and print Graphviz DOT\n"
      "  analyze    quorum-system quality metrics (load, FT, availability)\n"
      "  solve      place a quorum system on a topology\n"
      "  simulate   message-level simulation of a solved placement\n"
      "  check      solve, then verify the certified bounds "
      "(Thm 1.2/3.7/5.1, Eq. 19)\n"
      "common flags: --system --topology --nodes --seed --threads N\n"
      "              (--threads: solver thread pool size; defaults to the\n"
      "               QPLACE_THREADS env var, else hardware concurrency;\n"
      "               results are identical for every N -- docs/PARALLEL.md)\n"
      "observability (docs/OBSERVABILITY.md):\n"
      "  --stats-out FILE  write a qplace.run_report.v1 JSON run report\n"
      "                    (phase timers, solver counters, histograms)\n"
      "  --trace-out FILE  record phase spans and write Chrome trace_event\n"
      "                    JSON loadable in chrome://tracing or Perfetto\n";
  return 2;
}

/// --stats-out / --trace-out plumbing: tracing is switched on before the
/// command runs; artifacts are written after it returns.
class ObsSession {
 public:
  ObsSession(const cli::ParsedArgs& args, int threads)
      : stats_path_(args.get("stats-out", "")),
        trace_path_(args.get("trace-out", "")),
        report_(args.command()) {
    report_.set_context("threads", std::to_string(threads));
    for (const auto& [name, value] : args.raw_flags()) {
      report_.set_context("flag." + name, value);
    }
    if (!trace_path_.empty()) {
      obs::TraceRecorder::instance().set_enabled(true);
    }
  }

  obs::RunReport& report() { return report_; }

  /// Writes the requested artifacts. \throws std::runtime_error on I/O
  /// failure (surfaced as exit code 2 by main's handler).
  void finish() {
    if (!trace_path_.empty()) {
      obs::TraceRecorder::instance().set_enabled(false);
      obs::write_file(trace_path_,
                      obs::TraceRecorder::instance().to_chrome_json());
    }
    if (!stats_path_.empty()) {
      report_.add_nondeterministic_json("pool", exec::pool_stats_json());
      obs::write_file(stats_path_, report_.to_json());
    }
  }

 private:
  std::string stats_path_;
  std::string trace_path_;
  obs::RunReport report_;
};

/// Session of the current invocation; commands may add histograms etc.
ObsSession* g_obs = nullptr;

/// Uniform capacities: --cap (default 1.2) times the max element load.
std::vector<double> capacities_for(const cli::ParsedArgs& args,
                                   const quorum::QuorumSystem& system,
                                   const quorum::AccessStrategy& strategy,
                                   int nodes) {
  const std::vector<double> loads = quorum::element_loads(system, strategy);
  double max_load = 0.0;
  for (double l : loads) max_load = std::max(max_load, l);
  return std::vector<double>(static_cast<std::size_t>(nodes),
                             args.get_double("cap", 1.2) * max_load);
}

int cmd_topology(const cli::ParsedArgs& args) {
  std::mt19937_64 rng(
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const graph::Graph g = cli::make_topology(args, rng);
  std::cout << report::to_dot(g);
  return 0;
}

int cmd_analyze(const cli::ParsedArgs& args) {
  const quorum::QuorumSystem system = cli::make_system(args);
  const double p = args.get_double("p", 0.1);
  std::cout << system.describe() << "\n";
  report::Table table({"metric", "value"});
  table.add_row({"intersecting", system.is_intersecting() ? "yes" : "no"});
  table.add_row({"minimal", system.is_minimal() ? "yes" : "no"});
  table.add_row({"fault tolerance",
                 std::to_string(quorum::fault_tolerance(system))});
  const quorum::OptimalStrategy best = quorum::optimal_load_strategy(system);
  table.add_row({"optimal load", report::Table::num(best.load, 4)});
  table.add_row({"load lower bound",
                 report::Table::num(quorum::load_lower_bound(system), 4)});
  if (system.universe_size() <= 20) {
    table.add_row({"failure prob (p=" + report::Table::num(p, 2) + ")",
                   report::Table::num(
                       quorum::failure_probability_exact(system, p), 6)});
  } else {
    std::mt19937_64 rng(7);
    table.add_row(
        {"failure prob (MC)",
         report::Table::num(
             quorum::failure_probability_monte_carlo(system, p, 20000, rng),
             6)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_solve(const cli::ParsedArgs& args) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const graph::Graph g = cli::make_topology(args, rng);
  const graph::Metric metric = graph::Metric::from_graph(g);
  const quorum::QuorumSystem system = cli::make_system(args);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const std::vector<double> caps =
      capacities_for(args, system, strategy, g.num_nodes());
  const core::QppInstance instance(metric, caps, system, strategy);

  const std::string algorithm = args.get("algorithm", "qpp");
  core::Placement placement;
  std::string detail;
  if (algorithm == "qpp") {
    core::QppSolveOptions options;
    options.alpha = args.get_double("alpha", 2.0);
    const auto result = core::solve_qpp(instance, options);
    if (!result) {
      std::cerr << "infeasible: no capacity-respecting fractional placement\n";
      return 1;
    }
    placement = result->placement;
    detail = "relay v0 = " + std::to_string(result->chosen_source);
  } else if (algorithm == "ssqpp") {
    const core::SsqppInstance view(metric, caps, system, strategy,
                                   args.get_int("source", 0));
    const auto result =
        core::solve_ssqpp(view, args.get_double("alpha", 2.0));
    if (!result) {
      std::cerr << "infeasible\n";
      return 1;
    }
    placement = result->placement;
    detail = "Z* = " + report::Table::num(result->lp_objective, 4);
  } else if (algorithm == "total") {
    const auto result = core::solve_total_delay(instance);
    if (!result) {
      std::cerr << "infeasible\n";
      return 1;
    }
    placement = result->placement;
    detail = "GAP LP = " + report::Table::num(result->lp_objective, 4);
  } else if (algorithm == "grid") {
    const auto result =
        core::solve_qpp_grid(instance, args.get_int("k", 3));
    if (!result) {
      std::cerr << "infeasible: not enough capacity slots\n";
      return 1;
    }
    placement = result->placement;
    detail = "source = " + std::to_string(result->chosen_source);
  } else if (algorithm == "majority") {
    const int n = args.get_int("n", 5);
    const auto result =
        core::solve_qpp_majority(instance, args.get_int("t", n / 2 + 1));
    if (!result) {
      std::cerr << "infeasible: not enough capacity slots\n";
      return 1;
    }
    placement = result->placement;
    detail = "source = " + std::to_string(result->chosen_source);
  } else {
    std::cerr << "unknown --algorithm '" << algorithm
              << "' (qpp|ssqpp|total|grid|majority)\n";
    return 2;
  }

  std::cout << "algorithm: " << algorithm << " (" << detail << ")\n"
            << core::evaluate_placement(instance, placement).to_string();
  std::cout << "placement:";
  for (std::size_t u = 0; u < placement.size(); ++u) {
    std::cout << " u" << u << "->n" << placement[u];
  }
  std::cout << "\n";
  if (args.has("dot")) {
    std::cout << report::placement_to_dot(g, placement);
  }
  return 0;
}

/// `qplace check`: run a solver, then machine-verify every bound it claims.
int cmd_check(const cli::ParsedArgs& args) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const graph::Graph g = cli::make_topology(args, rng);
  const graph::Metric metric = graph::Metric::from_graph(g);
  const quorum::QuorumSystem system = cli::make_system(args);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const std::vector<double> caps =
      capacities_for(args, system, strategy, g.num_nodes());
  const core::QppInstance instance(metric, caps, system, strategy);

  const check::ValidationReport instance_report =
      check::validate_instance(instance);
  if (!instance_report.ok()) {
    std::cerr << "instance invalid:\n" << instance_report.to_string();
    return 1;
  }

  check::CertificateOptions options;
  options.alpha = args.get_double("alpha", 2.0);
  const std::string algorithm = args.get("algorithm", "qpp");
  check::Certificate certificate;
  std::string claim;
  if (algorithm == "qpp") {
    core::QppSolveOptions solve_options;
    solve_options.alpha = options.alpha;
    const auto result = core::solve_qpp(instance, solve_options);
    if (!result) {
      std::cerr << "infeasible: no capacity-respecting fractional placement\n";
      return 1;
    }
    certificate = check::check_certificate(instance, *result, options);
    claim = "Thm 1.2 (5a/(a-1)-approx, load <= (a+1) cap), relay v0 = " +
            std::to_string(result->chosen_source);
  } else if (algorithm == "ssqpp") {
    const core::SsqppInstance view(metric, caps, system, strategy,
                                   args.get_int("source", 0));
    const auto result = core::solve_ssqpp(view, options.alpha);
    if (!result) {
      std::cerr << "infeasible\n";
      return 1;
    }
    certificate = check::check_certificate(view, *result, options);
    claim = "Thm 3.7 (a/(a-1)-approx vs Z*, load <= (a+1) cap)";
  } else if (algorithm == "total") {
    const auto result = core::solve_total_delay(instance);
    if (!result) {
      std::cerr << "infeasible\n";
      return 1;
    }
    certificate = check::check_certificate(instance, *result, options);
    claim = "Thm 5.1 (cost <= GAP LP <= OPT, load <= 2 cap)";
  } else if (algorithm == "majority") {
    const int n = args.get_int("n", 5);
    const int t = args.get_int("t", n / 2 + 1);
    const core::SsqppInstance view(metric, caps, system, strategy,
                                   args.get_int("source", 0));
    const auto result = core::majority_layout(view, t);
    if (!result) {
      std::cerr << "infeasible: not enough capacity slots\n";
      return 1;
    }
    certificate = check::check_certificate(view, *result, t, options);
    claim = "Eq. (19) closed form + exact capacity respect (Thm 1.3)";
  } else {
    std::cerr << "unknown --algorithm '" << algorithm
              << "' (qpp|ssqpp|total|majority)\n";
    return 2;
  }

  std::cout << "certificate for " << algorithm << ": " << claim << "\n"
            << certificate.to_string()
            << (certificate.ok() ? "CERTIFIED: all bounds hold\n"
                                 : "FAILED: some bound is violated\n");
  return certificate.ok() ? 0 : 1;
}

int cmd_simulate(const cli::ParsedArgs& args) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const graph::Graph g = cli::make_topology(args, rng);
  const graph::Metric metric = graph::Metric::from_graph(g);
  const quorum::QuorumSystem system = cli::make_system(args);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const std::vector<double> caps =
      capacities_for(args, system, strategy, g.num_nodes());
  const core::QppInstance instance(metric, caps, system, strategy);

  core::QppSolveOptions options;
  const auto solved = core::solve_qpp(instance, options);
  if (!solved) {
    std::cerr << "infeasible\n";
    return 1;
  }
  sim::SimulationConfig config;
  config.duration = args.get_double("duration", 1000.0);
  config.arrival_rate_per_client = args.get_double("rate", 1.0);
  config.service_rate = args.get_double("service-rate", 0.0);
  config.seed = static_cast<std::uint64_t>(args.get_int("sim-seed", 1));
  config.mode = args.get("mode", "parallel") == "sequential"
                    ? sim::AccessMode::kSequential
                    : sim::AccessMode::kParallel;
  const sim::SimulationResult result =
      sim::simulate(instance, solved->placement, config);
  if (g_obs != nullptr) {
    g_obs->report().add_histogram("sim.access_delay", result.access_delay);
    if (result.queue_wait.count() > 0) {
      g_obs->report().add_histogram("sim.queue_wait", result.queue_wait);
    }
  }

  report::Table table({"metric", "value"});
  table.add_row({"completed accesses",
                 std::to_string(result.completed_accesses)});
  table.add_row({"simulated mean delay",
                 report::Table::num(result.overall_mean_delay, 4)});
  table.add_row({"simulated p50 delay",
                 report::Table::num(result.access_delay.quantile(0.50), 4)});
  table.add_row({"simulated p90 delay",
                 report::Table::num(result.access_delay.quantile(0.90), 4)});
  table.add_row({"simulated p99 delay",
                 report::Table::num(result.access_delay.quantile(0.99), 4)});
  table.add_row({"simulated max delay",
                 report::Table::num(result.access_delay.max(), 4)});
  table.add_row(
      {"analytic mean delay",
       report::Table::num(
           config.mode == sim::AccessMode::kParallel
               ? core::average_max_delay(instance, solved->placement)
               : core::average_total_delay(instance, solved->placement),
           4)});
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> raw(argv + 1, argv + argc);
  if (raw.empty() || raw.front() == "--help" || raw.front() == "help") {
    return usage();
  }
  try {
    const cli::ParsedArgs args = cli::parse_args(raw);
    const int threads = cli::configure_threads(args);
    ObsSession session(args, threads);
    g_obs = &session;
    int code = 2;
    if (args.command() == "topology") {
      code = cmd_topology(args);
    } else if (args.command() == "analyze") {
      code = cmd_analyze(args);
    } else if (args.command() == "solve") {
      code = cmd_solve(args);
    } else if (args.command() == "simulate") {
      code = cmd_simulate(args);
    } else if (args.command() == "check") {
      code = cmd_check(args);
    } else {
      std::cerr << "unknown command '" << args.command() << "'\n";
      return usage();
    }
    session.finish();
    for (const std::string& flag : args.unread_flags()) {
      std::cerr << "warning: unused flag --" << flag << "\n";
    }
    return code;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
