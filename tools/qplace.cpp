/// qplace -- command-line driver for the quorum placement library.
///
///   qplace topology --topology waxman --nodes 20 --seed 1      # DOT output
///   qplace analyze  --system majority --n 7 --t 4 --p 0.1      # quorum metrics
///   qplace analyze  --access-log LOG --system grid --k 2 ...   # replay a log
///   qplace analyze  --diff A.json --against B.json             # report diff
///   qplace solve    --system grid --k 2 --topology geometric
///                   --nodes 16 --algorithm qpp --alpha 2 --cap 1.0 [--dot]
///   qplace simulate --system grid --k 2 --topology waxman --nodes 16
///                   --duration 1000 [--service-rate 20] [--access-log LOG]
///   qplace check    --system grid --k 2 --topology geometric --nodes 16
///                   --algorithm qpp --alpha 2                # certify bounds
///
/// `solve` algorithms: qpp (Thm 1.2), ssqpp (Thm 3.7, needs --source),
/// total (Thm 5.1), grid (Thm 1.3 via Sec 4.1), majority (Thm 1.3 via
/// Sec 4.2). Capacities are uniform: --cap multiplies the max element load.
///
/// `check` solves like `solve` (algorithms qpp | ssqpp | total | majority),
/// then re-derives the LP lower bounds and verifies every reported
/// approximation guarantee (Thm 1.2 / Thm 3.7 / Thm 5.1 / Eq. (19)) with
/// check::check_certificate. Exit code 0 iff the whole certificate holds.
///
/// `analyze --access-log` rebuilds the instance and placement from the same
/// flags the `simulate` run used (both are deterministic), replays the
/// logged accesses, and cross-checks empirical Delta_f / Gamma_f and
/// observed per-node load against the analytic evaluators and the
/// certificate's (alpha+1)-cap bound. `analyze --diff A --against B`
/// structurally diffs two run reports (counter deltas gated by
/// --tolerance; wall times reported but never gated) -- the CI
/// perf-regression gate (docs/OBSERVABILITY.md).

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "check/certificate.hpp"
#include "check/validate.hpp"
#include "cli/options.hpp"
#include "exec/thread_pool.hpp"
#include "net/http_server.hpp"
#include "obs/access_log.hpp"
#include "analyze/analyze.hpp"
#include "analyze/profile_diff.hpp"
#include "analyze/trace_check.hpp"
#include "analyze/trend.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/prom.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "core/evaluators.hpp"
#include "core/majority_layout.hpp"
#include "core/placement_report.hpp"
#include "core/qpp_solver.hpp"
#include "core/specialized.hpp"
#include "core/ssqpp_solver.hpp"
#include "core/total_delay.hpp"
#include "graph/metric.hpp"
#include "quorum/analysis.hpp"
#include "quorum/constructions.hpp"
#include "report/export.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

// Stamped into every run report so `analyze --diff` can tell which build
// produced a baseline. tools/CMakeLists.txt captures it at configure time.
#ifndef QPLACE_GIT_SHA
#define QPLACE_GIT_SHA "unknown"
#endif

// Release identity for the Prometheus qplace_build_info gauge; stamped by
// tools/CMakeLists.txt from the project version.
#ifndef QPLACE_VERSION
#define QPLACE_VERSION "0.0.0"
#endif

namespace {

using namespace qp;

int usage() {
  std::cout <<
      "usage: qplace <command> [flags]\n"
      "commands:\n"
      "  topology   generate a topology and print Graphviz DOT\n"
      "  analyze    quorum-system quality metrics (load, FT, availability);\n"
      "             with --access-log FILE: replay a simulator access log\n"
      "             against the analytic model (needs the simulate flags;\n"
      "             add --faults FILE to cross-check retries/availability\n"
      "             against the fault schedule that drove the run);\n"
      "             with --diff A --against B [--tolerance T]: structured\n"
      "             run-report diff, exit 1 on deterministic counter drift;\n"
      "             with --profile-diff A --against B [--tolerance T]\n"
      "             [--wall-tolerance W]: per-node profile diff (counters\n"
      "             gated exact, wall ratios gated only with W);\n"
      "             with --trend BENCH_history.jsonl [--tolerance T]\n"
      "             [--window N]: per-counter trajectory vs the rolling\n"
      "             median baseline, exit 1 on a regression beyond T\n"
      "  solve      place a quorum system on a topology\n"
      "  simulate   message-level simulation of a solved placement\n"
      "             (--warmup W --jitter J --relay route via Thm 1.2 v0);\n"
      "             fault injection (docs/SIMULATION.md): --faults FILE\n"
      "             (qplace.faults.v1 schedule) --timeout T (attempt\n"
      "             deadline) --retries K (max attempts) --backoff B\n"
      "             (exponential backoff base, capped by --backoff-cap)\n"
      "             --availability-bucket W (availability series width)\n"
      "  check      solve, then verify the certified bounds "
      "(Thm 1.2/3.7/5.1, Eq. 19)\n"
      "common flags: --system --topology --nodes --seed --threads N\n"
      "              (--threads: solver thread pool size; defaults to the\n"
      "               QPLACE_THREADS env var, else hardware concurrency;\n"
      "               results are identical for every N -- docs/PARALLEL.md)\n"
      "observability (docs/OBSERVABILITY.md):\n"
      "  --stats-out FILE  write a qplace.run_report.v1 JSON run report\n"
      "                    (phase timers, solver counters, histograms)\n"
      "  --trace-out FILE  record phase spans and write Chrome trace_event\n"
      "                    JSON loadable in chrome://tracing or Perfetto\n"
      "  --profile-out FILE (solve|simulate) fold spans + counter deltas\n"
      "                    into a qplace.profile.v1 call-tree profile; the\n"
      "                    per-node counter attribution is deterministic\n"
      "                    (byte-identical for any --threads)\n"
      "  --profile-folded FILE  folded-stack sidecar for flamegraph\n"
      "                    renderers (default: <profile-out>.folded)\n"
      "  --access-log FILE (simulate) write one qplace.access_log.v2 JSONL\n"
      "                    record per resolved access; sampling via\n"
      "                    --access-log-sample R (keep fraction R) and\n"
      "                    --access-log-head N (first N records)\n"
      "live telemetry (docs/OBSERVABILITY.md, \"Live telemetry\"):\n"
      "  --series-out FILE (simulate) write qplace.timeseries.v1 JSONL:\n"
      "                    registry snapshots sampled on a deterministic\n"
      "                    sim-time grid, every --telemetry-interval sim\n"
      "                    units (default duration/100)\n"
      "  --metrics-port P  (simulate) serve GET /metrics (Prometheus text),\n"
      "                    /healthz and /report on 127.0.0.1:P for the life\n"
      "                    of the run (P=0 picks a free port; the bound\n"
      "                    port is printed to stderr)\n"
      "  --progress        (simulate) redraw a live progress line on\n"
      "                    stderr: %% done, accesses/s, availability, p99\n"
      "                    vs the analytic mean-delay bound\n"
      "  --trace FILE      (analyze) reconcile the causal sim-time access\n"
      "                    spans of a recorded Chrome trace against\n"
      "                    --access-log FILE; exit 1 on any mismatch\n";
  return 2;
}

/// --stats-out / --trace-out plumbing: tracing is switched on before the
/// command runs; artifacts are written after it returns.
class ObsSession {
 public:
  ObsSession(const cli::ParsedArgs& args, int threads)
      : stats_path_(args.get("stats-out", "")),
        trace_path_(args.get("trace-out", "")),
        profile_path_(args.get("profile-out", "")),
        command_(args.command()),
        report_(args.command()) {
    report_.set_context("threads", std::to_string(threads));
    report_.set_context("git_sha", QPLACE_GIT_SHA);
    // Stamped even (especially) when false: `analyze --diff` uses it to
    // warn instead of silently diffing structurally empty counter maps.
    report_.set_context("obs_compiled_in",
                        obs::compiled_in() ? "true" : "false");
    for (const auto& [name, value] : args.raw_flags()) {
      report_.set_context("flag." + name, value);
    }
    if (!trace_path_.empty()) {
      obs::TraceRecorder::instance().set_enabled(true);
    }
    if (!profile_path_.empty()) {
      // The sidecar is only meaningful next to a profile, so the flag is
      // read (and defaulted) only when --profile-out is present; a lone
      // --profile-folded surfaces as an unused-flag warning.
      folded_path_ = args.get("profile-folded", profile_path_ + ".folded");
      obs::ProfileCollector::instance().clear();
      obs::ProfileCollector::instance().set_enabled(true);
    }
  }

  obs::RunReport& report() { return report_; }

  /// Writes the requested artifacts. \throws std::runtime_error on I/O
  /// failure (surfaced as exit code 2 by main's handler).
  void finish() {
    if (!trace_path_.empty()) {
      obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
      recorder.set_enabled(false);
      // A full ring silently overwrites the oldest events, which then look
      // like missing spans to `analyze --trace` -- say so out loud and stamp
      // the counts into the run report (nondeterministic: event *capacity*
      // pressure depends on thread count and ring sharing, not on the run's
      // deterministic state).
      const std::uint64_t dropped = recorder.dropped_count();
      if (dropped > 0) {
        std::cerr << "warning: trace ring overflow: " << dropped
                  << " events dropped (oldest overwritten; per-thread "
                     "capacity "
                  << obs::TraceRecorder::kRingCapacity
                  << ") -- `analyze --trace` will report missing spans\n";
      }
      report_.add_nondeterministic_json(
          "trace",
          "{\"events\": " + std::to_string(recorder.event_count()) +
              ", \"dropped\": " + std::to_string(dropped) + "}");
      obs::write_file(trace_path_, recorder.to_chrome_json());
    }
    if (!profile_path_.empty()) {
      obs::ProfileCollector& collector = obs::ProfileCollector::instance();
      collector.set_enabled(false);
      const obs::Profile profile =
          collector.fold(obs::Registry::instance().counter_names());
      // A full ring folds evicted attribution into the <truncated> node --
      // totals survive, but *placement* of that work is lost, which also
      // voids the cross-thread-count byte-identity promise for this run.
      if (profile.dropped > 0) {
        std::cerr << "warning: profile ring overflow: " << profile.dropped
                  << " events folded into '<truncated>' (per-thread "
                     "capacity "
                  << obs::ProfileCollector::kRingCapacity
                  << ") -- per-node attribution is incomplete and no longer "
                     "thread-count invariant\n";
      }
      obs::write_file(profile_path_,
                      profile.to_json(command_, report_.context()));
      obs::write_file(folded_path_, profile.to_folded());
    }
    if (!stats_path_.empty()) {
      report_.add_nondeterministic_json("pool", exec::pool_stats_json());
      obs::write_file(stats_path_, report_.to_json());
    }
  }

 private:
  std::string stats_path_;
  std::string trace_path_;
  std::string profile_path_;
  std::string folded_path_;
  std::string command_;
  obs::RunReport report_;
};

/// Session of the current invocation; commands may add histograms etc.
ObsSession* g_obs = nullptr;

/// Uniform capacities: --cap (default 1.2) times the max element load.
std::vector<double> capacities_for(const cli::ParsedArgs& args,
                                   const quorum::QuorumSystem& system,
                                   const quorum::AccessStrategy& strategy,
                                   int nodes) {
  const std::vector<double> loads = quorum::element_loads(system, strategy);
  double max_load = 0.0;
  for (double l : loads) max_load = std::max(max_load, l);
  return std::vector<double>(static_cast<std::size_t>(nodes),
                             args.get_double("cap", 1.2) * max_load);
}

/// The instance every placement command works on, built deterministically
/// from the flags (--system/--topology/--nodes/--seed/--cap): the same
/// flags always rebuild the same instance, which is what lets `analyze
/// --access-log` re-derive the placement a `simulate` run used. Stamps the
/// instance content digest into the run-report context.
struct InstanceBundle {
  graph::Graph graph;
  core::QppInstance instance;
  std::string digest;  ///< core::instance_digest_hex(instance)
};

InstanceBundle build_instance(const cli::ParsedArgs& args) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  graph::Graph g = cli::make_topology(args, rng);
  const graph::Metric metric = graph::Metric::from_graph(g);
  const quorum::QuorumSystem system = cli::make_system(args);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const std::vector<double> caps =
      capacities_for(args, system, strategy, g.num_nodes());
  core::QppInstance instance(metric, caps, system, strategy);
  std::string digest = core::instance_digest_hex(instance);
  if (g_obs != nullptr) {
    g_obs->report().set_context("instance_digest", digest);
  }
  return InstanceBundle{std::move(g), std::move(instance), std::move(digest)};
}

/// Reads and parses a whole JSON document (run report or bench baseline).
obs::json::Value load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return obs::json::parse(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

/// Reads and parses a `qplace.faults.v1` schedule file (--faults FLAG).
sim::FaultSchedule load_faults_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open fault schedule '" + path + "'");
  }
  return sim::load_fault_schedule(in);
}

int cmd_topology(const cli::ParsedArgs& args) {
  std::mt19937_64 rng(
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const graph::Graph g = cli::make_topology(args, rng);
  std::cout << report::to_dot(g);
  return 0;
}

/// `qplace analyze --access-log LOG <simulate flags>`: replay a recorded
/// access log against the analytic model. The instance and placement are
/// re-derived from the flags (both deterministic), digest-checked against
/// the log header, and the empirical Delta/Gamma and observed loads are
/// cross-checked against the evaluators and the certificate's load bound.
/// Exit 0 = all checks pass, 1 = a check failed, 2 = wrong instance.
int cmd_analyze_access_log(const cli::ParsedArgs& args) {
  const std::string path = args.get("access-log", "");
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open access log '" << path << "'\n";
    return 2;
  }
  const obs::ParsedAccessLog log = obs::parse_access_log(in);

  const InstanceBundle bundle = build_instance(args);
  const std::string log_digest = log.context_or("instance_digest", "");
  if (!log_digest.empty() && log_digest != bundle.digest) {
    std::cerr << "error: instance digest mismatch: access log has "
              << log_digest << ", flags rebuild " << bundle.digest
              << " -- pass the same --system/--topology/--nodes/--seed/--cap "
                 "flags the simulate run used\n";
    return 2;
  }

  // Same solver invocation `qplace simulate` used, so the placement the
  // log was recorded for is reproduced exactly.
  core::QppSolveOptions solve_options;
  const auto solved = core::solve_qpp(bundle.instance, solve_options);
  if (!solved) {
    std::cerr << "infeasible\n";
    return 1;
  }

  // Optional fault schedule: digest-matched against the log header, then
  // handed to the analyzer for the retry/availability cross-checks.
  sim::FaultSchedule faults;
  const bool have_faults = !args.get("faults", "").empty();
  if (have_faults) {
    faults = load_faults_file(args.get("faults", ""));
    const std::string log_fault_digest = log.context_or("fault_digest", "");
    const std::string file_digest = sim::fault_schedule_digest(faults);
    if (!log_fault_digest.empty() && log_fault_digest != file_digest) {
      std::cerr << "error: fault schedule digest mismatch: access log has "
                << log_fault_digest << ", --faults file hashes to "
                << file_digest
                << " -- pass the same schedule the simulate run used\n";
      return 2;
    }
  }

  obs::AnalyzeOptions options;
  options.alpha = args.get_double("alpha", 2.0);
  options.z = args.get_double("z", 1.96);
  options.min_samples = args.get_int("min-samples", 10);
  options.load_slack = args.get_double("load-slack", 0.05);
  const obs::AccessLogAnalysis analysis = obs::analyze_access_log(
      bundle.instance, solved->placement, log, options,
      have_faults ? &faults : nullptr);

  const char* objective = analysis.sequential ? "Gamma" : "Delta";
  std::cout << "access log: " << analysis.total_accesses << " records ("
            << (analysis.sequential ? "sequential" : "parallel")
            << ", relay " << analysis.relay << ", jitter "
            << report::Table::num(analysis.jitter, 3) << ", service rate "
            << report::Table::num(analysis.service_rate, 3) << ")\n";

  report::Table summary({"metric", "value"});
  summary.add_row({std::string("empirical mean ") + objective,
                   report::Table::num(analysis.overall_mean, 4) + " +/- " +
                       report::Table::num(analysis.overall_half_width, 4)});
  summary.add_row({std::string("analytic mean ") + objective,
                   report::Table::num(analysis.overall_analytic, 4)});
  summary.add_row({"mean wall-clock delay",
                   report::Table::num(analysis.wall_mean, 4)});
  summary.add_row({"mean probe queue wait",
                   report::Table::num(analysis.mean_queue_wait, 4)});
  summary.add_row({"max probe queue wait",
                   report::Table::num(analysis.max_queue_wait, 4)});
  summary.print(std::cout);

  report::Table clients(
      {"client", "accesses", "empirical", "+/-", "analytic", "status"});
  for (const obs::ClientCheck& check : analysis.clients) {
    clients.add_row({std::to_string(check.client),
                     std::to_string(check.count),
                     report::Table::num(check.empirical_mean, 4),
                     report::Table::num(check.half_width, 4),
                     report::Table::num(check.analytic, 4),
                     check.checked ? (check.ok ? "ok" : "FAIL") : "skipped"});
  }
  std::cout << "\nper-client empirical vs analytic " << objective
            << "_f(v) (" << analysis.clients_ok << "/"
            << analysis.clients_checked << " checked clients ok):\n";
  clients.print(std::cout);

  report::Table nodes({"node", "probes", "observed load", "analytic load",
                       "bound", "status"});
  for (const obs::NodeCheck& check : analysis.nodes) {
    if (check.probes == 0 && check.analytic_load == 0.0) continue;
    nodes.add_row({std::to_string(check.node), std::to_string(check.probes),
                   report::Table::num(check.observed_load, 4),
                   report::Table::num(check.analytic_load, 4),
                   report::Table::num(check.bound, 4),
                   check.ok ? "ok" : "FAIL"});
  }
  std::cout << "\nper-node observed load vs (alpha+1)-cap bound:\n";
  nodes.print(std::cout);

  report::Table quorums(
      {"quorum", "accesses", "share", "p(Q)", "mean delay"});
  for (const obs::QuorumBreakdown& breakdown : analysis.quorums) {
    quorums.add_row({std::to_string(breakdown.quorum),
                     std::to_string(breakdown.count),
                     report::Table::num(breakdown.share, 4),
                     report::Table::num(breakdown.strategy_probability, 4),
                     report::Table::num(breakdown.mean_delay, 4)});
  }
  std::cout << "\nper-quorum access mix:\n";
  quorums.print(std::cout);

  if (analysis.faulty || analysis.faults_checked) {
    report::Table faults_table({"metric", "value"});
    faults_table.add_row({"ok accesses",
                          std::to_string(analysis.ok_accesses)});
    faults_table.add_row({"failed accesses",
                          std::to_string(analysis.failed_accesses)});
    faults_table.add_row({"unavailable accesses",
                          std::to_string(analysis.unavailable_accesses)});
    faults_table.add_row({"total retries",
                          std::to_string(analysis.total_retries)});
    faults_table.add_row({"availability",
                          report::Table::num(analysis.availability, 4)});
    if (analysis.faults_checked) {
      faults_table.add_row({"schedule cross-check",
                            analysis.faults_ok() ? "ok" : "FAIL"});
    }
    std::cout << "\nfault summary (delay/load CI checks skipped under "
                 "faults):\n";
    faults_table.print(std::cout);
    for (const std::string& finding : analysis.fault_findings) {
      std::cout << "  finding: " << finding << "\n";
    }
  }

  std::cout << (analysis.ok()
                    ? "\nACCESS LOG OK: empirical delays and loads match the "
                      "analytic model\n"
                    : "\nACCESS LOG CHECK FAILED: see FAIL rows above\n");
  return analysis.ok() ? 0 : 1;
}

/// `qplace analyze --diff BASE --against CAND [--tolerance T]`: structured
/// run-report diff. Deterministic counters/series are gated on T (default
/// 0), histograms are reported, wall times are labelled nondeterministic
/// and never gated. Exit 0 = within tolerance, 1 = drift, 2 = not
/// comparable (schema or instance digest mismatch, unreadable file).
int cmd_analyze_diff(const cli::ParsedArgs& args) {
  const std::string base_path = args.get("diff", "");
  const std::string cand_path = args.require("against");
  const double tolerance = args.get_double("tolerance", 0.0);

  obs::json::Value base;
  obs::json::Value cand;
  try {
    base = load_json_file(base_path);
    cand = load_json_file(cand_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const obs::ReportDiff diff = obs::diff_run_reports(base, cand);
  if (!diff.error.empty()) {
    std::cerr << "error: " << diff.error << "\n";
    return 2;
  }
  if (diff.obs_off_base || diff.obs_off_cand) {
    std::cerr << "warning: "
              << (diff.obs_off_base && diff.obs_off_cand
                      ? "both reports"
                      : (diff.obs_off_base ? "base report" : "candidate"))
              << " from a -DQPLACE_OBS=OFF build: counter maps are empty, a "
                 "zero-drift verdict is vacuous\n";
  }

  std::cout << "report diff: " << base_path << " (base) vs " << cand_path
            << " (candidate)\n\ndeterministic counters (gated, tolerance "
            << report::Table::num(tolerance, 4) << "):\n";
  report::Table counters({"counter", "base", "candidate", "drift"});
  for (const obs::CounterDiff& entry : diff.counters) {
    counters.add_row(
        {entry.name, entry.in_base ? std::to_string(entry.base) : "-",
         entry.in_cand ? std::to_string(entry.cand) : "-",
         report::Table::num(entry.rel_drift(), 4)});
  }
  counters.print(std::cout);

  if (!diff.series.empty()) {
    std::cout << "\ndeterministic series (gated, exact equality):\n";
    report::Table series({"series", "status"});
    for (const obs::SeriesDiff& entry : diff.series) {
      series.add_row({entry.name,
                      entry.in_base != entry.in_cand
                          ? (entry.in_base ? "only in base" : "only in cand")
                          : (entry.equal ? "equal" : "DIVERGED")});
    }
    series.print(std::cout);
  }

  if (!diff.histograms.empty()) {
    std::cout << "\ndeterministic histograms (reported, not gated):\n";
    report::Table hists({"histogram", "count b/c", "mean b/c", "p99 b/c"});
    for (const obs::HistogramDiff& entry : diff.histograms) {
      hists.add_row({entry.name,
                     report::Table::num(entry.count_base, 0) + "/" +
                         report::Table::num(entry.count_cand, 0),
                     report::Table::num(entry.mean_base, 4) + "/" +
                         report::Table::num(entry.mean_cand, 4),
                     report::Table::num(entry.p99_base, 4) + "/" +
                         report::Table::num(entry.p99_cand, 4)});
    }
    hists.print(std::cout);
  }

  if (!diff.timers.empty()) {
    std::cout << "\nwall-time timers (NONDETERMINISTIC, never gated):\n";
    report::Table timers({"timer", "calls b/c", "ms b/c", "ratio"});
    for (const obs::TimerDiff& entry : diff.timers) {
      timers.add_row({entry.name,
                      report::Table::num(entry.calls_base, 0) + "/" +
                          report::Table::num(entry.calls_cand, 0),
                      report::Table::num(entry.ms_base, 3) + "/" +
                          report::Table::num(entry.ms_cand, 3),
                      entry.ms_base > 0.0
                          ? report::Table::num(
                                entry.ms_cand / entry.ms_base, 3)
                          : "-"});
    }
    timers.print(std::cout);
  }

  if (!diff.resources.empty()) {
    std::cout << "\nprocess resources (NONDETERMINISTIC, never gated):\n";
    report::Table resources({"resource", "base", "candidate", "ratio"});
    for (const obs::ResourceDiff& entry : diff.resources) {
      resources.add_row(
          {entry.name, report::Table::num(entry.base, 0),
           report::Table::num(entry.cand, 0),
           entry.base > 0.0
               ? report::Table::num(entry.cand / entry.base, 3)
               : "-"});
    }
    resources.print(std::cout);
  }

  const double drift = diff.max_deterministic_drift();
  const bool ok = diff.deterministic_ok(tolerance);
  std::cout << "\nmax deterministic drift: " << report::Table::num(drift, 6)
            << " (tolerance " << report::Table::num(tolerance, 6) << ") -- "
            << (ok ? "OK" : "REGRESSION") << "\n";
  if (!ok) {
    // Name every offender so a failing gate says what regressed, not just
    // that something did.
    for (const obs::CounterDiff& entry : diff.counters) {
      if (entry.rel_drift() > tolerance) {
        std::cout << "  counter '" << entry.name << "' drifted "
                  << report::Table::num(entry.rel_drift(), 6)
                  << " > tolerance " << report::Table::num(tolerance, 6)
                  << " (base " << entry.base << ", candidate " << entry.cand
                  << ")\n";
      }
    }
    for (const obs::SeriesDiff& entry : diff.series) {
      if (entry.in_base != entry.in_cand || !entry.equal) {
        std::cout << "  series '" << entry.name
                  << (entry.in_base != entry.in_cand
                          ? "' present in only one report\n"
                          : "' diverged (gated at exact equality)\n");
      }
    }
  }
  return ok ? 0 : 1;
}

/// `qplace analyze --profile-diff BASE --against CAND [--tolerance T]
/// [--wall-tolerance W]`: structured diff of two qplace.profile.v1
/// documents. Per-node counter attribution is deterministic and gated on T
/// (default 0, like --diff); per-node wall time is nondeterministic and
/// gated only when --wall-tolerance is passed. Exit 0 = within tolerance,
/// 1 = drift, 2 = not comparable.
int cmd_analyze_profile_diff(const cli::ParsedArgs& args) {
  const std::string base_path = args.get("profile-diff", "");
  const std::string cand_path = args.require("against");
  const double tolerance = args.get_double("tolerance", 0.0);
  const bool wall_gated = !args.get("wall-tolerance", "").empty();
  const double wall_tolerance = args.get_double("wall-tolerance", 0.0);

  obs::json::Value base;
  obs::json::Value cand;
  try {
    base = load_json_file(base_path);
    cand = load_json_file(cand_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const obs::ProfileDiff diff = obs::diff_profiles(base, cand);
  if (!diff.error.empty()) {
    std::cerr << "error: " << diff.error << "\n";
    return 2;
  }

  std::cout << "profile diff: " << base_path << " (base) vs " << cand_path
            << " (candidate)\n";

  if (!diff.structure.empty()) {
    std::cout << "\nstructural drift (node paths on one side only -- gated "
                 "like infinite drift):\n";
    report::Table structure({"path", "where"});
    for (const obs::ProfileStructureDiff& entry : diff.structure) {
      structure.add_row({entry.path.empty() ? "(root)" : entry.path,
                         entry.in_base ? "only in base" : "only in cand"});
    }
    structure.print(std::cout);
  }

  std::size_t drifted = 0;
  report::Table counters({"path", "counter", "base", "candidate", "drift"});
  for (const obs::ProfileCounterDiff& entry : diff.counters) {
    if (entry.rel_drift() == 0.0) continue;
    ++drifted;
    counters.add_row(
        {entry.path.empty() ? "(root)" : entry.path, entry.counter,
         entry.in_base ? std::to_string(entry.base) : "-",
         entry.in_cand ? std::to_string(entry.cand) : "-",
         report::Table::num(entry.rel_drift(), 4)});
  }
  std::cout << "\ndeterministic per-node counters (gated, tolerance "
            << report::Table::num(tolerance, 4) << "): " << drifted << " of "
            << diff.counters.size() << " attributions drifted\n";
  if (drifted > 0) counters.print(std::cout);

  if (!diff.walls.empty()) {
    std::cout << "\nper-node wall time (NONDETERMINISTIC, "
              << (wall_gated ? "gated, tolerance " +
                                   report::Table::num(wall_tolerance, 4)
                             : std::string("never gated"))
              << "):\n";
    report::Table walls({"path", "calls b/c", "total ms b/c", "ratio"});
    for (const obs::ProfileWallDiff& entry : diff.walls) {
      walls.add_row({entry.path.empty() ? "(root)" : entry.path,
                     report::Table::num(entry.calls_base, 0) + "/" +
                         report::Table::num(entry.calls_cand, 0),
                     report::Table::num(entry.total_ms_base, 3) + "/" +
                         report::Table::num(entry.total_ms_cand, 3),
                     entry.total_ms_base > 0.0
                         ? report::Table::num(
                               entry.total_ms_cand / entry.total_ms_base, 3)
                         : "-"});
    }
    walls.print(std::cout);
  }

  const double drift = diff.max_deterministic_drift();
  bool ok = diff.deterministic_ok(tolerance);
  std::cout << "\nmax deterministic drift: " << report::Table::num(drift, 6)
            << " (tolerance " << report::Table::num(tolerance, 6) << ") -- "
            << (diff.deterministic_ok(tolerance) ? "OK" : "REGRESSION")
            << "\n";
  if (wall_gated) {
    const double wall_drift = diff.max_wall_drift();
    const bool wall_ok = wall_drift <= wall_tolerance;
    std::cout << "max wall drift: " << report::Table::num(wall_drift, 6)
              << " (tolerance " << report::Table::num(wall_tolerance, 6)
              << ") -- " << (wall_ok ? "OK" : "REGRESSION") << "\n";
    ok = ok && wall_ok;
  }
  return ok ? 0 : 1;
}

/// `qplace analyze --trend HISTORY.jsonl [--tolerance T] [--window N]`:
/// per-counter trajectory of the bench history appended by
/// `bench/run_bench.sh --history`. The newest entry is compared against the
/// median of the up-to-N preceding same-instance entries; exit 1 when a
/// counter grew beyond T over that baseline, 0 otherwise (including the
/// no-baseline-yet case), 2 on unusable input.
int cmd_analyze_trend(const cli::ParsedArgs& args) {
  const std::string path = args.get("trend", "");
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open bench history '" << path << "'\n";
    return 2;
  }
  std::vector<obs::json::Value> entries;
  std::size_t bad_lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      entries.push_back(obs::json::parse(line));
    } catch (const std::exception&) {
      ++bad_lines;  // a corrupt line degrades the window, never the verdict
    }
  }
  if (bad_lines > 0) {
    std::cerr << "warning: " << bad_lines << " unparseable history line"
              << (bad_lines == 1 ? "" : "s") << " skipped\n";
  }

  obs::TrendOptions options;
  options.tolerance = args.get_double("tolerance", options.tolerance);
  const int window = args.get_int("window", static_cast<int>(options.window));
  if (window < 1) {
    std::cerr << "error: --window must be >= 1\n";
    return 2;
  }
  options.window = static_cast<std::size_t>(window);
  const obs::TrendAnalysis trend = obs::analyze_trend(entries, options);
  if (!trend.error.empty()) {
    std::cerr << "error: " << path << ": " << trend.error << "\n";
    return 2;
  }

  std::cout << "bench trend: " << path << " (" << trend.entries_total
            << " lines, " << trend.baseline_entries
            << " baseline entries in window, " << trend.entries_skipped
            << " skipped)\nlatest entry: git_sha " << trend.latest_git_sha
            << ", instance " << trend.instance_digest << "\n\n";

  report::Table table(
      {"counter", "baseline (median)", "latest", "change", "status"});
  for (const obs::TrendCounter& entry : trend.counters) {
    const double change = entry.rel_change();
    std::string status;
    if (!entry.in_latest) {
      status = "VANISHED";
    } else if (!entry.in_baseline) {
      status = "new";
    } else if (entry.regression() > options.tolerance) {
      status = "REGRESSION";
    } else if (change < 0.0) {
      status = "improved";
    } else {
      status = "ok";
    }
    table.add_row(
        {entry.name,
         entry.in_baseline ? report::Table::num(entry.baseline, 1) : "-",
         entry.in_latest ? std::to_string(entry.latest) : "-",
         report::Table::num(change, 4), status});
  }
  table.print(std::cout);

  if (!trend.gated) {
    std::cout << "\nno baseline yet (" << trend.baseline_entries
              << " comparable prior entries) -- nothing gated\n";
    return 0;
  }
  const bool ok = trend.ok(options.tolerance);
  std::cout << "\nmax regression: "
            << report::Table::num(trend.max_regression(), 6) << " (tolerance "
            << report::Table::num(options.tolerance, 6) << ", window "
            << window << ") -- " << (ok ? "OK" : "REGRESSION") << "\n";
  return ok ? 0 : 1;
}

/// `qplace analyze --trace TRACE --access-log LOG [--tolerance T]
/// [--max-findings N]`: reconcile the causal sim-time span trees of a
/// recorded Chrome trace with the access log of the same run (the rules
/// live in analyze/trace_check.hpp). Exit 0 = every logged access is
/// explained by its span tree, 1 = a mismatch, 2 = unreadable input.
int cmd_analyze_trace(const cli::ParsedArgs& args) {
  const std::string trace_path = args.get("trace", "");
  const std::string log_path = args.require("access-log");

  obs::json::Value trace;
  try {
    trace = load_json_file(trace_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  std::ifstream in(log_path);
  if (!in) {
    std::cerr << "error: cannot open access log '" << log_path << "'\n";
    return 2;
  }
  const obs::ParsedAccessLog log = obs::parse_access_log(in);

  obs::TraceCheckOptions options;
  options.tolerance = args.get_double("tolerance", options.tolerance);
  options.max_findings = args.get_int("max-findings", options.max_findings);
  obs::TraceCheckResult result;
  try {
    result = obs::check_trace_against_log(trace, log, options);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "trace check: " << trace_path << " vs access log " << log_path
            << "\n";
  report::Table table({"metric", "value"});
  table.add_row({"sim.access spans", std::to_string(result.access_spans)});
  table.add_row({"log records", std::to_string(log.records.size())});
  table.add_row({"matched records", std::to_string(result.matched_records)});
  table.add_row({"checked attempt spans",
                 std::to_string(result.checked_attempts)});
  table.add_row({"checked probe spans",
                 std::to_string(result.checked_probes)});
  table.add_row({"violations", std::to_string(result.violations)});
  table.print(std::cout);
  for (const std::string& finding : result.findings) {
    std::cout << "  finding: " << finding << "\n";
  }
  const auto shown = static_cast<std::int64_t>(result.findings.size());
  if (result.violations > shown) {
    std::cout << "  ... and " << (result.violations - shown)
              << " more (raise --max-findings to see them)\n";
  }
  std::cout << (result.ok()
                    ? "TRACE OK: every logged access is explained by its "
                      "span tree\n"
                    : "TRACE CHECK FAILED: spans and access log disagree\n");
  return result.ok() ? 0 : 1;
}

int cmd_analyze(const cli::ParsedArgs& args) {
  // --trace first: it also takes --access-log, so it must win the dispatch.
  if (args.has("trace")) return cmd_analyze_trace(args);
  if (args.has("profile-diff")) return cmd_analyze_profile_diff(args);
  if (args.has("trend")) return cmd_analyze_trend(args);
  if (args.has("diff")) return cmd_analyze_diff(args);
  if (args.has("access-log")) return cmd_analyze_access_log(args);
  const quorum::QuorumSystem system = cli::make_system(args);
  const double p = args.get_double("p", 0.1);
  std::cout << system.describe() << "\n";
  report::Table table({"metric", "value"});
  table.add_row({"intersecting", system.is_intersecting() ? "yes" : "no"});
  table.add_row({"minimal", system.is_minimal() ? "yes" : "no"});
  table.add_row({"fault tolerance",
                 std::to_string(quorum::fault_tolerance(system))});
  const quorum::OptimalStrategy best = quorum::optimal_load_strategy(system);
  table.add_row({"optimal load", report::Table::num(best.load, 4)});
  table.add_row({"load lower bound",
                 report::Table::num(quorum::load_lower_bound(system), 4)});
  if (system.universe_size() <= 20) {
    table.add_row({"failure prob (p=" + report::Table::num(p, 2) + ")",
                   report::Table::num(
                       quorum::failure_probability_exact(system, p), 6)});
  } else {
    std::mt19937_64 rng(7);
    table.add_row(
        {"failure prob (MC)",
         report::Table::num(
             quorum::failure_probability_monte_carlo(system, p, 20000, rng),
             6)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_solve(const cli::ParsedArgs& args) {
  const InstanceBundle bundle = build_instance(args);
  const core::QppInstance& instance = bundle.instance;
  const graph::Graph& g = bundle.graph;

  const std::string algorithm = args.get("algorithm", "qpp");
  core::Placement placement;
  std::string detail;
  if (algorithm == "qpp") {
    core::QppSolveOptions options;
    options.alpha = args.get_double("alpha", 2.0);
    const auto result = core::solve_qpp(instance, options);
    if (!result) {
      std::cerr << "infeasible: no capacity-respecting fractional placement\n";
      return 1;
    }
    placement = result->placement;
    detail = "relay v0 = " + std::to_string(result->chosen_source);
  } else if (algorithm == "ssqpp") {
    const core::SsqppInstance view(instance.metric(), instance.capacities(),
                                   instance.system(), instance.strategy(),
                                   args.get_int("source", 0));
    const auto result =
        core::solve_ssqpp(view, args.get_double("alpha", 2.0));
    if (!result) {
      std::cerr << "infeasible\n";
      return 1;
    }
    placement = result->placement;
    detail = "Z* = " + report::Table::num(result->lp_objective, 4);
  } else if (algorithm == "total") {
    const auto result = core::solve_total_delay(instance);
    if (!result) {
      std::cerr << "infeasible\n";
      return 1;
    }
    placement = result->placement;
    detail = "GAP LP = " + report::Table::num(result->lp_objective, 4);
  } else if (algorithm == "grid") {
    const auto result =
        core::solve_qpp_grid(instance, args.get_int("k", 3));
    if (!result) {
      std::cerr << "infeasible: not enough capacity slots\n";
      return 1;
    }
    placement = result->placement;
    detail = "source = " + std::to_string(result->chosen_source);
  } else if (algorithm == "majority") {
    const int n = args.get_int("n", 5);
    const auto result =
        core::solve_qpp_majority(instance, args.get_int("t", n / 2 + 1));
    if (!result) {
      std::cerr << "infeasible: not enough capacity slots\n";
      return 1;
    }
    placement = result->placement;
    detail = "source = " + std::to_string(result->chosen_source);
  } else {
    std::cerr << "unknown --algorithm '" << algorithm
              << "' (qpp|ssqpp|total|grid|majority)\n";
    return 2;
  }

  std::cout << "algorithm: " << algorithm << " (" << detail << ")\n"
            << core::evaluate_placement(instance, placement).to_string();
  std::cout << "placement:";
  for (std::size_t u = 0; u < placement.size(); ++u) {
    std::cout << " u" << u << "->n" << placement[u];
  }
  std::cout << "\n";
  if (args.has("dot")) {
    std::cout << report::placement_to_dot(g, placement);
  }
  return 0;
}

/// `qplace check`: run a solver, then machine-verify every bound it claims.
int cmd_check(const cli::ParsedArgs& args) {
  const InstanceBundle bundle = build_instance(args);
  const core::QppInstance& instance = bundle.instance;

  const check::ValidationReport instance_report =
      check::validate_instance(instance);
  if (!instance_report.ok()) {
    std::cerr << "instance invalid:\n" << instance_report.to_string();
    return 1;
  }

  check::CertificateOptions options;
  options.alpha = args.get_double("alpha", 2.0);
  const std::string algorithm = args.get("algorithm", "qpp");
  check::Certificate certificate;
  std::string claim;
  if (algorithm == "qpp") {
    core::QppSolveOptions solve_options;
    solve_options.alpha = options.alpha;
    const auto result = core::solve_qpp(instance, solve_options);
    if (!result) {
      std::cerr << "infeasible: no capacity-respecting fractional placement\n";
      return 1;
    }
    certificate = check::check_certificate(instance, *result, options);
    claim = "Thm 1.2 (5a/(a-1)-approx, load <= (a+1) cap), relay v0 = " +
            std::to_string(result->chosen_source);
  } else if (algorithm == "ssqpp") {
    const core::SsqppInstance view(instance.metric(), instance.capacities(),
                                   instance.system(), instance.strategy(),
                                   args.get_int("source", 0));
    const auto result = core::solve_ssqpp(view, options.alpha);
    if (!result) {
      std::cerr << "infeasible\n";
      return 1;
    }
    certificate = check::check_certificate(view, *result, options);
    claim = "Thm 3.7 (a/(a-1)-approx vs Z*, load <= (a+1) cap)";
  } else if (algorithm == "total") {
    const auto result = core::solve_total_delay(instance);
    if (!result) {
      std::cerr << "infeasible\n";
      return 1;
    }
    certificate = check::check_certificate(instance, *result, options);
    claim = "Thm 5.1 (cost <= GAP LP <= OPT, load <= 2 cap)";
  } else if (algorithm == "majority") {
    const int n = args.get_int("n", 5);
    const int t = args.get_int("t", n / 2 + 1);
    const core::SsqppInstance view(instance.metric(), instance.capacities(),
                                   instance.system(), instance.strategy(),
                                   args.get_int("source", 0));
    const auto result = core::majority_layout(view, t);
    if (!result) {
      std::cerr << "infeasible: not enough capacity slots\n";
      return 1;
    }
    certificate = check::check_certificate(view, *result, t, options);
    claim = "Eq. (19) closed form + exact capacity respect (Thm 1.3)";
  } else {
    std::cerr << "unknown --algorithm '" << algorithm
              << "' (qpp|ssqpp|total|majority)\n";
    return 2;
  }

  std::cout << "certificate for " << algorithm << ": " << claim << "\n"
            << certificate.to_string()
            << (certificate.ok() ? "CERTIFIED: all bounds hold\n"
                                 : "FAILED: some bound is violated\n");
  return certificate.ok() ? 0 : 1;
}

int cmd_simulate(const cli::ParsedArgs& args) {
  const InstanceBundle bundle = build_instance(args);
  const core::QppInstance& instance = bundle.instance;

  core::QppSolveOptions options;
  const auto solved = core::solve_qpp(instance, options);
  if (!solved) {
    std::cerr << "infeasible\n";
    return 1;
  }
  sim::SimulationConfig config;
  config.duration = args.get_double("duration", 1000.0);
  config.arrival_rate_per_client = args.get_double("rate", 1.0);
  config.service_rate = args.get_double("service-rate", 0.0);
  config.seed = static_cast<std::uint64_t>(args.get_int("sim-seed", 1));
  config.mode = args.get("mode", "parallel") == "sequential"
                    ? sim::AccessMode::kSequential
                    : sim::AccessMode::kParallel;
  config.warmup = args.get_double("warmup", 0.0);
  config.latency_jitter = args.get_double("jitter", 0.0);
  if (!args.get("relay", "").empty()) {
    // Route every access via the Thm 1.2 relay v0 the solver chose -- the
    // Lemma 3.1 access model the bound is actually proved for (eq. (4)).
    // The relay argument only exists for parallel (max-delay) accesses.
    if (config.mode == sim::AccessMode::kSequential) {
      std::cerr << "error: --relay applies to the parallel access model "
                   "(Thm 1.2); drop it or use --mode parallel\n";
      return 2;
    }
    config.relay_node = solved->chosen_source;
  }

  // Fault injection (docs/SIMULATION.md): a deterministic schedule plus the
  // timeout/retry knobs that drive quorum re-selection.
  sim::FaultSchedule faults;
  const std::string faults_path = args.get("faults", "");
  config.probe_timeout = args.get_double("timeout", 0.0);
  config.max_attempts = args.get_int("retries", 3);
  config.retry_backoff = args.get_double("backoff", 0.5);
  config.retry_backoff_cap = args.get_double("backoff-cap", 8.0);
  config.availability_bucket = args.get_double("availability-bucket", 0.0);
  if (!faults_path.empty()) {
    faults = load_faults_file(faults_path);
    if (config.probe_timeout <= 0.0) {
      std::cerr << "error: --faults requires a positive --timeout so "
                   "dropped probes can be detected and retried\n";
      return 2;
    }
    config.faults = &faults;
  }

  // Optional per-access event log (schema qplace.access_log.v2).
  const std::string log_path = args.get("access-log", "");
  std::ofstream log_stream;
  std::unique_ptr<obs::AccessLogWriter> log_writer;
  if (!log_path.empty()) {
    log_stream.open(log_path);
    if (!log_stream) {
      std::cerr << "error: cannot open access log '" << log_path
                << "' for writing\n";
      return 2;
    }
    obs::AccessLogConfig log_config;
    log_config.sample_rate = args.get_double("access-log-sample", 1.0);
    log_config.head_limit = args.get_int("access-log-head", 0);
    log_config.sample_seed =
        static_cast<std::uint64_t>(args.get_int("access-log-seed", 0));
    log_writer =
        std::make_unique<obs::AccessLogWriter>(log_stream, log_config);
    // Everything `qplace analyze --access-log` needs to rebuild the
    // instance/model and to refuse a mismatched one.
    log_writer->set_context("instance_digest", bundle.digest);
    log_writer->set_context("git_sha", QPLACE_GIT_SHA);
    log_writer->set_context(
        "mode", config.mode == sim::AccessMode::kSequential ? "sequential"
                                                            : "parallel");
    log_writer->set_context("relay", std::to_string(config.relay_node));
    log_writer->set_context("seed", std::to_string(config.seed));
    log_writer->set_context("duration",
                            report::Table::num(config.duration, 6));
    log_writer->set_context("warmup", report::Table::num(config.warmup, 6));
    log_writer->set_context("jitter",
                            report::Table::num(config.latency_jitter, 6));
    log_writer->set_context("service_rate",
                            report::Table::num(config.service_rate, 6));
    log_writer->set_context("rate",
                            report::Table::num(
                                config.arrival_rate_per_client, 6));
    log_writer->set_context("sample_rate",
                            report::Table::num(log_config.sample_rate, 6));
    log_writer->set_context("head_limit",
                            std::to_string(log_config.head_limit));
    log_writer->set_context("sample_seed",
                            std::to_string(log_config.sample_seed));
    if (config.faults != nullptr) {
      log_writer->set_context("fault_digest",
                              sim::fault_schedule_digest(*config.faults));
      log_writer->set_context("timeout",
                              report::Table::num(config.probe_timeout, 6));
      log_writer->set_context("retries",
                              std::to_string(config.max_attempts));
      log_writer->set_context("backoff",
                              report::Table::num(config.retry_backoff, 6));
    }
    config.access_log = log_writer.get();
  }

  // Analytic mean delay for this access model -- printed in the summary
  // table and used as the --progress comparison baseline.
  double analytic = 0.0;
  if (config.relay_node >= 0) {
    analytic = core::relay_delay(instance, solved->placement,
                                 config.relay_node);
  } else if (config.mode == sim::AccessMode::kParallel) {
    analytic = core::average_max_delay(instance, solved->placement);
  } else {
    analytic = core::average_total_delay(instance, solved->placement);
  }

  // Live telemetry (docs/OBSERVABILITY.md, "Live telemetry"): periodic
  // registry snapshots on a deterministic sim-time grid, optionally flushed
  // to --series-out and/or served live over an embedded HTTP endpoint.
  const std::string series_path = args.get("series-out", "");
  const int metrics_port = args.get_int("metrics-port", -1);
  const double telemetry_interval =
      args.get_double("telemetry-interval", config.duration / 100.0);
  obs::MetricsSnapshotter snapshotter;
  if (!series_path.empty() || metrics_port >= 0 ||
      !args.get("telemetry-interval", "").empty()) {
    config.telemetry = &snapshotter;
    config.telemetry_interval = telemetry_interval;
    snapshotter.set_context("instance_digest", bundle.digest);
    snapshotter.set_context("git_sha", QPLACE_GIT_SHA);
    snapshotter.set_context("seed", std::to_string(config.seed));
    snapshotter.set_context("duration",
                            report::Table::num(config.duration, 6));
    snapshotter.set_context("interval",
                            report::Table::num(telemetry_interval, 6));
  }

  std::optional<obs::ProgressMeter> meter;
  if (!args.get("progress", "").empty()) {
    meter.emplace(std::cerr, analytic);
    // Finer-grained than the telemetry grid: redraws are wall-throttled by
    // the meter itself, so a dense sim-time grid costs nothing visible.
    config.progress_interval = config.duration / 1000.0;
    config.on_progress = [&meter](const obs::ProgressStats& stats) {
      meter->update(stats);
    };
  }

  // The admin endpoint serves the live registry and the snapshotter's own
  // latest histogram digests; both are internally synchronized, and the run
  // report is only mutated again after the server is stopped below.
  net::HttpServer server;
  if (metrics_port >= 0) {
    server.handle("/metrics", [&snapshotter](const net::HttpRequest&) {
      net::HttpResponse response;
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = obs::render_build_info(QPLACE_GIT_SHA, QPLACE_VERSION,
                                             obs::compiled_in()) +
                      obs::render_prometheus(obs::Registry::instance()) +
                      snapshotter.prometheus_summaries();
      return response;
    });
    server.handle("/healthz", [](const net::HttpRequest&) {
      net::HttpResponse response;
      response.body = "ok\n";
      return response;
    });
    server.handle("/report", [](const net::HttpRequest&) {
      net::HttpResponse response;
      response.content_type = "application/json";
      response.body = g_obs != nullptr ? g_obs->report().to_json() : "{}\n";
      return response;
    });
    server.start(metrics_port);
    std::cerr << "serving /metrics /healthz /report on 127.0.0.1:"
              << server.port() << "\n";
  }

  const sim::SimulationResult result =
      sim::simulate(instance, solved->placement, config);
  if (meter.has_value()) {
    meter->finish();
  }
  server.stop();  // idempotent no-op when --metrics-port was absent
  if (!series_path.empty()) {
    obs::write_file(series_path, snapshotter.to_jsonl());
    std::cerr << "telemetry: " << snapshotter.size() << " snapshots ("
              << snapshotter.dropped() << " dropped) -> " << series_path
              << "\n";
  }
  if (log_writer != nullptr) {
    log_writer->close();  // surface I/O errors here, not in the destructor
    if (!log_stream) {
      std::cerr << "error: failed writing access log '" << log_path << "'\n";
      return 2;
    }
  }
  if (g_obs != nullptr) {
    g_obs->report().add_histogram("sim.access_delay", result.access_delay);
    if (result.queue_wait.count() > 0) {
      g_obs->report().add_histogram("sim.queue_wait", result.queue_wait);
    }
  }

  report::Table table({"metric", "value"});
  table.add_row({"completed accesses",
                 std::to_string(result.completed_accesses)});
  if (config.relay_node >= 0) {
    table.add_row({"relay node (Thm 1.2 v0)",
                   std::to_string(config.relay_node)});
  }
  table.add_row({"simulated mean delay",
                 report::Table::num(result.overall_mean_delay, 4)});
  // Quantiles/max are NaN-guarded: an empty measurement window (everything
  // inside warmup, or duration too short) has no distribution to report.
  if (result.access_delay.count() > 0) {
    table.add_row({"simulated p50 delay",
                   report::Table::num(result.access_delay.quantile(0.50), 4)});
    table.add_row({"simulated p90 delay",
                   report::Table::num(result.access_delay.quantile(0.90), 4)});
    table.add_row({"simulated p99 delay",
                   report::Table::num(result.access_delay.quantile(0.99), 4)});
    table.add_row({"simulated max delay",
                   report::Table::num(result.access_delay.max(), 4)});
  }
  table.add_row({"analytic mean delay", report::Table::num(analytic, 4)});
  if (config.faults != nullptr) {
    table.add_row({"failed accesses",
                   std::to_string(result.failed_accesses)});
    table.add_row({"unavailable accesses",
                   std::to_string(result.unavailable_accesses)});
    table.add_row({"timed-out attempts",
                   std::to_string(result.timed_out_attempts)});
    table.add_row({"retries", std::to_string(result.retries)});
    table.add_row({"availability",
                   report::Table::num(result.availability, 4)});
    table.add_row({"intersection safety",
                   result.safety_ok ? "ok" : "VIOLATED"});
  }
  table.print(std::cout);
  if (log_writer != nullptr) {
    std::cout << "access log: " << log_writer->recorded() << " records -> "
              << log_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> raw(argv + 1, argv + argc);
  if (raw.empty() || raw.front() == "--help" || raw.front() == "help") {
    return usage();
  }
  try {
    const cli::ParsedArgs args = cli::parse_args(raw);
    const int threads = cli::configure_threads(args);
    ObsSession session(args, threads);
    g_obs = &session;
    int code = 2;
    if (args.command() == "topology") {
      code = cmd_topology(args);
    } else if (args.command() == "analyze") {
      code = cmd_analyze(args);
    } else if (args.command() == "solve") {
      code = cmd_solve(args);
    } else if (args.command() == "simulate") {
      code = cmd_simulate(args);
    } else if (args.command() == "check") {
      code = cmd_check(args);
    } else {
      std::cerr << "unknown command '" << args.command() << "'\n";
      return usage();
    }
    session.finish();
    for (const std::string& flag : args.unread_flags()) {
      std::cerr << "warning: unused flag --" << flag << "\n";
    }
    return code;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
