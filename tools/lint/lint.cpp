#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace qp::lint {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Small string helpers
// ---------------------------------------------------------------------------

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

// ---------------------------------------------------------------------------
// Lexing: split a C++ source into comment-stripped code (strings/chars
// blanked too, newlines preserved so line numbers survive) plus the comment
// stream for pragma detection.
// ---------------------------------------------------------------------------

struct Pragma {
  int line = 0;
  std::vector<std::string> rules;
  bool has_reason = false;
};

struct LexedFile {
  std::string code;             ///< same length as input; non-code blanked
  std::vector<Pragma> pragmas;  ///< every "qplace-lint:" comment
};

/// Parse one comment's text for a lint pragma. Returns true when the
/// comment is a pragma (well-formed or not). Only comments *starting* with
/// the marker count, so prose that merely mentions the syntax (docs,
/// examples nested behind another "//") is not a pragma.
bool parse_pragma(const std::string& comment, int line, Pragma& out) {
  const std::string kMarker = "qplace-lint:";
  const std::string text = trim(comment);
  if (!starts_with(text, kMarker)) return false;
  const std::size_t mark = 0;
  out = Pragma{};
  out.line = line;
  std::size_t pos = text.find("allow", mark + kMarker.size());
  if (pos == std::string::npos) return true;  // malformed: no rules
  pos = text.find('(', pos);
  const std::size_t close = text.find(')', pos == std::string::npos
                                                  ? std::string::npos
                                                  : pos);
  if (pos == std::string::npos || close == std::string::npos) return true;
  std::string rules = text.substr(pos + 1, close - pos - 1);
  std::replace(rules.begin(), rules.end(), ',', ' ');
  out.rules = split_ws(rules);
  // Reason: anything non-empty after the closing paren, once separator
  // punctuation ("--", an em dash, ":") is peeled off.
  std::string rest = trim(text.substr(close + 1));
  while (!rest.empty() &&
         (rest[0] == '-' || rest[0] == ':' ||
          static_cast<unsigned char>(rest[0]) >= 0x80)) {
    rest.erase(0, 1);
  }
  out.has_reason = !trim(rest).empty();
  return true;
}

LexedFile lex(const std::string& text) {
  LexedFile out;
  out.code.assign(text.size(), ' ');
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string comment;       // accumulating comment text
  int comment_line = 0;      // line the current comment started on
  std::string raw_delim;     // raw-string delimiter, e.g. )foo"
  int line = 1;

  auto flush_comment = [&]() {
    Pragma pragma;
    if (parse_pragma(comment, comment_line, pragma)) {
      out.pragmas.push_back(pragma);
    }
    comment.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          comment_line = line;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          comment_line = line;
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R (possibly u8R etc.).
          if (i > 0 && text[i - 1] == 'R' &&
              (i < 2 || !is_word(text[i - 2]) || text[i - 2] == '8' ||
               text[i - 2] == 'u' || text[i - 2] == 'U' ||
               text[i - 2] == 'L')) {
            std::size_t p = i + 1;
            std::string delim;
            while (p < text.size() && text[p] != '(') delim += text[p++];
            raw_delim = ")" + delim + "\"";
            state = State::kRaw;
            i = p;  // at '(' (or end)
          } else {
            state = State::kString;
            out.code[i] = '"';
          }
        } else if (c == '\'') {
          state = State::kChar;
          out.code[i] = '\'';
        } else if (c != '\n') {
          out.code[i] = c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          flush_comment();
          state = State::kCode;
        } else {
          comment += c;
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          flush_comment();
          state = State::kCode;
          ++i;
        } else {
          comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (i < text.size() && text[i] == '\n') ++line;
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRaw:
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          for (std::size_t k = 0; k < raw_delim.size(); ++k) {
            if (i - raw_delim.size() + 1 + k < text.size() &&
                text[i - raw_delim.size() + 1 + k] == '\n') {
              ++line;
            }
          }
          state = State::kCode;
        }
        break;
    }
  }
  if (state == State::kLine || state == State::kBlock) flush_comment();
  return out;
}

/// Line number (1-based) of byte offset `pos` in `code`.
int line_of(const std::string& code, std::size_t pos) {
  return 1 + static_cast<int>(
                 std::count(code.begin(),
                            code.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(pos, code.size())),
                            '\n'));
}

// ---------------------------------------------------------------------------
// Tokenizer over stripped code (identifiers and single-char punctuation).
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  std::size_t pos = 0;
};

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (is_word(c)) {
      std::size_t b = i;
      while (i < code.size() && is_word(code[i])) ++i;
      out.push_back({code.substr(b, i - b), b});
    } else {
      out.push_back({std::string(1, c), i});
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-file scan state
// ---------------------------------------------------------------------------

struct IncludeEdge {
  std::string target;  ///< as written, e.g. "graph/metric.hpp"
  int line = 0;
};

struct SourceFile {
  std::string rel_path;  ///< relative to root, '/'-separated
  LexedFile lexed;
  std::vector<Token> tokens;
  std::vector<IncludeEdge> includes;
};

/// `code` is the comment/string-stripped view (so commented-out includes do
/// not count) but string *contents* are blanked there, so the quoted path
/// is read back from `raw`, which has identical byte offsets.
std::vector<IncludeEdge> find_includes(const std::string& code,
                                       const std::string& raw) {
  std::vector<IncludeEdge> out;
  std::size_t pos = 0;
  while ((pos = code.find("#include", pos)) != std::string::npos) {
    const std::size_t quote = code.find_first_of("\"<\n", pos + 8);
    if (quote != std::string::npos && code[quote] == '"') {
      const std::size_t end = code.find('"', quote + 1);
      if (end != std::string::npos) {
        out.push_back(
            {raw.substr(quote + 1, end - quote - 1), line_of(code, pos)});
      }
    }
    pos += 8;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

struct BannedPattern {
  std::string rule;
  std::string ident;       ///< identifier to match (word-bounded)
  bool needs_call = false; ///< must be followed by '(' (e.g. time, rand)
};

const std::vector<BannedPattern>& banned_patterns() {
  static const std::vector<BannedPattern> kPatterns = {
      {"unordered-container", "unordered_map", false},
      {"unordered-container", "unordered_set", false},
      {"unordered-container", "unordered_multimap", false},
      {"unordered-container", "unordered_multiset", false},
      {"ambient-rng", "random_device", false},
      {"ambient-rng", "rand", true},
      {"ambient-rng", "srand", true},
      {"ambient-rng", "rand_r", true},
      {"wall-clock", "system_clock", false},
      {"wall-clock", "steady_clock", false},
      {"wall-clock", "high_resolution_clock", false},
      {"wall-clock", "time", true},
      {"wall-clock", "clock", true},
      {"wall-clock", "gettimeofday", true},
      {"wall-clock", "clock_gettime", true},
  };
  return kPatterns;
}

// ---------------------------------------------------------------------------
// Module mapping
// ---------------------------------------------------------------------------

/// Most-specific assignment wins: exact file match beats the longest
/// matching directory prefix. Returns "" when unmapped.
std::string module_of(const LayerConfig& layers, const std::string& rel) {
  std::string best_module;
  std::size_t best_len = 0;
  bool best_exact = false;
  for (const auto& [path, module] : layers.assignments) {
    if (path == rel) {
      if (!best_exact || path.size() > best_len) {
        best_module = module;
        best_len = path.size();
        best_exact = true;
      }
    } else if (!best_exact && !path.empty() && path.back() == '/' &&
               starts_with(rel, path) && path.size() > best_len) {
      best_module = module;
      best_len = path.size();
    }
  }
  return best_module;
}

// ---------------------------------------------------------------------------
// Contract-coverage audit
// ---------------------------------------------------------------------------

struct AuditedFunction {
  std::string name;
  std::string header;     ///< declaring header (rel path)
  int decl_line = 0;
};

struct Definition {
  std::string file;
  int line = 0;
  bool direct_contract = false;  ///< body mentions QP_* / validate_*
  std::set<std::string> called;  ///< functions the body calls (by name)
};

/// Tokens that look like `name (` but are never function definitions/calls
/// we want in the reachability graph.
bool is_cpp_keyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "if",     "while",   "for",      "switch",        "catch",
      "sizeof", "alignof", "decltype", "static_assert", "noexcept",
      "return", "new",     "delete",   "co_return",     "co_await",
      "throw",  "assert",  "defined",  "alignas",       "requires"};
  return kKeywords.count(word) != 0;
}

/// Scan a header's token stream for free-function declarations returning an
/// audited type (optionally wrapped in std::optional<...> and/or
/// namespace-qualified).
void find_audited_declarations(const SourceFile& file,
                               const std::set<std::string>& types,
                               std::vector<AuditedFunction>& out) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (types.count(toks[i].text) == 0) continue;
    // Reject member accesses / qualified uses where the type token is not a
    // return type: previous token must not be '.', and a preceding "::"
    // is fine only when it is a namespace qualifier (ns :: Type ident).
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == ">") ++j;  // optional<T > ident
    if (j >= toks.size() || !is_word(toks[j].text[0])) continue;
    const std::string& name = toks[j].text;
    if (j + 1 >= toks.size() || toks[j + 1].text != "(") continue;
    // Find the matching ')' then require ';' or '{' (declaration or inline
    // definition) -- rules out expressions like `Type fn(...)` in a call
    // context, which would be followed by an operator.
    std::size_t k = j + 2;
    int depth = 1;
    while (k < toks.size() && depth > 0) {
      if (toks[k].text == "(") ++depth;
      if (toks[k].text == ")") --depth;
      ++k;
    }
    if (depth != 0 || k >= toks.size()) continue;
    if (toks[k].text != ";" && toks[k].text != "{") continue;
    out.push_back({name, file.rel_path, line_of(file.lexed.code, toks[j].pos)});
  }
}

/// Scan a file for every function definition: identifier + balanced parens
/// + '{'. Records whether the body contains a contract call and which
/// functions it calls, so coverage can be propagated along the call graph
/// ("reaches a contract" rather than "textually contains one").
void find_definitions(const SourceFile& file,
                      std::vector<Definition>& out,
                      std::map<std::string, std::vector<std::size_t>>& index) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_word(toks[i].text[0]) ||
        std::isdigit(static_cast<unsigned char>(toks[i].text[0])) != 0 ||
        is_cpp_keyword(toks[i].text)) {
      continue;
    }
    if (toks[i + 1].text != "(") continue;
    // A definition needs a return type in front; a call site is preceded by
    // an operator, '(', ',', 'return', etc. Require the previous token to
    // be an identifier or '>' / '&' (close of a template return type or a
    // reference) and not a keyword that precedes calls.
    if (i == 0) continue;
    const std::string& prev = toks[i - 1].text;
    const bool type_like =
        (is_word(prev[0]) && !is_cpp_keyword(prev) && prev != "case" &&
         prev != "else" && prev != "do" && prev != "goto") ||
        prev == ">" || prev == "&" || prev == "*";
    if (!type_like) continue;
    std::size_t k = i + 2;
    int depth = 1;
    while (k < toks.size() && depth > 0) {
      if (toks[k].text == "(") ++depth;
      if (toks[k].text == ")") --depth;
      ++k;
    }
    if (depth != 0 || k >= toks.size() || toks[k].text != "{") continue;
    // Brace-match the body.
    std::size_t body_begin = k;
    int braces = 1;
    std::size_t b = k + 1;
    while (b < toks.size() && braces > 0) {
      if (toks[b].text == "{") ++braces;
      if (toks[b].text == "}") --braces;
      ++b;
    }
    Definition def;
    def.file = file.rel_path;
    def.line = line_of(file.lexed.code, toks[i].pos);
    for (std::size_t t = body_begin; t < b; ++t) {
      const std::string& word = toks[t].text;
      if (word == "QP_REQUIRE" || word == "QP_INVARIANT" ||
          starts_with(word, "validate_")) {
        def.direct_contract = true;
      }
      if (t + 1 < b && toks[t + 1].text == "(" && word != toks[i].text &&
          is_word(word[0]) &&
          std::isdigit(static_cast<unsigned char>(word[0])) == 0 &&
          !is_cpp_keyword(word)) {
        def.called.insert(word);
      }
    }
    index[toks[i].text].push_back(out.size());
    out.push_back(def);
    i = b > i ? b - 1 : i;
  }
}

// ---------------------------------------------------------------------------
// Config parsing
// ---------------------------------------------------------------------------

std::vector<std::pair<int, std::string>> read_config_lines(
    const std::string& path, std::vector<std::string>& errors) {
  std::vector<std::pair<int, std::string>> out;
  std::ifstream in(path);
  if (!in) {
    errors.push_back("cannot open config file: " + path);
    return out;
  }
  std::string line;
  int number = 0;
  while (std::getline(in, line)) {
    ++number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (!line.empty()) out.emplace_back(number, line);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::string Finding::to_string() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

LayerConfig load_layer_config(const std::string& path,
                              std::vector<std::string>& errors) {
  LayerConfig out;
  for (const auto& [number, line] : read_config_lines(path, errors)) {
    const std::vector<std::string> words = split_ws(line);
    const std::string& kind = words.front();
    if (kind == "root" && words.size() == 2) {
      out.include_roots.push_back(words[1]);
    } else if (kind == "module" && words.size() >= 3) {
      for (std::size_t i = 2; i < words.size(); ++i) {
        out.assignments.emplace_back(words[i], words[1]);
      }
    } else if (kind == "allow" && words.size() >= 3) {
      for (std::size_t i = 2; i < words.size(); ++i) {
        out.allowed[words[1]].insert(words[i]);
      }
    } else {
      errors.push_back(path + ":" + std::to_string(number) +
                       ": unrecognized layers.conf line: " + line);
    }
  }
  if (out.include_roots.empty()) out.include_roots.push_back("src");
  return out;
}

Allowlist load_allowlist(const std::string& path,
                         std::vector<std::string>& errors) {
  Allowlist out;
  for (const auto& [number, line] : read_config_lines(path, errors)) {
    const std::vector<std::string> words = split_ws(line);
    if (words.size() == 3 && words[0] == "dir") {
      out.dir_grants.emplace_back(words[1], words[2]);
    } else if (words.size() == 3 && words[0] == "pragma") {
      out.pragma_sites.emplace(words[1], words[2]);
    } else {
      errors.push_back(path + ":" + std::to_string(number) +
                       ": unrecognized allowlist.conf line: " + line);
    }
  }
  return out;
}

ContractManifest load_contract_manifest(const std::string& path,
                                        std::vector<std::string>& errors) {
  ContractManifest out;
  for (const auto& [number, line] : read_config_lines(path, errors)) {
    const std::vector<std::string> words = split_ws(line);
    if (words.size() == 2 && words[0] == "type") {
      out.audited_types.insert(words[1]);
    } else if (words.size() == 3 && words[0] == "function") {
      out.functions[words[1]] = words[2];
    } else {
      errors.push_back(path + ":" + std::to_string(number) +
                       ": unrecognized contracts.manifest line: " + line);
    }
  }
  return out;
}

std::string format_manifest(const std::map<std::string, std::string>& fns) {
  std::string out;
  for (const auto& [name, header] : fns) {
    out += "function " + name + " " + header + "\n";
  }
  return out;
}

Result run(const Options& options, const LayerConfig& layers,
           const Allowlist& allowlist, const ContractManifest& manifest) {
  Result result;
  const fs::path root(options.root);

  // ---- collect + lex sources -------------------------------------------
  std::vector<std::string> rel_paths;
  for (const std::string& scan : options.scan_paths) {
    const fs::path abs = root / scan;
    std::error_code ec;
    if (fs::is_regular_file(abs, ec)) {
      rel_paths.push_back(scan);
    } else if (fs::is_directory(abs, ec)) {
      for (fs::recursive_directory_iterator it(abs, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") {
          continue;
        }
        rel_paths.push_back(
            fs::relative(it->path(), root).generic_string());
      }
    } else {
      result.config_errors.push_back("scan path not found: " + abs.string());
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  rel_paths.erase(std::unique(rel_paths.begin(), rel_paths.end()),
                  rel_paths.end());

  std::vector<SourceFile> files;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) {
      result.config_errors.push_back("cannot read: " + rel);
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    SourceFile file;
    file.rel_path = rel;
    file.lexed = lex(raw);
    file.tokens = tokenize(file.lexed.code);
    file.includes = find_includes(file.lexed.code, raw);
    files.push_back(std::move(file));
  }
  result.files_scanned = static_cast<int>(files.size());

  auto add = [&result](const std::string& file, int line,
                       const std::string& rule, const std::string& message) {
    result.findings.push_back({file, line, rule, message});
  };

  // ---- rule family 1: determinism --------------------------------------
  // Pragma bookkeeping: every well-formed pragma must be in the manifest
  // and must suppress at least one hit (else it is stale at the site).
  std::set<std::pair<std::string, std::string>> pragmas_seen;
  std::set<std::pair<std::string, std::string>> pragmas_used;

  for (const SourceFile& file : files) {
    // Index pragmas by covered line.
    std::map<int, const Pragma*> pragma_at;  // line -> pragma
    for (const Pragma& pragma : file.lexed.pragmas) {
      if (pragma.rules.empty() || !pragma.has_reason) {
        add(file.rel_path, pragma.line, "pragma-missing-reason",
            "escape pragma must name rules and carry a reason: "
            "// qplace-lint: allow(<rule>) -- <reason>");
        continue;
      }
      pragma_at[pragma.line] = &pragma;
      for (const std::string& rule : pragma.rules) {
        pragmas_seen.emplace(file.rel_path, rule);
      }
    }
    auto pragma_for = [&](int line, const std::string& rule) -> const Pragma* {
      for (int probe : {line, line - 1}) {
        auto it = pragma_at.find(probe);
        if (it != pragma_at.end() &&
            std::find(it->second->rules.begin(), it->second->rules.end(),
                      rule) != it->second->rules.end()) {
          return it->second;
        }
      }
      return nullptr;
    };
    auto dir_granted = [&](const std::string& rule) {
      for (const auto& [prefix, granted_rule] : allowlist.dir_grants) {
        if (granted_rule == rule && starts_with(file.rel_path, prefix)) {
          return true;
        }
      }
      return false;
    };

    const std::string& code = file.lexed.code;
    for (const BannedPattern& pattern : banned_patterns()) {
      std::size_t pos = 0;
      while ((pos = code.find(pattern.ident, pos)) != std::string::npos) {
        const std::size_t end = pos + pattern.ident.size();
        const bool bounded =
            (pos == 0 || !is_word(code[pos - 1])) &&
            (end >= code.size() || !is_word(code[end]));
        bool hit = bounded;
        if (hit && pattern.needs_call) {
          std::size_t after = end;
          while (after < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[after])) != 0) {
            ++after;
          }
          hit = after < code.size() && code[after] == '(';
        }
        if (hit && !dir_granted(pattern.rule)) {
          const int line = line_of(code, pos);
          if (const Pragma* pragma = pragma_for(line, pattern.rule)) {
            pragmas_used.emplace(file.rel_path, pattern.rule);
            if (allowlist.pragma_sites.count(
                    {file.rel_path, pattern.rule}) == 0) {
              add(file.rel_path, pragma->line, "pragma-unlisted",
                  "escape pragma for rule '" + pattern.rule +
                      "' is not in the allowlist manifest; add: pragma " +
                      file.rel_path + " " + pattern.rule);
            }
          } else {
            add(file.rel_path, line, pattern.rule,
                "'" + pattern.ident +
                    "' is banned in deterministic code (docs/CONTRACTS.md); "
                    "use a seeded RNG / ordered container, or add an escape "
                    "pragma with a reason");
          }
        }
        pos = end;
      }
    }
  }
  // Manifest entries with no live pragma site are stale.
  for (const auto& site : allowlist.pragma_sites) {
    if (pragmas_used.count(site) == 0) {
      add(site.first, 1, "allowlist-stale",
          "allowlist manifest lists 'pragma " + site.first + " " +
              site.second + "' but no matching pragma suppresses a hit");
    }
  }
  // Pragmas that suppress nothing are dead weight.
  for (const auto& site : pragmas_seen) {
    if (pragmas_used.count(site) == 0) {
      add(site.first, 1, "allowlist-stale",
          "escape pragma for rule '" + site.second +
              "' suppresses no finding; remove it");
    }
  }

  // ---- rule family 2: layering -----------------------------------------
  // Validate the declared DAG: compute transitive reachability, reject
  // cycles.
  std::map<std::string, std::set<std::string>> reachable;
  {
    std::set<std::string> modules;
    for (const auto& [path, module] : layers.assignments) {
      (void)path;
      modules.insert(module);
    }
    for (const auto& [from, tos] : layers.allowed) {
      modules.insert(from);
      modules.insert(tos.begin(), tos.end());
    }
    for (const std::string& module : modules) {
      // Iterative DFS with cycle detection.
      std::vector<std::string> stack{module};
      std::set<std::string>& reach = reachable[module];
      while (!stack.empty()) {
        const std::string at = stack.back();
        stack.pop_back();
        auto it = layers.allowed.find(at);
        if (it == layers.allowed.end()) continue;
        for (const std::string& to : it->second) {
          if (to == module) {
            result.config_errors.push_back(
                "layers.conf: allowed-dependency graph has a cycle through "
                "module '" +
                module + "'");
            continue;
          }
          if (reach.insert(to).second) stack.push_back(to);
        }
      }
    }
  }

  // Resolve includes to scanned files; build file-level graph.
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : files) by_path[file.rel_path] = &file;
  auto resolve = [&](const std::string& target) -> std::string {
    for (const std::string& inc_root : layers.include_roots) {
      const std::string candidate =
          inc_root.empty() ? target : inc_root + "/" + target;
      if (by_path.count(candidate) != 0) return candidate;
    }
    return "";
  };

  for (const SourceFile& file : files) {
    const std::string from_module = module_of(layers, file.rel_path);
    if (from_module.empty()) {
      add(file.rel_path, 1, "layering",
          "file is not mapped to any module in layers.conf");
      continue;
    }
    // BFS over the include closure, keeping parent pointers so a violation
    // can be reported with its full include chain.
    std::map<std::string, std::pair<std::string, int>> parent;  // file->(via,line)
    std::queue<std::string> queue;
    queue.push(file.rel_path);
    parent[file.rel_path] = {"", 0};
    std::set<std::string> reported_modules;
    while (!queue.empty()) {
      const std::string at = queue.front();
      queue.pop();
      const SourceFile* at_file = by_path[at];
      if (at_file == nullptr) continue;
      for (const IncludeEdge& edge : at_file->includes) {
        const std::string target = resolve(edge.target);
        if (target.empty() || parent.count(target) != 0) continue;
        parent[target] = {at, edge.line};
        const std::string to_module = module_of(layers, target);
        if (!to_module.empty() && to_module != from_module &&
            reachable[from_module].count(to_module) == 0 &&
            reported_modules.insert(to_module).second) {
          // Reconstruct the include chain file -> ... -> target.
          std::vector<std::string> chain{target};
          std::string walk = at;
          while (!walk.empty() && walk != file.rel_path) {
            chain.push_back(walk);
            walk = parent[walk].first;
          }
          chain.push_back(file.rel_path);
          std::reverse(chain.begin(), chain.end());
          std::string text;
          for (std::size_t i = 0; i < chain.size(); ++i) {
            if (i > 0) text += " -> ";
            text += chain[i];
          }
          add(file.rel_path, edge.line, "layering",
              "module '" + from_module + "' may not depend on '" + to_module +
                  "' (chain: " + text + ")");
        } else {
          queue.push(target);
        }
      }
    }
  }

  // ---- rule family 3: contract coverage --------------------------------
  std::vector<AuditedFunction> declarations;
  for (const SourceFile& file : files) {
    bool in_audit_dir = false;
    for (const std::string& dir : options.audit_dirs) {
      if (starts_with(file.rel_path, dir + "/")) in_audit_dir = true;
    }
    if (!in_audit_dir) continue;
    if (!(file.rel_path.size() > 4 &&
          file.rel_path.compare(file.rel_path.size() - 4, 4, ".hpp") == 0)) {
      continue;
    }
    find_audited_declarations(file, manifest.audited_types, declarations);
  }
  std::set<std::string> audited_names;
  for (const AuditedFunction& fn : declarations) {
    audited_names.insert(fn.name);
    auto it = result.computed_functions.find(fn.name);
    if (it == result.computed_functions.end()) {
      result.computed_functions[fn.name] = fn.header;
    }
  }

  std::vector<Definition> definitions;
  std::map<std::string, std::vector<std::size_t>> defs_by_name;
  for (const SourceFile& file : files) {
    bool in_audit_dir = false;
    for (const std::string& dir : options.audit_dirs) {
      if (starts_with(file.rel_path, dir + "/")) in_audit_dir = true;
    }
    if (!in_audit_dir) continue;
    find_definitions(file, definitions, defs_by_name);
  }

  // Fixpoint over the whole call graph of the audited directories: a
  // definition is covered when it contains a contract call or calls a
  // function all of whose definitions are covered. Internal helpers (e.g. a
  // `descend()` that both public entry points delegate to) propagate
  // coverage to their callers; the audited set is only the set we *report*
  // on, not the set we trace through.
  std::map<std::string, bool> name_covered;
  auto fn_covered = [&](const std::string& name) {
    auto it = defs_by_name.find(name);
    if (it == defs_by_name.end()) return false;
    for (std::size_t idx : it->second) {
      const Definition& def = definitions[idx];
      if (def.direct_contract) continue;
      bool via_call = false;
      for (const std::string& callee : def.called) {
        auto covered = name_covered.find(callee);
        if (covered != name_covered.end() && covered->second) {
          via_call = true;
          break;
        }
      }
      if (!via_call) return false;
    }
    return true;
  };
  for (const auto& [name, idxs] : defs_by_name) name_covered[name] = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, covered] : name_covered) {
      if (!covered && fn_covered(name)) {
        covered = true;
        changed = true;
      }
    }
  }

  for (const AuditedFunction& fn : declarations) {
    auto defs = defs_by_name.find(fn.name);
    if (defs == defs_by_name.end()) {
      add(fn.header, fn.decl_line, "contract-coverage",
          "no definition found for audited function '" + fn.name +
              "' in the audited directories");
      continue;
    }
    if (!name_covered[fn.name]) {
      const Definition& def = definitions[defs->second.front()];
      add(def.file, def.line, "contract-coverage",
          "public solver function '" + fn.name +
              "' returns a certified result type but never reaches a "
              "QP_REQUIRE / QP_INVARIANT / validate_* call");
    }
  }

  // Manifest cross-check: drift in either direction is a finding.
  for (const auto& [name, header] : result.computed_functions) {
    auto it = manifest.functions.find(name);
    if (it == manifest.functions.end()) {
      add(header, 1, "manifest-drift",
          "audited function '" + name +
              "' is not in contracts.manifest; add: function " + name + " " +
              header + " (qplace-lint --print-manifest regenerates the list)");
    } else if (it->second != header) {
      add(header, 1, "manifest-drift",
          "audited function '" + name + "' moved from " + it->second +
              " to " + header + "; update contracts.manifest");
    }
  }
  for (const auto& [name, header] : manifest.functions) {
    if (result.computed_functions.count(name) == 0) {
      add(header, 1, "manifest-drift",
          "contracts.manifest lists '" + name +
              "' but no audited declaration was found; remove the stale "
              "entry");
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return result;
}

Result run_repo(const std::string& root, const std::string& config_dir) {
  const std::string dir =
      config_dir.empty() ? root + "/tools/lint" : config_dir;
  std::vector<std::string> errors;
  const LayerConfig layers = load_layer_config(dir + "/layers.conf", errors);
  const Allowlist allowlist = load_allowlist(dir + "/allowlist.conf", errors);
  const ContractManifest manifest =
      load_contract_manifest(dir + "/contracts.manifest", errors);

  Options options;
  options.root = root;
  options.scan_paths = {"src", "tools/qplace.cpp", "tools/lint"};
  options.audit_dirs = {"src/core", "src/lp", "src/assign", "src/quorum"};
  Result result = run(options, layers, allowlist, manifest);
  result.config_errors.insert(result.config_errors.begin(), errors.begin(),
                              errors.end());
  return result;
}

}  // namespace qp::lint
