/// \file qplace_lint.cpp
/// CLI for the project lint gate (docs/CONTRACTS.md, "Mechanically enforced
/// rules"). Usage:
///
///   qplace-lint [--root DIR] [--config DIR] [--report FILE]
///               [--print-manifest]
///
/// Exit codes: 0 = clean, 1 = findings, 2 = configuration error.
/// --report writes the findings as JSON (schema qplace.lint_report.v1) for
/// the CI artifact; --print-manifest emits the recomputed contract manifest
/// `function` lines, for updating tools/lint/contracts.manifest after a
/// deliberate API change.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "lint.hpp"

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--config DIR] [--report FILE]"
               " [--print-manifest]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_dir;
  std::string report_path;
  bool print_manifest = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_dir = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--print-manifest") {
      print_manifest = true;
    } else {
      return usage(argv[0]);
    }
  }

  const qp::lint::Result result = qp::lint::run_repo(root, config_dir);

  if (print_manifest) {
    std::cout << qp::lint::format_manifest(result.computed_functions);
    return 0;
  }

  for (const std::string& error : result.config_errors) {
    std::cerr << "config error: " << error << "\n";
  }
  for (const qp::lint::Finding& finding : result.findings) {
    std::cout << finding.to_string() << "\n";
  }

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << "{\n  \"schema\": \"qplace.lint_report.v1\",\n  \"files_scanned\": "
        << result.files_scanned << ",\n  \"findings\": [";
    bool first = true;
    for (const qp::lint::Finding& finding : result.findings) {
      out << (first ? "" : ",") << "\n    {\"file\": \""
          << json_escape(finding.file) << "\", \"line\": " << finding.line
          << ", \"rule\": \"" << json_escape(finding.rule)
          << "\", \"message\": \"" << json_escape(finding.message) << "\"}";
      first = false;
    }
    out << "\n  ]\n}\n";
  }

  if (!result.config_errors.empty()) return 2;
  if (!result.findings.empty()) {
    std::cerr << result.findings.size() << " finding(s) over "
              << result.files_scanned << " files\n";
    return 1;
  }
  std::cerr << "qplace-lint: clean (" << result.files_scanned << " files)\n";
  return 0;
}
