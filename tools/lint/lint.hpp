#pragma once

/// \file lint.hpp
/// qplace-lint: the project-specific static analyzer (docs/CONTRACTS.md,
/// "Mechanically enforced rules"). Three rule families guard the properties
/// the repo's headline guarantees rest on:
///
///  1. determinism  -- bans ambient nondeterminism (unordered containers,
///     unseeded RNG, wall clocks) outside an explicit allowlist, so the
///     bit-identical-at-any-thread-count contract (docs/PARALLEL.md) cannot
///     be silently broken by a future change;
///  2. layering     -- checks the `#include` graph against the declared
///     module DAG, reporting the offending include chain, so the
///     solver/validator/observability layers cannot grow back-edges;
///  3. contract coverage -- audits every public solver entry point that
///     returns a Placement / Assignment / LP solution for a reachable
///     QP_REQUIRE / QP_INVARIANT / validate_* call, cross-checked against a
///     committed manifest so regressions surface as reviewable diffs.
///
/// The tool is deliberately token-based (no libclang): it lexes C++ into
/// comment/string-stripped code plus the comment stream (for escape
/// pragmas), which is exact enough for these rules and keeps the analyzer
/// dependency-free and fast. Conservatism is a feature: `unordered_map` is
/// banned on *use*, not just on iteration, because any use is one refactor
/// away from an iteration-order dependency.
///
/// Escape pragma syntax (the reason is mandatory and must be non-empty):
///
///     // qplace-lint: allow(<rule>[,<rule>...]) -- <reason>
///
/// A pragma suppresses findings of the named rules on its own line and on
/// the line directly below it, and must additionally be listed in the
/// committed allowlist manifest (`pragma <file> <rule>`), so every escape
/// is visible in review twice: at the site and in the manifest.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace qp::lint {

/// One diagnostic. `file` is relative to the lint root; findings are
/// reported sorted by (file, line, rule) and formatted as
/// "file:line: [rule] message".
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  std::string to_string() const;
};

/// Module map + allowed-dependency DAG (tools/lint/layers.conf).
///
/// Assignment rules map a path prefix (or an exact file) to a module name;
/// the most specific match wins, which is how a single directory can host
/// files of different layers (src/check/contracts.* is the leaf `contracts`
/// layer while src/check/validate.* sits above the core model types).
/// `allow A B` edges are interpreted transitively: module A may include
/// headers of any module reachable from A in the declared DAG. The declared
/// graph must be acyclic; a cycle is a configuration error.
struct LayerConfig {
  std::vector<std::string> include_roots;  ///< include-resolution roots
  std::vector<std::pair<std::string, std::string>> assignments;
  std::map<std::string, std::set<std::string>> allowed;
};

/// Determinism-rule allowlist (tools/lint/allowlist.conf): blanket
/// per-directory grants (`dir <prefix> <rule>`) for layers whose job is the
/// banned construct (src/obs/ timers), plus the manifest of every escape
/// pragma in the tree (`pragma <file> <rule>`).
struct Allowlist {
  std::vector<std::pair<std::string, std::string>> dir_grants;
  std::set<std::pair<std::string, std::string>> pragma_sites;
};

/// Contract-coverage manifest (tools/lint/contracts.manifest): the audited
/// return types (`type <name>`) and the expected audited-function set
/// (`function <name> <header>`). The tool recomputes the set from the
/// headers and fails on any drift in either direction.
struct ContractManifest {
  std::set<std::string> audited_types;
  std::map<std::string, std::string> functions;  ///< name -> declaring header
};

struct Options {
  std::string root;                      ///< repo root (absolute or relative)
  std::vector<std::string> scan_paths;   ///< files/dirs relative to root
  std::vector<std::string> audit_dirs;   ///< contract-audit dirs rel. to root
};

struct Result {
  std::vector<Finding> findings;
  std::vector<std::string> config_errors;  ///< non-empty => exit 2
  int files_scanned = 0;
  /// Recomputed audited-function set (name -> declaring header), for
  /// --print-manifest and for diagnosing manifest drift.
  std::map<std::string, std::string> computed_functions;

  bool clean() const { return findings.empty() && config_errors.empty(); }
};

/// Load the three config files from `config_dir`. Parse problems are
/// appended to `errors`.
LayerConfig load_layer_config(const std::string& path,
                              std::vector<std::string>& errors);
Allowlist load_allowlist(const std::string& path,
                         std::vector<std::string>& errors);
ContractManifest load_contract_manifest(const std::string& path,
                                        std::vector<std::string>& errors);

/// Run all three rule families over `options.scan_paths`.
Result run(const Options& options, const LayerConfig& layers,
           const Allowlist& allowlist, const ContractManifest& manifest);

/// Convenience wrapper: load configs from `<root>/tools/lint` (or
/// `config_dir` when non-empty) with the default scan/audit set and run.
Result run_repo(const std::string& root, const std::string& config_dir = "");

/// Render the recomputed manifest `function` lines (for --print-manifest).
std::string format_manifest(const std::map<std::string, std::string>& fns);

}  // namespace qp::lint
