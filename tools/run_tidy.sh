#!/usr/bin/env bash
# Run the clang-tidy gate over src/ exactly as CI does.
#
#   tools/run_tidy.sh [--tests] [build-dir]
#
# Configures the `tidy` build tree (compile_commands.json with contracts
# compiled in, so contract-only code paths are analyzed too), then runs
# clang-tidy with the repo's committed .clang-tidy over every translation
# unit under src/. With --tests, tests/ is covered too (under its own
# tests/.clang-tidy overlay; tests/lint_fixtures/ is excluded -- those
# files are analyzer test data, not code). Exits non-zero on any tidy
# error, i.e. on any finding in the WarningsAsErrors set.
set -euo pipefail

cd "$(dirname "$0")/.."

WITH_TESTS=0
if [[ "${1:-}" == "--tests" ]]; then
  WITH_TESTS=1
  shift
fi
BUILD_DIR="${1:-build-tidy}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH; install clang-tidy to run the gate" >&2
  exit 1
fi
clang-tidy --version

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DQPLACE_FORCE_CONTRACTS=ON >/dev/null

mapfile -t sources < <(find src -name '*.cpp' | sort)
if [[ "$WITH_TESTS" == 1 ]]; then
  mapfile -t -O "${#sources[@]}" sources \
    < <(find tests -name '*.cpp' -not -path 'tests/lint_fixtures/*' | sort)
fi
echo "clang-tidy over ${#sources[@]} files (compile db: $BUILD_DIR)"

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$BUILD_DIR" -quiet "${sources[@]/#/$PWD/}"
else
  status=0
  for source in "${sources[@]}"; do
    clang-tidy -p "$BUILD_DIR" --quiet "$source" || status=1
  done
  exit "$status"
fi
