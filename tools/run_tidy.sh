#!/usr/bin/env bash
# Run the clang-tidy gate over src/ exactly as CI does.
#
#   tools/run_tidy.sh [build-dir]
#
# Configures the `tidy` build tree (compile_commands.json with contracts
# compiled in, so contract-only code paths are analyzed too), then runs
# clang-tidy with the repo's committed .clang-tidy over every translation
# unit under src/. Exits non-zero on any tidy error, i.e. on any finding in
# the WarningsAsErrors set.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tidy}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH; install clang-tidy to run the gate" >&2
  exit 1
fi
clang-tidy --version

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DQPLACE_FORCE_CONTRACTS=ON >/dev/null

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "clang-tidy over ${#sources[@]} files in src/ (compile db: $BUILD_DIR)"

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$BUILD_DIR" -quiet "${sources[@]/#/$PWD/}"
else
  status=0
  for source in "${sources[@]}"; do
    clang-tidy -p "$BUILD_DIR" --quiet "$source" || status=1
  done
  exit "$status"
fi
