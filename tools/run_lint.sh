#!/usr/bin/env bash
# Run the qplace-lint gate over src/ and tools/ exactly as CI does.
#
#   tools/run_lint.sh [build-dir] [report-file]
#
# Builds the analyzer (a plain CMake target, no clang/libclang needed) and
# runs it against the repo root with the committed configuration under
# tools/lint/ (layers.conf, allowlist.conf, contracts.manifest). Exits
# non-zero on any finding; writes a JSON report (qplace.lint_report.v1) for
# CI artifact upload when a report path is given.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-lint}"
REPORT="${2:-}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target qplace_lint -j "$(nproc)" >/dev/null

args=(--root .)
if [[ -n "$REPORT" ]]; then
  args+=(--report "$REPORT")
fi
"$BUILD_DIR/tools/lint/qplace-lint" "${args[@]}"
