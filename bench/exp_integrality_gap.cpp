/// Experiment E6 -- Appendix A / Claim A.1 / Figure 1 (LP integrality gap).
///
/// Builds both constructions and measures OPT / Z*:
///   (a) general-metric star instance: gap -> n as M grows;
///   (b) unweighted Figure-1 "broom" graph: gap ~ (2/3) sqrt(n).
/// The experiment demonstrates why Thm 3.7 must relax capacities: the gap
/// grows without bound, so no capacity-respecting LP rounding can be
/// delay-competitive. Exits non-zero if a measured gap falls below the
/// construction's guaranteed level.

#include <iostream>
#include <string>
#include <vector>

#include "core/exact.hpp"
#include "core/gap_instances.hpp"
#include "core/ssqpp_lp.hpp"
#include "report/table.hpp"

int main() {
  using namespace qp;
  bool violated = false;

  report::banner(std::cout,
                 "E6a: general-metric instance (Claim A.1) -- gap tends to n");
  {
    report::Table table({"n", "M", "Z* (LP)", "OPT", "gap OPT/Z*",
                         "n*M/(n-2+M)"});
    for (int n : {4, 6, 8}) {
      for (double m_distance : {10.0, 100.0, 1000.0}) {
        const core::GapConstruction c =
            core::general_metric_gap_instance(n, m_distance);
        const core::FractionalSsqpp f = core::solve_ssqpp_lp(c.instance);
        if (f.status != lp::SolveStatus::kOptimal) continue;
        const auto exact = core::exact_ssqpp(c.instance);
        if (!exact) continue;
        const double gap = exact->delay / f.objective;
        const double predicted =
            n * m_distance / (n - 2 + m_distance);
        // The measured gap must be at least ~90% of the predicted level.
        violated = violated || gap < 0.9 * predicted;
        table.add_row({std::to_string(n), report::Table::num(m_distance, 0),
                       report::Table::num(f.objective, 4),
                       report::Table::num(exact->delay, 1),
                       report::Table::num(gap, 3),
                       report::Table::num(predicted, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "As M >> n the gap approaches n: the LP can spread the "
                 "quorum fractionally\nover cheap nodes while any integral "
                 "placement must use the distant node.\n";
  }

  report::banner(std::cout,
                 "E6b: Figure 1 broom graph -- gap ~ (2/3) sqrt(n) on "
                 "unweighted graphs");
  {
    report::Table table({"k", "n = k^2", "Z* (LP)", "OPT = k", "gap",
                         "(2/3) k"});
    for (int k = 2; k <= 7; ++k) {
      const core::GapConstruction c = core::broom_gap_instance(k);
      const core::FractionalSsqpp f = core::solve_ssqpp_lp(c.instance);
      if (f.status != lp::SolveStatus::kOptimal) continue;
      // OPT is k by construction (verified exactly for small k).
      double opt = c.integral_optimum;
      if (k <= 3) {
        const auto exact = core::exact_ssqpp(c.instance);
        if (exact) opt = exact->delay;
      }
      const double gap = opt / f.objective;
      violated = violated || gap < 0.9 * (2.0 * k / 3.0);
      table.add_row({std::to_string(k), std::to_string(k * k),
                     report::Table::num(f.objective, 4),
                     report::Table::num(opt, 1), report::Table::num(gap, 3),
                     report::Table::num(2.0 * k / 3.0, 3)});
    }
    table.print(std::cout);
  }

  std::cout << (violated
                    ? "\nRESULT: GAP BELOW GUARANTEED LEVEL\n"
                    : "\nRESULT: integrality gaps match Claim A.1 (linear in "
                      "n on general metrics, ~sqrt(n) on unweighted "
                      "graphs).\n");
  return violated ? 1 : 0;
}
