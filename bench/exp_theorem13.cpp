/// Experiment E11 -- Theorem 1.3 (capacity-respecting 5-approximation for
/// Grid and Majority).
///
/// Unlike the general Thm 1.2 pipeline, the specialized solvers place the
/// Grid / Majority systems with NO capacity blow-up. On instances small
/// enough for the exact oracle, measure Avg delay / OPT against the bound
/// 5, verify capacity feasibility, and contrast with the Thm 1.2 LP
/// pipeline (which trades capacity violations for generality).
/// Exits non-zero if the factor-5 bound or exact feasibility breaks.

#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/qpp_solver.hpp"
#include "core/specialized.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

namespace {
using namespace qp;
}

int main() {
  report::banner(std::cout,
                 "E11: Thm 1.3 -- Grid/Majority placements, exact "
                 "capacities, bound 5x OPT");

  report::Table table({"system", "topology", "ratio min", "mean", "max",
                       "bound", "cap ok", "Thm1.2 ratio", "Thm1.2 load"});
  bool violated = false;

  for (const char* system_kind : {"grid2", "majority5-3"}) {
    for (int topo = 0; topo < 3; ++topo) {
      std::vector<double> ratios, lp_ratios, lp_loads;
      bool cap_ok = true;
      for (int seed = 0; seed < 6; ++seed) {
        std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 1361 + topo);
        const graph::Graph g =
            topo == 0 ? graph::erdos_renyi(7, 0.5, rng, 1.0, 7.0)
            : topo == 1 ? graph::random_tree(7, rng, 1.0, 5.0)
                        : graph::cycle_graph(7, 2.0);
        const bool is_grid = std::string(system_kind) == "grid2";
        const quorum::QuorumSystem system =
            is_grid ? quorum::grid(2) : quorum::majority(5, 3);
        const double load = is_grid ? 0.75 : 0.6;
        core::QppInstance instance(
            graph::Metric::from_graph(g), std::vector<double>(7, 1.3 * load),
            system, quorum::AccessStrategy::uniform(system));

        const auto special =
            is_grid ? core::solve_qpp_grid(instance, 2)
                    : core::solve_qpp_majority(instance, 3);
        if (!special) continue;
        cap_ok = cap_ok && core::is_capacity_feasible(
                               instance.element_loads(),
                               instance.capacities(), special->placement);
        const auto exact = core::exact_qpp_max_delay(instance);
        if (!exact || exact->delay <= 1e-12) continue;
        ratios.push_back(special->average_delay / exact->delay);

        core::QppSolveOptions options;  // alpha = 2
        const auto general = core::solve_qpp(instance, options);
        if (general) {
          lp_ratios.push_back(general->average_delay / exact->delay);
          lp_loads.push_back(general->load_violation);
        }
      }
      if (ratios.empty()) continue;
      const report::Summary r = report::summarize(ratios);
      violated = violated || r.max > 5.0 + 1e-9 || !cap_ok;
      table.add_row(
          {system_kind,
           topo == 0   ? "erdos-renyi"
           : topo == 1 ? "tree"
                       : "cycle",
           report::Table::num(r.min, 3), report::Table::num(r.mean, 3),
           report::Table::num(r.max, 3), "5.000", cap_ok ? "yes" : "NO",
           lp_ratios.empty()
               ? std::string("-")
               : report::Table::num(report::summarize(lp_ratios).mean, 3),
           lp_loads.empty()
               ? std::string("-")
               : report::Table::num(report::summarize(lp_loads).max, 3)});
    }
  }
  table.print(std::cout);
  std::cout
      << "\nThe specialized solvers stay inside the rated capacities (cap ok)"
         "\nwhile the general Thm 1.2 pipeline may exceed them by up to "
         "alpha+1 = 3.\n"
      << (violated ? "\nRESULT: BOUND VIOLATED\n"
                   : "\nRESULT: Thm 1.3 factor-5 and exact capacity "
                     "feasibility hold everywhere.\n");
  return violated ? 1 : 0;
}
