/// P1 -- performance of the graph substrate: Dijkstra, all-pairs shortest
/// paths, and metric construction across topology families and sizes.

#include <benchmark/benchmark.h>

#include "metrics_endpoint.hpp"

#include <algorithm>
#include <random>

#include "graph/generators.hpp"
#include "graph/metric.hpp"
#include "graph/shortest_paths.hpp"

namespace {

using namespace qp::graph;

Graph make_er(int n) {
  std::mt19937_64 rng(42);
  return erdos_renyi(n, std::min(1.0, 8.0 / n), rng, 1.0, 10.0);
}

void BM_DijkstraErdosRenyi(benchmark::State& state) {
  const Graph g = make_er(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DijkstraErdosRenyi)->Range(64, 4096)->Complexity();

void BM_DijkstraGridMesh(benchmark::State& state) {
  const Graph g = grid_mesh(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0));
  }
}
BENCHMARK(BM_DijkstraGridMesh)->Arg(16)->Arg(32)->Arg(64);

void BM_AllPairs(benchmark::State& state) {
  const Graph g = make_er(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_pairs_distances(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AllPairs)->Range(32, 512)->Complexity();

void BM_MetricFromGraph(benchmark::State& state) {
  const Graph g = make_er(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Metric::from_graph(g));
  }
}
BENCHMARK(BM_MetricFromGraph)->Arg(64)->Arg(128)->Arg(256);

void BM_NodesByDistance(benchmark::State& state) {
  const Metric m = Metric::from_graph(make_er(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.nodes_by_distance_from(0));
  }
}
BENCHMARK(BM_NodesByDistance)->Arg(128)->Arg(512);

void BM_GeneratorGeometric(benchmark::State& state) {
  for (auto _ : state) {
    std::mt19937_64 rng(7);
    benchmark::DoNotOptimize(
        random_geometric(static_cast<int>(state.range(0)), 0.3, rng));
  }
}
BENCHMARK(BM_GeneratorGeometric)->Arg(64)->Arg(256);

}  // namespace

// BENCHMARK_MAIN() expanded so the env-gated admin endpoint
// (metrics_endpoint.hpp) lives for the whole benchmark run:
// QPLACE_METRICS_PORT=P makes this driver scrapeable while it runs.
int main(int argc, char** argv) {
  const qp::bench::MetricsEndpoint metrics_endpoint;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
