/// P2 -- performance of the LP substrate: simplex on the paper's two LP
/// shapes (SSQPP LP (9)-(14) and the GAP relaxation (15)-(18)).

#include <benchmark/benchmark.h>

#include "metrics_endpoint.hpp"

#include <random>

#include "assign/gap.hpp"
#include "core/ssqpp_lp.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"

namespace {

using namespace qp;

core::SsqppInstance ssqpp_instance(int n, int k) {
  std::mt19937_64 rng(11);
  const graph::Metric metric = graph::Metric::from_graph(
      graph::erdos_renyi(n, 0.35, rng, 1.0, 10.0));
  const quorum::QuorumSystem system = quorum::grid(k);
  return core::SsqppInstance(
      metric, std::vector<double>(static_cast<std::size_t>(n), 1.0), system,
      quorum::AccessStrategy::uniform(system), 0);
}

void BM_SsqppLpGrid2(benchmark::State& state) {
  const core::SsqppInstance instance =
      ssqpp_instance(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_ssqpp_lp(instance));
  }
}
BENCHMARK(BM_SsqppLpGrid2)->Arg(8)->Arg(16)->Arg(24);

void BM_SsqppLpGrid3(benchmark::State& state) {
  const core::SsqppInstance instance =
      ssqpp_instance(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_ssqpp_lp(instance));
  }
}
BENCHMARK(BM_SsqppLpGrid3)->Arg(10)->Arg(16);

void BM_GapLp(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const int machines = jobs / 2;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> cost(1.0, 10.0);
  std::uniform_real_distribution<double> load(0.2, 1.0);
  assign::GapInstance gap(jobs, machines);
  for (int i = 0; i < machines; ++i) {
    gap.set_capacity(i, 3.0);
    for (int j = 0; j < jobs; ++j) {
      gap.set_cost(i, j, cost(rng));
      gap.set_load(i, j, load(rng));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign::solve_gap_lp(gap));
  }
}
BENCHMARK(BM_GapLp)->Arg(10)->Arg(20)->Arg(40);

void BM_GapRoundingEndToEnd(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const int machines = jobs / 2;
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> cost(1.0, 10.0);
  std::uniform_real_distribution<double> load(0.2, 1.0);
  assign::GapInstance gap(jobs, machines);
  for (int i = 0; i < machines; ++i) {
    gap.set_capacity(i, 3.0);
    for (int j = 0; j < jobs; ++j) {
      gap.set_cost(i, j, cost(rng));
      gap.set_load(i, j, load(rng));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign::solve_gap(gap));
  }
}
BENCHMARK(BM_GapRoundingEndToEnd)->Arg(10)->Arg(20)->Arg(40);

void BM_FilterFractional(benchmark::State& state) {
  const core::SsqppInstance instance =
      ssqpp_instance(static_cast<int>(state.range(0)), 2);
  const core::FractionalSsqpp fractional = core::solve_ssqpp_lp(instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::filter_fractional(fractional, 2.0));
  }
}
BENCHMARK(BM_FilterFractional)->Arg(16)->Arg(24);

}  // namespace

// BENCHMARK_MAIN() expanded so the env-gated admin endpoint
// (metrics_endpoint.hpp) lives for the whole benchmark run:
// QPLACE_METRICS_PORT=P makes this driver scrapeable while it runs.
int main(int argc, char** argv) {
  const qp::bench::MetricsEndpoint metrics_endpoint;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
