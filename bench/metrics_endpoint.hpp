#pragma once

/// \file metrics_endpoint.hpp
/// Env-gated admin endpoint for the bench drivers.
///
/// Exporting QPLACE_METRICS_PORT=P makes a driver serve GET /metrics
/// (Prometheus text rendering of the live obs registry, docs/OBSERVABILITY.md
/// "Live telemetry") and /healthz on 127.0.0.1:P for its whole lifetime --
/// the same endpoint `qplace simulate --metrics-port` exposes, minus the
/// run-report route. The env gate keeps the flag surface of the
/// google-benchmark binaries untouched: `QPLACE_METRICS_PORT=9464
/// build/bench/perf_sim` is scrapeable, a plain invocation starts no thread
/// and opens no socket.

#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>

#include "net/http_server.hpp"
#include "obs/obs.hpp"
#include "obs/prom.hpp"

namespace qp::bench {

/// Starts the endpoint on construction when QPLACE_METRICS_PORT is set and
/// stops it on destruction. A malformed value or an unbindable port is a
/// stderr warning, never a failure -- benchmarks must run without the admin
/// plane.
class MetricsEndpoint {
 public:
  MetricsEndpoint() {
    const char* env = std::getenv("QPLACE_METRICS_PORT");
    if (env == nullptr || *env == '\0') return;
    int port = 0;
    try {
      port = std::stoi(env);
    } catch (const std::exception&) {
      std::cerr << "warning: ignoring non-numeric QPLACE_METRICS_PORT '"
                << env << "'\n";
      return;
    }
    server_.handle("/metrics", [](const net::HttpRequest&) {
      net::HttpResponse response;
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = obs::render_prometheus(obs::Registry::instance());
      return response;
    });
    server_.handle("/healthz", [](const net::HttpRequest&) {
      net::HttpResponse response;
      response.body = "ok\n";
      return response;
    });
    try {
      server_.start(port);
      std::cerr << "serving /metrics /healthz on 127.0.0.1:"
                << server_.port() << "\n";
    } catch (const std::exception& e) {
      std::cerr << "warning: QPLACE_METRICS_PORT=" << env << ": " << e.what()
                << "\n";
    }
  }

 private:
  net::HttpServer server_;
};

}  // namespace qp::bench
