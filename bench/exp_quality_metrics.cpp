/// Experiment E14 -- input-selection metrics (paper footnote 1).
///
/// The paper takes the quorum system and access strategy as inputs, "chosen
/// from the existing literature to achieve good load-balancing, say, or
/// high availability". This experiment reproduces the classic Naor-Wool
/// numbers those choices rest on, for every shipped construction:
///   (a) optimal system load vs the Naor-Wool lower bound
///       max(1/c(Q), c(Q)/n)  -- equality certifies the strategy LP;
///   (b) fault tolerance (min hitting set);
///   (c) availability F_p at several element-failure probabilities p,
///       showing the Majority/Grid crossover (Majority's availability is
///       far better below p = 1/2, Grid's load is far better).
/// Gates: load >= lower bound, and exact availability in [0, 1] monotone
/// in p for p <= 1/2 families checked.

#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "quorum/analysis.hpp"
#include "quorum/constructions.hpp"
#include "report/table.hpp"

namespace {
using namespace qp;
}

int main() {
  bool violated = false;

  struct Entry {
    std::string name;
    quorum::QuorumSystem system;
  };
  std::vector<Entry> systems;
  systems.push_back({"grid(3)", quorum::grid(3)});
  systems.push_back({"grid(4)", quorum::grid(4)});
  systems.push_back({"majority(9)", quorum::majority(9)});
  systems.push_back({"majority(13)", quorum::majority(13)});
  systems.push_back({"fpp(2)", quorum::projective_plane(2)});
  systems.push_back({"fpp(3)", quorum::projective_plane(3)});
  systems.push_back({"tree(h=2)", quorum::binary_tree(2)});
  systems.push_back({"wall(2,3,4)", quorum::crumbling_wall({2, 3, 4})});
  systems.push_back({"hier(3,2)", quorum::hierarchical_majority(3, 2)});
  systems.push_back({"wheel(9)", quorum::wheel(9)});
  systems.push_back({"star(9)", quorum::star(9)});

  report::banner(std::cout,
                 "E14: quorum quality metrics (Naor-Wool; the paper's input "
                 "selection criteria)");
  report::Table table({"system", "|U|", "min|Q|", "opt load", "lower bnd",
                       "tight", "fault tol", "F_0.1", "F_0.3"});
  for (const Entry& e : systems) {
    int smallest = e.system.max_quorum_size();
    for (const auto& q : e.system.quorums()) {
      smallest = std::min<int>(smallest, static_cast<int>(q.size()));
    }
    const quorum::OptimalStrategy best =
        quorum::optimal_load_strategy(e.system);
    const double bound = quorum::load_lower_bound(e.system);
    violated = violated || best.load < bound - 1e-7;

    std::string f01 = "-", f03 = "-";
    if (e.system.universe_size() <= 20) {
      const double a = quorum::failure_probability_exact(e.system, 0.1);
      const double b = quorum::failure_probability_exact(e.system, 0.3);
      violated = violated || a < -1e-12 || a > 1.0 + 1e-12 || b < a - 1e-12;
      f01 = report::Table::num(a, 5);
      f03 = report::Table::num(b, 5);
    } else {
      std::mt19937_64 rng(99);
      f01 = report::Table::num(
          quorum::failure_probability_monte_carlo(e.system, 0.1, 30000, rng),
          5);
      f03 = report::Table::num(
          quorum::failure_probability_monte_carlo(e.system, 0.3, 30000, rng),
          5);
    }
    table.add_row({e.name, std::to_string(e.system.universe_size()),
                   std::to_string(smallest),
                   report::Table::num(best.load, 4),
                   report::Table::num(bound, 4),
                   best.load <= bound + 1e-6 ? "yes" : "no",
                   std::to_string(quorum::fault_tolerance(e.system)), f01,
                   f03});
  }
  table.print(std::cout);
  std::cout
      << "\nReading: FPP hits the sqrt(n) load lower bound exactly (Maekawa's "
         "optimum);\nMajority pays ~1/2 load for the best availability; star/"
         "wheel concentrate\nload on a hub and die with 1-2 crashes. These "
         "trade-offs motivate which\n(Q, p) a deployment feeds into the "
         "placement algorithms.\n"
      << (violated ? "\nRESULT: METRIC INCONSISTENCY\n"
                   : "\nRESULT: all strategies meet their Naor-Wool lower "
                     "bounds; availability orderings as published.\n");
  return violated ? 1 : 0;
}
