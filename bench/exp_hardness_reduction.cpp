/// Experiment E8 -- Theorem 3.6 (NP-hardness reduction from 1|prec|sum wC).
///
/// On random Woeginger-form scheduling instances:
///   - the exact SSQPP optimum of the reduced instance equals the affine
///     image of the exact scheduling optimum (the crux of the reduction);
///   - optimal placements convert back to optimal schedules;
///   - the Thm 3.7 LP-rounding solver, run on the reduced instance, yields
///     schedules whose cost is within the LP's approximation factor.
/// Exits non-zero on an equivalence failure.

#include <cmath>
#include <iostream>
#include <random>
#include <vector>

#include "core/exact.hpp"
#include "core/ssqpp_solver.hpp"
#include "report/table.hpp"
#include "sched/exact.hpp"
#include "sched/reduction.hpp"
#include "sched/scheduling.hpp"

int main() {
  using namespace qp;
  bool violated = false;

  report::banner(std::cout,
                 "E8: Thm 3.6 reduction -- scheduling optimum <-> SSQPP "
                 "optimum");
  {
    report::Table table({"seed", "jobs (T/W)", "sched OPT", "delay(OPT)",
                         "SSQPP OPT", "equal", "roundtrip OPT"});
    for (int seed = 0; seed < 10; ++seed) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 389 + 2);
      const int num_time = 3 + seed % 3;
      const int num_weight = 2 + seed % 3;
      const sched::SchedulingInstance inst =
          sched::random_woeginger_instance(num_time, num_weight, 0.45, rng);
      const sched::ReductionResult reduction = sched::reduce_to_ssqpp(inst);

      const sched::ExactScheduleResult sched_opt = sched::solve_exact(inst);
      const auto place_opt = core::exact_ssqpp(reduction.instance);
      if (!place_opt) continue;

      const double predicted =
          reduction.delay_for_schedule_cost(sched_opt.cost);
      const bool equal = std::abs(place_opt->delay - predicted) < 1e-9;

      const auto back = sched::schedule_from_placement(
          inst, reduction, place_opt->placement);
      const bool roundtrip =
          back.has_value() &&
          std::abs(inst.cost(*back) - sched_opt.cost) < 1e-9;
      violated = violated || !equal || !roundtrip;

      table.add_row({std::to_string(seed),
                     std::to_string(num_time) + "/" +
                         std::to_string(num_weight),
                     report::Table::num(sched_opt.cost, 1),
                     report::Table::num(predicted, 6),
                     report::Table::num(place_opt->delay, 6),
                     equal ? "yes" : "NO", roundtrip ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  report::banner(std::cout,
                 "E8b: LP rounding on reduced instances -- schedule quality "
                 "through the reduction");
  {
    report::Table table({"seed", "sched OPT", "LP Z*", "rounded delay",
                         "delay <= 2 Z*", "implied sched cost"});
    for (int seed = 0; seed < 6; ++seed) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 577 + 19);
      const sched::SchedulingInstance inst =
          sched::random_woeginger_instance(4, 3, 0.5, rng);
      const sched::ReductionResult reduction = sched::reduce_to_ssqpp(inst);
      const sched::ExactScheduleResult sched_opt = sched::solve_exact(inst);

      const auto rounded = core::solve_ssqpp(reduction.instance, 2.0);
      if (!rounded) continue;
      const bool within = rounded->delay <= 2.0 * rounded->lp_objective + 1e-7;
      violated = violated || !within;
      table.add_row(
          {std::to_string(seed), report::Table::num(sched_opt.cost, 1),
           report::Table::num(rounded->lp_objective, 5),
           report::Table::num(rounded->delay, 5), within ? "yes" : "NO",
           report::Table::num(
               reduction.schedule_cost_for_delay(rounded->delay), 2)});
    }
    table.print(std::cout);
    std::cout << "Note: rounded placements may stack elements (capacity "
                 "relaxed by alpha+1),\nso the implied schedule cost can "
                 "undershoot OPT -- the reduction is exact\nonly for "
                 "capacity-respecting placements, which is the point of "
                 "Thm 3.6.\n";
  }

  std::cout << (violated ? "\nRESULT: EQUIVALENCE FAILURE\n"
                         : "\nRESULT: reduction exact on all seeds -- "
                           "optimal schedules and optimal placements "
                           "correspond.\n");
  return violated ? 1 : 0;
}
