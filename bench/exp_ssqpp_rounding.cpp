/// Experiment E2 -- Theorem 3.7 / 3.12 (SSQPP LP rounding, alpha sweep).
///
/// For each alpha, solve the single-source placement with LP + filtering +
/// Shmoys-Tardos GAP rounding and compare:
///   delay ratio      Delta_f(v0) / Z*        vs bound alpha/(alpha-1)
///   load violation   max_v load_f(v)/cap(v)  vs bound alpha+1
/// On instances small enough, also report Delta_f(v0) / exact OPT.
/// Exits non-zero if any measured value exceeds its bound.

#include <iostream>
#include <optional>
#include <random>
#include <vector>

#include "core/exact.hpp"
#include "core/ssqpp_solver.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

namespace {

using namespace qp;

struct Workload {
  const char* name;
  quorum::QuorumSystem system;
  double capacity;  // per node, as a multiple of the (uniform) element load
};

}  // namespace

int main() {
  report::banner(std::cout,
                 "E2: Thm 3.7 SSQPP rounding -- delay vs alpha/(alpha-1), "
                 "load vs alpha+1");

  std::vector<Workload> workloads;
  workloads.push_back({"grid2", quorum::grid(2), 1.0});
  workloads.push_back({"grid3", quorum::grid(3), 1.0});
  workloads.push_back({"majority5", quorum::majority(5), 1.0});
  {
    std::mt19937_64 rng(5);
    workloads.push_back(
        {"sampled-maj9", quorum::sampled_majority(9, 5, 12, rng), 1.5});
  }

  const std::vector<double> alphas = {1.5, 2.0, 3.0, 4.0};
  const std::vector<int> sizes = {10, 16, 22};
  const int seeds = 3;

  report::Table table({"workload", "n", "alpha", "delay/Z*", "bound",
                       "load/cap", "bound", "delay/OPT"});
  bool violated = false;

  for (const Workload& w : workloads) {
    const quorum::AccessStrategy strategy =
        quorum::AccessStrategy::uniform(w.system);
    const double element_load =
        quorum::element_loads(w.system, strategy)[0];
    for (int n : sizes) {
      for (double alpha : alphas) {
        std::vector<double> delay_ratios, load_ratios, opt_ratios;
        for (int seed = 0; seed < seeds; ++seed) {
          std::mt19937_64 rng(
              static_cast<std::uint64_t>(seed) * 7919 +
              static_cast<std::uint64_t>(n));
          const graph::Metric metric = graph::Metric::from_graph(
              graph::erdos_renyi(n, 0.35, rng, 1.0, 10.0));
          const core::SsqppInstance instance(
              metric,
              std::vector<double>(static_cast<std::size_t>(n),
                                  w.capacity * element_load),
              w.system, strategy, 0);
          const auto result = core::solve_ssqpp(instance, alpha);
          if (!result) continue;
          if (result->lp_objective > 1e-12) {
            delay_ratios.push_back(result->delay / result->lp_objective);
          }
          load_ratios.push_back(result->load_violation);
          if (w.system.universe_size() <= 5 && n <= 16) {
            const auto exact = core::exact_ssqpp(instance);
            if (exact && exact->delay > 1e-12) {
              opt_ratios.push_back(result->delay / exact->delay);
            }
          }
        }
        if (delay_ratios.empty()) continue;
        const report::Summary dr = report::summarize(delay_ratios);
        const report::Summary lr = report::summarize(load_ratios);
        const double delay_bound = alpha / (alpha - 1.0);
        violated = violated || dr.max > delay_bound + 1e-6 ||
                   lr.max > alpha + 1.0 + 1e-6;
        table.add_row(
            {w.name, std::to_string(n), report::Table::num(alpha, 2),
             report::Table::num(dr.max, 3),
             report::Table::num(delay_bound, 3),
             report::Table::num(lr.max, 3),
             report::Table::num(alpha + 1.0, 2),
             opt_ratios.empty()
                 ? std::string("-")
                 : report::Table::num(report::summarize(opt_ratios).max, 3)});
      }
    }
  }
  table.print(std::cout);
  std::cout << (violated
                    ? "\nRESULT: BOUND VIOLATED\n"
                    : "\nRESULT: all delay and load ratios within Thm 3.7 "
                      "bounds.\n");
  return violated ? 1 : 0;
}
