/// Experiment E13 -- scaling series ("figure-style" artifact).
///
/// The paper proves ratio bounds but reports no measurements; this series
/// shows how the pipeline behaves as the network grows and as the quorum
/// system grows, on Waxman internet-like topologies:
///   (a) fixed grid(2), n in {8..40}: LP bound Z*, Thm 3.7 rounded delay,
///       greedy-nearest baseline, and the (n<=10) exact optimum;
///   (b) fixed n = 24, grid(k) for k in {2..4}: per-element load shrinks as
///       (2k-1)/k^2 while quorums spread wider, trading delay for load
///       dispersion.
/// Consistency gate: the Thm 3.7 column must stay within its 2 Z* bound.

#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/ssqpp_solver.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/table.hpp"

namespace {
using namespace qp;

core::SsqppInstance make_instance(int n, int k, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const graph::Metric metric =
      graph::Metric::from_graph(graph::waxman(n, 0.9, 0.4, rng).graph);
  const quorum::QuorumSystem system = quorum::grid(k);
  const double load = static_cast<double>(2 * k - 1) / (k * k);
  return core::SsqppInstance(
      metric,
      std::vector<double>(static_cast<std::size_t>(n), 1.2 * load), system,
      quorum::AccessStrategy::uniform(system), 0);
}

}  // namespace

int main() {
  bool violated = false;

  report::banner(std::cout,
                 "E13a: growth in network size n (grid(2), Waxman, source 0)");
  {
    report::Table table({"n", "Z* (LP)", "Thm 3.7 delay", "bound 2Z*",
                         "greedy", "exact OPT"});
    for (int n : {8, 12, 16, 24, 32, 40}) {
      const core::SsqppInstance instance = make_instance(n, 2, 100 + n);
      const auto rounded = core::solve_ssqpp(instance, 2.0);
      if (!rounded) continue;
      violated = violated ||
                 rounded->delay > 2.0 * rounded->lp_objective + 1e-6;
      const auto greedy = core::greedy_nearest_placement(instance);
      std::string exact_cell = "-";
      if (n <= 10) {
        const auto exact = core::exact_ssqpp(instance);
        if (exact) exact_cell = report::Table::num(exact->delay, 4);
      }
      table.add_row(
          {std::to_string(n), report::Table::num(rounded->lp_objective, 4),
           report::Table::num(rounded->delay, 4),
           report::Table::num(2.0 * rounded->lp_objective, 4),
           greedy ? report::Table::num(
                        core::source_expected_max_delay(instance, *greedy), 4)
                  : std::string("-"),
           exact_cell});
    }
    table.print(std::cout);
    std::cout << "Delay shrinks as density grows (nearer slots appear); the "
                 "rounded delay\ntracks Z* well below its 2x bound.\n";
  }

  report::banner(std::cout,
                 "E13b: growth in quorum system size (n = 24, grid(k))");
  {
    report::Table table({"k", "|U|", "|Q| size", "element load",
                         "Z* (LP)", "Thm 3.7 delay", "bound 2Z*"});
    for (int k : {2, 3, 4}) {
      const core::SsqppInstance instance = make_instance(24, k, 777);
      const auto rounded = core::solve_ssqpp(instance, 2.0);
      if (!rounded) continue;
      violated = violated ||
                 rounded->delay > 2.0 * rounded->lp_objective + 1e-6;
      table.add_row({std::to_string(k), std::to_string(k * k),
                     std::to_string(2 * k - 1),
                     report::Table::num(
                         static_cast<double>(2 * k - 1) / (k * k), 3),
                     report::Table::num(rounded->lp_objective, 4),
                     report::Table::num(rounded->delay, 4),
                     report::Table::num(2.0 * rounded->lp_objective, 4)});
    }
    table.print(std::cout);
    std::cout << "Larger grids disperse load (smaller per-element load) but "
                 "must reach more\nslots, raising the max-delay -- the "
                 "load/delay tension of Sec 1.1.\n";
  }

  std::cout << (violated ? "\nRESULT: BOUND VIOLATED\n"
                         : "\nRESULT: Thm 3.7 bound holds across the whole "
                           "series.\n");
  return violated ? 1 : 0;
}
