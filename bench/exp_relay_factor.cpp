/// Experiment E1 -- Lemma 3.1 (the factor-5 relay bound).
///
/// For random placements f of several quorum systems on several topology
/// families, measure
///     ratio = relay-via-v0 delay / direct average max-delay
/// with v0 = argmin_v Delta_f(v), and check ratio <= 5 everywhere (the
/// paper's structural guarantee). Prints min/mean/max ratios per
/// (system, topology, n) cell; exits non-zero if any ratio exceeds 5.

#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "core/evaluators.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

namespace {

using namespace qp;

graph::Metric make_topology(const std::string& kind, int n,
                            std::mt19937_64& rng) {
  if (kind == "geometric") {
    return graph::Metric::from_graph(graph::random_geometric(n, 0.45, rng).graph);
  }
  if (kind == "erdos-renyi") {
    return graph::Metric::from_graph(graph::erdos_renyi(n, 0.3, rng, 1.0, 8.0));
  }
  if (kind == "clustered") {
    return graph::Metric::from_graph(
        graph::ring_of_cliques(4, n / 4, 1.0, 20.0));
  }
  return graph::Metric::from_graph(graph::path_graph(n, 1.0));
}

quorum::QuorumSystem make_system(const std::string& kind) {
  if (kind == "grid3") return quorum::grid(3);
  if (kind == "majority7") return quorum::majority(7);
  return quorum::projective_plane(2);  // "fpp2"
}

}  // namespace

int main() {
  report::banner(std::cout, "E1: Lemma 3.1 relay factor (bound: 5)");
  std::cout << "relay delay = Avg_v d(v, v0) + Delta_f(v0),  "
               "v0 = argmin_v Delta_f(v)\n\n";

  const std::vector<std::string> topologies = {"geometric", "erdos-renyi",
                                               "clustered", "path"};
  const std::vector<std::string> systems = {"grid3", "majority7", "fpp2"};
  const std::vector<int> sizes = {16, 32, 64};
  const int trials = 40;

  report::Table table(
      {"system", "topology", "n", "min ratio", "mean", "max", "bound"});
  bool violated = false;

  for (const std::string& system_kind : systems) {
    const quorum::QuorumSystem system = make_system(system_kind);
    const quorum::AccessStrategy strategy =
        quorum::AccessStrategy::uniform(system);
    for (const std::string& topo : topologies) {
      for (int n : sizes) {
        std::mt19937_64 rng(1234 + n);
        const graph::Metric metric = make_topology(topo, n, rng);
        const int nodes = metric.num_points();
        core::QppInstance instance(
            metric, std::vector<double>(static_cast<std::size_t>(nodes), 1e9),
            system, strategy);
        std::uniform_int_distribution<int> pick(0, nodes - 1);
        std::vector<double> ratios;
        for (int t = 0; t < trials; ++t) {
          core::Placement f(
              static_cast<std::size_t>(system.universe_size()));
          for (int& v : f) v = pick(rng);
          const double direct = core::average_max_delay(instance, f);
          if (direct <= 0.0) continue;  // degenerate all-on-one-point draw
          const int v0 = core::best_relay_node(instance, f);
          ratios.push_back(core::relay_delay(instance, f, v0) / direct);
        }
        const report::Summary s = report::summarize(ratios);
        violated = violated || s.max > 5.0 + 1e-9;
        table.add_row({system_kind, topo, std::to_string(nodes),
                       report::Table::num(s.min, 3),
                       report::Table::num(s.mean, 3),
                       report::Table::num(s.max, 3), "5.000"});
      }
    }
  }
  table.print(std::cout);
  std::cout << (violated ? "\nRESULT: BOUND VIOLATED\n"
                         : "\nRESULT: all ratios within the paper's factor-5 "
                           "bound.\n");
  return violated ? 1 : 0;
}
