/// P4 -- performance of the discrete-event simulator: events per second
/// across access modes, queueing configurations and system sizes.

#include <benchmark/benchmark.h>

#include "metrics_endpoint.hpp"

#include <random>

#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qp;

core::QppInstance make_instance(int n, int k) {
  std::mt19937_64 rng(5);
  const graph::Metric metric = graph::Metric::from_graph(
      graph::erdos_renyi(n, std::min(1.0, 8.0 / n), rng, 1.0, 6.0));
  const quorum::QuorumSystem system = quorum::grid(k);
  return core::QppInstance(
      metric, std::vector<double>(static_cast<std::size_t>(n), 1e6), system,
      quorum::AccessStrategy::uniform(system));
}

core::Placement spread_placement(const core::QppInstance& instance) {
  core::Placement f(
      static_cast<std::size_t>(instance.system().universe_size()));
  for (std::size_t u = 0; u < f.size(); ++u) {
    f[u] = static_cast<int>(u) % instance.num_nodes();
  }
  return f;
}

void BM_SimulateParallel(benchmark::State& state) {
  const core::QppInstance instance =
      make_instance(static_cast<int>(state.range(0)), 3);
  const core::Placement f = spread_placement(instance);
  sim::SimulationConfig config;
  config.duration = 200.0;
  std::int64_t accesses = 0;
  double p99 = 0.0;
  for (auto _ : state) {
    const auto result = sim::simulate(instance, f, config);
    accesses += result.completed_accesses;
    p99 = result.access_delay.quantile(0.99);
    benchmark::DoNotOptimize(result);
  }
  state.counters["accesses/s"] = benchmark::Counter(
      static_cast<double>(accesses), benchmark::Counter::kIsRate);
  // Identical every iteration (fixed seed): the histogram layer is exercised
  // here mainly so its overhead shows up in this benchmark's wall time.
  state.counters["p99_delay"] = benchmark::Counter(p99);
}
BENCHMARK(BM_SimulateParallel)->Arg(16)->Arg(64)->Arg(256);

void BM_SimulateSequential(benchmark::State& state) {
  const core::QppInstance instance =
      make_instance(static_cast<int>(state.range(0)), 3);
  const core::Placement f = spread_placement(instance);
  sim::SimulationConfig config;
  config.duration = 200.0;
  config.mode = sim::AccessMode::kSequential;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(instance, f, config));
  }
}
BENCHMARK(BM_SimulateSequential)->Arg(16)->Arg(64);

void BM_SimulateWithQueueing(benchmark::State& state) {
  const core::QppInstance instance = make_instance(32, 3);
  const core::Placement f = spread_placement(instance);
  sim::SimulationConfig config;
  config.duration = 200.0;
  config.service_rate = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(instance, f, config));
  }
}
BENCHMARK(BM_SimulateWithQueueing)->Arg(1000)->Arg(50);

void BM_SimulateNearestQuorum(benchmark::State& state) {
  const core::QppInstance instance = make_instance(32, 3);
  const core::Placement f = spread_placement(instance);
  sim::SimulationConfig config;
  config.duration = 200.0;
  config.selection = sim::SelectionPolicy::kNearestQuorum;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(instance, f, config));
  }
}
BENCHMARK(BM_SimulateNearestQuorum);

}  // namespace

// BENCHMARK_MAIN() expanded so the env-gated admin endpoint
// (metrics_endpoint.hpp) lives for the whole benchmark run:
// QPLACE_METRICS_PORT=P makes this driver scrapeable while it runs.
int main(int argc, char** argv) {
  const qp::bench::MetricsEndpoint metrics_endpoint;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
