/// Experiment E9 -- message-level validation of the paper's delay model.
///
/// The analytic quantities Delta_f(v) (eq. 2), Gamma_f(v) (Sec 5) and
/// load_f(v) (Sec 1.2) are compared against a discrete-event simulation of
/// Poisson clients probing placed quorums over the network:
///   (a) with free service, simulated mean delays must match the formulas
///       within sampling error (parallel ~ max-delay, sequential ~ total);
///   (b) node probe shares must match load_f(v);
///   (c) with finite per-node service rates, placements that overshoot
///       capacity (larger alpha) pay measurable queueing delay -- the
///       physical reading of the paper's load constraint.
/// Exits non-zero if (a) or (b) disagree beyond tolerance.

#include <cmath>
#include <iostream>
#include <random>
#include <vector>

#include "metrics_endpoint.hpp"

#include "core/evaluators.hpp"
#include "core/qpp_solver.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {
using namespace qp;
}

int main() {
  // QPLACE_METRICS_PORT=P serves /metrics for the life of this driver.
  const qp::bench::MetricsEndpoint metrics_endpoint;
  bool violated = false;

  report::banner(std::cout,
                 "E9a: simulated vs analytic delay (free service, 4000s "
                 "horizon)");
  {
    report::Table table({"system", "mode", "analytic", "simulated",
                         "rel.err"});
    struct Case {
      const char* name;
      quorum::QuorumSystem system;
    };
    std::vector<Case> cases;
    cases.push_back({"grid3", quorum::grid(3)});
    cases.push_back({"majority5", quorum::majority(5)});
    cases.push_back({"fpp2", quorum::projective_plane(2)});
    for (const Case& c : cases) {
      std::mt19937_64 rng(11);
      const graph::Metric metric = graph::Metric::from_graph(
          graph::waxman(16, 0.9, 0.4, rng).graph);
      const quorum::AccessStrategy strategy =
          quorum::AccessStrategy::uniform(c.system);
      core::QppInstance instance(metric, std::vector<double>(16, 1e9),
                                 c.system, strategy);
      std::uniform_int_distribution<int> pick(0, 15);
      core::Placement f(
          static_cast<std::size_t>(c.system.universe_size()));
      for (int& v : f) v = pick(rng);

      for (const sim::AccessMode mode :
           {sim::AccessMode::kParallel, sim::AccessMode::kSequential}) {
        sim::SimulationConfig config;
        config.duration = 4000.0;
        config.mode = mode;
        config.seed = 101;
        const sim::SimulationResult result =
            sim::simulate(instance, f, config);
        const double analytic = mode == sim::AccessMode::kParallel
                                    ? core::average_max_delay(instance, f)
                                    : core::average_total_delay(instance, f);
        const double rel =
            std::abs(result.overall_mean_delay - analytic) / analytic;
        violated = violated || rel > 0.05;
        table.add_row({c.name,
                       mode == sim::AccessMode::kParallel ? "parallel"
                                                          : "sequential",
                       report::Table::num(analytic, 4),
                       report::Table::num(result.overall_mean_delay, 4),
                       report::Table::num(rel, 4)});
      }
    }
    table.print(std::cout);
  }

  report::banner(std::cout, "E9b: simulated probe share vs load_f(v)");
  {
    std::mt19937_64 rng(7);
    const graph::Metric metric = graph::Metric::from_graph(
        graph::ring_of_cliques(3, 4, 1.0, 10.0));
    const quorum::QuorumSystem system = quorum::grid(2);
    core::QppInstance instance(
        metric, std::vector<double>(12, 1e9), system,
        quorum::AccessStrategy::uniform(system));
    const core::Placement f = {0, 0, 4, 8};  // two elements stacked on node 0
    sim::SimulationConfig config;
    config.duration = 3000.0;
    config.seed = 13;
    const sim::SimulationResult result = sim::simulate(instance, f, config);
    const std::vector<double> loads =
        core::node_loads(instance.element_loads(), f, 12);
    report::Table table({"node", "load_f(v)", "simulated share", "|diff|"});
    for (int v = 0; v < 12; ++v) {
      if (loads[static_cast<std::size_t>(v)] == 0.0 &&
          result.per_node_access_share[static_cast<std::size_t>(v)] == 0.0) {
        continue;
      }
      const double diff =
          std::abs(loads[static_cast<std::size_t>(v)] -
                   result.per_node_access_share[static_cast<std::size_t>(v)]);
      violated = violated || diff > 0.03;
      table.add_row(
          {std::to_string(v),
           report::Table::num(loads[static_cast<std::size_t>(v)], 4),
           report::Table::num(
               result.per_node_access_share[static_cast<std::size_t>(v)], 4),
           report::Table::num(diff, 4)});
    }
    table.print(std::cout);
  }

  report::banner(std::cout,
                 "E9c: queueing cost of capacity overshoot (finite service "
                 "rate; informational)");
  {
    // A placement that respects capacity vs one that stacks load: under a
    // service rate sized to the *capacity*, the overshooting placement
    // queues. This is the physical motivation for constraint (1.1b).
    std::mt19937_64 rng(3);
    const graph::Metric metric = graph::Metric::from_graph(
        graph::random_geometric(10, 0.5, rng).graph);
    const quorum::QuorumSystem system = quorum::grid(2);
    core::QppInstance instance(
        metric, std::vector<double>(10, 1e9), system,
        quorum::AccessStrategy::uniform(system));
    const core::Placement spread = {0, 3, 6, 9};
    const core::Placement stacked = {0, 0, 0, 0};

    report::Table table({"placement", "analytic delay", "sim (rate 12/s)",
                         "sim (rate 5/s)"});
    for (const auto& [name, f] :
         std::vector<std::pair<const char*, core::Placement>>{
             {"spread (respects cap)", spread},
             {"stacked (violates cap)", stacked}}) {
      sim::SimulationConfig base;
      base.duration = 1500.0;
      base.seed = 29;
      sim::SimulationConfig medium = base;
      medium.service_rate = 12.0;
      sim::SimulationConfig low = base;
      low.service_rate = 5.0;
      table.add_row(
          {name,
           report::Table::num(core::average_max_delay(instance, f), 3),
           report::Table::num(
               sim::simulate(instance, f, medium).overall_mean_delay, 3),
           report::Table::num(
               sim::simulate(instance, f, low).overall_mean_delay, 3)});
    }
    table.print(std::cout);
    std::cout << "Offered probe load is 10 accesses/s x 3 probes = 30/s; "
                 "stacked places all of it\non one node, so rates below 30/s "
                 "saturate it while the spread placement\nstays near the "
                 "analytic value.\n";
  }

  std::cout << (violated ? "\nRESULT: SIMULATION DISAGREES WITH THE MODEL\n"
                         : "\nRESULT: simulation reproduces the analytic "
                           "delay and load model.\n");
  return violated ? 1 : 0;
}
