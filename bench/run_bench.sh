#!/usr/bin/env bash
# Thread-scaling baseline for the exec engine (docs/PARALLEL.md).
#
# Runs the four perf_* google-benchmark binaries at QPLACE_THREADS=1/2/4/8
# and aggregates the per-benchmark wall times into BENCH_parallel.json at
# the repository root. The determinism contract makes the *results*
# identical across thread counts; this script records what the parallelism
# costs or buys in wall time on the current host.
#
# Usage:  bench/run_bench.sh [--quick|--history] [build-dir] (default: build)
#
# --quick: perf-regression gate only (docs/OBSERVABILITY.md §7). Re-runs
# the one instrumented `qplace solve` whose deterministic counters are
# embedded in the committed BENCH_parallel.json and diffs them with
# `qplace analyze --diff`; exits non-zero when a work counter (lp.pivots,
# graph.heap_pops, exec.chunks, ...) drifted beyond the tolerance
# (QPLACE_BENCH_TOLERANCE, default 0.10). Needs only the qplace binary --
# no perf_* builds, no google-benchmark -- so CI can run it cheaply. Does
# NOT rewrite the baseline; run the full script for that.
#
# --history: appends one qplace.bench_history.v1 JSON line -- the same
# instrumented solve's deterministic counters plus host metadata and the
# git revision -- to BENCH_history.jsonl at the repository root. `qplace
# analyze --trend BENCH_history.jsonl` then reports the per-counter
# trajectory across appends and fails when the newest entry regressed
# beyond tolerance vs the rolling median baseline. Like --quick it needs
# only the qplace binary.
set -euo pipefail

quick=0
history=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
  shift
elif [[ "${1:-}" == "--history" ]]; then
  history=1
  shift
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="$repo_root/BENCH_parallel.json"
work_dir="$(mktemp -d)"
trap 'rm -rf "$work_dir"' EXIT

if [[ "$quick" == 1 ]]; then
  qplace_bin="$build_dir/tools/qplace"
  if [[ ! -x "$qplace_bin" ]]; then
    echo "error: $qplace_bin not built" \
         "(run: cmake --build $build_dir --target qplace_cli)" >&2
    exit 1
  fi
  if [[ ! -f "$out_json" ]]; then
    echo "error: $out_json missing; run the full bench/run_bench.sh once" >&2
    exit 1
  fi
  tolerance="${QPLACE_BENCH_TOLERANCE:-0.10}"
  fresh="$work_dir/solve_stats.json"
  echo "== quick perf-regression gate (tolerance $tolerance)"
  # Same instrumented solve the full run embeds into the baseline.
  "$qplace_bin" solve --system grid --k 2 --topology geometric --nodes 16 \
    --algorithm qpp --alpha 2 --seed 1 --stats-out "$fresh" >/dev/null
  if ! "$qplace_bin" analyze --diff "$out_json" --against "$fresh" \
      --tolerance "$tolerance"; then
    # The diff names each offending counter above; say how to widen the
    # gate vs. re-baseline so the failure is actionable in CI logs.
    echo "error: deterministic work counters drifted beyond tolerance" \
         "$tolerance (see the counter lines above)" >&2
    echo "hint: raise QPLACE_BENCH_TOLERANCE for an expected change, or" \
         "re-run bench/run_bench.sh (no --quick) to re-baseline" >&2
    exit 1
  fi
  exit 0
fi

if [[ "$history" == 1 ]]; then
  qplace_bin="$build_dir/tools/qplace"
  if [[ ! -x "$qplace_bin" ]]; then
    echo "error: $qplace_bin not built" \
         "(run: cmake --build $build_dir --target qplace_cli)" >&2
    exit 1
  fi
  history_json="$repo_root/BENCH_history.jsonl"
  fresh="$work_dir/solve_stats.json"
  echo "== bench history append -> $history_json"
  # The same instrumented solve --quick gates on; its deterministic
  # counters are the per-PR perf trajectory `analyze --trend` reads.
  "$qplace_bin" solve --system grid --k 2 --topology geometric --nodes 16 \
    --algorithm qpp --alpha 2 --seed 1 --stats-out "$fresh" >/dev/null
  host_nproc="$(nproc 2>/dev/null || echo unknown)"
  host_kernel="$(uname -srm 2>/dev/null || echo unknown)"
  host_cpu_model="$(sed -n 's/^model name[^:]*: //p' /proc/cpuinfo \
                    2>/dev/null | head -1)"
  host_git_sha="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null \
                  || echo unknown)"
  BENCH_HOST_NPROC="$host_nproc" BENCH_HOST_KERNEL="$host_kernel" \
  BENCH_HOST_CPU_MODEL="$host_cpu_model" BENCH_HOST_GIT_SHA="$host_git_sha" \
  python3 - "$fresh" "$history_json" <<'PY'
import json
import os
import sys

stats_path, history_path = sys.argv[1], sys.argv[2]
with open(stats_path) as f:
    report = json.load(f)
entry = {
    "schema": "qplace.bench_history.v1",
    "git_sha": os.environ.get("BENCH_HOST_GIT_SHA"),
    "host": {
        "nproc": os.environ.get("BENCH_HOST_NPROC"),
        "kernel": os.environ.get("BENCH_HOST_KERNEL"),
        "cpu_model": os.environ.get("BENCH_HOST_CPU_MODEL"),
    },
    "instance_digest": report["context"].get("instance_digest"),
    "counters": report["deterministic"]["counters"],
}
with open(history_path, "a") as f:
    json.dump(entry, f, sort_keys=True)
    f.write("\n")
print(f"appended entry for git_sha {entry['git_sha']} "
      f"({len(entry['counters'])} counters)")
PY
  exit 0
fi

binaries=(perf_graph perf_lp perf_placement perf_sim)
threads=(1 2 4 8)

for b in "${binaries[@]}"; do
  bin="$build_dir/bench/$b"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (run: cmake --build $build_dir --target $b)" >&2
    exit 1
  fi
done

for b in "${binaries[@]}"; do
  for t in "${threads[@]}"; do
    echo "== $b @ QPLACE_THREADS=$t"
    QPLACE_THREADS="$t" "$build_dir/bench/$b" \
      --benchmark_format=json \
      --benchmark_min_time=0.05 \
      --benchmark_out="$work_dir/$b.t$t.json" \
      --benchmark_out_format=json >/dev/null
  done
done

# Host metadata beyond what google-benchmark records: core count, the exact
# compiler, the CMake build type the binaries were produced with, plus the
# kernel, CPU model, and repo revision so two baselines can be compared
# without guessing what produced them.
host_nproc="$(nproc 2>/dev/null || echo unknown)"
host_kernel="$(uname -srm 2>/dev/null || echo unknown)"
host_cpu_model="$(sed -n 's/^model name[^:]*: //p' /proc/cpuinfo 2>/dev/null \
                  | head -1)"
host_git_sha="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null \
                || echo unknown)"
host_build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
                   "$build_dir/CMakeCache.txt" 2>/dev/null | head -1)"
# An empty cache entry means the project default applied (CMakeLists.txt
# promotes an unset build type to RelWithDebInfo at configure time).
if [[ -z "$host_build_type" ]]; then
  host_build_type="RelWithDebInfo (project default)"
fi
host_compiler_path="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' \
                      "$build_dir/CMakeCache.txt" 2>/dev/null | head -1)"
host_compiler="unknown"
if [[ -n "$host_compiler_path" && -x "$host_compiler_path" ]]; then
  host_compiler="$("$host_compiler_path" --version | head -1)"
fi

# One instrumented solve (docs/OBSERVABILITY.md): its deterministic counters
# (LP pivots, relay candidates, ...) are embedded in the baseline so a perf
# regression can be told apart from an algorithmic change doing more work.
qplace_bin="$build_dir/tools/qplace"
solve_stats="$work_dir/solve_stats.json"
if [[ -x "$qplace_bin" ]]; then
  echo "== qplace solve --stats-out (run-report counters)"
  "$qplace_bin" solve --system grid --k 2 --topology geometric --nodes 16 \
    --algorithm qpp --alpha 2 --seed 1 --stats-out "$solve_stats" >/dev/null
fi

export BENCH_HOST_NPROC="$host_nproc"
export BENCH_HOST_BUILD_TYPE="$host_build_type"
export BENCH_HOST_COMPILER="$host_compiler"
export BENCH_HOST_KERNEL="$host_kernel"
export BENCH_HOST_CPU_MODEL="$host_cpu_model"
export BENCH_HOST_GIT_SHA="$host_git_sha"
export BENCH_SOLVE_STATS="$solve_stats"

python3 - "$work_dir" "$out_json" <<'PY'
import json
import os
import sys

work_dir, out_json = sys.argv[1], sys.argv[2]
binaries = ["perf_graph", "perf_lp", "perf_placement", "perf_sim"]
threads = [1, 2, 4, 8]

paths = {}          # "binary/benchmark" -> {"t1": ms, "t2": ms, ...}
host = {}
for b in binaries:
    for t in threads:
        with open(os.path.join(work_dir, f"{b}.t{t}.json")) as f:
            report = json.load(f)
        ctx = report["context"]
        host = {
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "library_build_type": ctx.get("library_build_type"),
            "nproc": os.environ.get("BENCH_HOST_NPROC"),
            "compiler": os.environ.get("BENCH_HOST_COMPILER"),
            "cmake_build_type": os.environ.get("BENCH_HOST_BUILD_TYPE"),
            "kernel": os.environ.get("BENCH_HOST_KERNEL"),
            "cpu_model": os.environ.get("BENCH_HOST_CPU_MODEL"),
            "git_sha": os.environ.get("BENCH_HOST_GIT_SHA"),
        }
        for bench in report["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            key = f"{b}/{bench['name']}"
            unit = bench.get("time_unit", "ns")
            scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
            paths.setdefault(key, {})[f"t{t}"] = round(
                bench["real_time"] * scale, 6)

# Deterministic counters from one instrumented `qplace solve` run
# (qplace.run_report.v1; absent when the CLI was not built).
solver_counters = None
stats_path = os.environ.get("BENCH_SOLVE_STATS", "")
if stats_path and os.path.exists(stats_path):
    with open(stats_path) as f:
        solver_counters = json.load(f)["deterministic"]["counters"]

result = {
    "description": (
        "Wall time (ms) per benchmark at QPLACE_THREADS=1/2/4/8; "
        "results are bit-identical across thread counts by the "
        "docs/PARALLEL.md determinism contract."),
    "note": (
        "Baselines are host-specific. On a single-CPU host, thread counts "
        "> 1 cannot speed anything up and only measure pool overhead; "
        "re-run bench/run_bench.sh on multi-core hardware before drawing "
        "scaling conclusions."),
    "host": host,
    "thread_counts": threads,
    "solver_counters": solver_counters,
    "benchmarks": dict(sorted(paths.items())),
}
with open(out_json, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {out_json}: {len(paths)} benchmarks x {len(threads)} "
      "thread counts")
PY
