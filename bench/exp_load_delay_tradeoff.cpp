/// Experiment E12 -- the Sec 2 load/delay trade-off narrative.
///
/// The paper motivates its load-constrained formulation by noting that the
/// prior work's objective (delay to the CLOSEST quorum -- Fu, Kobayashi,
/// Lin) admits degenerate solutions: Lin's 2-approximation is a single
/// element at the 1-median, with system load 1 concentrated on one node.
/// This experiment measures, on the same topologies:
///   - Lin's single-point design: closest-quorum delay, max node load,
///     fault tolerance (= 1);
///   - our Thm 1.3 Grid placement: closest-quorum delay under free quorum
///     choice, expected delay under the uniform strategy, max node load,
///     fault tolerance (= k);
/// and confirms via simulation that free (nearest-quorum) selection shifts
/// measured load above load_f while strategy sampling preserves it.
/// Informational except for internal consistency checks.

#include <algorithm>
#include <iostream>
#include <random>
#include <vector>

#include "core/design_baselines.hpp"
#include "core/evaluators.hpp"
#include "core/specialized.hpp"
#include "graph/generators.hpp"
#include "quorum/analysis.hpp"
#include "quorum/constructions.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {
using namespace qp;
}

int main() {
  bool violated = false;

  report::banner(std::cout,
                 "E12a: Lin single-point design vs Thm 1.3 Grid placement");
  {
    report::Table table({"topology", "design", "closest-Q delay",
                         "expected delay", "max node load", "fault tol."});
    for (int topo = 0; topo < 2; ++topo) {
      std::mt19937_64 rng(41 + topo);
      const graph::Metric metric =
          topo == 0 ? graph::Metric::from_graph(
                          graph::waxman(18, 0.9, 0.4, rng).graph)
                    : graph::Metric::from_graph(
                          graph::ring_of_cliques(3, 6, 1.0, 12.0));
      const int n = metric.num_points();
      const char* name = topo == 0 ? "waxman" : "clustered";

      // Lin baseline.
      const core::SinglePointDesign lin =
          core::lin_single_point_design(metric);
      table.add_row({name, "Lin single-point",
                     report::Table::num(lin.average_delay, 3),
                     report::Table::num(lin.average_delay, 3), "1.000", "1"});

      // Thm 1.3 Grid.
      const int k = 2;
      const quorum::QuorumSystem system = quorum::grid(k);
      const double load = static_cast<double>(2 * k - 1) / (k * k);
      core::QppInstance instance(
          metric, std::vector<double>(static_cast<std::size_t>(n), load),
          system, quorum::AccessStrategy::uniform(system));
      const auto placed = core::solve_qpp_grid(instance, k);
      if (!placed) continue;
      const std::vector<double> node_load = core::node_loads(
          instance.element_loads(), placed->placement, n);
      table.add_row(
          {name, "Thm 1.3 grid(2)",
           report::Table::num(
               core::average_closest_quorum_delay(instance,
                                                  placed->placement),
               3),
           report::Table::num(placed->average_delay, 3),
           report::Table::num(
               *std::max_element(node_load.begin(), node_load.end()), 3),
           std::to_string(quorum::fault_tolerance(system))});
    }
    table.print(std::cout);
    std::cout << "Lin's design wins on pure delay but places the entire "
                 "access load on one\nnode and dies with a single crash "
                 "(fault tolerance 1); the Grid placement\npays bounded "
                 "extra delay for 4x load dispersion and 2-crash "
                 "tolerance.\n";
  }

  report::banner(std::cout,
                 "E12b: simulated load under strategy vs nearest-quorum "
                 "selection");
  {
    std::mt19937_64 rng(17);
    const graph::Metric metric = graph::Metric::from_graph(
        graph::waxman(16, 0.9, 0.4, rng).graph);
    const quorum::QuorumSystem system = quorum::grid(2);
    // One element per node (cap = element load): the placement must spread,
    // and quorum choice decides which replicas absorb the traffic.
    core::QppInstance instance(
        metric, std::vector<double>(16, 0.75), system,
        quorum::AccessStrategy::uniform(system));
    const auto placed = core::solve_qpp_grid(instance, 2);
    if (!placed) {
      std::cout << "placement infeasible; skipped\n";
    } else {
      sim::SimulationConfig strategy_config;
      strategy_config.duration = 3000.0;
      strategy_config.seed = 5;
      sim::SimulationConfig nearest_config = strategy_config;
      nearest_config.selection = sim::SelectionPolicy::kNearestQuorum;

      const auto by_strategy =
          sim::simulate(instance, placed->placement, strategy_config);
      const auto by_nearest =
          sim::simulate(instance, placed->placement, nearest_config);

      const std::vector<double> analytic = core::node_loads(
          instance.element_loads(), placed->placement, 16);
      report::Table table({"node", "load_f (model)", "sim strategy",
                           "sim nearest-quorum"});
      double max_analytic = 0.0, max_strategy = 0.0, max_nearest = 0.0;
      double nearest_delay_gain = 0.0;
      for (int v = 0; v < 16; ++v) {
        const double a = analytic[static_cast<std::size_t>(v)];
        const double s =
            by_strategy.per_node_access_share[static_cast<std::size_t>(v)];
        const double m =
            by_nearest.per_node_access_share[static_cast<std::size_t>(v)];
        max_analytic = std::max(max_analytic, a);
        max_strategy = std::max(max_strategy, s);
        max_nearest = std::max(max_nearest, m);
        if (a > 0.0 || m > 0.0) {
          table.add_row({std::to_string(v), report::Table::num(a, 3),
                         report::Table::num(s, 3), report::Table::num(m, 3)});
        }
      }
      table.print(std::cout);
      nearest_delay_gain = by_strategy.overall_mean_delay -
                           by_nearest.overall_mean_delay;
      // Consistency: strategy sampling must track the model.
      violated = violated || std::abs(max_strategy - max_analytic) > 0.05;
      std::cout << "max load: model " << report::Table::num(max_analytic, 3)
                << ", strategy sim " << report::Table::num(max_strategy, 3)
                << ", nearest-quorum sim "
                << report::Table::num(max_nearest, 3)
                << "\nnearest-quorum saves "
                << report::Table::num(nearest_delay_gain, 3)
                << " delay on average but skews the hottest node by "
                << report::Table::num(max_nearest / std::max(1e-12,
                                                             max_analytic),
                                      2)
                << "x -- the trade-off the paper's load cap forbids.\n";
    }
  }

  std::cout << (violated ? "\nRESULT: INTERNAL INCONSISTENCY\n"
                         : "\nRESULT: reproduces the Sec 2 narrative -- "
                           "free-delay designs concentrate load; the "
                           "paper's formulation bounds it.\n");
  return violated ? 1 : 0;
}
