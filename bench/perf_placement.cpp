/// P3 -- performance of the end-to-end placement algorithms: Thm 3.7 SSQPP
/// rounding, Thm 1.2 QPP, the closed-form Sec 4 layouts, Thm 5.1 total
/// delay, and the exact solvers used as oracles.

#include <benchmark/benchmark.h>

#include "metrics_endpoint.hpp"

#include <cstdint>
#include <initializer_list>
#include <map>
#include <random>
#include <string>
#include <utility>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/grid_layout.hpp"
#include "core/local_search.hpp"
#include "core/majority_layout.hpp"
#include "core/qpp_solver.hpp"
#include "core/ssqpp_solver.hpp"
#include "core/total_delay.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "quorum/constructions.hpp"

namespace {

using namespace qp;

/// Reports the growth of named obs counters across the timed loop as
/// per-iteration rates (all zero when built with -DQPLACE_OBS=OFF).
void report_counter_deltas(
    benchmark::State& state,
    const std::map<std::string, std::uint64_t>& before,
    std::initializer_list<const char*> names) {
  const auto after = obs::Registry::instance().counter_values();
  for (const char* name : names) {
    const auto b = before.count(name) != 0 ? before.at(name) : 0;
    const auto a = after.count(name) != 0 ? after.at(name) : 0;
    state.counters[std::string(name) + "/iter"] = benchmark::Counter(
        static_cast<double>(a - b) / static_cast<double>(state.iterations()));
  }
}

graph::Metric metric_of(int n) {
  std::mt19937_64 rng(21);
  return graph::Metric::from_graph(graph::erdos_renyi(n, 0.4, rng, 1.0, 8.0));
}

void BM_SolveSsqppGrid2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const quorum::QuorumSystem system = quorum::grid(2);
  const core::SsqppInstance instance(
      metric_of(n), std::vector<double>(static_cast<std::size_t>(n), 1.0),
      system, quorum::AccessStrategy::uniform(system), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_ssqpp(instance, 2.0));
  }
}
BENCHMARK(BM_SolveSsqppGrid2)->Arg(8)->Arg(16)->Arg(24);

void BM_SolveQppMajority(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const quorum::QuorumSystem system = quorum::majority(5);
  const core::QppInstance instance(
      metric_of(n), std::vector<double>(static_cast<std::size_t>(n), 1.0),
      system, quorum::AccessStrategy::uniform(system));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_qpp(instance));
  }
}
BENCHMARK(BM_SolveQppMajority)->Arg(8)->Arg(12);

void BM_GridLayout(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = k * k + 8;
  const quorum::QuorumSystem system = quorum::grid(k);
  const double load = static_cast<double>(2 * k - 1) / (k * k);
  const core::SsqppInstance instance(
      metric_of(n), std::vector<double>(static_cast<std::size_t>(n), load),
      system, quorum::AccessStrategy::uniform(system), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimal_grid_layout(instance, k));
  }
}
BENCHMARK(BM_GridLayout)->Arg(3)->Arg(5)->Arg(8);

void BM_MajorityLayout(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int n_elems = 2 * t - 1;
  const int n = n_elems + 10;
  const quorum::QuorumSystem system = quorum::majority(n_elems, t);
  const core::SsqppInstance instance(
      metric_of(n),
      std::vector<double>(static_cast<std::size_t>(n),
                          static_cast<double>(t) / n_elems),
      system, quorum::AccessStrategy::uniform(system), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::majority_layout(instance, t));
  }
}
BENCHMARK(BM_MajorityLayout)->Arg(3)->Arg(5)->Arg(7);

void BM_TotalDelayGrid2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const quorum::QuorumSystem system = quorum::grid(2);
  const core::QppInstance instance(
      metric_of(n), std::vector<double>(static_cast<std::size_t>(n), 1.0),
      system, quorum::AccessStrategy::uniform(system));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_total_delay(instance));
  }
}
BENCHMARK(BM_TotalDelayGrid2)->Arg(8)->Arg(16)->Arg(32);

void BM_ExactSsqppOracle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const quorum::QuorumSystem system = quorum::majority(4);
  const core::SsqppInstance instance(
      metric_of(n), std::vector<double>(static_cast<std::size_t>(n), 1.0),
      system, quorum::AccessStrategy::uniform(system), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exact_ssqpp(instance));
  }
}
BENCHMARK(BM_ExactSsqppOracle)->Arg(5)->Arg(6)->Arg(7);

void BM_AverageMaxDelayEvaluator(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const quorum::QuorumSystem system = quorum::grid(3);
  const core::QppInstance instance(
      metric_of(n), std::vector<double>(static_cast<std::size_t>(n), 1.0),
      system, quorum::AccessStrategy::uniform(system));
  core::Placement f(9);
  for (int u = 0; u < 9; ++u) f[static_cast<std::size_t>(u)] = u % n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::average_max_delay(instance, f));
  }
}
BENCHMARK(BM_AverageMaxDelayEvaluator)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

// The three benches below cover the exec-engine hot paths (docs/PARALLEL.md)
// at the largest n the LP cost allows; bench/run_bench.sh sweeps them over
// QPLACE_THREADS=1/2/4/8 for the recorded BENCH_parallel.json baseline.

void BM_RelaySweep(benchmark::State& state) {
  // The Thm 1.2 relay sweep: one SSQPP solve per candidate v0, the
  // per-candidate loop being the parallel_for in core::solve_qpp.
  const int n = static_cast<int>(state.range(0));
  const quorum::QuorumSystem system = quorum::grid(2);
  const core::QppInstance instance(
      metric_of(n), std::vector<double>(static_cast<std::size_t>(n), 1.0),
      system, quorum::AccessStrategy::uniform(system));
  const auto counters_before = obs::Registry::instance().counter_values();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_qpp(instance));
  }
  report_counter_deltas(state, counters_before,
                        {"lp.solves", "lp.iterations", "lp.pivots"});
}
BENCHMARK(BM_RelaySweep)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_BestRelayNode(benchmark::State& state) {
  // Lemma 3.1 relay selection: an argmin over nodes, each term an O(n|Q|)
  // evaluation -- the chunked map-reduce in core::best_relay_node.
  const int n = static_cast<int>(state.range(0));
  const quorum::QuorumSystem system = quorum::grid(3);
  const core::QppInstance instance(
      metric_of(n), std::vector<double>(static_cast<std::size_t>(n), 1.0),
      system, quorum::AccessStrategy::uniform(system));
  core::Placement f(9);
  for (int u = 0; u < 9; ++u) f[static_cast<std::size_t>(u)] = (u * 7) % n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_relay_node(instance, f));
  }
}
BENCHMARK(BM_BestRelayNode)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_LocalSearchDescent(benchmark::State& state) {
  // First-improvement descent; the neighborhood scan is the
  // parallel_find_first over the (element, node) move grid.
  const int n = static_cast<int>(state.range(0));
  const quorum::QuorumSystem system = quorum::grid(3);
  const core::QppInstance instance(
      metric_of(n), std::vector<double>(static_cast<std::size_t>(n), 2.0),
      system, quorum::AccessStrategy::uniform(system));
  core::Placement start(9);
  for (int u = 0; u < 9; ++u) start[static_cast<std::size_t>(u)] = u % n;
  core::LocalSearchOptions options;
  options.max_moves = 8;
  const auto counters_before = obs::Registry::instance().counter_values();
  for (auto _ : state) {
    core::Placement f = start;
    benchmark::DoNotOptimize(
        core::local_search_max_delay(instance, std::move(f), options));
  }
  report_counter_deltas(state, counters_before,
                        {"local_search.rounds", "local_search.moves_taken",
                         "local_search.swaps_taken"});
}
BENCHMARK(BM_LocalSearchDescent)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() expanded so the env-gated admin endpoint
// (metrics_endpoint.hpp) lives for the whole benchmark run:
// QPLACE_METRICS_PORT=P makes this driver scrapeable while it runs.
int main(int argc, char** argv) {
  const qp::bench::MetricsEndpoint metrics_endpoint;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
