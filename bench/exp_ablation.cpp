/// Experiment E10 -- ablations of the design choices in the paper's
/// pipeline (DESIGN.md Sec 6):
///  (a) relay-node choice: argmin Delta_f (Lemma 3.1) vs the 1-median vs a
///      random node, measured as relay-delay / direct-delay;
///  (b) rounding: LP + Shmoys-Tardos (Thm 3.7) vs greedy-nearest vs random
///      feasible + local search, on the single-source objective;
///  (c) post-optimization: local search applied after Thm 1.2.
/// Informational (prints comparisons); exits non-zero only if a paper
/// guarantee (relay factor 5, Thm 3.7 delay bound) breaks.

#include <algorithm>
#include <iostream>
#include <random>
#include <vector>

#include "core/evaluators.hpp"
#include "core/local_search.hpp"
#include "core/qpp_solver.hpp"
#include "core/ssqpp_solver.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

namespace {
using namespace qp;
}

int main() {
  bool violated = false;

  report::banner(std::cout,
                 "E10a: relay choice -- argmin Delta (paper) vs 1-median vs "
                 "random (relay/direct ratio)");
  {
    report::Table table({"topology", "argmin mean", "argmin max",
                         "1-median mean", "random mean", "bound(argmin)"});
    for (int topo = 0; topo < 3; ++topo) {
      std::vector<double> argmin_r, median_r, random_r;
      for (int seed = 0; seed < 15; ++seed) {
        std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 647 + topo);
        const graph::Metric metric =
            topo == 0 ? graph::Metric::from_graph(
                            graph::waxman(18, 0.9, 0.4, rng).graph)
            : topo == 1
                ? graph::Metric::from_graph(
                      graph::ring_of_cliques(3, 6, 1.0, 15.0))
                : graph::Metric::from_graph(graph::hypercube(4));
        const int n = metric.num_points();
        const quorum::QuorumSystem system = quorum::grid(2);
        core::QppInstance instance(
            metric, std::vector<double>(static_cast<std::size_t>(n), 1e9),
            system, quorum::AccessStrategy::uniform(system));
        std::uniform_int_distribution<int> pick(0, n - 1);
        core::Placement f(4);
        for (int& v : f) v = pick(rng);
        const double direct = core::average_max_delay(instance, f);
        if (direct <= 1e-9) continue;

        const int v_argmin = core::best_relay_node(instance, f);
        int v_median = 0;
        double best_sum = 1e100;
        for (int v = 0; v < n; ++v) {
          const double s = metric.distance_sum_from(v);
          if (s < best_sum) {
            best_sum = s;
            v_median = v;
          }
        }
        const int v_random = pick(rng);
        argmin_r.push_back(core::relay_delay(instance, f, v_argmin) / direct);
        median_r.push_back(core::relay_delay(instance, f, v_median) / direct);
        random_r.push_back(core::relay_delay(instance, f, v_random) / direct);
      }
      const report::Summary a = report::summarize(argmin_r);
      const report::Summary m = report::summarize(median_r);
      const report::Summary r = report::summarize(random_r);
      violated = violated || a.max > 5.0 + 1e-9;
      table.add_row({topo == 0   ? "waxman"
                     : topo == 1 ? "clustered"
                                 : "hypercube",
                     report::Table::num(a.mean, 3),
                     report::Table::num(a.max, 3),
                     report::Table::num(m.mean, 3),
                     report::Table::num(r.mean, 3), "5.000"});
    }
    table.print(std::cout);
    std::cout << "Only the argmin relay carries the factor-5 guarantee; the "
                 "1-median is close\nin practice, a random relay is not.\n";
  }

  report::banner(std::cout,
                 "E10b: SSQPP rounding vs greedy vs random+local-search "
                 "(delay relative to LP Z*)");
  {
    report::Table table({"seed", "LP Z*", "Thm3.7", "bound 2Z*", "greedy",
                         "rand+LS"});
    for (int seed = 0; seed < 8; ++seed) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 977 + 3);
      const graph::Metric metric = graph::Metric::from_graph(
          graph::erdos_renyi(12, 0.35, rng, 1.0, 8.0));
      const quorum::QuorumSystem system = quorum::grid(2);
      const quorum::AccessStrategy strategy =
          quorum::AccessStrategy::uniform(system);
      const std::vector<double> caps(12, 0.75);
      const core::SsqppInstance instance(metric, caps, system, strategy, 0);

      const auto rounded = core::solve_ssqpp(instance, 2.0);
      if (!rounded) continue;
      violated = violated ||
                 rounded->delay > 2.0 * rounded->lp_objective + 1e-6;

      const auto greedy = core::greedy_nearest_placement(instance);
      const double greedy_delay =
          greedy ? core::source_expected_max_delay(instance, *greedy) : -1.0;

      // Random feasible start + local search on the single-source objective
      // (weights concentrated on the source).
      std::vector<double> source_weight(12, 1e-9);
      source_weight[0] = 1.0;
      core::QppInstance as_qpp(metric, caps, system, strategy, source_weight);
      double ls_delay = -1.0;
      const auto start = core::random_feasible_placement(as_qpp, rng);
      if (start) {
        ls_delay = core::local_search_max_delay(as_qpp, *start).delay;
      }

      table.add_row({std::to_string(seed),
                     report::Table::num(rounded->lp_objective, 4),
                     report::Table::num(rounded->delay, 4),
                     report::Table::num(2.0 * rounded->lp_objective, 4),
                     greedy ? report::Table::num(greedy_delay, 4)
                            : std::string("-"),
                     start ? report::Table::num(ls_delay, 4)
                           : std::string("-")});
    }
    table.print(std::cout);
    std::cout << "Thm 3.7 is the only column with a proved bound (vs 2 Z*, "
                 "load <= 3 cap);\nthe heuristics respect capacity exactly "
                 "but carry no delay guarantee.\n";
  }

  report::banner(std::cout,
                 "E10c: local search as post-optimizer after Thm 1.2");
  {
    report::Table table(
        {"seed", "Thm 1.2 delay", "after local search", "improvement %"});
    for (int seed = 0; seed < 6; ++seed) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 499 + 7);
      const graph::Metric metric = graph::Metric::from_graph(
          graph::waxman(12, 0.9, 0.4, rng).graph);
      const quorum::QuorumSystem system = quorum::majority(5);
      const quorum::AccessStrategy strategy =
          quorum::AccessStrategy::uniform(system);
      // Relaxed capacities so the rounded placement itself is feasible and
      // local search can keep descending from it.
      const std::vector<double> caps(12, 3.0);
      core::QppInstance instance(metric, caps, system, strategy);
      const auto result = core::solve_qpp(instance);
      if (!result) continue;
      const auto polished =
          core::local_search_max_delay(instance, result->placement);
      const double gain =
          100.0 * (result->average_delay - polished.delay) /
          std::max(result->average_delay, 1e-12);
      table.add_row({std::to_string(seed),
                     report::Table::num(result->average_delay, 4),
                     report::Table::num(polished.delay, 4),
                     report::Table::num(gain, 1)});
    }
    table.print(std::cout);
  }

  std::cout << (violated ? "\nRESULT: A PAPER GUARANTEE BROKE\n"
                         : "\nRESULT: guarantees hold; ablations quantify "
                           "each design choice.\n");
  return violated ? 1 : 0;
}
