/// Experiment E15 -- Sec 6 extensions: non-uniform client rates and
/// per-client access strategies.
///
/// The paper remarks that all results survive (a) clients with different
/// access rates and (b) clients with individual strategies p_v. Measured
/// here:
///   (a) weighted-rate QPP: the Thm 1.2 pipeline run with client weights
///       vs the exact weighted optimum (bound 5 alpha/(alpha-1) = 10);
///       plus the sanity check that skewing rates toward a region pulls
///       the placement toward it;
///   (b) per-client strategies: the generalized Lemma 3.1 factor (<= 5)
///       and the solve_qpp_multi pipeline's bounds.
/// Exits non-zero if a generalized bound breaks.

#include <iostream>
#include <random>
#include <vector>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/multi_strategy.hpp"
#include "core/qpp_solver.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

namespace {
using namespace qp;
}

int main() {
  bool violated = false;

  report::banner(std::cout,
                 "E15a: weighted client rates through Thm 1.2 (bound 10x "
                 "weighted OPT)");
  {
    report::Table table({"seed", "skew", "ratio", "bound", "load", "bound"});
    for (int seed = 0; seed < 6; ++seed) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 433 + 7);
      const graph::Metric metric = graph::Metric::from_graph(
          graph::erdos_renyi(7, 0.5, rng, 1.0, 6.0));
      const quorum::QuorumSystem system = quorum::majority(3);
      const quorum::AccessStrategy strategy =
          quorum::AccessStrategy::uniform(system);
      std::uniform_real_distribution<double> weight_dist(0.1, 5.0);
      std::vector<double> weights(7);
      for (double& w : weights) w = weight_dist(rng);
      core::QppInstance instance(metric, std::vector<double>(7, 1.0), system,
                                 strategy, weights);

      core::QppSolveOptions options;  // alpha = 2
      const auto result = core::solve_qpp(instance, options);
      const auto exact = core::exact_qpp_max_delay(instance);
      if (!result || !exact || exact->delay <= 1e-12) continue;
      const double ratio = result->average_delay / exact->delay;
      violated = violated || ratio > 10.0 + 1e-6 ||
                 result->load_violation > 3.0 + 1e-6;
      double skew = 0.0;
      for (double w : weights) skew = std::max(skew, w);
      table.add_row({std::to_string(seed), report::Table::num(skew, 2),
                     report::Table::num(ratio, 3), "10.000",
                     report::Table::num(result->load_violation, 3), "3.000"});
    }
    table.print(std::cout);
  }

  report::banner(std::cout,
                 "E15b: rate skew pulls placements toward hot clients");
  {
    const graph::Metric metric =
        graph::Metric::from_graph(graph::path_graph(12, 2.0));
    const quorum::QuorumSystem system = quorum::majority(3);
    const quorum::AccessStrategy strategy =
        quorum::AccessStrategy::uniform(system);
    const std::vector<double> caps(12, 0.7);
    report::Table table({"hot client", "Delta(hot)", "Delta(far end)"});
    for (int hot : {0, 11}) {
      std::vector<double> weights(12, 1e-6);
      weights[static_cast<std::size_t>(hot)] = 1.0;
      core::QppInstance instance(metric, caps, system, strategy, weights);
      const auto result = core::solve_qpp(instance);
      if (!result) continue;
      const int far = hot == 0 ? 11 : 0;
      table.add_row(
          {std::to_string(hot),
           report::Table::num(
               core::expected_max_delay(metric, system, strategy,
                                        result->placement, hot),
               3),
           report::Table::num(
               core::expected_max_delay(metric, system, strategy,
                                        result->placement, far),
               3)});
    }
    table.print(std::cout);
    std::cout << "Each row's hot client enjoys a much smaller delay than the "
                 "opposite end.\n";
  }

  report::banner(std::cout,
                 "E15c: per-client strategies -- generalized Lemma 3.1 and "
                 "solve_qpp_multi");
  {
    report::Table table({"seed", "relay factor (<=5)", "pipeline load",
                         "bound"});
    for (int seed = 0; seed < 6; ++seed) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 911 + 3);
      const graph::Metric metric = graph::Metric::from_graph(
          graph::waxman(10, 0.9, 0.4, rng).graph);
      const quorum::QuorumSystem system = quorum::grid(2);
      std::uniform_real_distribution<double> dist(0.05, 1.0);
      core::PerClientStrategies strategies;
      for (int v = 0; v < 10; ++v) {
        std::vector<double> p(static_cast<std::size_t>(system.num_quorums()));
        double total = 0.0;
        for (double& x : p) {
          x = dist(rng);
          total += x;
        }
        for (double& x : p) x /= total;
        strategies.emplace_back(system, std::move(p));
      }
      const std::vector<double> weights(10, 1.0);

      // Generalized factor on random placements.
      std::uniform_int_distribution<int> pick(0, 9);
      double worst_factor = 0.0;
      for (int trial = 0; trial < 10; ++trial) {
        core::Placement f(4);
        for (int& v : f) v = pick(rng);
        const double direct = core::average_max_delay_multi(
            metric, system, strategies, weights, f);
        if (direct <= 1e-12) continue;
        const int v0 =
            core::best_relay_node_multi(metric, system, strategies, f);
        worst_factor = std::max(
            worst_factor, core::relay_delay_multi(metric, system, strategies,
                                                  weights, f, v0) /
                              direct);
      }
      violated = violated || worst_factor > 5.0 + 1e-9;

      const auto result = core::solve_qpp_multi(
          metric, std::vector<double>(10, 0.8), system, strategies, weights);
      if (!result) continue;
      violated = violated || result->load_violation > 3.0 + 1e-6;
      table.add_row({std::to_string(seed),
                     report::Table::num(worst_factor, 3),
                     report::Table::num(result->load_violation, 3), "3.000"});
    }
    table.print(std::cout);
  }

  std::cout << (violated ? "\nRESULT: A SEC 6 GENERALIZATION BROKE\n"
                         : "\nRESULT: Sec 6 extensions hold -- weighted "
                           "rates and per-client strategies preserve every "
                           "bound.\n");
  return violated ? 1 : 0;
}
