/// Experiment E7 -- Theorem 5.1 / 1.4 (total-delay placement via GAP).
///
/// For quorum families over random topologies:
///   - measured Avg_v Gamma_f(v) must not exceed the best capacity-feasible
///     placement's delay (computed exactly on small instances);
///   - load violation must stay below 2;
///   - the GAP LP optimum must lower-bound the exact optimum.
/// Also compares against the Shmoys-Tardos-free greedy rounding baseline.
/// Exits non-zero if a bound fails.

#include <iostream>
#include <random>
#include <vector>

#include "assign/gap.hpp"
#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/total_delay.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

namespace {
using namespace qp;
}

int main() {
  report::banner(std::cout,
                 "E7: Thm 5.1 total-delay GAP placement (delay <= OPT, "
                 "load <= 2 cap)");

  struct Case {
    const char* name;
    quorum::QuorumSystem system;
  };
  std::vector<Case> cases;
  cases.push_back({"grid2", quorum::grid(2)});
  cases.push_back({"majority5", quorum::majority(5)});
  cases.push_back({"wall-1-2-2", quorum::crumbling_wall({1, 2, 2})});

  report::Table table({"system", "topology", "delay/OPT max", "bound",
                       "load max", "bound", "LP<=OPT"});
  bool violated = false;

  for (const Case& c : cases) {
    const quorum::AccessStrategy strategy =
        quorum::AccessStrategy::uniform(c.system);
    for (int topo = 0; topo < 2; ++topo) {
      std::vector<double> ratios, loads;
      bool lp_ok = true;
      for (int seed = 0; seed < 6; ++seed) {
        std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 733 + topo);
        const graph::Metric metric =
            topo == 0
                ? graph::Metric::from_graph(
                      graph::erdos_renyi(8, 0.45, rng, 1.0, 7.0))
                : graph::Metric::from_graph(
                      graph::ring_of_cliques(2, 4, 1.0, 12.0));
        const int n = metric.num_points();
        std::uniform_real_distribution<double> cap_dist(0.7, 1.4);
        std::vector<double> caps(static_cast<std::size_t>(n));
        for (double& x : caps) x = cap_dist(rng);
        const core::QppInstance instance(metric, caps, c.system, strategy);

        const auto result = core::solve_total_delay(instance);
        if (!result) continue;
        const auto exact = core::exact_qpp_total_delay(instance);
        if (!exact || exact->delay <= 1e-12) continue;
        ratios.push_back(result->average_delay / exact->delay);
        loads.push_back(result->load_violation);
        lp_ok = lp_ok && result->lp_objective <= exact->delay + 1e-7;
      }
      if (ratios.empty()) continue;
      const report::Summary r = report::summarize(ratios);
      const report::Summary l = report::summarize(loads);
      violated = violated || r.max > 1.0 + 1e-6 || l.max > 2.0 + 1e-6 ||
                 !lp_ok;
      table.add_row({c.name, topo == 0 ? "erdos-renyi" : "two-DC",
                     report::Table::num(r.max, 4), "1.0000",
                     report::Table::num(l.max, 3), "2.000",
                     lp_ok ? "yes" : "NO"});
    }
  }
  table.print(std::cout);

  // Ablation: Shmoys-Tardos rounding vs greedy on the induced GAP instances.
  report::banner(std::cout,
                 "E7-ablation: Shmoys-Tardos vs greedy GAP rounding");
  {
    report::Table ab({"seed", "ST cost", "greedy cost", "greedy feasible"});
    for (int seed = 0; seed < 6; ++seed) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 97 + 5);
      std::uniform_real_distribution<double> cost_dist(1.0, 10.0);
      std::uniform_real_distribution<double> load_dist(0.3, 1.0);
      assign::GapInstance gap(8, 5);
      for (int i = 0; i < 5; ++i) {
        gap.set_capacity(i, 1.6);
        for (int j = 0; j < 8; ++j) {
          gap.set_cost(i, j, cost_dist(rng));
          gap.set_load(i, j, load_dist(rng));
        }
      }
      const auto st = assign::solve_gap(gap);
      const auto greedy = assign::greedy_gap(gap);
      if (!st) continue;
      ab.add_row({std::to_string(seed), report::Table::num(st->total_cost, 3),
                  greedy ? report::Table::num(greedy->total_cost, 3)
                         : std::string("-"),
                  greedy ? "yes" : "no"});
    }
    ab.print(std::cout);
  }

  std::cout << (violated ? "\nRESULT: BOUND VIOLATED\n"
                         : "\nRESULT: Thm 5.1 holds -- rounded delay never "
                           "exceeds the capacity-feasible optimum, load "
                           "within 2x.\n");
  return violated ? 1 : 0;
}
