/// Experiment E16 -- delay vs availability under fault churn
/// (docs/SIMULATION.md).
///
/// The paper optimizes access delay assuming every probe succeeds. This
/// experiment measures what each placement style gives up when nodes
/// crash: the fault-aware simulator sweeps a seeded churn generator from
/// calm to hostile and reports, for every (placement, intensity) cell,
/// the mean delay of completed accesses and the fraction that completed
/// at all (availability).
///
/// Contenders on one instance (majority(5) on a 16-node Waxman graph):
///   - qpp:    the Thm 1.2 solver's placement (delay-optimized);
///   - search: local-search descent from a feasible start;
///   - random: a random feasible placement (load-oblivious baseline);
///   - lin:    Lin's single-point design (Sec 2 strawman) -- one replica
///             at the 1-median, fault tolerance zero by construction.
///
/// Sanity gates (exit non-zero on violation):
///   (a) with no faults every contender has availability exactly 1 and
///       zero retries;
///   (b) every availability lies in [0, 1];
///   (c) re-selection never observes a safety violation (the families are
///       intersecting);
///   (d) at the highest churn the replicated placements stay available
///       for at least some accesses (majority(5) needs 12 of 16 nodes
///       down before every quorum dies).

#include <algorithm>
#include <iostream>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "metrics_endpoint.hpp"

#include "core/design_baselines.hpp"
#include "core/evaluators.hpp"
#include "core/local_search.hpp"
#include "core/qpp_solver.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/table.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qp;

struct Contender {
  std::string name;
  core::QppInstance instance;  // lin uses its own single-point system
  core::Placement placement;
};

struct Cell {
  sim::SimulationResult result;
};

double max_distance(const graph::Metric& metric) {
  double worst = 0.0;
  for (int i = 0; i < metric.num_points(); ++i) {
    for (int j = 0; j < metric.num_points(); ++j) {
      worst = std::max(worst, metric(i, j));
    }
  }
  return worst;
}

}  // namespace

int main() {
  // QPLACE_METRICS_PORT=P serves /metrics for the life of this driver.
  const qp::bench::MetricsEndpoint metrics_endpoint;
  bool violated = false;
  const int kNodes = 16;
  const double kDuration = 400.0;

  std::mt19937_64 topology_rng(11);
  const graph::Metric metric = graph::Metric::from_graph(
      graph::waxman(kNodes, 0.9, 0.4, topology_rng).graph);
  const quorum::QuorumSystem system = quorum::majority(5);
  const quorum::AccessStrategy strategy =
      quorum::AccessStrategy::uniform(system);
  const core::QppInstance instance(
      metric, std::vector<double>(static_cast<std::size_t>(kNodes), 1.0),
      system, strategy);

  std::vector<Contender> contenders;
  {
    core::QppSolveOptions options;
    options.alpha = 2.0;
    const auto solved = core::solve_qpp(instance, options);
    if (!solved) {
      std::cerr << "qpp solver infeasible on the E16 instance\n";
      return 1;
    }
    contenders.push_back({"qpp", instance, solved->placement});
  }
  {
    std::mt19937_64 rng(23);
    const auto start = core::random_feasible_placement(instance, rng);
    if (!start) {
      std::cerr << "no random feasible placement on the E16 instance\n";
      return 1;
    }
    contenders.push_back({"random", instance, *start});
    const core::LocalSearchResult descended =
        core::local_search_max_delay(instance, *start, {});
    contenders.push_back({"search", instance, descended.placement});
  }
  {
    const core::SinglePointDesign lin = core::lin_single_point_design(metric);
    core::QppInstance single(
        metric, std::vector<double>(static_cast<std::size_t>(kNodes), 1.0),
        lin.system, lin.strategy);
    contenders.push_back({"lin", std::move(single), lin.placement});
  }

  // Attempt deadline safely above the worst fault-free round trip, so only
  // injected faults can trip it.
  const double timeout = 2.0 * max_distance(metric) + 1.0;
  const std::vector<double> crash_rates = {0.0, 0.5, 1.0, 2.0, 4.0};

  report::banner(std::cout,
                 "E16: delay vs availability under crash churn "
                 "(majority(5) on waxman16, seeded schedules)");
  report::Table table({"placement", "crash rate", "mean delay",
                       "availability", "retries", "unavailable"});
  std::vector<std::vector<Cell>> grid(contenders.size());
  for (std::size_t c = 0; c < contenders.size(); ++c) {
    for (double rate : crash_rates) {
      sim::RandomFaultOptions churn;
      churn.crash_rate = rate;
      churn.mean_downtime = 60.0;
      const sim::FaultSchedule schedule =
          sim::random_fault_schedule(kNodes, kDuration, churn, /*seed=*/7);

      sim::SimulationConfig config;
      config.duration = kDuration;
      config.seed = 101;
      config.probe_timeout = timeout;
      config.max_attempts = 3;
      if (!schedule.empty()) config.faults = &schedule;
      const sim::SimulationResult result = sim::simulate(
          contenders[c].instance, contenders[c].placement, config);

      table.add_row({contenders[c].name, report::Table::num(rate, 1),
                     report::Table::num(result.overall_mean_delay, 4),
                     report::Table::num(result.availability, 4),
                     std::to_string(result.retries),
                     std::to_string(result.unavailable_accesses)});
      grid[c].push_back({result});
    }
  }
  table.print(std::cout);

  for (std::size_t c = 0; c < contenders.size(); ++c) {
    const sim::SimulationResult& calm = grid[c].front().result;
    if (calm.availability != 1.0 || calm.retries != 0) {
      std::cerr << "VIOLATION: " << contenders[c].name
                << " not perfectly available without faults\n";
      violated = true;
    }
    for (const Cell& cell : grid[c]) {
      if (cell.result.availability < 0.0 || cell.result.availability > 1.0) {
        std::cerr << "VIOLATION: availability outside [0,1] for "
                  << contenders[c].name << "\n";
        violated = true;
      }
      if (!cell.result.safety_ok) {
        std::cerr << "VIOLATION: intersecting family lost safety for "
                  << contenders[c].name << "\n";
        violated = true;
      }
    }
    if (contenders[c].name != "lin" &&
        grid[c].back().result.completed_accesses == 0) {
      std::cerr << "VIOLATION: replicated placement "
                << contenders[c].name
                << " completed nothing at peak churn\n";
      violated = true;
    }
  }

  std::cout << (violated ? "\nE16 FAILED: sanity gate violated\n"
                         : "\nE16 OK: availability degrades with churn, "
                           "safety and calm-run gates hold\n");
  return violated ? 1 : 0;
}
