/// Experiment E5 -- Sec 4.2 / Eq. (19) (Majority placements).
///
/// (a) Placement invariance: on fixed slots, random permutations of the
///     elements all have the same Delta_f(v0) (max spread must be ~0).
/// (b) Formula check: Eq. (19) equals direct enumeration over all C(n, t)
///     quorums for a sweep of (n, t).
/// (c) Optimality: nearest-slot layout equals the exact optimum.
/// Exits non-zero on any mismatch.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <random>
#include <vector>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/majority_layout.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

namespace {
using namespace qp;

core::SsqppInstance make_instance(const graph::Metric& metric, int n, int t) {
  const quorum::QuorumSystem system = quorum::majority(n, t);
  return core::SsqppInstance(
      metric,
      std::vector<double>(static_cast<std::size_t>(metric.num_points()),
                          static_cast<double>(t) / n),
      system, quorum::AccessStrategy::uniform(system), 0);
}

}  // namespace

int main() {
  bool violated = false;

  report::banner(std::cout,
                 "E5a: Sec 4.2 placement invariance over fixed slots");
  {
    report::Table table({"n", "t", "delay", "spread over 100 permutations"});
    for (const auto& [n, t] : std::vector<std::pair<int, int>>{
             {4, 3}, {5, 3}, {6, 4}, {7, 4}, {9, 5}}) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(n) * 13 + t);
      const graph::Metric metric = graph::Metric::from_graph(
          graph::erdos_renyi(n + 5, 0.4, rng, 1.0, 9.0));
      const core::SsqppInstance instance = make_instance(metric, n, t);
      const auto layout = core::majority_layout(instance, t);
      if (!layout) continue;
      double lo = 1e100, hi = 0.0;
      core::Placement perm = layout->placement;
      for (int trial = 0; trial < 100; ++trial) {
        std::shuffle(perm.begin(), perm.end(), rng);
        const double d = core::source_expected_max_delay(instance, perm);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
      const double spread = hi - lo;
      violated = violated || spread > 1e-9;
      table.add_row({std::to_string(n), std::to_string(t),
                     report::Table::num(layout->delay, 4),
                     report::Table::num(spread, 12)});
    }
    table.print(std::cout);
  }

  report::banner(std::cout,
                 "E5b: Eq. (19) closed form vs direct enumeration");
  {
    report::Table table({"n", "t", "formula", "enumeration", "|diff|"});
    std::mt19937_64 rng(99);
    std::uniform_real_distribution<double> dist(0.0, 20.0);
    for (const auto& [n, t] : std::vector<std::pair<int, int>>{
             {4, 3}, {5, 3}, {6, 4}, {7, 4}, {8, 5}, {9, 5}, {10, 6},
             {11, 6}, {12, 7}}) {
      std::vector<double> distances(static_cast<std::size_t>(n));
      for (double& d : distances) d = dist(rng);
      const double formula = core::majority_delay_formula(distances, t);

      const quorum::QuorumSystem system = quorum::majority(n, t);
      double direct = 0.0;
      for (const auto& quorum : system.quorums()) {
        double mx = 0.0;
        for (int u : quorum) {
          mx = std::max(mx, distances[static_cast<std::size_t>(u)]);
        }
        direct += mx;
      }
      direct /= system.num_quorums();
      const double diff = std::abs(formula - direct);
      violated = violated || diff > 1e-9;
      table.add_row({std::to_string(n), std::to_string(t),
                     report::Table::num(formula, 6),
                     report::Table::num(direct, 6),
                     report::Table::num(diff, 12)});
    }
    table.print(std::cout);
  }

  report::banner(std::cout, "E5c: nearest-slot layout vs exact optimum");
  {
    report::Table table({"seed", "n", "t", "layout", "exact", "equal"});
    for (int seed = 0; seed < 8; ++seed) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 271 + 7);
      const int n = 5, t = 3;
      const graph::Metric metric = graph::Metric::from_graph(
          graph::random_tree(9, rng, 1.0, 8.0));
      const core::SsqppInstance instance = make_instance(metric, n, t);
      const auto layout = core::majority_layout(instance, t);
      const auto exact = core::exact_ssqpp(instance);
      if (!layout || !exact) continue;
      const bool equal = std::abs(layout->delay - exact->delay) < 1e-9;
      violated = violated || !equal;
      table.add_row({std::to_string(seed), std::to_string(n),
                     std::to_string(t), report::Table::num(layout->delay, 4),
                     report::Table::num(exact->delay, 4),
                     equal ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  std::cout << (violated ? "\nRESULT: MISMATCH FOUND\n"
                         : "\nRESULT: Eq. (19) exact; placement invariance "
                           "and nearest-slot optimality confirmed.\n");
  return violated ? 1 : 0;
}
