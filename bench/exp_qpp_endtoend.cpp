/// Experiment E3 -- Theorem 1.2 (end-to-end QPP approximation).
///
/// Runs the full pipeline (try each relay node v0, Thm 3.7 rounding, keep
/// the best full-objective placement) on instances small enough to compute
/// the exact capacity-feasible optimum, and reports
///     measured ratio = Avg_v Delta_f(v) / OPT   vs bound 5 alpha/(alpha-1)
///     load violation                            vs bound alpha+1.
/// Also reports the greedy-nearest baseline's delay ratio for contrast.
/// Exits non-zero if a paper bound is violated.

#include <algorithm>
#include <iostream>
#include <random>
#include <vector>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/qpp_solver.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

namespace {
using namespace qp;

graph::Metric topology(int which, int n, std::mt19937_64& rng) {
  switch (which) {
    case 0:
      return graph::Metric::from_graph(graph::erdos_renyi(n, 0.45, rng, 1.0, 6.0));
    case 1:
      return graph::Metric::from_graph(graph::random_tree(n, rng, 1.0, 5.0));
    default:
      return graph::Metric::from_graph(
          graph::random_geometric(n, 0.55, rng).graph);
  }
}

const char* topology_name(int which) {
  switch (which) {
    case 0: return "erdos-renyi";
    case 1: return "tree";
    default: return "geometric";
  }
}

}  // namespace

int main() {
  report::banner(std::cout,
                 "E3: Thm 1.2 end-to-end QPP vs exact optimum (alpha = 2, "
                 "bound 5*alpha/(alpha-1) = 10)");

  const double alpha = 2.0;
  const int n = 7;  // small enough for the exact branch-and-bound oracle
  const int seeds = 6;

  report::Table table({"system", "topology", "ratio min", "mean", "max",
                       "bound", "load max", "bound", "greedy ratio"});
  bool violated = false;

  struct SystemCase {
    const char* name;
    quorum::QuorumSystem system;
  };
  std::vector<SystemCase> cases;
  cases.push_back({"grid2", quorum::grid(2)});
  cases.push_back({"majority3", quorum::majority(3)});
  cases.push_back({"star4", quorum::star(4)});

  for (const SystemCase& sc : cases) {
    const quorum::AccessStrategy strategy =
        quorum::AccessStrategy::uniform(sc.system);
    const std::vector<double> loads = quorum::element_loads(sc.system, strategy);
    const double element_load =
        *std::max_element(loads.begin(), loads.end());
    for (int topo = 0; topo < 3; ++topo) {
      std::vector<double> ratios, load_violations, greedy_ratios;
      for (int seed = 0; seed < seeds; ++seed) {
        std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 104729 + topo);
        const graph::Metric metric = topology(topo, n, rng);
        const std::vector<double> caps(static_cast<std::size_t>(n),
                                       1.2 * element_load);
        const core::QppInstance instance(metric, caps, sc.system, strategy);

        const auto exact = core::exact_qpp_max_delay(instance);
        if (!exact || exact->delay <= 1e-12) continue;

        core::QppSolveOptions options;
        options.alpha = alpha;
        const auto result = core::solve_qpp(instance, options);
        if (!result) continue;
        ratios.push_back(result->average_delay / exact->delay);
        load_violations.push_back(result->load_violation);

        // Greedy-nearest baseline from the best relay node for contrast.
        const core::SsqppInstance view =
            core::single_source_view(instance, result->chosen_source);
        const auto greedy = core::greedy_nearest_placement(view);
        if (greedy) {
          greedy_ratios.push_back(
              core::average_max_delay(instance, *greedy) / exact->delay);
        }
      }
      if (ratios.empty()) continue;
      const report::Summary r = report::summarize(ratios);
      const report::Summary l = report::summarize(load_violations);
      const double bound = 5.0 * alpha / (alpha - 1.0);
      violated = violated || r.max > bound + 1e-6 ||
                 l.max > alpha + 1.0 + 1e-6;
      table.add_row(
          {sc.name, topology_name(topo), report::Table::num(r.min, 3),
           report::Table::num(r.mean, 3), report::Table::num(r.max, 3),
           report::Table::num(bound, 1), report::Table::num(l.max, 3),
           report::Table::num(alpha + 1.0, 1),
           greedy_ratios.empty()
               ? std::string("-")
               : report::Table::num(report::summarize(greedy_ratios).mean, 3)});
    }
  }
  table.print(std::cout);
  std::cout << (violated ? "\nRESULT: BOUND VIOLATED\n"
                         : "\nRESULT: Thm 1.2 approximation and load bounds "
                           "hold on every instance.\n");
  return violated ? 1 : 0;
}
