/// Experiment E4 -- Sec 4.1 / Thm B.1 / Figure 2 (optimal Grid layout).
///
/// (a) Prints the shell-filled distance matrix M for a sample instance
///     (the paper's Figure 2 object).
/// (b) Verifies optimality against brute force for k = 2 on random metrics.
/// (c) For k = 2..8, compares the shell layout against row-major and random
///     layouts of the same slots (the strategy must never lose).
/// Exits non-zero if the layout is ever beaten.

#include <algorithm>
#include <iostream>
#include <random>
#include <vector>

#include "core/evaluators.hpp"
#include "core/exact.hpp"
#include "core/grid_layout.hpp"
#include "graph/generators.hpp"
#include "quorum/constructions.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

namespace {
using namespace qp;

core::SsqppInstance make_instance(const graph::Metric& metric, int k) {
  const quorum::QuorumSystem system = quorum::grid(k);
  const double load = static_cast<double>(2 * k - 1) / (k * k);
  return core::SsqppInstance(
      metric,
      std::vector<double>(static_cast<std::size_t>(metric.num_points()), load),
      system, quorum::AccessStrategy::uniform(system), 0);
}

}  // namespace

int main() {
  bool violated = false;

  // (a) Figure 2 analogue: the filled matrix for k = 4 on a geometric WAN.
  report::banner(std::cout,
                 "E4a: shell-filled distance matrix M (Figure 2 analogue, "
                 "k = 4, geometric WAN)");
  {
    std::mt19937_64 rng(31);
    const graph::Metric metric = graph::Metric::from_graph(
        graph::random_geometric(20, 0.45, rng).graph);
    const core::SsqppInstance instance = make_instance(metric, 4);
    const auto layout = core::optimal_grid_layout(instance, 4);
    if (layout) {
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
          std::cout << (c ? "  " : "") << report::Table::num(layout->cell(r, c), 3);
        }
        std::cout << '\n';
      }
      std::cout << "Delta_f(v0) = " << report::Table::num(layout->delay, 4)
                << "  (largest distances in the top-left square)\n";
    }
  }

  // (b) Brute-force optimality, k = 2.
  report::banner(std::cout, "E4b: Thm B.1 optimality vs brute force (k = 2)");
  {
    report::Table table({"seed", "layout delay", "exact OPT", "equal"});
    for (int seed = 0; seed < 10; ++seed) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 17 + 3);
      const graph::Metric metric = graph::Metric::from_graph(
          graph::erdos_renyi(6, 0.5, rng, 1.0, 9.0));
      const core::SsqppInstance instance = make_instance(metric, 2);
      const auto layout = core::optimal_grid_layout(instance, 2);
      const auto exact = core::exact_ssqpp(instance);
      if (!layout || !exact) continue;
      const bool equal = std::abs(layout->delay - exact->delay) < 1e-9;
      violated = violated || !equal;
      table.add_row({std::to_string(seed),
                     report::Table::num(layout->delay, 4),
                     report::Table::num(exact->delay, 4),
                     equal ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  // (c) Against baselines for growing k.
  report::banner(std::cout,
                 "E4c: shell layout vs row-major and 200 random layouts");
  {
    report::Table table({"k", "shell delay", "row-major", "random best",
                         "random mean", "shell wins"});
    for (int k = 2; k <= 8; ++k) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(k) * 101);
      const graph::Metric metric = graph::Metric::from_graph(
          graph::erdos_renyi(k * k + 6, 0.25, rng, 1.0, 12.0));
      const core::SsqppInstance instance = make_instance(metric, k);
      const auto layout = core::optimal_grid_layout(instance, k);
      if (!layout) continue;

      // Same multiset of slots in row-major (nearest-first) order.
      const auto order = instance.metric().nodes_by_distance_from(0);
      core::Placement row_major(static_cast<std::size_t>(k * k));
      for (int u = 0; u < k * k; ++u) {
        row_major[static_cast<std::size_t>(u)] =
            order[static_cast<std::size_t>(u)];
      }
      const double row_major_delay =
          core::source_expected_max_delay(instance, row_major);

      std::vector<double> random_delays;
      core::Placement perm = row_major;
      for (int trial = 0; trial < 200; ++trial) {
        std::shuffle(perm.begin(), perm.end(), rng);
        random_delays.push_back(
            core::source_expected_max_delay(instance, perm));
      }
      const report::Summary rs = report::summarize(random_delays);
      const bool wins =
          layout->delay <= row_major_delay + 1e-9 &&
          layout->delay <= rs.min + 1e-9;
      violated = violated || !wins;
      table.add_row({std::to_string(k), report::Table::num(layout->delay, 4),
                     report::Table::num(row_major_delay, 4),
                     report::Table::num(rs.min, 4),
                     report::Table::num(rs.mean, 4), wins ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  std::cout << (violated ? "\nRESULT: LAYOUT SUBOPTIMAL SOMEWHERE\n"
                         : "\nRESULT: shell layout optimal (k=2 exact) and "
                           "never beaten by baselines.\n");
  return violated ? 1 : 0;
}
