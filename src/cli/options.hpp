#pragma once

/// \file options.hpp
/// Dependency-free command-line parsing and string-to-object factories for
/// the `qplace` CLI tool (tools/qplace.cpp). Kept in the library so the
/// parsing and factory logic is unit-testable.

#include <map>
#include <random>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::cli {

/// `qplace <command> [--flag=value | --flag value | --switch]...`
class ParsedArgs {
 public:
  ParsedArgs(std::string command, std::map<std::string, std::string> flags)
      : command_(std::move(command)), flags_(std::move(flags)) {}

  const std::string& command() const { return command_; }
  bool has(const std::string& name) const { return flags_.count(name) > 0; }

  /// Value of --name, or \p fallback when absent.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// \throws std::invalid_argument when absent.
  std::string require(const std::string& name) const;

  /// Typed accessors; \throws std::invalid_argument on unparsable values.
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Flags that were provided but never read -- used to reject typos.
  std::vector<std::string> unread_flags() const;

  /// Every flag as provided, for introspection (e.g. echoing the invocation
  /// into a run report's context). Does not mark anything as read.
  const std::map<std::string, std::string>& raw_flags() const {
    return flags_;
  }

 private:
  std::string command_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> read_;
};

/// Parses raw arguments (argv[1..]). The first token is the command; each
/// later token must be --name=value, --name value, or a bare --switch
/// (stored with value "true").
/// \throws std::invalid_argument on malformed input or a missing command.
ParsedArgs parse_args(const std::vector<std::string>& args);

/// Builds a quorum system from flags: --system
/// grid|majority|fpp|tree|wall|star|singleton with --k/--n/--t/--q/
/// --height/--widths as appropriate (see tools/qplace.cpp --help).
/// \throws std::invalid_argument on unknown systems or bad parameters.
quorum::QuorumSystem make_system(const ParsedArgs& args);

/// Builds a topology from flags: --topology
/// path|cycle|star|complete|mesh|geometric|erdos-renyi|tree|ba|waxman|
/// cliques|hypercube|torus|fattree|broom, sized by --nodes and seeded by
/// --seed; or --graph-file <path> to load an edge list (see graph/io.hpp),
/// which overrides --topology.
graph::Graph make_topology(const ParsedArgs& args, std::mt19937_64& rng);

/// Applies --threads N to the exec thread pool (docs/PARALLEL.md) and
/// returns the effective pool size. Absent or N < 1 keeps the default
/// (QPLACE_THREADS env var, else hardware concurrency). Results never depend
/// on the thread count -- see the determinism contract.
/// \throws std::invalid_argument on an unparsable value.
int configure_threads(const ParsedArgs& args);

}  // namespace qp::cli
