#include "cli/options.hpp"

#include <sstream>
#include <stdexcept>

#include "exec/thread_pool.hpp"
#include "graph/io.hpp"
#include "quorum/constructions.hpp"

namespace qp::cli {

std::string ParsedArgs::get(const std::string& name,
                            const std::string& fallback) const {
  read_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::string ParsedArgs::require(const std::string& name) const {
  read_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("missing required flag --" + name);
  }
  return it->second;
}

int ParsedArgs::get_int(const std::string& name, int fallback) const {
  const std::string raw = get(name, "");
  if (raw.empty()) return fallback;
  try {
    std::size_t used = 0;
    const int value = std::stoi(raw, &used);
    if (used != raw.size()) throw std::invalid_argument(raw);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                raw + "'");
  }
}

double ParsedArgs::get_double(const std::string& name, double fallback) const {
  const std::string raw = get(name, "");
  if (raw.empty()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(raw, &used);
    if (used != raw.size()) throw std::invalid_argument(raw);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                raw + "'");
  }
}

std::vector<std::string> ParsedArgs::unread_flags() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    if (!read_.count(name)) out.push_back(name);
  }
  return out;
}

ParsedArgs parse_args(const std::vector<std::string>& args) {
  if (args.empty() || args.front().rfind("--", 0) == 0) {
    throw std::invalid_argument("expected a command as the first argument");
  }
  const std::string command = args.front();
  std::map<std::string, std::string> flags;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::invalid_argument("expected --flag, got '" + token + "'");
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      flags[body] = args[++i];
    } else {
      flags[body] = "true";  // bare switch
    }
  }
  return ParsedArgs(command, std::move(flags));
}

namespace {

std::vector<int> parse_widths(const std::string& raw) {
  std::vector<int> widths;
  std::stringstream ss(raw);
  std::string part;
  while (std::getline(ss, part, ',')) {
    widths.push_back(std::stoi(part));
  }
  if (widths.empty()) {
    throw std::invalid_argument("--widths expects a comma list, e.g. 2,3,3");
  }
  return widths;
}

}  // namespace

quorum::QuorumSystem make_system(const ParsedArgs& args) {
  const std::string kind = args.get("system", "grid");
  if (kind == "grid") return quorum::grid(args.get_int("k", 3));
  if (kind == "majority") {
    const int n = args.get_int("n", 5);
    return quorum::majority(n, args.get_int("t", n / 2 + 1));
  }
  if (kind == "fpp") return quorum::projective_plane(args.get_int("q", 2));
  if (kind == "tree") return quorum::binary_tree(args.get_int("height", 2));
  if (kind == "wall") {
    return quorum::crumbling_wall(parse_widths(args.get("widths", "2,3")));
  }
  if (kind == "star") return quorum::star(args.get_int("n", 5));
  if (kind == "singleton") return quorum::singleton();
  throw std::invalid_argument("unknown --system '" + kind +
                              "' (grid|majority|fpp|tree|wall|star|singleton)");
}

graph::Graph make_topology(const ParsedArgs& args, std::mt19937_64& rng) {
  if (args.has("graph-file")) {
    return graph::load_edge_list_file(args.require("graph-file"));
  }
  const std::string kind = args.get("topology", "geometric");
  const int n = args.get_int("nodes", 16);
  if (kind == "path") return graph::path_graph(n);
  if (kind == "cycle") return graph::cycle_graph(n);
  if (kind == "star") return graph::star_graph(n);
  if (kind == "complete") return graph::complete_graph(n);
  if (kind == "mesh") return graph::grid_mesh(args.get_int("k", 4));
  if (kind == "broom") return graph::broom_graph(args.get_int("k", 4));
  if (kind == "hypercube") return graph::hypercube(args.get_int("dim", 4));
  if (kind == "torus") return graph::torus(args.get_int("k", 4));
  if (kind == "fattree") {
    return graph::fat_tree(args.get_int("spines", 2), args.get_int("leaves", 4),
                           args.get_int("hosts", 4));
  }
  if (kind == "geometric") {
    return graph::random_geometric(n, args.get_double("radius", 0.45), rng)
        .graph;
  }
  if (kind == "erdos-renyi") {
    return graph::erdos_renyi(n, args.get_double("p", 0.3), rng, 1.0,
                              args.get_double("max-length", 8.0));
  }
  if (kind == "tree") {
    return graph::random_tree(n, rng, 1.0, args.get_double("max-length", 5.0));
  }
  if (kind == "ba") return graph::barabasi_albert(n, args.get_int("m", 2), rng);
  if (kind == "waxman") {
    return graph::waxman(n, args.get_double("a", 0.9),
                         args.get_double("b", 0.4), rng)
        .graph;
  }
  if (kind == "cliques") {
    return graph::ring_of_cliques(args.get_int("cliques", 4),
                                  args.get_int("clique-size", 4), 1.0,
                                  args.get_double("inter", 10.0));
  }
  throw std::invalid_argument("unknown --topology '" + kind + "'");
}

int configure_threads(const ParsedArgs& args) {
  const int requested = args.get_int("threads", 0);
  if (requested >= 1) exec::set_num_threads(requested);
  return exec::num_threads();
}

}  // namespace qp::cli
