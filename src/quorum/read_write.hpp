#pragma once

/// \file read_write.hpp
/// Read/write quorum systems (bicoteries): separate read and write
/// families where every read quorum intersects every write quorum and
/// write quorums pairwise intersect (enough for single-writer-per-version
/// replication a la Gifford). The paper treats a single intersecting
/// family; this extension feeds mixed read/write workloads into the same
/// placement machinery by flattening to a combined family + strategy.
///
/// Caveat carried into the API: the combined family is generally NOT
/// pairwise intersecting (two read quorums may be disjoint), so the
/// relay reduction of Lemma 3.1 / Thm 1.2 only applies when it is; the
/// single-source (Thm 3.7) and total-delay (Thm 5.1) algorithms never use
/// intersection and stay applicable. `combine` reports which case holds.

#include "quorum/quorum_system.hpp"

namespace qp::quorum {

/// A read/write quorum system over elements {0..universe_size-1}.
class ReadWriteSystem {
 public:
  /// \throws std::invalid_argument on malformed quorums or empty families.
  ReadWriteSystem(int universe_size, std::vector<Quorum> read_quorums,
                  std::vector<Quorum> write_quorums);

  int universe_size() const { return universe_size_; }
  const std::vector<Quorum>& read_quorums() const { return read_quorums_; }
  const std::vector<Quorum>& write_quorums() const { return write_quorums_; }

  /// True iff every read quorum intersects every write quorum (the
  /// consistency requirement for read/write replication).
  bool reads_intersect_writes() const;

  /// True iff write quorums pairwise intersect (serializes writers).
  bool writes_intersect_writes() const;

  /// reads_intersect_writes() && writes_intersect_writes().
  bool is_valid() const;

 private:
  int universe_size_ = 0;
  std::vector<Quorum> read_quorums_;
  std::vector<Quorum> write_quorums_;
};

/// Read-one/write-all over n elements: reads = singletons, writes = {U}.
ReadWriteSystem read_one_write_all(int n);

/// Threshold read/write quorums: all r-subsets read, all w-subsets write.
/// Requires r + w > n (read-write intersection) and 2w > n (write-write).
/// Enumerates both families; keep n modest.
ReadWriteSystem majority_read_write(int n, int r, int w);

/// The grid protocol [Cheung et al. 92]: reads are full rows (k elements),
/// writes are row+column (2k-1 elements) of a k x k grid.
ReadWriteSystem grid_read_write(int k);

/// A read/write workload flattened into the paper's single-family model:
/// with probability `read_fraction` an access draws from the read family
/// (strategy p_read), otherwise from the write family (p_write).
struct CombinedWorkload {
  QuorumSystem system;       ///< reads first, then writes
  AccessStrategy strategy;   ///< mixed by read_fraction
  int num_read_quorums = 0;  ///< quorums [0, num_read_quorums) are reads
  bool intersecting = false; ///< pairwise intersection of the combined
                             ///< family (required by Lemma 3.1 / Thm 1.2)
};

/// \throws std::invalid_argument unless 0 <= read_fraction <= 1 and the
/// strategies match the families' sizes.
CombinedWorkload combine(const ReadWriteSystem& system,
                         const std::vector<double>& read_probabilities,
                         const std::vector<double>& write_probabilities,
                         double read_fraction);

/// Convenience: uniform strategies over both families.
CombinedWorkload combine_uniform(const ReadWriteSystem& system,
                                 double read_fraction);

}  // namespace qp::quorum
