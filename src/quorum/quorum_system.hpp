#pragma once

/// \file quorum_system.hpp
/// Quorum systems Q = {Q_1, ..., Q_m} over a logical universe U = {0..n-1}
/// and access strategies p : Q -> [0,1] (paper Sec 1). A strategy induces
/// the element loads load(u) = sum_{Q containing u} p(Q) that the placement
/// algorithms must pack under node capacities.

#include <string>
#include <vector>

#include "check/contracts.hpp"

namespace qp::quorum {

/// A quorum is a sorted set of distinct element ids.
using Quorum = std::vector<int>;

/// Explicitly represented quorum system.
///
/// Invariants established at construction: every quorum is a non-empty
/// sorted duplicate-free subset of {0..universe_size-1}.
/// Pairwise intersection (the defining quorum property) is NOT implicitly
/// enforced — some negative tests need non-intersecting families — but can
/// be checked with is_intersecting(); all shipped constructions satisfy it.
class QuorumSystem {
 public:
  QuorumSystem() = default;

  /// \throws std::invalid_argument on out-of-range / empty / duplicate ids.
  QuorumSystem(int universe_size, std::vector<Quorum> quorums);

  int universe_size() const { return universe_size_; }
  int num_quorums() const { return static_cast<int>(quorums_.size()); }
  const std::vector<Quorum>& quorums() const { return quorums_; }
  /// Hot path (called per quorum per client in the evaluators): unchecked
  /// indexing, bounds guarded by the contract in Debug builds.
  const Quorum& quorum(int i) const {
    QP_REQUIRE(i >= 0 && i < num_quorums(), "quorum index out of range");
    return quorums_[static_cast<std::size_t>(i)];
  }

  /// Largest quorum cardinality (0 for an empty system).
  int max_quorum_size() const;

  /// True iff every pair of quorums intersects.
  bool is_intersecting() const;

  /// True iff no quorum is a proper superset of another (coterie minimality).
  bool is_minimal() const;

  /// True iff every universe element appears in at least one quorum.
  bool covers_universe() const;

  /// For each quorum, the sorted list of quorums it intersects weakly
  /// (mainly for diagnostics).
  std::string describe() const;

 private:
  int universe_size_ = 0;
  std::vector<Quorum> quorums_;
};

/// A probability distribution over the quorums of a system.
class AccessStrategy {
 public:
  AccessStrategy() = default;

  /// \throws std::invalid_argument if probabilities are negative or do not
  /// sum to 1 within tolerance (they are renormalized exactly afterwards).
  AccessStrategy(const QuorumSystem& system, std::vector<double> probabilities);

  /// Uniform strategy p(Q) = 1/m. Optimal-load for Grid and Majority
  /// (paper Sec 4, citing Naor-Wool).
  static AccessStrategy uniform(const QuorumSystem& system);

  int num_quorums() const { return static_cast<int>(probabilities_.size()); }
  /// Hot path (inner loop of every expected-delay evaluation): unchecked
  /// indexing, bounds guarded by the contract in Debug builds.
  double probability(int quorum_index) const {
    QP_REQUIRE(quorum_index >= 0 && quorum_index < num_quorums(),
               "quorum index out of range");
    return probabilities_[static_cast<std::size_t>(quorum_index)];
  }
  const std::vector<double>& probabilities() const { return probabilities_; }

 private:
  std::vector<double> probabilities_;
};

/// Element loads load(u) = sum_{Q : u in Q} p(Q) (paper Sec 1.2).
std::vector<double> element_loads(const QuorumSystem& system,
                                  const AccessStrategy& strategy);

/// System load: max_u load(u). The classic Naor-Wool load of (Q, p).
double system_load(const QuorumSystem& system, const AccessStrategy& strategy);

}  // namespace qp::quorum
