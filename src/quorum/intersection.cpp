#include "quorum/intersection.hpp"

#include <cstdint>
#include <stdexcept>

#include "check/contracts.hpp"

namespace qp::quorum {

LivenessReport check_liveness(const QuorumSystem& system,
                              const std::vector<bool>& failed_elements) {
  if (static_cast<int>(failed_elements.size()) != system.universe_size()) {
    throw std::invalid_argument(
        "check_liveness: failed_elements must have one entry per universe "
        "element");
  }
  LivenessReport report;

  // A quorum is live iff none of its elements failed. Represent each live
  // quorum as a bitmask over the universe so the pairwise intersection
  // check below is a word-wise AND.
  const std::size_t words =
      (static_cast<std::size_t>(system.universe_size()) + 63U) / 64U;
  std::vector<std::vector<std::uint64_t>> masks;
  for (int q = 0; q < system.num_quorums(); ++q) {
    const Quorum& quorum = system.quorum(q);
    bool live = true;
    for (const int u : quorum) {
      if (failed_elements[static_cast<std::size_t>(u)]) {
        live = false;
        break;
      }
    }
    if (!live) continue;
    report.live_quorums.push_back(q);
    std::vector<std::uint64_t> mask(words, 0U);
    for (const int u : quorum) {
      mask[static_cast<std::size_t>(u) / 64U] |=
          std::uint64_t{1} << (static_cast<std::size_t>(u) % 64U);
    }
    masks.push_back(std::move(mask));
  }

  // Safety: certify pairwise intersection of the live sub-family, keeping
  // the first violating pair as a witness.
  for (std::size_t i = 0;
       i < masks.size() && report.pairwise_intersecting; ++i) {
    for (std::size_t j = i + 1; j < masks.size(); ++j) {
      bool intersects = false;
      for (std::size_t w = 0; w < words; ++w) {
        if ((masks[i][w] & masks[j][w]) != 0U) {
          intersects = true;
          break;
        }
      }
      if (!intersects) {
        report.pairwise_intersecting = false;
        report.violation = {report.live_quorums[i], report.live_quorums[j]};
        break;
      }
    }
  }

  // A live sub-family of an intersecting family is itself intersecting:
  // failures can cost availability but never the safety of an intersecting
  // system. (Read/write families with non-intersecting read quorums may
  // legitimately report violations instead.)
  QP_INVARIANT(!system.is_intersecting() || report.pairwise_intersecting,
               "check_liveness: live sub-family of an intersecting system "
               "must stay intersecting");
  return report;
}

}  // namespace qp::quorum
