#include "quorum/constructions.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <stdexcept>

namespace qp::quorum {

QuorumSystem grid(int k) {
  if (k < 1) throw std::invalid_argument("grid: k >= 1 required");
  std::vector<Quorum> quorums;
  quorums.reserve(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < k; ++c) {
      Quorum q;
      q.reserve(static_cast<std::size_t>(2 * k - 1));
      for (int j = 0; j < k; ++j) q.push_back(r * k + j);        // row r
      for (int i = 0; i < k; ++i) {
        if (i != r) q.push_back(i * k + c);                       // column c
      }
      quorums.push_back(std::move(q));
    }
  }
  return QuorumSystem(k * k, std::move(quorums));
}

namespace {

void enumerate_subsets(int n, int t, int start, Quorum& current,
                       std::vector<Quorum>& out) {
  if (static_cast<int>(current.size()) == t) {
    out.push_back(current);
    return;
  }
  const int needed = t - static_cast<int>(current.size());
  for (int v = start; v <= n - needed; ++v) {
    current.push_back(v);
    enumerate_subsets(n, t, v + 1, current, out);
    current.pop_back();
  }
}

void check_threshold(int n, int t) {
  if (n < 1 || t < 1 || t > n) {
    throw std::invalid_argument("majority: need 1 <= t <= n");
  }
  if (2 * t <= n) {
    throw std::invalid_argument("majority: need 2t > n for intersection");
  }
}

}  // namespace

QuorumSystem majority(int n, int t) {
  check_threshold(n, t);
  std::vector<Quorum> quorums;
  Quorum current;
  enumerate_subsets(n, t, 0, current, quorums);
  return QuorumSystem(n, std::move(quorums));
}

QuorumSystem majority(int n) { return majority(n, n / 2 + 1); }

QuorumSystem sampled_majority(int n, int t, int count, std::mt19937_64& rng) {
  check_threshold(n, t);
  if (count < 1) throw std::invalid_argument("sampled_majority: count >= 1");
  std::set<Quorum> unique;
  std::vector<int> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  constexpr int kMaxAttempts = 100000;
  int attempts = 0;
  while (static_cast<int>(unique.size()) < count && attempts < kMaxAttempts) {
    ++attempts;
    std::shuffle(ids.begin(), ids.end(), rng);
    Quorum q(ids.begin(), ids.begin() + t);
    std::sort(q.begin(), q.end());
    unique.insert(std::move(q));
  }
  if (static_cast<int>(unique.size()) < count) {
    throw std::invalid_argument(
        "sampled_majority: count exceeds number of distinct t-subsets");
  }
  return QuorumSystem(n, std::vector<Quorum>(unique.begin(), unique.end()));
}

QuorumSystem weighted_majority(const std::vector<double>& weights) {
  const int n = static_cast<int>(weights.size());
  if (n < 1 || n > 20) {
    throw std::invalid_argument("weighted_majority: need 1 <= n <= 20");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w > 0.0)) {
      throw std::invalid_argument("weighted_majority: weights must be > 0");
    }
    total += w;
  }
  const double half = total / 2.0;
  // Collect winning subsets, then filter to minimal ones.
  std::vector<Quorum> winning;
  for (unsigned mask = 1; mask < (1u << n); ++mask) {
    double w = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) w += weights[static_cast<std::size_t>(i)];
    }
    if (w > half) {
      Quorum q;
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) q.push_back(i);
      }
      winning.push_back(std::move(q));
    }
  }
  std::vector<Quorum> minimal;
  for (const Quorum& q : winning) {
    bool has_proper_subset = false;
    for (const Quorum& other : winning) {
      if (other.size() < q.size() &&
          std::includes(q.begin(), q.end(), other.begin(), other.end())) {
        has_proper_subset = true;
        break;
      }
    }
    if (!has_proper_subset) minimal.push_back(q);
  }
  return QuorumSystem(n, std::move(minimal));
}

QuorumSystem singleton() { return QuorumSystem(1, {{0}}); }

QuorumSystem star(int n) {
  if (n < 1) throw std::invalid_argument("star: n >= 1 required");
  if (n == 1) return singleton();
  std::vector<Quorum> quorums;
  quorums.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 1; i < n; ++i) quorums.push_back({0, i});
  return QuorumSystem(n, std::move(quorums));
}

namespace {

bool is_prime(int q) {
  if (q < 2) return false;
  for (int d = 2; d * d <= q; ++d) {
    if (q % d == 0) return false;
  }
  return true;
}

}  // namespace

QuorumSystem projective_plane(int q) {
  if (!is_prime(q) || q > 31) {
    throw std::invalid_argument("projective_plane: prime q <= 31 required");
  }
  // Points of PG(2, q): normalized triples over GF(q) -- (1, y, z),
  // (0, 1, z), (0, 0, 1). Lines are the same set (self-dual); point p lies
  // on line l iff p . l == 0 (mod q).
  std::vector<std::array<int, 3>> points;
  for (int y = 0; y < q; ++y) {
    for (int z = 0; z < q; ++z) points.push_back({1, y, z});
  }
  for (int z = 0; z < q; ++z) points.push_back({0, 1, z});
  points.push_back({0, 0, 1});
  const int n = static_cast<int>(points.size());  // q^2 + q + 1

  std::vector<Quorum> lines;
  lines.reserve(static_cast<std::size_t>(n));
  for (int li = 0; li < n; ++li) {
    Quorum line;
    for (int pi = 0; pi < n; ++pi) {
      const int dot = points[static_cast<std::size_t>(li)][0] *
                          points[static_cast<std::size_t>(pi)][0] +
                      points[static_cast<std::size_t>(li)][1] *
                          points[static_cast<std::size_t>(pi)][1] +
                      points[static_cast<std::size_t>(li)][2] *
                          points[static_cast<std::size_t>(pi)][2];
      if (dot % q == 0) line.push_back(pi);
    }
    lines.push_back(std::move(line));
  }
  return QuorumSystem(n, std::move(lines));
}

namespace {

/// Quorums of the Agrawal-El Abbadi protocol for the complete binary subtree
/// whose root is \p root in a heap-indexed tree with \p num_nodes nodes.
std::vector<Quorum> tree_quorums(int root, int num_nodes) {
  const int left = 2 * root + 1;
  const int right = 2 * root + 2;
  if (left >= num_nodes) return {{root}};  // leaf
  const std::vector<Quorum> left_quorums = tree_quorums(left, num_nodes);
  const std::vector<Quorum> right_quorums = tree_quorums(right, num_nodes);
  std::vector<Quorum> out;
  // Root present: root + quorum of either child subtree.
  for (const auto& side : {left_quorums, right_quorums}) {
    for (const Quorum& q : side) {
      Quorum with_root = q;
      with_root.push_back(root);
      std::sort(with_root.begin(), with_root.end());
      out.push_back(std::move(with_root));
    }
  }
  // Root absent: a quorum of each child subtree.
  for (const Quorum& ql : left_quorums) {
    for (const Quorum& qr : right_quorums) {
      Quorum merged;
      merged.reserve(ql.size() + qr.size());
      std::merge(ql.begin(), ql.end(), qr.begin(), qr.end(),
                 std::back_inserter(merged));
      out.push_back(std::move(merged));
    }
  }
  return out;
}

}  // namespace

QuorumSystem binary_tree(int height) {
  if (height < 0 || height > 4) {
    throw std::invalid_argument("binary_tree: 0 <= height <= 4 required");
  }
  const int num_nodes = (1 << (height + 1)) - 1;
  return QuorumSystem(num_nodes, tree_quorums(0, num_nodes));
}

QuorumSystem crumbling_wall(const std::vector<int>& row_widths) {
  if (row_widths.empty()) {
    throw std::invalid_argument("crumbling_wall: at least one row required");
  }
  int n = 0;
  std::vector<int> row_start;
  for (int w : row_widths) {
    if (w < 1) throw std::invalid_argument("crumbling_wall: widths >= 1");
    row_start.push_back(n);
    n += w;
  }
  const int d = static_cast<int>(row_widths.size());
  std::vector<Quorum> quorums;
  for (int i = 0; i < d; ++i) {
    // Full row i, plus one representative from each row below.
    Quorum base;
    for (int c = 0; c < row_widths[static_cast<std::size_t>(i)]; ++c) {
      base.push_back(row_start[static_cast<std::size_t>(i)] + c);
    }
    // Enumerate representative choices for rows i+1..d-1 via mixed-radix
    // counting.
    std::vector<int> choice(static_cast<std::size_t>(d - i - 1), 0);
    while (true) {
      Quorum q = base;
      for (int j = i + 1; j < d; ++j) {
        q.push_back(row_start[static_cast<std::size_t>(j)] +
                    choice[static_cast<std::size_t>(j - i - 1)]);
      }
      std::sort(q.begin(), q.end());
      quorums.push_back(std::move(q));
      // Increment mixed-radix counter.
      int pos = static_cast<int>(choice.size()) - 1;
      while (pos >= 0) {
        if (++choice[static_cast<std::size_t>(pos)] <
            row_widths[static_cast<std::size_t>(pos + i + 1)]) {
          break;
        }
        choice[static_cast<std::size_t>(pos)] = 0;
        --pos;
      }
      if (pos < 0) break;
    }
  }
  return QuorumSystem(n, std::move(quorums));
}

namespace {

/// Quorums of the hierarchical-majority subtree covering leaf ids
/// [first, first + b^depth).
std::vector<Quorum> hierarchical_quorums(int branching, int depth, int first) {
  if (depth == 0) return {{first}};
  int subtree = 1;
  for (int i = 0; i < depth - 1; ++i) subtree *= branching;
  // Children cover [first + c*subtree, ...); recurse per child.
  std::vector<std::vector<Quorum>> child_quorums;
  for (int c = 0; c < branching; ++c) {
    child_quorums.push_back(
        hierarchical_quorums(branching, depth - 1, first + c * subtree));
  }
  const int needed = branching / 2 + 1;  // strict majority of children
  std::vector<Quorum> out;
  // Enumerate child subsets of size `needed`, then cross-product their
  // quorum choices.
  std::vector<int> subset;
  const auto enumerate_children = [&](auto&& self, int start) -> void {
    if (static_cast<int>(subset.size()) == needed) {
      // Cross product of quorum choices in the chosen children.
      std::vector<std::size_t> pick(subset.size(), 0);
      while (true) {
        Quorum q;
        for (std::size_t i = 0; i < subset.size(); ++i) {
          const Quorum& part =
              child_quorums[static_cast<std::size_t>(
                  subset[i])][pick[i]];
          q.insert(q.end(), part.begin(), part.end());
        }
        std::sort(q.begin(), q.end());
        out.push_back(std::move(q));
        std::size_t pos = subset.size();
        while (pos > 0) {
          --pos;
          if (++pick[pos] <
              child_quorums[static_cast<std::size_t>(subset[pos])].size()) {
            break;
          }
          pick[pos] = 0;
          if (pos == 0) return;
        }
      }
    }
    for (int c = start; c < branching; ++c) {
      subset.push_back(c);
      self(self, c + 1);
      subset.pop_back();
    }
  };
  enumerate_children(enumerate_children, 0);
  return out;
}

}  // namespace

QuorumSystem hierarchical_majority(int branching, int depth) {
  if (branching < 3 || branching % 2 == 0) {
    throw std::invalid_argument(
        "hierarchical_majority: odd branching >= 3 required");
  }
  if (depth < 1) {
    throw std::invalid_argument("hierarchical_majority: depth >= 1 required");
  }
  long long n = 1;
  // The quorum count follows count(d) = C(b, b/2+1) * count(d-1)^(b/2+1),
  // which explodes doubly exponentially; bound it, not just the universe.
  long long count = 1;
  const long long subsets = [&] {
    long long c = 1;
    for (int i = 0; i < branching / 2 + 1; ++i) {
      c = c * (branching - i) / (i + 1);
    }
    return c;
  }();
  for (int i = 0; i < depth; ++i) {
    n *= branching;
    long long next = subsets;
    for (int j = 0; j < branching / 2 + 1; ++j) {
      next *= count;
      if (next > 10000) {
        throw std::invalid_argument(
            "hierarchical_majority: too many quorums; reduce depth");
      }
    }
    count = next;
  }
  return QuorumSystem(static_cast<int>(n),
                      hierarchical_quorums(branching, depth, 0));
}

QuorumSystem wheel(int n) {
  if (n < 2) throw std::invalid_argument("wheel: n >= 2 required");
  std::vector<Quorum> quorums;
  quorums.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i < n; ++i) quorums.push_back({0, i});
  Quorum rim;
  for (int i = 1; i < n; ++i) rim.push_back(i);
  quorums.push_back(std::move(rim));
  return QuorumSystem(n, std::move(quorums));
}

}  // namespace qp::quorum
