#pragma once

/// \file constructions.hpp
/// Classic quorum-system constructions. The paper analyzes Grid [Cheung et
/// al. 92, Kumar et al. 93] and Majority [Gifford 79, Thomas 79] in Sec 4;
/// the rest are well-known systems used to exercise the general algorithms
/// (Maekawa-style finite projective planes, tree quorums, crumbling walls).

#include <random>

#include "quorum/quorum_system.hpp"

namespace qp::quorum {

/// Grid quorum system on k^2 elements: element (r, c) has id r*k + c and
/// quorum Q_{rc} = row r  union  column c, so |Q| = 2k-1 and there are k^2
/// quorums. Quorum Q_{rc} has index r*k + c.
QuorumSystem grid(int k);

/// Majority / threshold system: all subsets of {0..n-1} of size t, where
/// 2t > n guarantees pairwise intersection (paper Sec 4.2 uses t >=
/// ceil((n+1)/2)). Enumerates all C(n, t) subsets, so keep n modest.
/// \throws std::invalid_argument unless 0 < t <= n and 2t > n.
QuorumSystem majority(int n, int t);

/// Majority with the default threshold t = floor(n/2) + 1.
QuorumSystem majority(int n);

/// \p count random distinct subsets of size t (2t > n) -- a sampled
/// threshold system for stress tests where full enumeration is too large.
QuorumSystem sampled_majority(int n, int t, int count, std::mt19937_64& rng);

/// All minimal subsets whose weight strictly exceeds half the total weight
/// (weighted voting [Gifford 79]). Exponential in n; keep n <= ~16.
QuorumSystem weighted_majority(const std::vector<double>& weights);

/// Single quorum {0} on a universe of size 1 (degenerate baseline).
QuorumSystem singleton();

/// Star coterie: quorums {0, i} for i = 1..n-1 (all intersect in element 0).
/// For n == 1 this is the singleton system.
QuorumSystem star(int n);

/// Maekawa-style finite projective plane of prime order q: universe has
/// n = q^2 + q + 1 elements (the points of PG(2, q)); quorums are the
/// n lines, each of size q + 1; any two lines meet in exactly one point.
/// \throws std::invalid_argument if q is not a prime (q <= 31 supported).
QuorumSystem projective_plane(int q);

/// Agrawal-El Abbadi tree protocol on a complete binary tree of the given
/// height (height 0 = single root). A quorum is obtained recursively: either
/// the root plus a quorum of one child subtree, or a quorum of each of the
/// two child subtrees (replacing the root). Enumerates all such quorums.
QuorumSystem binary_tree(int height);

/// Crumbling walls [Peleg-Wool 97]: rows of widths row_widths[0..d-1];
/// a quorum is a full row i together with one representative element from
/// every row j > i. Element ids are assigned row-major.
QuorumSystem crumbling_wall(const std::vector<int>& row_widths);

/// Wheel coterie on n >= 2 elements: hub element 0 with rim 1..n-1; quorums
/// are {0, i} for every rim element plus the full rim {1..n-1}. Low load on
/// the rim, availability dominated by the hub.
QuorumSystem wheel(int n);

/// Hierarchical majority [Kumar 91]: a complete \p branching-ary tree of
/// depth \p depth whose leaves are the universe (n = branching^depth);
/// a quorum is obtained recursively by taking a majority of the children
/// and a quorum of each chosen child. Quorum size ceil((b+1)/2)^depth --
/// asymptotically n^0.63 for b = 3, smaller than flat majority.
/// \throws std::invalid_argument unless branching is odd, >= 3, and the
/// enumeration stays small (branching^depth <= 81).
QuorumSystem hierarchical_majority(int branching, int depth);

}  // namespace qp::quorum
