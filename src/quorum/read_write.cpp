#include "quorum/read_write.hpp"

#include <algorithm>
#include <stdexcept>

namespace qp::quorum {

namespace {

bool sorted_intersect(const Quorum& a, const Quorum& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

std::vector<Quorum> validated(int universe_size, std::vector<Quorum> quorums,
                              const char* family) {
  if (quorums.empty()) {
    throw std::invalid_argument(std::string("ReadWriteSystem: empty ") +
                                family + " family");
  }
  for (Quorum& q : quorums) {
    if (q.empty()) {
      throw std::invalid_argument("ReadWriteSystem: empty quorum");
    }
    std::sort(q.begin(), q.end());
    if (std::adjacent_find(q.begin(), q.end()) != q.end()) {
      throw std::invalid_argument("ReadWriteSystem: duplicate element");
    }
    if (q.front() < 0 || q.back() >= universe_size) {
      throw std::invalid_argument("ReadWriteSystem: element out of range");
    }
  }
  return quorums;
}

void enumerate_subsets(int n, int t, int start, Quorum& current,
                       std::vector<Quorum>& out) {
  if (static_cast<int>(current.size()) == t) {
    out.push_back(current);
    return;
  }
  const int needed = t - static_cast<int>(current.size());
  for (int v = start; v <= n - needed; ++v) {
    current.push_back(v);
    enumerate_subsets(n, t, v + 1, current, out);
    current.pop_back();
  }
}

}  // namespace

ReadWriteSystem::ReadWriteSystem(int universe_size,
                                 std::vector<Quorum> read_quorums,
                                 std::vector<Quorum> write_quorums)
    : universe_size_(universe_size) {
  if (universe_size < 0) {
    throw std::invalid_argument("ReadWriteSystem: universe_size >= 0");
  }
  read_quorums_ = validated(universe_size, std::move(read_quorums), "read");
  write_quorums_ = validated(universe_size, std::move(write_quorums), "write");
}

bool ReadWriteSystem::reads_intersect_writes() const {
  for (const Quorum& r : read_quorums_) {
    for (const Quorum& w : write_quorums_) {
      if (!sorted_intersect(r, w)) return false;
    }
  }
  return true;
}

bool ReadWriteSystem::writes_intersect_writes() const {
  for (std::size_t i = 0; i < write_quorums_.size(); ++i) {
    for (std::size_t j = i + 1; j < write_quorums_.size(); ++j) {
      if (!sorted_intersect(write_quorums_[i], write_quorums_[j])) {
        return false;
      }
    }
  }
  return true;
}

bool ReadWriteSystem::is_valid() const {
  return reads_intersect_writes() && writes_intersect_writes();
}

ReadWriteSystem read_one_write_all(int n) {
  if (n < 1) throw std::invalid_argument("read_one_write_all: n >= 1");
  std::vector<Quorum> reads;
  for (int u = 0; u < n; ++u) reads.push_back({u});
  Quorum all;
  for (int u = 0; u < n; ++u) all.push_back(u);
  return ReadWriteSystem(n, std::move(reads), {std::move(all)});
}

ReadWriteSystem majority_read_write(int n, int r, int w) {
  if (n < 1 || r < 1 || w < 1 || r > n || w > n) {
    throw std::invalid_argument("majority_read_write: need 1 <= r, w <= n");
  }
  if (r + w <= n || 2 * w <= n) {
    throw std::invalid_argument(
        "majority_read_write: need r + w > n and 2w > n");
  }
  std::vector<Quorum> reads, writes;
  Quorum current;
  enumerate_subsets(n, r, 0, current, reads);
  enumerate_subsets(n, w, 0, current, writes);
  return ReadWriteSystem(n, std::move(reads), std::move(writes));
}

ReadWriteSystem grid_read_write(int k) {
  if (k < 1) throw std::invalid_argument("grid_read_write: k >= 1");
  std::vector<Quorum> reads, writes;
  for (int r = 0; r < k; ++r) {
    Quorum row;
    for (int c = 0; c < k; ++c) row.push_back(r * k + c);
    reads.push_back(std::move(row));
  }
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < k; ++c) {
      Quorum q;
      for (int j = 0; j < k; ++j) q.push_back(r * k + j);
      for (int i = 0; i < k; ++i) {
        if (i != r) q.push_back(i * k + c);
      }
      std::sort(q.begin(), q.end());
      writes.push_back(std::move(q));
    }
  }
  return ReadWriteSystem(k * k, std::move(reads), std::move(writes));
}

CombinedWorkload combine(const ReadWriteSystem& system,
                         const std::vector<double>& read_probabilities,
                         const std::vector<double>& write_probabilities,
                         double read_fraction) {
  if (!(read_fraction >= 0.0) || !(read_fraction <= 1.0)) {
    throw std::invalid_argument("combine: read_fraction in [0, 1] required");
  }
  if (read_probabilities.size() != system.read_quorums().size() ||
      write_probabilities.size() != system.write_quorums().size()) {
    throw std::invalid_argument("combine: strategy arity mismatch");
  }
  std::vector<Quorum> family = system.read_quorums();
  family.insert(family.end(), system.write_quorums().begin(),
                system.write_quorums().end());
  QuorumSystem combined(system.universe_size(), std::move(family));

  std::vector<double> mixed;
  mixed.reserve(read_probabilities.size() + write_probabilities.size());
  for (double p : read_probabilities) mixed.push_back(read_fraction * p);
  for (double p : write_probabilities) {
    mixed.push_back((1.0 - read_fraction) * p);
  }
  // Degenerate fractions (0 or 1) zero out one family; AccessStrategy
  // accepts zero-probability quorums as long as the total is 1.
  AccessStrategy strategy(combined, std::move(mixed));

  CombinedWorkload out{std::move(combined), std::move(strategy),
                       static_cast<int>(system.read_quorums().size()),
                       false};
  out.intersecting = out.system.is_intersecting();
  return out;
}

CombinedWorkload combine_uniform(const ReadWriteSystem& system,
                                 double read_fraction) {
  const auto reads = system.read_quorums().size();
  const auto writes = system.write_quorums().size();
  return combine(system,
                 std::vector<double>(reads, 1.0 / static_cast<double>(reads)),
                 std::vector<double>(writes, 1.0 / static_cast<double>(writes)),
                 read_fraction);
}

}  // namespace qp::quorum
