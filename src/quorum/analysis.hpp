#pragma once

/// \file analysis.hpp
/// Classic quality measures for quorum systems (Naor-Wool, "The load,
/// capacity, and availability of quorum systems", SICOMP 1998 -- the paper's
/// reference [18] and the criterion by which input strategies are chosen,
/// see footnote 1 of the paper): fault tolerance, failure probability
/// (availability), load lower bounds, and an optimal-strategy LP.

#include <random>
#include <vector>

#include "lp/simplex.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::quorum {

/// Fault tolerance: the size of the smallest element set whose removal
/// kills every quorum (min hitting set of the quorum family). A system
/// survives any crash of fewer than this many elements. Exact via
/// branch-and-bound; exponential in the worst case, fine for |U| <= ~25.
int fault_tolerance(const QuorumSystem& system);

/// Failure probability F_p: the probability that NO quorum is fully alive
/// when each element fails independently with probability p.
/// Exact enumeration over element subsets; requires universe_size <= 25.
double failure_probability_exact(const QuorumSystem& system,
                                 double element_failure_probability);

/// Monte Carlo estimate of the failure probability (any universe size).
double failure_probability_monte_carlo(const QuorumSystem& system,
                                       double element_failure_probability,
                                       int samples, std::mt19937_64& rng);

/// The Naor-Wool lower bounds on the system load L(Q):
///   L(Q) >= 1 / c(Q)   (c = smallest quorum cardinality) and
///   L(Q) >= c(Q) / n.
/// Returns max of the two.
double load_lower_bound(const QuorumSystem& system);

/// Optimal access strategy: the distribution p minimizing the system load
/// max_u load_p(u), computed by LP. Returns the strategy and its load.
struct OptimalStrategy {
  AccessStrategy strategy;
  double load = 0.0;
};

/// \throws std::invalid_argument on an empty system;
/// LP size is O(m * n), fine for the shipped constructions.
OptimalStrategy optimal_load_strategy(const QuorumSystem& system);

}  // namespace qp::quorum
