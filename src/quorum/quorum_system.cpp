#include "quorum/quorum_system.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace qp::quorum {

QuorumSystem::QuorumSystem(int universe_size, std::vector<Quorum> quorums)
    : universe_size_(universe_size), quorums_(std::move(quorums)) {
  if (universe_size < 0) {
    throw std::invalid_argument("QuorumSystem: universe_size >= 0 required");
  }
  for (Quorum& q : quorums_) {
    if (q.empty()) {
      throw std::invalid_argument("QuorumSystem: quorums must be non-empty");
    }
    std::sort(q.begin(), q.end());
    if (std::adjacent_find(q.begin(), q.end()) != q.end()) {
      throw std::invalid_argument("QuorumSystem: duplicate element in quorum");
    }
    if (q.front() < 0 || q.back() >= universe_size_) {
      throw std::invalid_argument("QuorumSystem: element id out of range");
    }
  }
}

int QuorumSystem::max_quorum_size() const {
  int best = 0;
  for (const Quorum& q : quorums_) best = std::max<int>(best, static_cast<int>(q.size()));
  return best;
}

namespace {

bool sorted_intersect(const Quorum& a, const Quorum& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

bool QuorumSystem::is_intersecting() const {
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    for (std::size_t j = i + 1; j < quorums_.size(); ++j) {
      if (!sorted_intersect(quorums_[i], quorums_[j])) return false;
    }
  }
  return true;
}

bool QuorumSystem::is_minimal() const {
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    for (std::size_t j = 0; j < quorums_.size(); ++j) {
      if (i == j) continue;
      // Is quorums_[i] a subset of quorums_[j] with i != j (and not equal)?
      if (quorums_[i].size() < quorums_[j].size() &&
          std::includes(quorums_[j].begin(), quorums_[j].end(),
                        quorums_[i].begin(), quorums_[i].end())) {
        return false;
      }
    }
  }
  return true;
}

bool QuorumSystem::covers_universe() const {
  std::vector<char> seen(static_cast<std::size_t>(universe_size_), 0);
  for (const Quorum& q : quorums_) {
    for (int u : q) seen[static_cast<std::size_t>(u)] = 1;
  }
  return std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; });
}

std::string QuorumSystem::describe() const {
  return "QuorumSystem(|U|=" + std::to_string(universe_size_) +
         ", m=" + std::to_string(num_quorums()) +
         ", max|Q|=" + std::to_string(max_quorum_size()) + ")";
}

AccessStrategy::AccessStrategy(const QuorumSystem& system,
                               std::vector<double> probabilities)
    : probabilities_(std::move(probabilities)) {
  if (static_cast<int>(probabilities_.size()) != system.num_quorums()) {
    throw std::invalid_argument(
        "AccessStrategy: one probability per quorum required");
  }
  double total = 0.0;
  for (double p : probabilities_) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      throw std::invalid_argument("AccessStrategy: probabilities must be >= 0");
    }
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    throw std::invalid_argument("AccessStrategy: probabilities must sum to 1");
  }
  // Renormalize exactly so downstream load computations are consistent.
  for (double& p : probabilities_) p /= total;
}

AccessStrategy AccessStrategy::uniform(const QuorumSystem& system) {
  const int m = system.num_quorums();
  if (m == 0) {
    throw std::invalid_argument("AccessStrategy::uniform: empty quorum system");
  }
  return AccessStrategy(system,
                        std::vector<double>(static_cast<std::size_t>(m), 1.0 / m));
}

std::vector<double> element_loads(const QuorumSystem& system,
                                  const AccessStrategy& strategy) {
  if (strategy.num_quorums() != system.num_quorums()) {
    throw std::invalid_argument("element_loads: strategy/system mismatch");
  }
  std::vector<double> loads(static_cast<std::size_t>(system.universe_size()), 0.0);
  for (int qi = 0; qi < system.num_quorums(); ++qi) {
    const double p = strategy.probability(qi);
    for (int u : system.quorum(qi)) loads[static_cast<std::size_t>(u)] += p;
  }
  return loads;
}

double system_load(const QuorumSystem& system, const AccessStrategy& strategy) {
  const std::vector<double> loads = element_loads(system, strategy);
  return loads.empty() ? 0.0 : *std::max_element(loads.begin(), loads.end());
}

}  // namespace qp::quorum
