#pragma once

/// \file intersection.hpp
/// Liveness and safety audit of a quorum system under element failures.
///
/// The paper's model never fails a probe, so every quorum is always
/// usable. The fault-aware simulator (src/sim/, docs/SIMULATION.md) breaks
/// that assumption: elements become unreachable when the node hosting them
/// crashes or is partitioned away from the client. A quorum is *live* when
/// all of its elements are reachable; a client that times out re-selects
/// among the live quorums, and the two classic quorum-system guarantees
/// become run-time questions:
///
///  - safety: every pair of live quorums still intersects (a live
///    sub-family of an intersecting family is trivially intersecting, but
///    read/write systems whose read quorums do not pairwise intersect can
///    lose the read/write intersection guarantee under failures);
///  - availability: at least one quorum is live; when none is, the access
///    is unavailable (Naor-Wool's failure probability F_p, here evaluated
///    against one concrete failure set instead of i.i.d. element failures).
///
/// check_liveness() answers both for a concrete failure set, and is the
/// oracle the simulator consults on every quorum re-selection.

#include <utility>
#include <vector>

#include "quorum/quorum_system.hpp"

namespace qp::quorum {

/// Verdict of a liveness/safety audit for one failure set.
struct LivenessReport {
  /// Indices (ascending) of quorums whose elements are all alive.
  std::vector<int> live_quorums;
  /// Safety: every pair of live quorums intersects. Vacuously true with
  /// fewer than two live quorums.
  bool pairwise_intersecting = true;
  /// Witness of the first safety violation in (i, j) index order, as a
  /// pair of quorum indices; (-1, -1) when safe.
  std::pair<int, int> violation{-1, -1};

  /// At least one quorum is live (the access can proceed).
  bool available() const { return !live_quorums.empty(); }
  bool safe() const { return pairwise_intersecting; }
};

/// Audits `system` under `failed_elements` (one flag per universe element;
/// true = failed). Certifies that every pair of live quorums intersects and
/// reports unavailability when none is live.
/// \throws std::invalid_argument when failed_elements does not have exactly
/// universe_size entries.
LivenessReport check_liveness(const QuorumSystem& system,
                              const std::vector<bool>& failed_elements);

}  // namespace qp::quorum
