#include "quorum/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/contracts.hpp"
#include "lp/model.hpp"

namespace qp::quorum {

namespace {

/// Branch-and-bound minimum hitting set over the quorum family.
class HittingSetSolver {
 public:
  explicit HittingSetSolver(const QuorumSystem& system) : system_(system) {}

  int solve() {
    best_ = system_.universe_size();  // hitting every element always works
    std::vector<char> chosen(static_cast<std::size_t>(system_.universe_size()),
                             0);
    recurse(chosen, 0);
    QP_INVARIANT(best_ >= 0 && best_ <= system_.universe_size(),
                 "minimum hitting set size must lie in [0, |U|]");
    return best_;
  }

 private:
  /// Finds a quorum not hit by `chosen`; -1 if all are hit.
  int first_unhit(const std::vector<char>& chosen) const {
    for (int q = 0; q < system_.num_quorums(); ++q) {
      bool hit = false;
      for (int u : system_.quorum(q)) {
        if (chosen[static_cast<std::size_t>(u)]) {
          hit = true;
          break;
        }
      }
      if (!hit) return q;
    }
    return -1;
  }

  void recurse(std::vector<char>& chosen, int size) {
    if (size >= best_) return;  // cannot improve
    const int unhit = first_unhit(chosen);
    if (unhit < 0) {
      best_ = size;
      return;
    }
    // Branch on which element of the unhit quorum joins the hitting set.
    for (int u : system_.quorum(unhit)) {
      chosen[static_cast<std::size_t>(u)] = 1;
      recurse(chosen, size + 1);
      chosen[static_cast<std::size_t>(u)] = 0;
    }
  }

  const QuorumSystem& system_;
  int best_ = 0;
};

std::vector<std::uint32_t> quorum_masks(const QuorumSystem& system) {
  std::vector<std::uint32_t> masks;
  masks.reserve(static_cast<std::size_t>(system.num_quorums()));
  for (const Quorum& q : system.quorums()) {
    std::uint32_t mask = 0;
    for (int u : q) mask |= 1u << u;
    masks.push_back(mask);
  }
  return masks;
}

void check_probability(double p) {
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument("failure probability must lie in [0, 1]");
  }
}

}  // namespace

int fault_tolerance(const QuorumSystem& system) {
  if (system.num_quorums() == 0) return 0;  // nothing to kill
  return HittingSetSolver(system).solve();
}

double failure_probability_exact(const QuorumSystem& system,
                                 double element_failure_probability) {
  check_probability(element_failure_probability);
  const int n = system.universe_size();
  if (n > 20) {
    throw std::invalid_argument(
        "failure_probability_exact: universe_size <= 20 required");
  }
  if (system.num_quorums() == 0) return 1.0;
  const std::vector<std::uint32_t> masks = quorum_masks(system);
  const double p = element_failure_probability;
  double failure = 0.0;
  const std::uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1u);
  for (std::uint32_t alive = 0;; ++alive) {
    bool has_quorum = false;
    for (std::uint32_t mask : masks) {
      if ((mask & alive) == mask) {
        has_quorum = true;
        break;
      }
    }
    if (!has_quorum) {
      const int alive_count = __builtin_popcount(alive);
      failure += std::pow(1.0 - p, alive_count) * std::pow(p, n - alive_count);
    }
    if (alive == full) break;
  }
  return failure;
}

double failure_probability_monte_carlo(const QuorumSystem& system,
                                       double element_failure_probability,
                                       int samples, std::mt19937_64& rng) {
  check_probability(element_failure_probability);
  if (samples < 1) {
    throw std::invalid_argument("failure_probability_monte_carlo: samples >= 1");
  }
  if (system.num_quorums() == 0) return 1.0;
  std::bernoulli_distribution fails(element_failure_probability);
  const int n = system.universe_size();
  std::vector<char> alive(static_cast<std::size_t>(n));
  int failures = 0;
  for (int s = 0; s < samples; ++s) {
    for (int u = 0; u < n; ++u) {
      alive[static_cast<std::size_t>(u)] = fails(rng) ? 0 : 1;
    }
    bool has_quorum = false;
    for (const Quorum& q : system.quorums()) {
      bool all_alive = true;
      for (int u : q) {
        if (!alive[static_cast<std::size_t>(u)]) {
          all_alive = false;
          break;
        }
      }
      if (all_alive) {
        has_quorum = true;
        break;
      }
    }
    failures += has_quorum ? 0 : 1;
  }
  return static_cast<double>(failures) / samples;
}

double load_lower_bound(const QuorumSystem& system) {
  if (system.num_quorums() == 0 || system.universe_size() == 0) return 0.0;
  int smallest = static_cast<int>(system.quorum(0).size());
  for (const Quorum& q : system.quorums()) {
    smallest = std::min<int>(smallest, static_cast<int>(q.size()));
  }
  return std::max(1.0 / smallest,
                  static_cast<double>(smallest) / system.universe_size());
}

OptimalStrategy optimal_load_strategy(const QuorumSystem& system) {
  const int m = system.num_quorums();
  const int n = system.universe_size();
  if (m == 0) {
    throw std::invalid_argument("optimal_load_strategy: empty quorum system");
  }
  lp::Model model;
  std::vector<int> p_var(static_cast<std::size_t>(m));
  for (int q = 0; q < m; ++q) p_var[static_cast<std::size_t>(q)] = model.add_variable(0.0);
  const int load_var = model.add_variable(1.0);  // minimize L

  std::vector<std::pair<int, double>> sum_terms;
  for (int q = 0; q < m; ++q) sum_terms.emplace_back(p_var[static_cast<std::size_t>(q)], 1.0);
  model.add_constraint(std::move(sum_terms), lp::Relation::kEqual, 1.0);

  std::vector<std::vector<int>> quorums_of(static_cast<std::size_t>(n));
  for (int q = 0; q < m; ++q) {
    for (int u : system.quorum(q)) {
      quorums_of[static_cast<std::size_t>(u)].push_back(q);
    }
  }
  for (int u = 0; u < n; ++u) {
    std::vector<std::pair<int, double>> terms;
    for (int q : quorums_of[static_cast<std::size_t>(u)]) {
      terms.emplace_back(p_var[static_cast<std::size_t>(q)], 1.0);
    }
    terms.emplace_back(load_var, -1.0);
    model.add_constraint(std::move(terms), lp::Relation::kLessEqual, 0.0);
  }

  const lp::Solution solution = lp::solve(model);
  if (solution.status != lp::SolveStatus::kOptimal) {
    throw std::runtime_error("optimal_load_strategy: LP did not solve");
  }
  std::vector<double> probabilities(static_cast<std::size_t>(m));
  double total = 0.0;
  for (int q = 0; q < m; ++q) {
    probabilities[static_cast<std::size_t>(q)] = std::max(
        0.0, solution.values[static_cast<std::size_t>(p_var[static_cast<std::size_t>(q)])]);
    total += probabilities[static_cast<std::size_t>(q)];
  }
  for (double& p : probabilities) p /= total;  // exact renormalization
  QP_INVARIANT(
      solution.objective >= load_lower_bound(system) - 1e-6,
      "LP-optimal load must not beat the Naor-Wool lower bound "
      "max(1/c(S), c(S)/n)");
  OptimalStrategy out{AccessStrategy(system, std::move(probabilities)),
                      solution.objective};
  return out;
}

}  // namespace qp::quorum
