#pragma once

/// \file thread_pool.hpp
/// Deterministic execution engine for the solver hot paths.
///
/// ThreadPool is a fixed-size, work-stealing-free pool that executes one
/// blocking "chunk job" at a time. Determinism is a property of the *callers*
/// (exec/parallel.hpp): chunk boundaries are a pure function of the problem
/// size, never of the thread count, each chunk writes into its own slot, and
/// reductions fold partial results in chunk-index order. Which worker runs
/// which chunk therefore never affects any result bit. See docs/PARALLEL.md
/// for the full contract.
///
/// The pool size defaults to std::thread::hardware_concurrency(), can be
/// overridden by the QPLACE_THREADS environment variable, and is set
/// explicitly by `qplace --threads N` via exec::set_num_threads(). When the
/// QPLACE_PARALLEL CMake option is OFF (or the pool has one thread), every
/// job runs inline on the calling thread over the identical chunk structure,
/// so results are bit-identical either way.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace qp::exec {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates in
  /// every job, so a pool of size 1 spawns no threads at all).
  /// \throws std::invalid_argument when num_threads < 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(c) for every chunk index c in [0, num_chunks), distributing
  /// chunks over the workers and the calling thread, and blocks until all
  /// chunks have finished. Chunks are claimed dynamically, so callers must
  /// not depend on execution order; determinism comes from per-chunk output
  /// slots plus ordered reduction (exec/parallel.hpp). If tasks throw, the
  /// exception from the lowest-indexed failing chunk is rethrown here after
  /// all chunks have been drained.
  ///
  /// \throws std::logic_error when called from inside a pool task (nested
  /// submission would deadlock a fixed pool). The exec::parallel_* wrappers
  /// detect this case and degrade to inline execution instead.
  void run_chunks(std::size_t num_chunks,
                  const std::function<void(std::size_t)>& fn);

  /// True when the current thread is executing a ThreadPool task (including
  /// a caller thread participating in its own job).
  static bool in_task();

  /// JSON snapshot of per-worker utilization since pool creation:
  ///   {"threads": N, "jobs": J,
  ///    "workers": [{"chunks": c, "busy_ms": b, "idle_ms": i}, ...],
  ///    "caller": {"chunks": c, "busy_ms": b}, "steals": 0}
  /// ("steals" is always 0: chunks are claimed from one shared index, no
  /// work stealing exists by design -- docs/PARALLEL.md.)
  /// Which worker ran which chunk is scheduling-dependent, so this snapshot
  /// belongs in the *nondeterministic* section of any report
  /// (docs/OBSERVABILITY.md). Population is compiled out with QPLACE_OBS=0
  /// (every field reads 0). Safe to call concurrently with running jobs.
  std::string stats_json() const;

 private:
  struct Job {
    std::size_t num_chunks = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};  // next unclaimed chunk
    // Guarded by the pool mutex:
    std::size_t completed = 0;
    int active_workers = 0;
    std::size_t first_error_chunk = 0;
    std::exception_ptr error;
  };

  /// Per-thread execution tally (slot w for spawned worker w, slot
  /// num_threads - 1 for whichever thread called run_chunks).
  struct WorkerStats {
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::int64_t> busy_nanos{0};
    std::atomic<std::int64_t> idle_nanos{0};
  };

  void worker_loop(WorkerStats& stats);
  /// Claims and executes chunks of \p job until none remain.
  void work_on(Job& job, WorkerStats& stats);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerStats[]> worker_stats_;  // size num_threads_
  std::atomic<std::uint64_t> jobs_run_{0};

  std::mutex mutex_;
  std::condition_variable job_available_;
  std::condition_variable job_done_;
  Job* job_ = nullptr;           // guarded by mutex_
  std::uint64_t generation_ = 0;  // guarded by mutex_; bumped per job
  bool stop_ = false;            // guarded by mutex_

  std::mutex run_mutex_;  // serializes concurrent run_chunks() callers
};

/// Number of hardware threads (>= 1 even when the runtime reports 0).
int hardware_threads();

/// Pool size used by the exec::parallel_* helpers: the last value passed to
/// set_num_threads(), else the QPLACE_THREADS environment variable, else
/// hardware_threads().
int num_threads();

/// Overrides the global pool size; n < 1 resets to the default. Destroys and
/// lazily recreates the shared pool, so call it between parallel regions
/// (e.g. at CLI startup), never from inside one.
void set_num_threads(int n);

/// Shared pool used by the exec::parallel_* helpers; created on first use.
ThreadPool& global_pool();

/// stats_json() of the shared pool (creating it if needed). CLI/bench glue
/// for the "pool" nondeterministic section of a run report.
std::string pool_stats_json();

}  // namespace qp::exec
