#pragma once

/// \file parallel.hpp
/// Deterministic data-parallel primitives over the shared ThreadPool.
///
/// The determinism contract (docs/PARALLEL.md):
///  1. Chunk boundaries are a pure function of (n, grain) — never of the
///     thread count (plan_chunks).
///  2. Every chunk writes only to its own output slot; partial results are
///     folded in chunk-index order (ordered reduction).
///  3. Tasks use no RNG and no shared mutable state.
/// Under this contract, results are bit-identical for any pool size,
/// including the inline single-threaded path, so `--threads 1` and
/// `--threads 8` produce the same placements, delays, and certificates.
///
/// Calls made from inside a pool task (nested parallelism, e.g. an
/// evaluator invoked by a parallel relay sweep) execute inline over the
/// identical chunk structure instead of re-entering the pool.

#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"

namespace qp::exec {

/// Fixed partition of [0, n) into contiguous chunks: a pure function of
/// (n, grain) so the same call site always sees the same chunk structure.
struct ChunkPlan {
  std::size_t n = 0;
  std::size_t chunk_size = 0;
  std::size_t num_chunks = 0;

  std::size_t begin(std::size_t chunk) const { return chunk * chunk_size; }
  std::size_t end(std::size_t chunk) const {
    const std::size_t e = (chunk + 1) * chunk_size;
    return e < n ? e : n;
  }
};

/// Upper bound on chunks per call; bounds scheduling overhead while leaving
/// enough slack for any realistic pool size.
inline constexpr std::size_t kMaxChunksPerCall = 1024;

/// Grain (minimum chunk size) for cheap floating-point accumulation loops:
/// instances with n <= kReductionGrain keep a single chunk, i.e. exactly the
/// seed's sequential summation order.
inline constexpr std::size_t kReductionGrain = 64;

ChunkPlan plan_chunks(std::size_t n, std::size_t grain);

/// Runs body(chunk_index, begin, end) for every chunk of plan_chunks(n,
/// grain). Chunks run on the shared pool; inline (in ascending chunk order)
/// when the plan has a single chunk, the pool has one thread, or the caller
/// is already inside a pool task. Exceptions from the lowest-indexed failing
/// chunk propagate to the caller.
void for_each_chunk(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Deterministic parallel loop: body(i) for i in [0, n). Iterations must be
/// independent (each writing its own output slot).
template <typename Body>
void parallel_for(std::size_t n, Body&& body, std::size_t grain = 1) {
  for_each_chunk(n, grain,
                 [&body](std::size_t /*chunk*/, std::size_t begin,
                         std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) body(i);
                 });
}

/// Deterministic parallel fold: the sequential equivalent is
///   acc = init; for i in [0, n): acc = reduce(acc, map(i));
/// Each chunk folds its items in order starting from `init`; the per-chunk
/// partials are then folded in chunk-index order, so the result depends on
/// the chunk structure (fixed by n and grain) but never on the thread count.
/// `init` must be an identity of `reduce` (e.g. 0.0 for addition).
template <typename T, typename Map, typename Reduce>
T parallel_map_reduce(std::size_t n, T init, Map&& map, Reduce&& reduce,
                      std::size_t grain = 1) {
  if (n == 0) return init;
  const ChunkPlan plan = plan_chunks(n, grain);
  std::vector<T> partial(plan.num_chunks, init);
  for_each_chunk(n, grain,
                 [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                   T local = init;
                   for (std::size_t i = begin; i < end; ++i) {
                     local = reduce(std::move(local), map(i));
                   }
                   partial[chunk] = std::move(local);
                 });
  T acc = std::move(partial[0]);
  for (std::size_t chunk = 1; chunk < plan.num_chunks; ++chunk) {
    acc = reduce(std::move(acc), std::move(partial[chunk]));
  }
  return acc;
}

/// Deterministic parallel first-match: the sequential equivalent is scanning
/// [0, n) in order and returning the first hit. `scan(begin, end)` must scan
/// its chunk in ascending order and return the first hit inside it (or
/// nullopt). The overall winner is the hit from the lowest-indexed chunk;
/// chunks beyond an already-found hit are skipped (they cannot win), so the
/// early-exit behaviour of a sequential scan is preserved without affecting
/// the result. Used for first-improvement local search (core/local_search).
template <typename T, typename Scan>
std::optional<T> parallel_find_first(std::size_t n, std::size_t grain,
                                     Scan&& scan) {
  if (n == 0) return std::nullopt;
  const ChunkPlan plan = plan_chunks(n, grain);
  std::vector<std::optional<T>> found(plan.num_chunks);
  std::atomic<std::size_t> first_hit_chunk{
      std::numeric_limits<std::size_t>::max()};
  for_each_chunk(n, grain,
                 [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                   if (chunk > first_hit_chunk.load(std::memory_order_relaxed))
                     return;  // a lower-indexed chunk already won
                   found[chunk] = scan(begin, end);
                   if (!found[chunk]) return;
                   std::size_t current =
                       first_hit_chunk.load(std::memory_order_relaxed);
                   while (chunk < current &&
                          !first_hit_chunk.compare_exchange_weak(
                              current, chunk, std::memory_order_relaxed)) {
                   }
                 });
  for (std::size_t chunk = 0; chunk < plan.num_chunks; ++chunk) {
    if (found[chunk]) return found[chunk];
  }
  return std::nullopt;
}

}  // namespace qp::exec
