#include "exec/thread_pool.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

#ifndef QPLACE_PARALLEL
#define QPLACE_PARALLEL 1
#endif

namespace qp::exec {

namespace {

thread_local bool tl_in_pool_task = false;

#if QPLACE_OBS
// Per-worker busy/idle timing feeds the nondeterministic run-report subtree
// only; solver results never read the clock.
// qplace-lint: allow(wall-clock) -- worker stats are observability-only wall time
using StatsClock = std::chrono::steady_clock;
std::int64_t nanos_since(StatsClock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             StatsClock::now() - start)
      .count();
}
#endif

/// RAII: marks the current thread as running a pool task.
class TaskScope {
 public:
  TaskScope() : previous_(tl_in_pool_task) { tl_in_pool_task = true; }
  ~TaskScope() { tl_in_pool_task = previous_; }
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  bool previous_;
};

}  // namespace

bool ThreadPool::in_task() { return tl_in_pool_task; }

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  if (num_threads < 1) {
    throw std::invalid_argument("ThreadPool: num_threads must be >= 1");
  }
  worker_stats_ =
      std::make_unique<WorkerStats[]>(static_cast<std::size_t>(num_threads));
#if QPLACE_PARALLEL
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this, i] {
      worker_loop(worker_stats_[static_cast<std::size_t>(i)]);
    });
  }
#else
  // Parallel execution compiled out: the pool reports its configured size
  // but every job runs inline on the calling thread.
#endif
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  job_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::work_on(Job& job, WorkerStats& stats) {
  TaskScope scope;
#if QPLACE_OBS
  const auto busy_start = StatsClock::now();
  std::uint64_t chunks_run = 0;
#endif
  for (;;) {
    const std::size_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) break;
#if QPLACE_OBS
    ++chunks_run;
#endif
    std::exception_ptr error;
    try {
      (*job.fn)(chunk);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && (!job.error || chunk < job.first_error_chunk)) {
      job.first_error_chunk = chunk;
      job.error = error;
    }
    if (++job.completed == job.num_chunks) job_done_.notify_all();
  }
#if QPLACE_OBS
  stats.chunks.fetch_add(chunks_run, std::memory_order_relaxed);
  stats.busy_nanos.fetch_add(nanos_since(busy_start),
                             std::memory_order_relaxed);
#else
  static_cast<void>(stats);
#endif
}

void ThreadPool::worker_loop(WorkerStats& stats) {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
#if QPLACE_OBS
    const auto idle_start = StatsClock::now();
#endif
    job_available_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && generation_ != seen_generation);
    });
#if QPLACE_OBS
    stats.idle_nanos.fetch_add(nanos_since(idle_start),
                               std::memory_order_relaxed);
#endif
    if (stop_) return;
    seen_generation = generation_;
    Job* job = job_;
    ++job->active_workers;
    lock.unlock();
    work_on(*job, stats);
    lock.lock();
    if (--job->active_workers == 0 && job->completed == job->num_chunks) {
      job_done_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(std::size_t num_chunks,
                            const std::function<void(std::size_t)>& fn) {
  if (in_task()) {
    throw std::logic_error(
        "ThreadPool::run_chunks: nested submission from inside a pool task "
        "(use exec::parallel_* which fall back to inline execution)");
  }
  if (num_chunks == 0) return;
  jobs_run_.fetch_add(1, std::memory_order_relaxed);
  // The calling thread's share of the work lands in the dedicated last slot.
  WorkerStats& caller_stats =
      worker_stats_[static_cast<std::size_t>(num_threads_ - 1)];

  if (workers_.empty()) {
    // Single-threaded (or QPLACE_PARALLEL=OFF) pool: identical chunk
    // structure, executed inline in chunk order.
    Job job;
    job.num_chunks = num_chunks;
    job.fn = &fn;
    work_on(job, caller_stats);
    if (job.error) std::rethrow_exception(job.error);
    return;
  }

  // One job at a time; concurrent callers from distinct threads serialize
  // here (each still participates in its own job, so no deadlock).
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  Job job;
  job.num_chunks = num_chunks;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  job_available_.notify_all();
  work_on(job, caller_stats);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait for stragglers: `completed` covers all chunks, `active_workers`
    // guards against a worker still holding a pointer into our stack frame.
    job_done_.wait(lock, [&] {
      return job.completed == job.num_chunks && job.active_workers == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

std::string ThreadPool::stats_json() const {
  const auto ms = [](std::int64_t nanos) {
    return static_cast<double>(nanos) / 1e6;
  };
  char buf[160];
  std::string out = "{\"threads\": ";
  std::snprintf(buf, sizeof(buf), "%d", num_threads_);
  out += buf;
  out += ", \"jobs\": ";
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(
                    jobs_run_.load(std::memory_order_relaxed)));
  out += buf;
  out += ", \"workers\": [";
  for (int w = 0; w < num_threads_ - 1; ++w) {
    const WorkerStats& stats = worker_stats_[static_cast<std::size_t>(w)];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"chunks\": %llu, \"busy_ms\": %.3f, \"idle_ms\": %.3f}",
        w > 0 ? ", " : "",
        static_cast<unsigned long long>(
            stats.chunks.load(std::memory_order_relaxed)),
        ms(stats.busy_nanos.load(std::memory_order_relaxed)),
        ms(stats.idle_nanos.load(std::memory_order_relaxed)));
    out += buf;
  }
  const WorkerStats& caller =
      worker_stats_[static_cast<std::size_t>(num_threads_ - 1)];
  std::snprintf(buf, sizeof(buf),
                "], \"caller\": {\"chunks\": %llu, \"busy_ms\": %.3f}, "
                "\"steals\": 0}",
                static_cast<unsigned long long>(
                    caller.chunks.load(std::memory_order_relaxed)),
                ms(caller.busy_nanos.load(std::memory_order_relaxed)));
  out += buf;
  return out;
}

int hardware_threads() {
#if QPLACE_PARALLEL
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<int>(reported);
#else
  return 1;
#endif
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_requested_threads = 0;  // 0 = unset, fall back to env / hardware

int default_threads() {
#if QPLACE_PARALLEL
  if (const char* env = std::getenv("QPLACE_THREADS")) {
    try {
      const int parsed = std::stoi(env);
      if (parsed >= 1) return parsed;
    } catch (const std::exception&) {
      // Malformed QPLACE_THREADS: ignore, use hardware concurrency.
    }
  }
#endif
  return hardware_threads();
}

}  // namespace

int num_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return g_requested_threads >= 1 ? g_requested_threads : default_threads();
}

void set_num_threads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  const int effective = n >= 1 ? n : 0;
  if (effective == g_requested_threads && g_pool) return;
  g_requested_threads = effective;
  g_pool.reset();
}

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    const int n =
        g_requested_threads >= 1 ? g_requested_threads : default_threads();
    g_pool = std::make_unique<ThreadPool>(n);
  }
  return *g_pool;
}

std::string pool_stats_json() { return global_pool().stats_json(); }

}  // namespace qp::exec
