#include "exec/parallel.hpp"

#include "obs/obs.hpp"
#include "obs/profile.hpp"

namespace qp::exec {

ChunkPlan plan_chunks(std::size_t n, std::size_t grain) {
  ChunkPlan plan;
  plan.n = n;
  if (n == 0) return plan;
  if (grain == 0) grain = 1;
  std::size_t size = (n + kMaxChunksPerCall - 1) / kMaxChunksPerCall;
  if (size < grain) size = grain;
  plan.chunk_size = size;
  plan.num_chunks = (n + size - 1) / size;
  return plan;
}

void for_each_chunk(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const ChunkPlan plan = plan_chunks(n, grain);
  // Count only top-level calls: nested calls run from inside a task, and a
  // parallel_find_first scan skips chunks past an already-found hit based
  // on timing, so the number of nested calls it makes is thread-count
  // dependent. The top-level call sequence is the sequential program order
  // and (n, grain) fixes the chunk count, so these stay deterministic.
  const bool nested = ThreadPool::in_task();
  if (!nested) {
    QP_COUNTER_ADD("exec.parallel_calls", 1);
    QP_COUNTER_ADD("exec.chunks", plan.num_chunks);
  }
  // When a profile is being collected, capture the submitting thread's span
  // path and re-install it around every chunk as an ambient frame. Worker
  // threads (no spans open) then attribute chunk work to the same absolute
  // path the inline path would, so the folded tree is thread-count
  // invariant. Ambient frames bump no call counts and no wall time.
  obs::ProfileCollector& profiler = obs::ProfileCollector::instance();
  std::vector<const char*> profile_path;
  const bool profiling = profiler.enabled();
  if (profiling) profile_path = profiler.current_path();
  const auto run_chunk = [&](std::size_t chunk) {
    obs::ProfileAmbientScope ambient(profiling ? &profile_path : nullptr);
    body(chunk, plan.begin(chunk), plan.end(chunk));
  };
  if (plan.num_chunks == 1 || nested) {
    // Inline path: same chunk structure, ascending order. Used for trivial
    // plans and for nested parallelism (a task may not re-enter the pool).
    if (!nested) QP_COUNTER_ADD("exec.inline_calls", 1);
    for (std::size_t chunk = 0; chunk < plan.num_chunks; ++chunk) {
      run_chunk(chunk);
    }
    return;
  }
  global_pool().run_chunks(plan.num_chunks, run_chunk);
}

}  // namespace qp::exec
