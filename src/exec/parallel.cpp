#include "exec/parallel.hpp"

namespace qp::exec {

ChunkPlan plan_chunks(std::size_t n, std::size_t grain) {
  ChunkPlan plan;
  plan.n = n;
  if (n == 0) return plan;
  if (grain == 0) grain = 1;
  std::size_t size = (n + kMaxChunksPerCall - 1) / kMaxChunksPerCall;
  if (size < grain) size = grain;
  plan.chunk_size = size;
  plan.num_chunks = (n + size - 1) / size;
  return plan;
}

void for_each_chunk(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const ChunkPlan plan = plan_chunks(n, grain);
  const auto run_chunk = [&](std::size_t chunk) {
    body(chunk, plan.begin(chunk), plan.end(chunk));
  };
  if (plan.num_chunks == 1 || ThreadPool::in_task()) {
    // Inline path: same chunk structure, ascending order. Used for trivial
    // plans and for nested parallelism (a task may not re-enter the pool).
    for (std::size_t chunk = 0; chunk < plan.num_chunks; ++chunk) {
      run_chunk(chunk);
    }
    return;
  }
  global_pool().run_chunks(plan.num_chunks, run_chunk);
}

}  // namespace qp::exec
