#include "graph/graph.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace qp::graph {

Graph::Graph(int num_nodes) {
  if (num_nodes < 0) {
    throw std::invalid_argument("Graph: num_nodes must be non-negative");
  }
  adjacency_.resize(static_cast<std::size_t>(num_nodes));
}

void Graph::check_node(int v, const char* what) const {
  if (v < 0 || v >= num_nodes()) {
    throw std::invalid_argument(std::string("Graph: invalid node id for ") +
                                what);
  }
}

void Graph::add_edge(int a, int b, double length) {
  check_node(a, "add_edge");
  check_node(b, "add_edge");
  if (a == b) {
    throw std::invalid_argument("Graph: self-loops are not allowed");
  }
  if (!(length > 0.0) || !std::isfinite(length)) {
    throw std::invalid_argument("Graph: edge length must be positive finite");
  }
  adjacency_[static_cast<std::size_t>(a)].push_back({b, length});
  adjacency_[static_cast<std::size_t>(b)].push_back({a, length});
  ++num_edges_;
}

std::span<const HalfEdge> Graph::neighbors(int v) const {
  check_node(v, "neighbors");
  return adjacency_[static_cast<std::size_t>(v)];
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(num_edges_));
  for (int a = 0; a < num_nodes(); ++a) {
    for (const HalfEdge& he : adjacency_[static_cast<std::size_t>(a)]) {
      if (a < he.to) out.push_back({a, he.to, he.length});
    }
  }
  return out;
}

bool Graph::is_connected() const {
  const int n = num_nodes();
  if (n <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<int> stack = {0};
  seen[0] = 1;
  int count = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (const HalfEdge& he : adjacency_[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(he.to)]) {
        seen[static_cast<std::size_t>(he.to)] = 1;
        ++count;
        stack.push_back(he.to);
      }
    }
  }
  return count == n;
}

double Graph::total_edge_length() const {
  double total = 0.0;
  for (int a = 0; a < num_nodes(); ++a) {
    for (const HalfEdge& he : adjacency_[static_cast<std::size_t>(a)]) {
      if (a < he.to) total += he.length;
    }
  }
  return total;
}

std::string Graph::describe() const {
  return "Graph(n=" + std::to_string(num_nodes()) +
         ", m=" + std::to_string(num_edges()) + ")";
}

}  // namespace qp::graph
