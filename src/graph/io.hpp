#pragma once

/// \file io.hpp
/// Plain-text edge-list serialization for graphs, so deployments can feed
/// real topologies into the CLI instead of the synthetic generators.
///
/// Format (whitespace-separated, '#' starts a comment line):
///     n <num_nodes>
///     e <a> <b> <length>
///     e ...
/// The "n" line must come before any "e" line.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace qp::graph {

/// Parses the edge-list format. \throws std::invalid_argument on malformed
/// input (unknown directives, missing header, bad edges).
Graph parse_edge_list(std::istream& in);

/// Convenience overload over a string buffer.
Graph parse_edge_list(const std::string& text);

/// Serializes a graph into the same format (round-trips through parse).
std::string to_edge_list(const Graph& g);

/// Reads a graph from a file. \throws std::invalid_argument if the file
/// cannot be opened or is malformed.
Graph load_edge_list_file(const std::string& path);

}  // namespace qp::graph
