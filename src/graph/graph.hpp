#pragma once

/// \file graph.hpp
/// Undirected edge-weighted graph: the "physical network" G = (V, E) of the
/// paper. Edge lengths induce the shortest-path metric d(.,.) used by all
/// placement algorithms (see metric.hpp / shortest_paths.hpp).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace qp::graph {

/// One directed half of an undirected edge as stored in an adjacency list.
struct HalfEdge {
  int to = 0;          ///< endpoint node id
  double length = 0.0; ///< positive edge length

  friend bool operator==(const HalfEdge&, const HalfEdge&) = default;
};

/// An undirected edge as supplied by callers / enumerated back out.
struct Edge {
  int a = 0;
  int b = 0;
  double length = 0.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Undirected weighted graph over nodes {0, ..., num_nodes()-1}.
///
/// Invariants: every edge has a strictly positive, finite length and joins
/// two distinct valid nodes. Parallel edges are permitted (shortest-path
/// computations simply ignore the longer one); self-loops are not.
class Graph {
 public:
  /// Creates a graph with \p num_nodes isolated nodes.
  /// \throws std::invalid_argument if num_nodes < 0.
  explicit Graph(int num_nodes = 0);

  /// Adds the undirected edge {a, b} with the given positive length.
  /// \throws std::invalid_argument on invalid endpoints, a == b, or a
  ///         non-positive / non-finite length.
  void add_edge(int a, int b, double length);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return num_edges_; }

  /// Neighbors of \p v (each undirected edge appears once per endpoint).
  std::span<const HalfEdge> neighbors(int v) const;

  /// All undirected edges, each reported once with a < b ordering of ids.
  std::vector<Edge> edges() const;

  /// True if every pair of nodes is joined by some path.
  bool is_connected() const;

  /// Total length of all edges.
  double total_edge_length() const;

  /// Human-readable one-line summary ("Graph(n=5, m=7)").
  std::string describe() const;

 private:
  void check_node(int v, const char* what) const;

  std::vector<std::vector<HalfEdge>> adjacency_;
  int num_edges_ = 0;
};

}  // namespace qp::graph
