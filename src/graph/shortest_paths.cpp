#include "graph/shortest_paths.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <utility>

#include "exec/parallel.hpp"
#include "obs/obs.hpp"

namespace qp::graph {

std::vector<int> ShortestPathTree::path_to(int target) const {
  if (target < 0 || target >= static_cast<int>(distance.size())) {
    throw std::invalid_argument("path_to: target out of range");
  }
  if (distance[static_cast<std::size_t>(target)] == kUnreachable) return {};
  std::vector<int> path;
  for (int v = target; v != -1; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree dijkstra(const Graph& g, int source) {
  const int n = g.num_nodes();
  if (source < 0 || source >= n) {
    throw std::invalid_argument("dijkstra: source out of range");
  }
  ShortestPathTree tree;
  tree.source = source;
  tree.distance.assign(static_cast<std::size_t>(n), kUnreachable);
  tree.parent.assign(static_cast<std::size_t>(n), -1);

  using Entry = std::pair<double, int>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  tree.distance[static_cast<std::size_t>(source)] = 0.0;
  heap.emplace(0.0, source);

  std::uint64_t heap_pops = 0;  // flushed once below, not per pop
  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    ++heap_pops;
    if (dist > tree.distance[static_cast<std::size_t>(v)]) continue;  // stale
    for (const HalfEdge& he : g.neighbors(v)) {
      const double candidate = dist + he.length;
      double& best = tree.distance[static_cast<std::size_t>(he.to)];
      if (candidate < best) {
        best = candidate;
        tree.parent[static_cast<std::size_t>(he.to)] = v;
        heap.emplace(candidate, he.to);
      }
    }
  }
  // Each source's pop count is a pure function of the graph, and counter adds
  // commute, so the totals are thread-count independent (docs/OBSERVABILITY.md).
  QP_COUNTER_ADD("graph.dijkstra_runs", 1);
  QP_COUNTER_ADD("graph.heap_pops", heap_pops);
  return tree;
}

std::vector<double> all_pairs_distances(const Graph& g) {
  QP_SPAN("graph.all_pairs");
  const int n = g.num_nodes();
  std::vector<double> dist(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  // One Dijkstra per source; each source owns its row of the matrix, so the
  // parallel loop is deterministic regardless of pool size.
  exec::parallel_for(static_cast<std::size_t>(n), [&](std::size_t s) {
    const ShortestPathTree tree = dijkstra(g, static_cast<int>(s));
    std::copy(tree.distance.begin(), tree.distance.end(),
              dist.begin() + static_cast<std::ptrdiff_t>(s) * n);
  });
  return dist;
}

}  // namespace qp::graph
