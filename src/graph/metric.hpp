#pragma once

/// \file metric.hpp
/// A finite metric space over points {0..n-1}. All placement algorithms in
/// qp::core consume a Metric rather than a Graph, so they work equally for
/// shortest-path metrics, explicit distance matrices, and synthetic metrics
/// (e.g. the Appendix A integrality-gap instance uses a general metric).

#include <vector>

#include "check/contracts.hpp"
#include "graph/graph.hpp"

namespace qp::graph {

/// Dense symmetric distance matrix with zero diagonal.
class Metric {
 public:
  Metric() = default;

  /// Takes a row-major n x n matrix. Validates symmetry, zero diagonal,
  /// non-negativity and finiteness.
  /// \throws std::invalid_argument on malformed input.
  Metric(int num_points, std::vector<double> distances);

  /// Shortest-path metric of a connected graph.
  /// \throws std::invalid_argument if the graph is disconnected.
  static Metric from_graph(const Graph& g);

  /// Uniform metric: d(i,j) = 1 for i != j.
  static Metric uniform(int num_points);

  /// Metric of points on a line at the given coordinates.
  static Metric line(const std::vector<double>& coordinates);

  int num_points() const { return num_points_; }

  /// Hot path (every delay evaluation): unchecked indexing, bounds guarded
  /// by the contract in Debug builds.
  double operator()(int i, int j) const {
    QP_REQUIRE(i >= 0 && i < num_points_ && j >= 0 && j < num_points_,
               "point id out of range");
    return distances_[static_cast<std::size_t>(i) *
                          static_cast<std::size_t>(num_points_) +
                      static_cast<std::size_t>(j)];
  }

  /// True if the triangle inequality holds up to \p tolerance. O(n^3).
  bool satisfies_triangle_inequality(double tolerance = 1e-9) const;

  /// Largest pairwise distance.
  double diameter() const;

  /// Point ids sorted by non-decreasing distance from \p origin
  /// (origin itself first). This is the paper's ordering d_0 <= d_1 <= ...
  /// used by the SSQPP LP (Sec 3.3).
  std::vector<int> nodes_by_distance_from(int origin) const;

  /// Sum of distances from \p v to all points; argmin of this is the
  /// 1-median (used by baselines).
  double distance_sum_from(int v) const;

 private:
  int num_points_ = 0;
  std::vector<double> distances_;
};

}  // namespace qp::graph
