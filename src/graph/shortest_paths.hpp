#pragma once

/// \file shortest_paths.hpp
/// Dijkstra single-source and all-pairs shortest paths over qp::graph::Graph.
/// These induce the distance function d : V x V -> R+ of the paper (Sec 1.2).

#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace qp::graph {

/// Distance value representing "unreachable".
inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Result of a single-source shortest path computation.
struct ShortestPathTree {
  int source = 0;
  std::vector<double> distance;  ///< distance[v] = d(source, v); inf if unreachable
  std::vector<int> parent;       ///< parent[v] in the SP tree; -1 for source/unreachable

  /// Reconstructs the node sequence from source to \p target (inclusive).
  /// Returns an empty vector if target is unreachable.
  std::vector<int> path_to(int target) const;
};

/// Dijkstra from \p source. O((n + m) log n).
/// \throws std::invalid_argument if source is out of range.
ShortestPathTree dijkstra(const Graph& g, int source);

/// All-pairs shortest path distances as a dense n x n row-major matrix.
/// Entry [i*n + j] = d(i, j). Runs Dijkstra from every node.
std::vector<double> all_pairs_distances(const Graph& g);

}  // namespace qp::graph
