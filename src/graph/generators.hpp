#pragma once

/// \file generators.hpp
/// Topology generators used by tests, examples and the experiment harness.
/// All randomized generators take an explicit RNG so every experiment is
/// reproducible from a fixed seed.

#include <random>
#include <vector>

#include "graph/graph.hpp"

namespace qp::graph {

/// Path v0 - v1 - ... - v_{n-1} with the given uniform edge length.
/// This is the topology of the NP-hardness reduction (paper Thm 3.6).
Graph path_graph(int n, double edge_length = 1.0);

/// Cycle on n >= 3 nodes with uniform edge length.
Graph cycle_graph(int n, double edge_length = 1.0);

/// Star with center 0 and n-1 leaves.
Graph star_graph(int n, double edge_length = 1.0);

/// Complete graph with uniform edge length.
Graph complete_graph(int n, double edge_length = 1.0);

/// k x k mesh with unit edges; node (r, c) has id r*k + c.
Graph grid_mesh(int k, double edge_length = 1.0);

/// The paper's Figure 1 graph on n = k^2 nodes: node 0 (= v0) is the center
/// of a star with n - k leaves, and a path of k - 1 further nodes hangs off
/// one leaf. All edges have unit length, so the sorted distances from v0 are
/// 1 (n-k times), then 2, 3, ..., k. Used by the integrality-gap experiment
/// (Appendix A, Claim A.1).
Graph broom_graph(int k);

/// Uniform random tree (random parent attachment).
Graph random_tree(int n, std::mt19937_64& rng, double min_length = 1.0,
                  double max_length = 1.0);

/// Erdos-Renyi G(n, p), re-sampled until connected; edge lengths uniform in
/// [min_length, max_length]. \throws std::runtime_error if no connected
/// sample is found within an internal attempt budget.
Graph erdos_renyi(int n, double p, std::mt19937_64& rng,
                  double min_length = 1.0, double max_length = 1.0);

/// A geometric graph plus the coordinates that induced it (kept for
/// visualization and WAN-flavored examples).
struct GeometricGraph {
  Graph graph;
  std::vector<double> x;
  std::vector<double> y;
};

/// Random geometric graph: n points uniform in the unit square, edges
/// between pairs within \p radius, Euclidean edge lengths. Re-sampled until
/// connected. A stand-in for WAN/PoP topologies (see DESIGN.md
/// substitutions).
GeometricGraph random_geometric(int n, double radius, std::mt19937_64& rng);

/// Barabasi-Albert preferential attachment: starts from a small clique and
/// attaches each new node to \p attach_edges existing nodes. Unit lengths.
Graph barabasi_albert(int n, int attach_edges, std::mt19937_64& rng);

/// \p num_cliques cliques of \p clique_size nodes each, arranged in a ring;
/// intra-clique edges have length \p intra, the ring edges between
/// consecutive cliques have length \p inter. Models clustered data centers
/// joined by WAN links.
Graph ring_of_cliques(int num_cliques, int clique_size, double intra,
                      double inter);

/// d-dimensional hypercube on 2^d nodes (node ids are bit vectors; edges
/// join ids at Hamming distance 1). Unit edge lengths.
Graph hypercube(int dimensions);

/// k x k torus (grid mesh with wrap-around rows and columns), k >= 3.
Graph torus(int k, double edge_length = 1.0);

/// Two-level fat-tree-like data-center fabric: \p num_spines spine switches,
/// \p num_leaves leaf switches (each connected to every spine with length
/// \p spine_leaf), and \p hosts_per_leaf hosts per leaf (length
/// \p leaf_host). Host ids come first (0 .. L*H-1), then leaves, then
/// spines.
Graph fat_tree(int num_spines, int num_leaves, int hosts_per_leaf,
               double spine_leaf = 2.0, double leaf_host = 1.0);

/// Waxman random graph: n points uniform in the unit square; edge (u, v)
/// sampled with probability a * exp(-d(u,v) / (b * sqrt(2))), Euclidean
/// lengths; re-sampled until connected. The classic Internet-topology
/// model (Waxman 1988).
GeometricGraph waxman(int n, double a, double b, std::mt19937_64& rng);

}  // namespace qp::graph
