#include "graph/io.hpp"

#include <fstream>
#include <iomanip>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace qp::graph {

Graph parse_edge_list(std::istream& in) {
  std::optional<Graph> g;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) continue;  // blank/comment line
    const auto fail = [&](const std::string& what) {
      throw std::invalid_argument("edge list line " +
                                  std::to_string(line_number) + ": " + what);
    };
    if (directive == "n") {
      if (g.has_value()) fail("duplicate 'n' header");
      int n = 0;
      if (!(tokens >> n)) fail("expected 'n <num_nodes>'");
      g.emplace(n);
    } else if (directive == "e") {
      if (!g.has_value()) fail("'e' before the 'n' header");
      int a = 0, b = 0;
      double length = 0.0;
      if (!(tokens >> a >> b >> length)) fail("expected 'e <a> <b> <length>'");
      try {
        g->add_edge(a, b, length);
      } catch (const std::invalid_argument& e) {
        fail(e.what());
      }
    } else {
      fail("unknown directive '" + directive + "'");
    }
    std::string extra;
    if (tokens >> extra) fail("trailing tokens");
  }
  if (!g.has_value()) {
    throw std::invalid_argument("edge list: missing 'n' header");
  }
  return *std::move(g);
}

Graph parse_edge_list(const std::string& text) {
  std::istringstream in(text);
  return parse_edge_list(in);
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << "n " << g.num_nodes() << '\n';
  os << std::setprecision(17);
  for (const Edge& e : g.edges()) {
    os << "e " << e.a << ' ' << e.b << ' ' << e.length << '\n';
  }
  return os.str();
}

Graph load_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open graph file '" + path + "'");
  }
  return parse_edge_list(in);
}

}  // namespace qp::graph
