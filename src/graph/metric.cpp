#include "graph/metric.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/shortest_paths.hpp"

namespace qp::graph {

Metric::Metric(int num_points, std::vector<double> distances)
    : num_points_(num_points), distances_(std::move(distances)) {
  if (num_points < 0) {
    throw std::invalid_argument("Metric: num_points must be non-negative");
  }
  const auto n = static_cast<std::size_t>(num_points);
  if (distances_.size() != n * n) {
    throw std::invalid_argument("Metric: matrix size must be n*n");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (distances_[i * n + i] != 0.0) {
      throw std::invalid_argument("Metric: diagonal must be zero");
    }
    for (std::size_t j = 0; j < n; ++j) {
      const double d = distances_[i * n + j];
      if (!(d >= 0.0) || !std::isfinite(d)) {
        throw std::invalid_argument("Metric: distances must be finite, >= 0");
      }
      if (d != distances_[j * n + i]) {
        throw std::invalid_argument("Metric: matrix must be symmetric");
      }
    }
  }
}

Metric Metric::from_graph(const Graph& g) {
  if (!g.is_connected()) {
    throw std::invalid_argument("Metric::from_graph: graph is disconnected");
  }
  std::vector<double> d = all_pairs_distances(g);
  // Dijkstra sums path edges in opposite orders for d(i,j) and d(j,i), so
  // the two can differ by rounding; symmetrize before validating.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double sym = std::min(d[i * n + j], d[j * n + i]);
      d[i * n + j] = sym;
      d[j * n + i] = sym;
    }
  }
  return Metric(g.num_nodes(), std::move(d));
}

Metric Metric::uniform(int num_points) {
  const auto n = static_cast<std::size_t>(num_points);
  std::vector<double> d(n * n, 1.0);
  for (std::size_t i = 0; i < n; ++i) d[i * n + i] = 0.0;
  return Metric(num_points, std::move(d));
}

Metric Metric::line(const std::vector<double>& coordinates) {
  const auto n = coordinates.size();
  std::vector<double> d(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d[i * n + j] = std::abs(coordinates[i] - coordinates[j]);
    }
  }
  return Metric(static_cast<int>(n), std::move(d));
}

bool Metric::satisfies_triangle_inequality(double tolerance) const {
  const int n = num_points_;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        if ((*this)(i, j) > (*this)(i, k) + (*this)(k, j) + tolerance) {
          return false;
        }
      }
    }
  }
  return true;
}

double Metric::diameter() const {
  return distances_.empty()
             ? 0.0
             : *std::max_element(distances_.begin(), distances_.end());
}

std::vector<int> Metric::nodes_by_distance_from(int origin) const {
  if (origin < 0 || origin >= num_points_) {
    throw std::invalid_argument("nodes_by_distance_from: origin out of range");
  }
  std::vector<int> order(static_cast<std::size_t>(num_points_));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return (*this)(origin, a) < (*this)(origin, b);
  });
  return order;
}

double Metric::distance_sum_from(int v) const {
  double total = 0.0;
  for (int j = 0; j < num_points_; ++j) total += (*this)(v, j);
  return total;
}

}  // namespace qp::graph
