#include "graph/generators.hpp"

#include <cmath>
#include <stdexcept>

namespace qp::graph {

namespace {

void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(message);
}

double sample_length(std::mt19937_64& rng, double lo, double hi) {
  require(lo > 0.0 && hi >= lo, "generators: need 0 < min_length <= max_length");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

}  // namespace

Graph path_graph(int n, double edge_length) {
  require(n >= 1, "path_graph: n >= 1 required");
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, edge_length);
  return g;
}

Graph cycle_graph(int n, double edge_length) {
  require(n >= 3, "cycle_graph: n >= 3 required");
  Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n, edge_length);
  return g;
}

Graph star_graph(int n, double edge_length) {
  require(n >= 1, "star_graph: n >= 1 required");
  Graph g(n);
  for (int i = 1; i < n; ++i) g.add_edge(0, i, edge_length);
  return g;
}

Graph complete_graph(int n, double edge_length) {
  require(n >= 1, "complete_graph: n >= 1 required");
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.add_edge(i, j, edge_length);
  }
  return g;
}

Graph grid_mesh(int k, double edge_length) {
  require(k >= 1, "grid_mesh: k >= 1 required");
  Graph g(k * k);
  const auto id = [k](int r, int c) { return r * k + c; };
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < k; ++c) {
      if (c + 1 < k) g.add_edge(id(r, c), id(r, c + 1), edge_length);
      if (r + 1 < k) g.add_edge(id(r, c), id(r + 1, c), edge_length);
    }
  }
  return g;
}

Graph broom_graph(int k) {
  require(k >= 2, "broom_graph: k >= 2 required");
  const int n = k * k;
  Graph g(n);
  // Nodes 1 .. n-k are star leaves of the center 0.
  const int num_leaves = n - k;
  for (int i = 1; i <= num_leaves; ++i) g.add_edge(0, i, 1.0);
  // A path of k-1 nodes hangs off leaf 1, giving distances 2, 3, ..., k.
  int previous = 1;
  for (int i = 0; i < k - 1; ++i) {
    const int node = num_leaves + 1 + i;
    g.add_edge(previous, node, 1.0);
    previous = node;
  }
  return g;
}

Graph random_tree(int n, std::mt19937_64& rng, double min_length,
                  double max_length) {
  require(n >= 1, "random_tree: n >= 1 required");
  Graph g(n);
  for (int i = 1; i < n; ++i) {
    std::uniform_int_distribution<int> parent(0, i - 1);
    g.add_edge(parent(rng), i, sample_length(rng, min_length, max_length));
  }
  return g;
}

Graph erdos_renyi(int n, double p, std::mt19937_64& rng, double min_length,
                  double max_length) {
  require(n >= 1, "erdos_renyi: n >= 1 required");
  require(p > 0.0 && p <= 1.0, "erdos_renyi: p in (0, 1] required");
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  constexpr int kMaxAttempts = 1000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Graph g(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (coin(rng) < p) {
          g.add_edge(i, j, sample_length(rng, min_length, max_length));
        }
      }
    }
    if (g.is_connected()) return g;
  }
  throw std::runtime_error("erdos_renyi: failed to sample a connected graph");
}

GeometricGraph random_geometric(int n, double radius, std::mt19937_64& rng) {
  require(n >= 1, "random_geometric: n >= 1 required");
  require(radius > 0.0, "random_geometric: radius > 0 required");
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  constexpr int kMaxAttempts = 1000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    GeometricGraph out{Graph(n), {}, {}};
    out.x.resize(static_cast<std::size_t>(n));
    out.y.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.x[static_cast<std::size_t>(i)] = unit(rng);
      out.y[static_cast<std::size_t>(i)] = unit(rng);
    }
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double dx = out.x[static_cast<std::size_t>(i)] -
                          out.x[static_cast<std::size_t>(j)];
        const double dy = out.y[static_cast<std::size_t>(i)] -
                          out.y[static_cast<std::size_t>(j)];
        const double dist = std::sqrt(dx * dx + dy * dy);
        if (dist > 0.0 && dist <= radius) out.graph.add_edge(i, j, dist);
      }
    }
    if (out.graph.is_connected()) return out;
  }
  throw std::runtime_error(
      "random_geometric: failed to sample a connected graph; increase radius");
}

Graph barabasi_albert(int n, int attach_edges, std::mt19937_64& rng) {
  require(attach_edges >= 1, "barabasi_albert: attach_edges >= 1 required");
  require(n > attach_edges, "barabasi_albert: n > attach_edges required");
  Graph g(n);
  // Seed clique on attach_edges + 1 nodes.
  const int seed = attach_edges + 1;
  std::vector<int> endpoint_bag;  // each node appears once per incident edge
  for (int i = 0; i < seed; ++i) {
    for (int j = i + 1; j < seed; ++j) {
      g.add_edge(i, j, 1.0);
      endpoint_bag.push_back(i);
      endpoint_bag.push_back(j);
    }
  }
  for (int v = seed; v < n; ++v) {
    std::vector<int> targets;
    while (static_cast<int>(targets.size()) < attach_edges) {
      std::uniform_int_distribution<std::size_t> pick(0, endpoint_bag.size() - 1);
      const int candidate = endpoint_bag[pick(rng)];
      bool duplicate = false;
      for (int t : targets) duplicate = duplicate || (t == candidate);
      if (!duplicate) targets.push_back(candidate);
    }
    for (int t : targets) {
      g.add_edge(v, t, 1.0);
      endpoint_bag.push_back(v);
      endpoint_bag.push_back(t);
    }
  }
  return g;
}

Graph ring_of_cliques(int num_cliques, int clique_size, double intra,
                      double inter) {
  require(num_cliques >= 1, "ring_of_cliques: num_cliques >= 1 required");
  require(clique_size >= 1, "ring_of_cliques: clique_size >= 1 required");
  const int n = num_cliques * clique_size;
  Graph g(n);
  const auto id = [clique_size](int clique, int member) {
    return clique * clique_size + member;
  };
  for (int c = 0; c < num_cliques; ++c) {
    for (int i = 0; i < clique_size; ++i) {
      for (int j = i + 1; j < clique_size; ++j) {
        g.add_edge(id(c, i), id(c, j), intra);
      }
    }
  }
  if (num_cliques == 2) {
    g.add_edge(id(0, 0), id(1, 0), inter);
  } else if (num_cliques > 2) {
    for (int c = 0; c < num_cliques; ++c) {
      g.add_edge(id(c, 0), id((c + 1) % num_cliques, 0), inter);
    }
  }
  return g;
}

Graph hypercube(int dimensions) {
  require(dimensions >= 0 && dimensions <= 20,
          "hypercube: 0 <= dimensions <= 20 required");
  const int n = 1 << dimensions;
  Graph g(n);
  for (int v = 0; v < n; ++v) {
    for (int bit = 0; bit < dimensions; ++bit) {
      const int other = v ^ (1 << bit);
      if (v < other) g.add_edge(v, other, 1.0);
    }
  }
  return g;
}

Graph torus(int k, double edge_length) {
  require(k >= 3, "torus: k >= 3 required");
  Graph g(k * k);
  const auto id = [k](int r, int c) { return r * k + c; };
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < k; ++c) {
      g.add_edge(id(r, c), id(r, (c + 1) % k), edge_length);
      g.add_edge(id(r, c), id((r + 1) % k, c), edge_length);
    }
  }
  return g;
}

Graph fat_tree(int num_spines, int num_leaves, int hosts_per_leaf,
               double spine_leaf, double leaf_host) {
  require(num_spines >= 1 && num_leaves >= 1 && hosts_per_leaf >= 1,
          "fat_tree: all tiers must be non-empty");
  const int num_hosts = num_leaves * hosts_per_leaf;
  const int n = num_hosts + num_leaves + num_spines;
  Graph g(n);
  const auto leaf_id = [num_hosts](int leaf) { return num_hosts + leaf; };
  const auto spine_id = [num_hosts, num_leaves](int spine) {
    return num_hosts + num_leaves + spine;
  };
  for (int leaf = 0; leaf < num_leaves; ++leaf) {
    for (int h = 0; h < hosts_per_leaf; ++h) {
      g.add_edge(leaf * hosts_per_leaf + h, leaf_id(leaf), leaf_host);
    }
    for (int spine = 0; spine < num_spines; ++spine) {
      g.add_edge(leaf_id(leaf), spine_id(spine), spine_leaf);
    }
  }
  return g;
}

GeometricGraph waxman(int n, double a, double b, std::mt19937_64& rng) {
  require(n >= 1, "waxman: n >= 1 required");
  require(a > 0.0 && a <= 1.0 && b > 0.0, "waxman: need 0 < a <= 1, b > 0");
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double max_distance = std::sqrt(2.0);
  constexpr int kMaxAttempts = 1000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    GeometricGraph out{Graph(n), {}, {}};
    out.x.resize(static_cast<std::size_t>(n));
    out.y.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.x[static_cast<std::size_t>(i)] = unit(rng);
      out.y[static_cast<std::size_t>(i)] = unit(rng);
    }
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double dx = out.x[static_cast<std::size_t>(i)] -
                          out.x[static_cast<std::size_t>(j)];
        const double dy = out.y[static_cast<std::size_t>(i)] -
                          out.y[static_cast<std::size_t>(j)];
        const double dist = std::sqrt(dx * dx + dy * dy);
        if (dist <= 0.0) continue;
        if (unit(rng) < a * std::exp(-dist / (b * max_distance))) {
          out.graph.add_edge(i, j, dist);
        }
      }
    }
    if (out.graph.is_connected()) return out;
  }
  throw std::runtime_error(
      "waxman: failed to sample a connected graph; increase a or b");
}

}  // namespace qp::graph
