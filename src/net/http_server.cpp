#include "net/http_server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <utility>

namespace qp::net {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default:  return "Unknown";
  }
}

/// Reads from \p fd until the end of the request head (CRLFCRLF) or a size
/// cap; GET requests carry no body, so nothing further is consumed.
std::string read_request_head(int fd) {
  std::string head;
  char buf[1024];
  while (head.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos) break;
  }
  return head;
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return;  // peer went away; nothing to salvage
    sent += static_cast<std::size_t>(n);
  }
}

std::string render_response(const HttpResponse& response) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                response.status, status_text(response.status),
                response.content_type.c_str(), response.body.size());
  return std::string(head) + response.body;
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& path, Handler handler) {
  if (running()) {
    throw std::runtime_error("HttpServer: handle() after start()");
  }
  handlers_[path] = std::move(handler);
}

void HttpServer::start(int port) {
  if (running()) {
    throw std::runtime_error("HttpServer: already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("HttpServer: socket(): ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("HttpServer: bind(): ") +
                             std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("HttpServer: listen(): ") +
                             std::strerror(err));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("HttpServer: getsockname(): ") +
                             std::strerror(err));
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_.store(fd);
  thread_ = std::thread([this, fd] { serve_loop(fd); });
}

void HttpServer::stop() {
  const int fd = listen_fd_.exchange(-1);
  if (fd < 0) return;
  // Waking a blocked accept(2): shutdown() forces it to return on Linux;
  // the loop then sees listen_fd_ cleared and exits.
  ::shutdown(fd, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(fd);
}

void HttpServer::serve_loop(int listen_fd) {
  while (listen_fd_.load() >= 0) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (listen_fd_.load() < 0) break;  // stop() woke us
      if (errno == EINTR) continue;
      break;                             // listen socket is gone
    }
    serve_connection(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  const std::string head = read_request_head(fd);
  HttpRequest request;
  HttpResponse response;

  const std::size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else {
    request.method = line.substr(0, sp1);
    request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = request.path.find('?');
    if (query != std::string::npos) request.path.resize(query);

    if (request.method != "GET") {
      response.status = 405;
      response.body = "only GET is supported\n";
    } else {
      const auto it = handlers_.find(request.path);
      if (it == handlers_.end()) {
        response.status = 404;
        response.body = "no such path: " + request.path + "\n";
      } else {
        try {
          response = it->second(request);
        } catch (const std::exception& e) {
          response = HttpResponse{};
          response.status = 500;
          response.body = std::string("handler failed: ") + e.what() + "\n";
        }
      }
    }
  }

  write_all(fd, render_response(response));
  ::close(fd);
}

}  // namespace qp::net
