#pragma once

/// \file http_server.hpp
/// Minimal embedded HTTP/1.1 server for the admin plane.
///
/// `qplace simulate --metrics-port` (and the bench drivers via
/// QPLACE_METRICS_PORT) serve `/metrics`, `/healthz` and `/report` from a
/// long-lived run (docs/OBSERVABILITY.md §8) -- the seed of the ROADMAP
/// `qplace serve` admin endpoint, modeled on the scaliendb HTTPConnection
/// idea but deliberately smaller: pure POSIX sockets, no external
/// dependencies, one blocking accept loop on a background thread, one
/// connection served at a time, `Connection: close` on every response.
/// That is exactly enough for a scraper or a curl probe and keeps the
/// server out of the simulator's hot path entirely (handlers read shared
/// state through their own synchronization; the server itself holds no
/// locks while the sim thread runs).
///
/// Only GET is answered (anything else gets 405). Query strings are
/// stripped before routing; unknown paths get 404; a throwing handler is
/// converted to a 500 carrying the exception text.

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace qp::net {

struct HttpRequest {
  std::string method;  ///< e.g. "GET"
  std::string path;    ///< decoded target without the query string
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Blocking-accept HTTP server bound to 127.0.0.1.
///
/// Lifecycle: construct, handle() for each route, start(), ... stop().
/// stop() (also run by the destructor) wakes the accept loop and joins the
/// serving thread; it is idempotent. Handlers run on the serving thread and
/// must synchronize internally with whatever state they read.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers \p handler for exact-match \p path. Must be called before
  /// start().
  void handle(const std::string& path, Handler handler);

  /// Binds 127.0.0.1:\p port (0 picks an ephemeral port -- see port()) and
  /// launches the accept loop.
  /// \throws std::runtime_error on socket/bind/listen failure or if already
  ///         started.
  void start(int port);

  /// Port actually bound, host byte order; 0 before start().
  int port() const { return port_; }
  bool running() const { return listen_fd_.load() >= 0; }

  void stop();

 private:
  void serve_loop(int listen_fd);
  void serve_connection(int fd);

  std::map<std::string, Handler> handlers_;
  std::thread thread_;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
};

}  // namespace qp::net
