#include "obs/json.hpp"

#include <cstdlib>
#include <stdexcept>

namespace qp::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value value;
        value.type = Value::Type::kString;
        value.string = parse_string();
        return value;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default:
        return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value value;
    value.type = Value::Type::kBool;
    value.boolean = b;
    return value;
  }

  Value parse_object() {
    expect('{');
    Value value;
    value.type = Value::Type::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.object[std::move(key)] = parse_value();
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  Value parse_array() {
    expect('[');
    Value value;
    value.type = Value::Type::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // The emitters only \u-escape control characters (< 0x20); encode
          // the general case as UTF-8 anyway so foreign documents survive.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    Value value;
    value.type = Value::Type::kNumber;
    value.number = parsed;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  const Value* member = find(key);
  if (member == nullptr || member->type != Type::kString) return fallback;
  return member->string;
}

double Value::get_number(const std::string& key, double fallback) const {
  const Value* member = find(key);
  if (member == nullptr || member->type != Type::kNumber) return fallback;
  return member->number;
}

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace qp::obs::json
