#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace qp::obs {

/// Per-thread ring buffer. Only its owning thread writes; merges happen from
/// sequential code after parallel regions complete (the pool's job-completion
/// handshake provides the needed happens-before edge).
struct TraceRecorder::ThreadBuffer {
  explicit ThreadBuffer(int id) : tid(id) { events.resize(kRingCapacity); }

  std::vector<TraceEvent> events;
  std::size_t size = 0;  ///< valid events, <= kRingCapacity
  std::size_t next = 0;  ///< next write slot
  std::uint64_t dropped = 0;
  int tid = 0;
};

namespace {

std::mutex g_trace_mutex;  // guards buffer registration and merge
std::vector<std::unique_ptr<TraceRecorder::ThreadBuffer>>& buffers() {
  static std::vector<std::unique_ptr<TraceRecorder::ThreadBuffer>> instance;
  return instance;
}
std::atomic<bool> g_trace_enabled{false};

thread_local TraceRecorder::ThreadBuffer* tl_buffer = nullptr;

void append_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_enabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceRecorder::enabled() const {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  if (tl_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(g_trace_mutex);
    auto buffer =
        std::make_unique<ThreadBuffer>(static_cast<int>(buffers().size()));
    tl_buffer = buffer.get();
    buffers().push_back(std::move(buffer));
  }
  return *tl_buffer;
}

void TraceRecorder::record(const char* name, double ts_us, double dur_us) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  TraceEvent& slot = buffer.events[buffer.next];
  slot.name = name;
  slot.ts_us = ts_us;
  slot.dur_us = dur_us;
  slot.args.clear();
  slot.pid = 1;
  buffer.next = (buffer.next + 1) % kRingCapacity;
  if (buffer.size < kRingCapacity) {
    ++buffer.size;
  } else {
    ++buffer.dropped;  // oldest event was overwritten
  }
}

void TraceRecorder::record_sim_span(const char* name, double ts_us,
                                    double dur_us, std::string args) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  TraceEvent& slot = buffer.events[buffer.next];
  slot.name = name;
  slot.ts_us = ts_us;
  slot.dur_us = dur_us;
  slot.args = std::move(args);
  slot.pid = kSimTimePid;
  buffer.next = (buffer.next + 1) % kRingCapacity;
  if (buffer.size < kRingCapacity) {
    ++buffer.size;
  } else {
    ++buffer.dropped;  // oldest event was overwritten
  }
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  std::size_t total = 0;
  for (const auto& buffer : buffers()) total += buffer->size;
  return total;
}

std::uint64_t TraceRecorder::dropped_count() const {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers()) total += buffer->dropped;
  return total;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  for (const auto& buffer : buffers()) {
    buffer->size = 0;
    buffer->next = 0;
    buffer->dropped = 0;
  }
  epoch_ = std::chrono::steady_clock::now();
}

std::string TraceRecorder::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char number[64];
  for (const auto& buffer : buffers()) {
    const std::size_t oldest =
        (buffer->next + kRingCapacity - buffer->size) % kRingCapacity;
    for (std::size_t i = 0; i < buffer->size; ++i) {
      const TraceEvent& event =
          buffer->events[(oldest + i) % kRingCapacity];
      if (!first) out += ", ";
      first = false;
      out += "{\"name\": \"";
      append_escaped(out, event.name);
      out += "\", \"cat\": \"qplace\", \"ph\": \"X\", \"ts\": ";
      std::snprintf(number, sizeof(number), "%.3f", event.ts_us);
      out += number;
      out += ", \"dur\": ";
      std::snprintf(number, sizeof(number), "%.3f", event.dur_us);
      out += number;
      out += ", \"pid\": ";
      std::snprintf(number, sizeof(number), "%d", event.pid);
      out += number;
      out += ", \"tid\": ";
      std::snprintf(number, sizeof(number), "%d", buffer->tid);
      out += number;
      if (!event.args.empty()) {
        out += ", \"args\": ";
        out += event.args;  // pre-rendered JSON object
      }
      out += "}";
    }
  }
  out += "], \"displayTimeUnit\": \"ms\"}";
  return out;
}

}  // namespace qp::obs
