#pragma once

/// \file trace.hpp
/// Thread-safe trace recorder emitting Chrome trace_event JSON.
///
/// Each thread that records events owns a fixed-capacity ring buffer; when a
/// buffer is full the oldest events are overwritten and a drop counter is
/// bumped, so recording never allocates or blocks on the hot path beyond one
/// relaxed enabled-check. to_chrome_json() merges all buffers (stable order:
/// by recorder-assigned thread id, then by record order) into the JSON Object
/// Format understood by chrome://tracing and Perfetto:
///
///   {"traceEvents": [{"name": "...", "cat": "qplace", "ph": "X",
///                     "ts": <us>, "dur": <us>, "pid": 1, "tid": <id>}, ...],
///    "displayTimeUnit": "ms"}
///
/// Tracing is off by default; obs::ScopedTimer only records a slice when
/// set_enabled(true) was called (the CLI's --trace-out flag does this).
/// Timestamps are microseconds since the recorder was constructed (or last
/// cleared) on the steady clock. Timestamps and durations are inherently
/// nondeterministic; everything else about a run's trace (event names,
/// counts per name) follows the docs/PARALLEL.md determinism contract.
///
/// Two pid domains share one trace (docs/OBSERVABILITY.md §8): pid 1 is the
/// wall-clock domain above; pid 2 (kSimTimePid) is the *simulation-time*
/// domain used by the simulator's causal per-access span trees, where ts/dur
/// are sim-time units scaled by kSimTimeScaleUs (1 sim unit = 1000 us, so
/// "displayTimeUnit: ms" shows 1 sim unit per millisecond tick). Sim-domain
/// events carry a rendered JSON `args` object (access id, attempt, outcome,
/// ...) and are fully deterministic; `qplace analyze --trace` cross-checks
/// their arithmetic against the access log.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace qp::obs {

struct TraceEvent {
  const char* name = nullptr;  ///< string literal; never owned
  double ts_us = 0.0;          ///< start, microseconds since recorder epoch
  double dur_us = 0.0;         ///< duration, microseconds
  std::string args;            ///< rendered JSON object; empty = no args
  int pid = 1;                 ///< time domain: 1 wall clock, 2 sim time
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Enables/disables recording. Cheap to leave disabled: record() bails on
  /// one relaxed atomic load.
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Records a completed slice for the calling thread. No-op when disabled.
  void record(const char* name, double ts_us, double dur_us);

  /// Records a completed slice in the simulation-time domain (pid
  /// kSimTimePid) with a pre-rendered JSON \p args object ("{...}"; pass ""
  /// for none). \p ts_us / \p dur_us are sim-time units already scaled by
  /// kSimTimeScaleUs. No-op when disabled.
  void record_sim_span(const char* name, double ts_us, double dur_us,
                       std::string args);

  /// Microseconds since the recorder epoch, for pairing with record().
  double now_us() const;

  /// Merges every thread's buffer into Chrome trace JSON. Call from
  /// sequential code (after parallel regions have completed).
  std::string to_chrome_json() const;

  /// Events currently held (across all threads, excluding dropped ones).
  std::size_t event_count() const;
  /// Events overwritten because some ring buffer was full.
  std::uint64_t dropped_count() const;

  /// Drops all recorded events and restarts the epoch. Buffers registered by
  /// live threads are kept (their cached pointers must stay valid).
  void clear();

  /// Ring capacity per recording thread.
  static constexpr std::size_t kRingCapacity = 1 << 16;

  /// pid of the simulation-time domain in the merged trace.
  static constexpr int kSimTimePid = 2;
  /// Microseconds per simulation-time unit in sim-domain events. 1000 makes
  /// one sim unit render as one millisecond under "displayTimeUnit: ms".
  static constexpr double kSimTimeScaleUs = 1000.0;

  /// Opaque per-thread ring buffer; defined in trace.cpp only.
  struct ThreadBuffer;

 private:
  TraceRecorder();
  ThreadBuffer& local_buffer();

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace qp::obs
