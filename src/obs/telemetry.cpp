#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/obs.hpp"
#include "obs/prom.hpp"

namespace qp::obs {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_string(std::string& out, const std::string& text) {
  out.push_back('"');
  append_escaped(out, text);
  out.push_back('"');
}

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_uint(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

/// NaN has no JSON literal; quantiles of an empty histogram render as null
/// so readers cannot mistake "no data" for a measured zero (same rule as
/// LogHistogram::to_json).
void append_double_or_null(std::string& out, double value) {
  if (std::isnan(value)) {
    out += "null";
  } else {
    append_double(out, value);
  }
}

/// Emits `"key": <value>` pairs of a pre-rendered map as a JSON object.
void append_object(std::string& out,
                   const std::map<std::string, std::string>& rendered) {
  out.push_back('{');
  bool first = true;
  for (const auto& [key, value] : rendered) {
    if (!first) out += ", ";
    first = false;
    append_string(out, key);
    out += ": ";
    out += value;
  }
  out.push_back('}');
}

void append_snapshot_line(std::string& out, const MetricsSnapshot& snapshot) {
  out += "{\"deterministic\": {\"t\": ";
  append_double(out, snapshot.sim_time);
  out += ", \"counters\": ";
  {
    std::map<std::string, std::string> rendered;
    for (const auto& [name, value] : snapshot.counters) {
      std::string cell;
      append_uint(cell, value);
      rendered[name] = cell;
    }
    append_object(out, rendered);
  }
  out += ", \"values\": ";
  {
    std::map<std::string, std::string> rendered;
    for (const auto& [name, value] : snapshot.values) {
      std::string cell;
      append_double(cell, value);
      rendered[name] = cell;
    }
    append_object(out, rendered);
  }
  out += ", \"histograms\": ";
  {
    std::map<std::string, std::string> rendered;
    for (const auto& [name, point] : snapshot.histograms) {
      std::string cell = "{\"count\": ";
      append_uint(cell, point.count);
      cell += ", \"sum\": ";
      append_double(cell, point.sum);
      cell += ", \"p50\": ";
      append_double_or_null(cell, point.p50);
      cell += ", \"p90\": ";
      append_double_or_null(cell, point.p90);
      cell += ", \"p99\": ";
      append_double_or_null(cell, point.p99);
      cell += "}";
      rendered[name] = cell;
    }
    append_object(out, rendered);
  }
  out += "}, \"nondeterministic\": {\"wall_ms\": ";
  append_double(out, snapshot.wall_ms);
  out += ", \"gauges\": ";
  {
    std::map<std::string, std::string> rendered;
    for (const auto& [name, value] : snapshot.gauges) {
      std::string cell;
      append_double(cell, value);
      rendered[name] = cell;
    }
    append_object(out, rendered);
  }
  out += "}}\n";
}

}  // namespace

MetricsSnapshotter::MetricsSnapshotter(TelemetryConfig config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("telemetry capacity must be >= 1");
  }
}

void MetricsSnapshotter::set_context(const std::string& key,
                                     const std::string& value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  context_[key] = value;
}

void MetricsSnapshotter::watch_histogram(const std::string& name,
                                         const LogHistogram* histogram) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (histogram == nullptr) {
    watched_.erase(name);
  } else {
    watched_[name] = histogram;
  }
}

void MetricsSnapshotter::sample(double sim_time,
                                const std::map<std::string, double>& values) {
  const Registry& registry = Registry::instance();
  MetricsSnapshot snapshot;
  snapshot.sim_time = sim_time;
  snapshot.counters = registry.counter_values();
  snapshot.values = values;
  snapshot.gauges = registry.gauge_values();

  const std::lock_guard<std::mutex> lock(mutex_);
  snapshot.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  for (const auto& [name, histogram] : watched_) {
    HistogramPoint point;
    point.count = histogram->count();
    point.sum = histogram->sum();
    if (point.count > 0) {
      point.p50 = histogram->quantile(0.50);
      point.p90 = histogram->quantile(0.90);
      point.p99 = histogram->quantile(0.99);
    } else {
      point.p50 = point.p90 = point.p99 =
          std::numeric_limits<double>::quiet_NaN();
    }
    snapshot.histograms[name] = point;
  }
  if (ring_.size() == config_.capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(snapshot));
}

std::vector<MetricsSnapshot> MetricsSnapshotter::snapshots() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::optional<MetricsSnapshot> MetricsSnapshotter::latest() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return std::nullopt;
  return ring_.back();
}

std::size_t MetricsSnapshotter::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t MetricsSnapshotter::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string MetricsSnapshotter::to_jsonl() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"schema\": \"qplace.timeseries.v1\", \"context\": ";
  {
    std::map<std::string, std::string> rendered;
    for (const auto& [key, value] : context_) {
      std::string cell;
      append_string(cell, value);
      rendered[key] = cell;
    }
    append_object(out, rendered);
  }
  out += ", \"capacity\": ";
  append_uint(out, config_.capacity);
  out += ", \"samples\": ";
  append_uint(out, ring_.size());
  out += ", \"dropped\": ";
  append_uint(out, dropped_);
  out += "}\n";
  for (const MetricsSnapshot& snapshot : ring_) {
    append_snapshot_line(out, snapshot);
  }
  return out;
}

std::string MetricsSnapshotter::prometheus_summaries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return {};
  std::string out;
  for (const auto& [name, point] : ring_.back().histograms) {
    append_prometheus_summary(out, name, point);
  }
  return out;
}

namespace {

/// In-place redraws are only appropriate on an interactive terminal. For
/// the standard streams the kernel knows the answer; any other ostream
/// (test ostringstreams) has no file descriptor, and a caller wiring one up
/// explicitly asked for output, so it counts as live.
bool stream_is_tty(const std::ostream& out) {
#if defined(__unix__) || defined(__APPLE__)
  if (&out == &std::cerr || &out == &std::clog) return isatty(2) != 0;
  if (&out == &std::cout) return isatty(1) != 0;
#endif
  return true;
}

}  // namespace

ProgressMeter::ProgressMeter(std::ostream& out, double certified_bound)
    : ProgressMeter(out, certified_bound, stream_is_tty(out)) {}

ProgressMeter::ProgressMeter(std::ostream& out, double certified_bound,
                             bool live)
    : out_(out),
      certified_bound_(certified_bound),
      live_(live),
      start_(std::chrono::steady_clock::now()),
      last_draw_(start_) {}

void ProgressMeter::update(const ProgressStats& stats) {
  last_stats_ = stats;
  if (!live_) return;  // non-TTY: only finish() writes anything
  const auto now = std::chrono::steady_clock::now();
  // ~10 redraws/s keeps a fast event loop from spending its time on stderr.
  if (drew_ && now - last_draw_ < std::chrono::milliseconds(100)) return;
  last_draw_ = now;
  draw(stats);
}

void ProgressMeter::finish() {
  if (finished_) return;
  finished_ = true;
  draw(last_stats_);
  out_ << "\n";
  out_.flush();
}

void ProgressMeter::draw(const ProgressStats& stats) {
  drew_ = true;
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate = elapsed_s > 0.0
                          ? static_cast<double>(stats.resolved) / elapsed_s
                          : 0.0;
  const double percent =
      stats.duration > 0.0
          ? 100.0 * std::min(1.0, stats.sim_time / stats.duration)
          : 0.0;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%ssim %3.0f%% t=%.0f/%.0f | %lld ok + %lld failed (%.0f/s) "
                "| avail %.4f",
                live_ ? "\r" : "", percent, stats.sim_time, stats.duration,
                static_cast<long long>(stats.completed),
                static_cast<long long>(stats.failed), rate,
                stats.availability);
  out_ << line;
  if (!std::isnan(stats.p99)) {
    std::snprintf(line, sizeof(line), " | p99 %.3g", stats.p99);
    out_ << line;
    if (!std::isnan(certified_bound_) && certified_bound_ > 0.0) {
      std::snprintf(line, sizeof(line), " = %.2fx bound",
                    stats.p99 / certified_bound_);
      out_ << line;
    }
  }
  if (live_) out_ << "    ";  // erase leftovers from a longer previous line
  out_.flush();
}

}  // namespace qp::obs
