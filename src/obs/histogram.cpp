#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace qp::obs {

namespace {

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_uint(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

LogHistogram::LogHistogram()
    : buckets_(static_cast<std::size_t>(kNumBuckets), 0) {}

int LogHistogram::bucket_index(double value) {
  if (!(value >= std::ldexp(1.0, kMinExponent))) return -1;  // incl. NaN/0/neg
  if (value >= std::ldexp(1.0, kMaxExponent)) return kNumBuckets;
  const int index = static_cast<int>(
      std::floor(std::log2(value) * kBucketsPerOctave)) -
      kMinExponent * kBucketsPerOctave;
  // log2 rounding at bucket boundaries can land one bucket off; clamp into
  // the covered range (the neighbouring-bucket error is far below the
  // bucket's own 9.1% relative width).
  return std::clamp(index, 0, kNumBuckets - 1);
}

double LogHistogram::bucket_lower_bound(int bucket) {
  return std::exp2(static_cast<double>(bucket) / kBucketsPerOctave +
                   kMinExponent);
}

double LogHistogram::bucket_upper_bound(int bucket) {
  return bucket_lower_bound(bucket + 1);
}

void LogHistogram::record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const int index = bucket_index(value);
  if (index < 0) {
    ++underflow_;
  } else if (index >= kNumBuckets) {
    ++overflow_;
  } else {
    ++buckets_[static_cast<std::size_t>(index)];
  }
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
}

double LogHistogram::mean() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum_ / static_cast<double>(count_);
}

double LogHistogram::quantile(double q) const {
  if (!(q >= 0.0) || q > 1.0) {
    throw std::invalid_argument("LogHistogram::quantile: q must be in [0, 1]");
  }
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = underflow_;
  if (rank <= cumulative) return min();
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[static_cast<std::size_t>(b)];
    if (rank <= cumulative) {
      return std::clamp(bucket_upper_bound(b), min(), max());
    }
  }
  return max();  // rank falls into the overflow bucket
}

std::string LogHistogram::to_json() const {
  std::string out = "{\"count\": ";
  append_uint(out, count_);
  out += ", \"underflow\": ";
  append_uint(out, underflow_);
  out += ", \"overflow\": ";
  append_uint(out, overflow_);
  out += ", \"min\": ";
  append_double(out, min());
  out += ", \"max\": ";
  append_double(out, max());
  out += ", \"sum\": ";
  append_double(out, sum_);
  // mean()/quantile() are NaN on an empty histogram; JSON has no NaN, so
  // emit null there -- a reader must not mistake "no samples" for a
  // measured zero, and analyze --diff flags null-vs-number as schema drift.
  out += ", \"mean\": ";
  if (count_ > 0) append_double(out, mean()); else out += "null";
  out += ", \"p50\": ";
  if (count_ > 0) append_double(out, quantile(0.50)); else out += "null";
  out += ", \"p90\": ";
  if (count_ > 0) append_double(out, quantile(0.90)); else out += "null";
  out += ", \"p99\": ";
  if (count_ > 0) append_double(out, quantile(0.99)); else out += "null";
  out += ", \"buckets\": [";
  bool first = true;
  for (int b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "[";
    append_uint(out, static_cast<std::uint64_t>(b));
    out += ", ";
    append_uint(out, n);
    out += "]";
  }
  out += "]}";
  return out;
}

}  // namespace qp::obs
