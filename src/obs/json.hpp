#pragma once

/// \file json.hpp
/// Minimal recursive-descent JSON reader for the observability tooling.
///
/// The obs layer *writes* JSON by direct string building (run_report.hpp,
/// access_log.hpp); this is the matching *reader* used by `qplace analyze`
/// to load access logs, run reports (`qplace.run_report.v1`), and the
/// committed bench baseline back into memory for cross-checking and
/// diffing. It is deliberately small: strict JSON, doubles for all numbers
/// (every value we emit round-trips through %.17g), objects as sorted maps
/// so iteration order matches the sorted-key emission contract.

#include <map>
#include <string>
#include <vector>

namespace qp::obs::json {

/// One JSON value; a tagged union over the seven JSON shapes (integers are
/// not distinguished from doubles -- all emitters in this repo print
/// numbers that a double represents exactly or that only feed tolerance
/// comparisons).
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  /// Member of an object as a string/number with a fallback when the key is
  /// absent or has a different type.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_number(const std::string& key, double fallback) const;
};

/// Parses one JSON document (leading/trailing whitespace allowed).
/// \throws std::runtime_error on malformed input, with position context.
Value parse(const std::string& text);

}  // namespace qp::obs::json
