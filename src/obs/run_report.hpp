#pragma once

/// \file run_report.hpp
/// Structured run report: one JSON document summarizing a solver run.
///
/// Schema (docs/OBSERVABILITY.md, `qplace.run_report.v1`):
///
///   {
///     "schema": "qplace.run_report.v1",
///     "command": "<cli command or binary name>",
///     "context": {"<key>": "<string value>", ...},
///     "deterministic": {              // bit-identical across thread counts
///       "counters":   {"<name>": <uint>, ...},
///       "series":     {"<name>": [<double>, ...], ...},
///       "histograms": {"<name>": {<histogram.hpp to_json()>}, ...}
///     },
///     "nondeterministic": {           // wall clock, scheduling, host
///       "timers": {"<name>": {"calls": <uint>, "total_ms": <double>}, ...},
///       "gauges": {"<name>": <double>, ...},
///       "resources": {"max_rss_kb": <uint>,  // getrusage(); POSIX only
///                     "page_faults_major": <uint>,
///                     "page_faults_minor": <uint>},
///       "<extra section>": {...}      // e.g. "pool" from exec
///     }
///   }
///
/// The deterministic/nondeterministic split is load-bearing: tests and CI
/// compare the "deterministic" subtree byte-for-byte between `--threads 1`
/// and `--threads 8` runs (the docs/PARALLEL.md contract extended to
/// observability), while timers/gauges/pool live where no such promise is
/// made. Keys inside each object are emitted in sorted order so equal data
/// serializes to equal bytes.

#include <map>
#include <string>

#include "obs/histogram.hpp"

namespace qp::obs {

class RunReport {
 public:
  explicit RunReport(std::string command) : command_(std::move(command)) {}

  /// Adds a context key (echoed verbatim; use for flags, algorithm, seed).
  void set_context(const std::string& key, const std::string& value);

  /// The accumulated context map; other artifact writers (the profiler's
  /// `qplace.profile.v1` document) echo the same provenance block.
  const std::map<std::string, std::string>& context() const {
    return context_;
  }

  /// Adds a named histogram to the deterministic section.
  void add_histogram(const std::string& name, const LogHistogram& histogram);

  /// Splices a raw JSON object under the given key of the nondeterministic
  /// section (e.g. "pool" -> exec::pool_stats_json()). `json` must be a
  /// complete JSON value.
  void add_nondeterministic_json(const std::string& key,
                                 const std::string& json);

  /// Serializes the report, snapshotting the Registry at call time.
  std::string to_json() const;

 private:
  std::string command_;
  std::map<std::string, std::string> context_;
  std::map<std::string, std::string> histograms_;  // name -> rendered JSON
  std::map<std::string, std::string> extra_nondeterministic_;
  // getrusage snapshot, rendered once at the first to_json() call so a
  // report serializes to the same bytes every time (serialization itself
  // faults pages and would otherwise perturb the counts).
  mutable std::string resources_json_;
};

/// Writes `contents` to `path` atomically enough for CLI use (truncate +
/// write). \throws std::runtime_error when the file cannot be written.
void write_file(const std::string& path, const std::string& contents);

}  // namespace qp::obs
