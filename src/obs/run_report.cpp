#include "obs/run_report.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/obs.hpp"

namespace qp::obs {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_string(std::string& out, const std::string& text) {
  out.push_back('"');
  append_escaped(out, text);
  out.push_back('"');
}

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_uint(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

/// Emits `"key": <value>` pairs of a pre-rendered map as a JSON object.
void append_object(std::string& out,
                   const std::map<std::string, std::string>& rendered) {
  out.push_back('{');
  bool first = true;
  for (const auto& [key, value] : rendered) {
    if (!first) out += ", ";
    first = false;
    append_string(out, key);
    out += ": ";
    out += value;
  }
  out.push_back('}');
}

}  // namespace

void RunReport::set_context(const std::string& key, const std::string& value) {
  context_[key] = value;
}

void RunReport::add_histogram(const std::string& name,
                              const LogHistogram& histogram) {
  histograms_[name] = histogram.to_json();
}

void RunReport::add_nondeterministic_json(const std::string& key,
                                          const std::string& json) {
  extra_nondeterministic_[key] = json;
}

std::string RunReport::to_json() const {
  const Registry& registry = Registry::instance();

  std::string out = "{\"schema\": \"qplace.run_report.v1\", \"command\": ";
  append_string(out, command_);

  out += ", \"context\": ";
  {
    std::map<std::string, std::string> rendered;
    for (const auto& [key, value] : context_) {
      std::string cell;
      append_string(cell, value);
      rendered[key] = cell;
    }
    append_object(out, rendered);
  }

  out += ", \"deterministic\": {\"counters\": ";
  {
    std::map<std::string, std::string> rendered;
    for (const auto& [name, value] : registry.counter_values()) {
      std::string cell;
      append_uint(cell, value);
      rendered[name] = cell;
    }
    append_object(out, rendered);
  }
  out += ", \"series\": ";
  {
    std::map<std::string, std::string> rendered;
    for (const auto& [name, values] : registry.series_values()) {
      std::string cell = "[";
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) cell += ", ";
        append_double(cell, values[i]);
      }
      cell += "]";
      rendered[name] = cell;
    }
    append_object(out, rendered);
  }
  out += ", \"histograms\": ";
  append_object(out, histograms_);
  out += "}";

  out += ", \"nondeterministic\": {\"timers\": ";
  {
    std::map<std::string, std::string> rendered;
    for (const auto& [name, stat] : registry.timer_values()) {
      std::string cell = "{\"calls\": ";
      append_uint(cell, stat.first);
      cell += ", \"total_ms\": ";
      append_double(cell, stat.second);
      cell += "}";
      rendered[name] = cell;
    }
    append_object(out, rendered);
  }
  out += ", \"gauges\": ";
  {
    std::map<std::string, std::string> rendered;
    for (const auto& [name, value] : registry.gauge_values()) {
      std::string cell;
      append_double(cell, value);
      rendered[name] = cell;
    }
    append_object(out, rendered);
  }
#if defined(__unix__) || defined(__APPLE__)
  // Process-level resource footprint: wall-class data (the RSS peak depends
  // on scheduling, allocator behavior, and thread count), so it lives
  // outside the deterministic subtree. Sampled once, at the first
  // serialization, so rendering a report twice yields equal bytes even
  // though serialization itself faults pages. ru_maxrss is kilobytes on
  // Linux, bytes on macOS -- normalized to kB here.
  if (resources_json_.empty()) {
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
      std::uint64_t max_rss_kb = static_cast<std::uint64_t>(usage.ru_maxrss);
#if defined(__APPLE__)
      max_rss_kb /= 1024;
#endif
      resources_json_ = "{\"max_rss_kb\": ";
      append_uint(resources_json_, max_rss_kb);
      resources_json_ += ", \"page_faults_major\": ";
      append_uint(resources_json_,
                  static_cast<std::uint64_t>(usage.ru_majflt));
      resources_json_ += ", \"page_faults_minor\": ";
      append_uint(resources_json_,
                  static_cast<std::uint64_t>(usage.ru_minflt));
      resources_json_ += "}";
    }
  }
#endif
  if (!resources_json_.empty()) {
    out += ", \"resources\": ";
    out += resources_json_;
  }
  for (const auto& [key, json] : extra_nondeterministic_) {
    out += ", ";
    append_string(out, key);
    out += ": ";
    out += json;
  }
  out += "}}";
  return out;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream stream(path, std::ios::binary | std::ios::trunc);
  if (!stream) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  stream << contents;
  if (!stream) {
    throw std::runtime_error("failed writing '" + path + "'");
  }
}

}  // namespace qp::obs
