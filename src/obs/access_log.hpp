#pragma once

/// \file access_log.hpp
/// Per-access event log for the message-level simulator (schema
/// `qplace.access_log.v2`, docs/OBSERVABILITY.md §5, docs/SIMULATION.md).
///
/// The aggregate observability layer (histograms, counters) answers "what
/// was the latency distribution?"; this log answers the paper's
/// *per-access* questions: which client saw which delta_f(v, Q), through
/// which relay, against which quorum, split into network delay and queue
/// wait per quorum element -- and, under fault injection, how many attempts
/// the access needed and how it ended. One JSONL line per resolved
/// post-warmup access (completed OR failed):
///
///   {"id": 12, "client": 3, "quorum": 1, "relay": -1,
///    "attempts": 2, "outcome": "ok", "start": 1.25, "finish": 3.5,
///    "probes": [[element, node, net_delay, queue_wait], ...]}
///
/// `attempts` counts quorum selections (1 without retries); `outcome` is
/// "ok", "timeout" (K attempts all timed out) or "unavailable" (no live
/// quorum at re-selection). The probes array describes the FINAL attempt;
/// a probe that never replied (dropped by a crash/partition, or still in
/// flight when the attempt timed out) carries net_delay = -1. Readers of
/// the v1 schema see the two fields defaulted (attempts = 1, outcome ok):
/// parse_access_log accepts both versions.
///
/// The header line carries the schema tag and a string-valued context map
/// (instance digest, mode, seed, sampling knobs, fault-schedule digest):
///
///   {"schema": "qplace.access_log.v2", "context": {"seed": "1", ...}}
///
/// Determinism contract: the simulator's event loop is sequential, so the
/// full byte stream is a pure function of (instance, placement, config) --
/// bit-identical across `--threads 1` and `--threads 8` like every other
/// deterministic artifact (docs/PARALLEL.md). Lines are emitted sorted by
/// access id (= access start order); accesses still in flight at the
/// horizon are absent, exactly as they are absent from the aggregate
/// statistics.
///
/// Sampling keeps million-access runs bounded without perturbing the
/// simulation: the keep/drop decision for access id hashes (sample_seed,
/// id) and never touches the simulation's RNG, so
///  - a sampled log is a subset of the full log, in the same order, and
///  - a head-limited log is an exact byte prefix of the unlimited one.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace qp::obs {

/// One probe of an access: quorum element, the node hosting it, the network
/// (propagation) delay of the probe, and the FIFO wait before service
/// (0 without queueing or when the probe never reached service).
struct AccessProbe {
  int element = 0;
  int node = 0;
  /// One-way propagation delay; -1 when the probe never replied (dropped
  /// by a crash/partition or unanswered at the attempt deadline).
  double net_delay = 0.0;
  double queue_wait = 0.0;
};

/// How an access resolved (docs/SIMULATION.md). Everything except kOk only
/// occurs under fault injection / probe timeouts.
enum class AccessOutcome {
  kOk,           ///< a quorum replied in full within the deadline
  kTimeout,      ///< all K attempts timed out
  kUnavailable,  ///< no live quorum existed at re-selection time
};

/// Schema spelling of an outcome ("ok" / "timeout" / "unavailable").
std::string access_outcome_name(AccessOutcome outcome);
/// Inverse of access_outcome_name. \throws std::runtime_error on an
/// unknown spelling.
AccessOutcome access_outcome_from_name(const std::string& name);

/// One resolved quorum access.
struct AccessRecord {
  std::int64_t id = 0;  ///< sequential in access start order
  int client = 0;
  int quorum = 0;   ///< final attempt's quorum index
  int relay = -1;   ///< Thm 1.2 relay v0 when routed through one, else -1
  int attempts = 1;  ///< quorum selections, 1 without retries
  AccessOutcome outcome = AccessOutcome::kOk;
  double start = 0.0;
  double finish = 0.0;  ///< completion, or the time of the failure verdict
  std::vector<AccessProbe> probes;  ///< final attempt only
};

/// Sampling knobs. Both filters compose: the probabilistic filter picks the
/// survivor set, the head limit truncates it.
struct AccessLogConfig {
  /// Keep each access independently with this probability (1 = keep all).
  /// Must lie in [0, 1].
  double sample_rate = 1.0;
  /// Keep at most this many (surviving) records; 0 = unlimited.
  std::int64_t head_limit = 0;
  /// Seed of the sampling hash. Deliberately separate from the simulation
  /// seed so changing it re-samples without re-simulating.
  std::uint64_t sample_seed = 0;
};

/// Renders one record as a compact single-line JSON object (no newline).
/// Doubles use %.17g, the repo-wide byte-stable float format.
std::string render_access_record(const AccessRecord& record);

/// Deterministic per-id keep/drop decision of the probabilistic filter.
bool access_log_sampled(const AccessLogConfig& config, std::int64_t id);

/// Collects sampled records during a simulation and writes the JSONL
/// document to a stream on close(). Records are buffered (only the sampled
/// ones -- that is what bounds memory on huge runs) and flushed sorted by
/// id, so the byte stream is independent of completion order.
class AccessLogWriter {
 public:
  /// \p out must outlive the writer. \throws std::invalid_argument when
  /// sample_rate is outside [0, 1] or head_limit is negative.
  AccessLogWriter(std::ostream& out, AccessLogConfig config);
  ~AccessLogWriter();
  AccessLogWriter(const AccessLogWriter&) = delete;
  AccessLogWriter& operator=(const AccessLogWriter&) = delete;

  /// Context echoed into the header line (string-valued, like the run
  /// report's context). Call before close().
  void set_context(const std::string& key, const std::string& value);

  /// True when the record with this id would be kept by the probabilistic
  /// filter -- callers may skip building the record otherwise.
  bool sampled(std::int64_t id) const {
    return access_log_sampled(config_, id);
  }

  /// Buffers the record if sampled. Ids must be unique across the run.
  void record(AccessRecord record);

  /// Writes header + records (sorted by id, head-truncated) and flushes.
  /// Idempotent; also invoked by the destructor.
  void close();

  std::int64_t recorded() const {
    return static_cast<std::int64_t>(buffered_.size());
  }

 private:
  std::ostream& out_;
  AccessLogConfig config_;
  std::map<std::string, std::string> context_;
  std::vector<std::pair<std::int64_t, std::string>> buffered_;
  bool closed_ = false;
};

/// A parsed access log: the header's context map plus all records.
struct ParsedAccessLog {
  std::map<std::string, std::string> context;
  std::vector<AccessRecord> records;

  /// Context value lookup with fallback.
  std::string context_or(const std::string& key,
                         const std::string& fallback) const;
};

/// Parses a `qplace.access_log.v2` (or legacy v1) JSONL document; v1
/// records get attempts = 1 and outcome "ok".
/// \throws std::runtime_error on malformed JSON, a missing/foreign schema
/// tag, or records missing required fields.
ParsedAccessLog parse_access_log(std::istream& in);

}  // namespace qp::obs
