#pragma once

/// \file histogram.hpp
/// Streaming histogram with a fixed logarithmic bucket layout.
///
/// Bucket boundaries are a pure function of the layout constants -- never of
/// the data, the insertion order, or the thread count -- so two histograms
/// fed the same multiset of samples have bit-identical bucket counts, and
/// merge() (bucket-wise integer addition) is deterministic in any order.
/// This is the histogram analogue of the docs/PARALLEL.md determinism
/// contract and is what lets tests compare simulator latency distributions
/// across `--threads 1` and `--threads 8` exactly.
///
/// Layout: kBucketsPerOctave sub-buckets per power of two covering
/// [2^kMinExponent, 2^kMaxExponent); samples below the range (including 0
/// and negatives) land in a dedicated underflow bucket, samples at or above
/// the top in an overflow bucket. With 8 sub-buckets per octave the relative
/// width of a bucket is 2^(1/8) - 1 < 9.1%, which bounds the quantile
/// estimation error (quantiles report the upper bound of the target
/// bucket).

#include <cstdint>
#include <string>
#include <vector>

namespace qp::obs {

class LogHistogram {
 public:
  static constexpr int kBucketsPerOctave = 8;
  static constexpr int kMinExponent = -20;  ///< lowest bucket ~ 9.5e-7
  static constexpr int kMaxExponent = 30;   ///< highest bucket ~ 1.07e9
  static constexpr int kNumBuckets =
      (kMaxExponent - kMinExponent) * kBucketsPerOctave;

  LogHistogram();

  void record(double value);

  /// Bucket-wise addition; also folds count/underflow/overflow/min/max/sum.
  void merge(const LogHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Smallest / largest recorded value; 0 when empty.
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Mean of the recorded values; NaN when empty (an empty histogram has no
  /// mean -- callers must not mistake it for "mean 0"; `qplace simulate`
  /// skips the quantile rows in that case).
  double mean() const;

  /// Value at quantile q in [0, 1]: the upper bound of the bucket containing
  /// the ceil(q * count)-th smallest sample (clamped to [min, max];
  /// underflow counts resolve to min(), overflow to max()). Returns NaN
  /// when the histogram is empty (there is no such sample; a zero would
  /// fabricate a bucket bound from no data).
  /// \throws std::invalid_argument when q is outside [0, 1], empty or not.
  double quantile(double q) const;

  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Inclusive-exclusive value range [lower, upper) of a bucket index.
  static double bucket_lower_bound(int bucket);
  static double bucket_upper_bound(int bucket);
  /// Bucket index for a value inside the covered range; -1 for underflow,
  /// kNumBuckets for overflow.
  static int bucket_index(double value);

  /// JSON object with the deterministic fields only:
  ///   {"count": N, "underflow": U, "overflow": O, "min": m, "max": M,
  ///    "sum": S, "p50": ..., "p90": ..., "p99": ...,
  ///    "buckets": [[index, count], ...]}   (non-empty buckets only)
  /// mean/p50/p90/p99 are JSON null when the histogram is empty (they are
  /// NaN -- see mean()/quantile(); a 0.0 would be indistinguishable from a
  /// real measured zero).
  std::string to_json() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace qp::obs
