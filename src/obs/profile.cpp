#include "obs/profile.hpp"

#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

#include "obs/obs.hpp"

namespace qp::obs {

namespace profile_detail {
std::atomic<bool> g_profile_enabled{false};
}  // namespace profile_detail

namespace {

struct ProfileEvent {
  enum class Kind : std::uint8_t {
    kEnter,         // open a span named `name` under the current frame
    kExit,          // close it: duration + self counter deltas
    kAmbientEnter,  // jump attribution to the absolute path `path`
    kAmbientExit,   // restore; carries the frame's self counter deltas
  };

  Kind kind = Kind::kEnter;
  const char* name = nullptr;  ///< string literal; never owned
  std::int64_t dur_nanos = 0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> deltas;
  std::vector<const char*> path;  ///< kAmbientEnter only
};

/// One open frame of the live (not-yet-exited) span stack. Counter adds
/// accrue to the innermost frame's delta map -- self attribution: a nested
/// span's adds land in the nested frame, never the parent's.
struct LiveFrame {
  const char* name = nullptr;
  std::vector<const char*> ambient_path;
  bool ambient = false;
  std::map<std::uint32_t, std::uint64_t> deltas;
};

std::vector<std::pair<std::uint32_t, std::uint64_t>> flatten(
    std::map<std::uint32_t, std::uint64_t>&& deltas) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  out.reserve(deltas.size());
  for (const auto& [id, delta] : deltas) out.emplace_back(id, delta);
  return out;
}

// ------------------------------------------------------------- JSON helpers

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_string(std::string& out, const std::string& text) {
  out.push_back('"');
  append_escaped(out, text);
  out.push_back('"');
}

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_uint(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

/// Deterministic subtree of one node: {"counters": {...}, "children": {...}}.
void append_deterministic(std::string& out, const ProfileNode& node) {
  out += "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : node.counters) {
    if (!first) out += ", ";
    first = false;
    append_string(out, name);
    out += ": ";
    append_uint(out, value);
  }
  out += "}, \"children\": {";
  first = true;
  for (const auto& [name, child] : node.children) {
    if (!first) out += ", ";
    first = false;
    append_string(out, name);
    out += ": ";
    append_deterministic(out, child);
  }
  out += "}}";
}

/// Wall-class subtree of one node:
/// {"calls": N, "children": {...}, "self_ms": S, "total_ms": T}.
void append_nondeterministic(std::string& out, const ProfileNode& node) {
  out += "{\"calls\": ";
  append_uint(out, node.calls);
  out += ", \"children\": {";
  bool first = true;
  for (const auto& [name, child] : node.children) {
    if (!first) out += ", ";
    first = false;
    append_string(out, name);
    out += ": ";
    append_nondeterministic(out, child);
  }
  out += "}, \"self_ms\": ";
  append_double(out, static_cast<double>(node.self_nanos()) / 1e6);
  out += ", \"total_ms\": ";
  append_double(out, static_cast<double>(node.total_nanos) / 1e6);
  out += "}";
}

void append_folded(std::string& out, const ProfileNode& node,
                   const std::string& prefix) {
  for (const auto& [name, child] : node.children) {
    const std::string path = prefix.empty() ? name : prefix + ";" + name;
    out += path;
    out.push_back(' ');
    append_uint(out, static_cast<std::uint64_t>(
                         child.self_nanos() > 0 ? child.self_nanos() / 1000
                                                : 0));
    out.push_back('\n');
    append_folded(out, child, path);
  }
}

}  // namespace

// ---------------------------------------------------------- per-thread state

/// Per-thread event ring plus the live attribution stack. Only the owning
/// thread writes; merges happen from sequential code after parallel regions
/// complete (the pool's job-completion handshake provides the needed
/// happens-before edge), exactly like TraceRecorder::ThreadBuffer.
struct ProfileCollector::ThreadState {
  explicit ThreadState(int id) : tid(id) { ring.resize(kRingCapacity); }

  std::vector<ProfileEvent> ring;
  std::size_t size = 0;  ///< valid events, <= kRingCapacity
  std::size_t next = 0;  ///< next write slot
  std::uint64_t dropped = 0;

  std::vector<LiveFrame> live;
  /// Increments made with no span open on this thread (top-level glue
  /// code); folded into the root node's own counters.
  std::map<std::uint32_t, std::uint64_t> root_deltas;
  /// Attribution salvaged from evicted exit events -- folded into the
  /// `<truncated>` node so ring overflow loses placement, not totals.
  std::map<std::uint32_t, std::uint64_t> truncated_deltas;
  std::int64_t truncated_nanos = 0;
  std::uint64_t truncated_calls = 0;

  int tid = 0;
};

namespace {

std::mutex g_profile_mutex;  // guards state registration, fold, and clear
std::vector<std::unique_ptr<ProfileCollector::ThreadState>>& states() {
  static std::vector<std::unique_ptr<ProfileCollector::ThreadState>> instance;
  return instance;
}

thread_local ProfileCollector::ThreadState* tl_state = nullptr;

ProfileCollector::ThreadState& local_state() {
  if (tl_state == nullptr) {
    std::lock_guard<std::mutex> lock(g_profile_mutex);
    auto state = std::make_unique<ProfileCollector::ThreadState>(
        static_cast<int>(states().size()));
    tl_state = state.get();
    states().push_back(std::move(state));
  }
  return *tl_state;
}

/// Appends one event, overwriting the oldest when the ring is full. Evicted
/// exits carry attributed deltas/durations; those are salvaged into the
/// thread's `<truncated>` accumulator (an event's exit is always newer than
/// its enter, so by the time an exit is evicted its enter is already gone).
void push_event(ProfileCollector::ThreadState& state, ProfileEvent&& event) {
  ProfileEvent& slot = state.ring[state.next];
  if (state.size == ProfileCollector::kRingCapacity) {
    ++state.dropped;
    if (slot.kind == ProfileEvent::Kind::kExit) {
      ++state.truncated_calls;
      state.truncated_nanos += slot.dur_nanos;
      for (const auto& [id, delta] : slot.deltas) {
        state.truncated_deltas[id] += delta;
      }
    } else if (slot.kind == ProfileEvent::Kind::kAmbientExit) {
      for (const auto& [id, delta] : slot.deltas) {
        state.truncated_deltas[id] += delta;
      }
    }
  }
  slot = std::move(event);
  state.next = (state.next + 1) % ProfileCollector::kRingCapacity;
  if (state.size < ProfileCollector::kRingCapacity) ++state.size;
}

}  // namespace

namespace profile_detail {

void on_counter_add(std::uint32_t id, std::uint64_t delta) {
  ProfileCollector::ThreadState& state = local_state();
  if (!state.live.empty()) {
    state.live.back().deltas[id] += delta;
  } else {
    state.root_deltas[id] += delta;
  }
}

}  // namespace profile_detail

// -------------------------------------------------------------- collector

ProfileCollector& ProfileCollector::instance() {
  static ProfileCollector collector;
  return collector;
}

void ProfileCollector::set_enabled(bool enabled) {
  profile_detail::g_profile_enabled.store(enabled,
                                          std::memory_order_relaxed);
}

bool ProfileCollector::enabled() const {
  return profile_detail::g_profile_enabled.load(std::memory_order_relaxed);
}

void ProfileCollector::on_span_enter(const char* name) {
  ThreadState& state = local_state();
  ProfileEvent event;
  event.kind = ProfileEvent::Kind::kEnter;
  event.name = name;
  push_event(state, std::move(event));
  LiveFrame frame;
  frame.name = name;
  state.live.push_back(std::move(frame));
}

void ProfileCollector::on_span_exit(const char* name,
                                    std::int64_t dur_nanos) {
  ThreadState& state = local_state();
  ProfileEvent event;
  event.kind = ProfileEvent::Kind::kExit;
  event.name = name;
  event.dur_nanos = dur_nanos;
  if (!state.live.empty() && !state.live.back().ambient) {
    event.deltas = flatten(std::move(state.live.back().deltas));
    state.live.pop_back();
  }
  push_event(state, std::move(event));
}

std::vector<const char*> ProfileCollector::current_path() const {
  if (tl_state == nullptr) return {};
  const ThreadState& state = *tl_state;
  std::vector<const char*> path;
  std::size_t start = 0;
  for (std::size_t i = state.live.size(); i > 0; --i) {
    if (state.live[i - 1].ambient) {
      path = state.live[i - 1].ambient_path;
      start = i;
      break;
    }
  }
  for (std::size_t i = start; i < state.live.size(); ++i) {
    path.push_back(state.live[i].name);
  }
  return path;
}

void ProfileCollector::ambient_enter(const std::vector<const char*>& path) {
  ThreadState& state = local_state();
  ProfileEvent event;
  event.kind = ProfileEvent::Kind::kAmbientEnter;
  event.path = path;
  push_event(state, std::move(event));
  LiveFrame frame;
  frame.ambient = true;
  frame.ambient_path = path;
  state.live.push_back(std::move(frame));
}

void ProfileCollector::ambient_exit() {
  ThreadState& state = local_state();
  ProfileEvent event;
  event.kind = ProfileEvent::Kind::kAmbientExit;
  if (!state.live.empty() && state.live.back().ambient) {
    event.deltas = flatten(std::move(state.live.back().deltas));
    state.live.pop_back();
  }
  push_event(state, std::move(event));
}

std::uint64_t ProfileCollector::dropped_count() const {
  std::lock_guard<std::mutex> lock(g_profile_mutex);
  std::uint64_t total = 0;
  for (const auto& state : states()) total += state->dropped;
  return total;
}

void ProfileCollector::clear() {
  std::lock_guard<std::mutex> lock(g_profile_mutex);
  for (const auto& state : states()) {
    state->size = 0;
    state->next = 0;
    state->dropped = 0;
    state->live.clear();
    state->root_deltas.clear();
    state->truncated_deltas.clear();
    state->truncated_nanos = 0;
    state->truncated_calls = 0;
  }
}

Profile ProfileCollector::fold(
    const std::vector<std::string>& counter_names) const {
  std::lock_guard<std::mutex> lock(g_profile_mutex);
  Profile profile;

  const auto counter_name = [&counter_names](std::uint32_t id) {
    return id < counter_names.size() ? counter_names[id]
                                     : "counter#" + std::to_string(id);
  };

  for (const auto& state_ptr : states()) {
    const ThreadState& state = *state_ptr;
    const bool has_data = state.size > 0 || !state.root_deltas.empty() ||
                          state.dropped > 0;
    if (!has_data) continue;
    ++profile.threads;
    profile.dropped += state.dropped;

    const std::size_t oldest =
        (state.next + kRingCapacity - state.size) % kRingCapacity;
    const auto event_at = [&state, oldest](std::size_t i) -> const
        ProfileEvent& { return state.ring[(oldest + i) % kRingCapacity]; };

    // Pre-scan: exits beyond the enters still in the ring belong to spans
    // whose enter was evicted. They must not pop past the root -- replay
    // starts from that many synthetic frames, all parked on `<truncated>`,
    // so orphaned children re-parent there explicitly.
    long depth = 0;
    long min_depth = 0;
    for (std::size_t i = 0; i < state.size; ++i) {
      const ProfileEvent::Kind kind = event_at(i).kind;
      depth += (kind == ProfileEvent::Kind::kEnter ||
                kind == ProfileEvent::Kind::kAmbientEnter)
                   ? 1
                   : -1;
      if (depth < min_depth) min_depth = depth;
    }
    const std::size_t unmatched =
        min_depth < 0 ? static_cast<std::size_t>(-min_depth) : 0;

    std::vector<ProfileNode*> stack;
    stack.push_back(&profile.root);
    if (unmatched > 0) {
      ProfileNode& truncated = profile.root.children[kTruncatedName];
      for (std::size_t i = 0; i < unmatched; ++i) {
        stack.push_back(&truncated);
      }
    }

    for (std::size_t i = 0; i < state.size; ++i) {
      const ProfileEvent& event = event_at(i);
      switch (event.kind) {
        case ProfileEvent::Kind::kEnter:
          stack.push_back(&stack.back()->children[event.name]);
          break;
        case ProfileEvent::Kind::kAmbientEnter: {
          ProfileNode* node = &profile.root;
          for (const char* name : event.path) node = &node->children[name];
          stack.push_back(node);
          break;
        }
        case ProfileEvent::Kind::kExit: {
          ProfileNode& node = *stack.back();
          if (stack.size() > 1) stack.pop_back();
          node.calls += 1;
          node.total_nanos += event.dur_nanos;
          for (const auto& [id, delta] : event.deltas) {
            node.counters[counter_name(id)] += delta;
          }
          break;
        }
        case ProfileEvent::Kind::kAmbientExit: {
          ProfileNode& node = *stack.back();
          if (stack.size() > 1) stack.pop_back();
          for (const auto& [id, delta] : event.deltas) {
            node.counters[counter_name(id)] += delta;
          }
          break;
        }
      }
    }

    for (const auto& [id, delta] : state.root_deltas) {
      profile.root.counters[counter_name(id)] += delta;
    }
    if (state.truncated_calls > 0 || state.truncated_nanos > 0 ||
        !state.truncated_deltas.empty()) {
      ProfileNode& truncated = profile.root.children[kTruncatedName];
      truncated.calls += state.truncated_calls;
      truncated.total_nanos += state.truncated_nanos;
      for (const auto& [id, delta] : state.truncated_deltas) {
        truncated.counters[counter_name(id)] += delta;
      }
    }
  }

  // The root's total is the cover of its children; it has no duration of
  // its own (self_nanos() == 0 by construction).
  std::int64_t total = 0;
  for (const auto& [name, child] : profile.root.children) {
    total += child.total_nanos;
  }
  profile.root.total_nanos = total;
  return profile;
}

// ---------------------------------------------------------------- profile

std::int64_t ProfileNode::self_nanos() const {
  std::int64_t children_total = 0;
  for (const auto& [name, child] : children) {
    children_total += child.total_nanos;
  }
  const std::int64_t self = total_nanos - children_total;
  return self > 0 ? self : 0;
}

std::string Profile::to_json(
    const std::string& command,
    const std::map<std::string, std::string>& context) const {
  std::string out = "{\"schema\": \"qplace.profile.v1\", \"command\": ";
  append_string(out, command);
  out += ", \"context\": {";
  bool first = true;
  for (const auto& [key, value] : context) {
    if (!first) out += ", ";
    first = false;
    append_string(out, key);
    out += ": ";
    append_string(out, value);
  }
  out += "}, \"deterministic\": {\"root\": ";
  append_deterministic(out, root);
  out += "}, \"nondeterministic\": {\"dropped\": ";
  append_uint(out, dropped);
  out += ", \"root\": ";
  append_nondeterministic(out, root);
  out += ", \"threads\": ";
  append_uint(out, threads);
  out += "}}";
  return out;
}

std::string Profile::to_folded() const {
  std::string out;
  append_folded(out, root, "");
  return out;
}

// --------------------------------------------------------------- ambient

ProfileAmbientScope::ProfileAmbientScope(
    const std::vector<const char*>* path) {
  if (path == nullptr) return;
  ProfileCollector::instance().ambient_enter(*path);
  active_ = true;
}

ProfileAmbientScope::~ProfileAmbientScope() {
  if (active_) ProfileCollector::instance().ambient_exit();
}

}  // namespace qp::obs
