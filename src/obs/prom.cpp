#include "obs/prom.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/obs.hpp"

namespace qp::obs {

namespace {

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_uint(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

bool prometheus_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_type(std::string& out, const std::string& name,
                 const char* type) {
  out += "# TYPE ";
  out += name;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "qplace_";
  for (const char c : name) {
    out.push_back(prometheus_char(c) ? c : '_');
  }
  return out;
}

std::string render_prometheus(const Registry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.counter_values()) {
    const std::string metric = prometheus_name(name) + "_total";
    append_type(out, metric, "counter");
    out += metric;
    out.push_back(' ');
    append_uint(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : registry.gauge_values()) {
    const std::string metric = prometheus_name(name);
    append_type(out, metric, "gauge");
    out += metric;
    out.push_back(' ');
    append_double(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, stat] : registry.timer_values()) {
    const std::string base = prometheus_name(name);
    const std::string seconds = base + "_seconds_total";
    append_type(out, seconds, "counter");
    out += seconds;
    out.push_back(' ');
    append_double(out, stat.second / 1e3);  // timer_values reports ms
    out.push_back('\n');
    const std::string calls = base + "_calls_total";
    append_type(out, calls, "counter");
    out += calls;
    out.push_back(' ');
    append_uint(out, stat.first);
    out.push_back('\n');
  }
  for (const auto& [name, values] : registry.series_values()) {
    if (values.empty()) continue;
    const std::string metric = prometheus_name(name);
    append_type(out, metric, "gauge");
    out += metric;
    out.push_back(' ');
    append_double(out, values.back());
    out.push_back('\n');
  }
  return out;
}

std::string render_build_info(const std::string& git_sha,
                              const std::string& version,
                              bool obs_compiled_in) {
  const auto append_label_value = [](std::string& out,
                                     const std::string& value) {
    for (const char c : value) {
      if (c == '\\' || c == '"') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
  };
  std::string out;
  append_type(out, "qplace_build_info", "gauge");
  out += "qplace_build_info{git_sha=\"";
  append_label_value(out, git_sha);
  out += "\",obs=\"";
  out += obs_compiled_in ? "true" : "false";
  out += "\",version=\"";
  append_label_value(out, version);
  out += "\"} 1\n";
  return out;
}

void append_prometheus_summary(std::string& out, const std::string& name,
                               const HistogramPoint& point) {
  const std::string base = prometheus_name(name);
  append_type(out, base, "summary");
  if (point.count > 0) {
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", point.p50}, {"0.9", point.p90}, {"0.99", point.p99}};
    for (const auto& [label, value] : quantiles) {
      if (std::isnan(value)) continue;
      out += base;
      out += "{quantile=\"";
      out += label;
      out += "\"} ";
      append_double(out, value);
      out.push_back('\n');
    }
  }
  out += base;
  out += "_sum ";
  append_double(out, point.sum);
  out.push_back('\n');
  out += base;
  out += "_count ";
  append_uint(out, point.count);
  out.push_back('\n');
}

}  // namespace qp::obs
