#pragma once

/// \file telemetry.hpp
/// Live telemetry: periodic metrics snapshots and a TTY progress meter.
///
/// Everything in obs so far is post-hoc -- counters, histograms and logs
/// become visible only after a run exits. This file adds the *online* view
/// (docs/OBSERVABILITY.md §8):
///
///  - MetricsSnapshotter: samples the obs Registry (counters, gauges) plus
///    caller-registered LogHistograms and caller-provided values into a
///    bounded in-memory time-series ring. Snapshots are keyed by
///    *simulation time* for the deterministic subtree -- the simulator's
///    event loop is sequential, so the registry state at sim-time t is a
///    pure function of (instance, placement, config) and the snapshot
///    sequence obeys the docs/PARALLEL.md determinism contract -- and by
///    wall time for the rest. to_jsonl() flushes the ring as a
///    `qplace.timeseries.v1` JSONL document whose per-record
///    "deterministic" objects are byte-identical across thread counts.
///  - ProgressMeter: a single live TTY line (accesses/s, availability, p99
///    vs the certified bound) redrawn in place for long runs. Rates are
///    wall-clock derived and never feed any deterministic artifact.
///
/// Thread-safety: sample() and the read accessors lock one mutex, so an
/// embedded admin endpoint (net/http_server.hpp) may serve latest() while
/// the simulation thread keeps sampling.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace qp::obs {

/// Deterministic digest of one watched histogram at sample time. Quantiles
/// are NaN when the histogram is empty (rendered as JSON null -- there is
/// no sample to bound; see LogHistogram::quantile).
struct HistogramPoint {
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// One sample of the time series. The deterministic members are a pure
/// function of sim_time and the run's configuration; wall_ms and gauges are
/// not and are segregated in the JSONL rendering, mirroring the run-report
/// split (run_report.hpp).
struct MetricsSnapshot {
  double sim_time = 0.0;                            // deterministic key
  std::map<std::string, std::uint64_t> counters;    // deterministic
  std::map<std::string, double> values;             // deterministic
  std::map<std::string, HistogramPoint> histograms; // deterministic
  double wall_ms = 0.0;                             // nondeterministic
  std::map<std::string, double> gauges;             // nondeterministic
};

struct TelemetryConfig {
  /// Snapshots held in memory; the oldest is evicted (and counted as
  /// dropped) when the ring is full. Must be >= 1.
  std::size_t capacity = 4096;
};

/// Bounded in-memory time series over the obs Registry.
class MetricsSnapshotter {
 public:
  /// \throws std::invalid_argument when capacity is 0.
  explicit MetricsSnapshotter(TelemetryConfig config = {});

  /// Context echoed into the JSONL header (string-valued, like the run
  /// report's context map).
  void set_context(const std::string& key, const std::string& value);

  /// Registers a histogram to digest at every sample. \p histogram is
  /// borrowed and must stay alive until unregistered (pass nullptr to
  /// unregister -- the simulator does this for its result histograms before
  /// returning); re-registering a name replaces the pointer.
  void watch_histogram(const std::string& name, const LogHistogram* histogram);

  /// Takes one snapshot keyed by \p sim_time: all Registry counters and
  /// gauges, every watched histogram, plus the caller-provided deterministic
  /// \p values (e.g. the simulator's current availability). Call from the
  /// thread that owns the deterministic state (the sim event loop).
  void sample(double sim_time,
              const std::map<std::string, double>& values = {});

  /// Snapshots currently held, oldest first (copy; the ring keeps going).
  std::vector<MetricsSnapshot> snapshots() const;
  /// Most recent snapshot, if any.
  std::optional<MetricsSnapshot> latest() const;
  std::size_t size() const;
  /// Snapshots evicted because the ring was full.
  std::uint64_t dropped() const;

  /// Renders the `qplace.timeseries.v1` JSONL document: one header line
  /// (schema, context, capacity, samples, dropped), then one line per held
  /// snapshot:
  ///   {"deterministic": {"t": <sim_time>, "counters": {...},
  ///                      "values": {...}, "histograms": {<name>:
  ///                      {"count": N, "sum": S, "p50": q|null, ...}}},
  ///    "nondeterministic": {"wall_ms": W, "gauges": {...}}}
  /// The "deterministic" objects are byte-identical across thread counts.
  std::string to_jsonl() const;

  /// Prometheus summary exposition of the latest snapshot's watched
  /// histograms (empty string when no snapshot was taken); see prom.hpp for
  /// the name mangling.
  std::string prometheus_summaries() const;

 private:
  mutable std::mutex mutex_;
  TelemetryConfig config_;
  std::map<std::string, std::string> context_;
  std::map<std::string, const LogHistogram*> watched_;
  std::deque<MetricsSnapshot> ring_;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// One progress tick, sim-time domain. Produced by the simulator
/// (sim::SimulationConfig::on_progress); consumed by ProgressMeter.
struct ProgressStats {
  double sim_time = 0.0;
  double duration = 0.0;        ///< horizon, for the percent display
  std::int64_t resolved = 0;    ///< completed + failed so far (measured)
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  double availability = 1.0;    ///< completed / resolved; 1 when none
  double p99 = 0.0;             ///< current p99 access delay; NaN when empty
};

/// Live single-line TTY progress display:
///   sim 42% t=420/1000 | 8123 ok + 4 failed (2031/s) | avail 0.9995 |
///   p99 3.21 = 0.71x bound
/// Redraws in place (carriage return, no newline) at most every ~100 ms of
/// wall time; finish() draws the final state and terminates the line. The
/// accesses/s rate is wall-clock derived and purely informational.
///
/// When the underlying stream is one of the standard streams and it is not
/// attached to a TTY (CI logs, `2>file` redirections), live redraws are
/// suppressed automatically: update() only records the latest stats and
/// finish() prints a single plain summary line -- no carriage returns or
/// erase padding ever reach a log file.
class ProgressMeter {
 public:
  /// \p certified_bound is the analytic delay bound the p99 is compared
  /// against (e.g. the Thm 1.2 certified mean bound); pass NaN to omit the
  /// comparison. \p out must outlive the meter (typically std::cerr).
  /// Liveness is auto-detected: isatty(stderr) for std::cerr/std::clog,
  /// isatty(stdout) for std::cout, live for any other stream (an
  /// ostringstream in tests has no file descriptor to consult).
  ProgressMeter(std::ostream& out, double certified_bound);

  /// As above with liveness forced; for tests and callers that already know
  /// the answer (e.g. an explicit --progress=plain mode).
  ProgressMeter(std::ostream& out, double certified_bound, bool live);

  /// True when in-place redraws are active.
  bool live() const { return live_; }

  void update(const ProgressStats& stats);
  /// Final unthrottled redraw plus a newline; idempotent. In non-live mode
  /// this is the only output the meter produces.
  void finish();

 private:
  void draw(const ProgressStats& stats);

  std::ostream& out_;
  double certified_bound_;
  bool live_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_draw_;
  ProgressStats last_stats_;
  bool drew_ = false;
  bool finished_ = false;
};

}  // namespace qp::obs
