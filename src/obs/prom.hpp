#pragma once

/// \file prom.hpp
/// Prometheus text-format exposition of the obs Registry.
///
/// Renders the live Registry (obs.hpp) in Prometheus text exposition format
/// 0.0.4 -- the `/metrics` payload of the embedded admin endpoint
/// (net/http_server.hpp, docs/OBSERVABILITY.md §8). No client library is
/// involved; the format is plain text and the Registry's snapshot accessors
/// are already safe to call concurrently with writers.
///
/// Name mangling: registry names are dot-separated (`sim.retries`);
/// Prometheus names admit [a-zA-Z0-9_:]. Every other character maps to '_'
/// and the `qplace_` namespace prefix is prepended:
///
///   counter  "sim.retries"      -> qplace_sim_retries_total       (counter)
///   gauge    "sim.duration"     -> qplace_sim_duration            (gauge)
///   timer    "lp.solve"         -> qplace_lp_solve_seconds_total  (counter)
///                                  qplace_lp_solve_calls_total    (counter)
///   series   "sls.objective"    -> qplace_sls_objective           (gauge,
///                                  last appended value; full trajectory is
///                                  report/JSONL territory)
///   watched histogram digests   -> qplace_<name> summary
///                                  ({quantile="0.5|0.9|0.99"} + _sum
///                                  + _count); quantile lines are omitted
///                                  while the histogram is empty
///                                  (MetricsSnapshotter::prometheus_summaries).

#include <string>

#include "obs/telemetry.hpp"

namespace qp::obs {

class Registry;

/// `qplace_` + \p name with every character outside [a-zA-Z0-9_:] replaced
/// by '_'.
std::string prometheus_name(const std::string& name);

/// Renders counters, gauges, timers and series of \p registry as Prometheus
/// text (one `# TYPE` line per family). Histogram summaries are appended
/// separately via MetricsSnapshotter::prometheus_summaries().
std::string render_prometheus(const Registry& registry);

/// Appends one summary family for a histogram digest: quantile samples
/// (omitted when the digest is empty), `_sum`, and `_count`.
void append_prometheus_summary(std::string& out, const std::string& name,
                               const HistogramPoint& point);

/// Renders the constant build-identity gauge
///   qplace_build_info{git_sha="...",obs="true",version="..."} 1
/// so scrapes can correlate live metrics with the producing build --
/// mirroring the RunReport context block (git_sha / obs_compiled_in).
/// Label values are escaped per the exposition format (backslash, quote,
/// newline).
std::string render_build_info(const std::string& git_sha,
                              const std::string& version,
                              bool obs_compiled_in);

}  // namespace qp::obs
