#include "obs/access_log.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace qp::obs {

namespace {

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_int(std::string& out, std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out += buf;
}

void append_escaped_string(std::string& out, const std::string& text) {
  out.push_back('"');
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

/// splitmix64 finalizer: a bijective avalanche mix, so consecutive access
/// ids map to effectively independent uniform draws.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30U)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27U)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31U);
}

}  // namespace

std::string access_outcome_name(AccessOutcome outcome) {
  switch (outcome) {
    case AccessOutcome::kOk:
      return "ok";
    case AccessOutcome::kTimeout:
      return "timeout";
    case AccessOutcome::kUnavailable:
      return "unavailable";
  }
  throw std::runtime_error("access_outcome_name: unknown outcome");
}

AccessOutcome access_outcome_from_name(const std::string& name) {
  if (name == "ok") return AccessOutcome::kOk;
  if (name == "timeout") return AccessOutcome::kTimeout;
  if (name == "unavailable") return AccessOutcome::kUnavailable;
  throw std::runtime_error("access log has unknown outcome '" + name + "'");
}

std::string render_access_record(const AccessRecord& record) {
  std::string out = "{\"id\": ";
  append_int(out, record.id);
  out += ", \"client\": ";
  append_int(out, record.client);
  out += ", \"quorum\": ";
  append_int(out, record.quorum);
  out += ", \"relay\": ";
  append_int(out, record.relay);
  out += ", \"attempts\": ";
  append_int(out, record.attempts);
  out += ", \"outcome\": ";
  append_escaped_string(out, access_outcome_name(record.outcome));
  out += ", \"start\": ";
  append_double(out, record.start);
  out += ", \"finish\": ";
  append_double(out, record.finish);
  out += ", \"probes\": [";
  for (std::size_t i = 0; i < record.probes.size(); ++i) {
    if (i > 0) out += ", ";
    const AccessProbe& probe = record.probes[i];
    out += "[";
    append_int(out, probe.element);
    out += ", ";
    append_int(out, probe.node);
    out += ", ";
    append_double(out, probe.net_delay);
    out += ", ";
    append_double(out, probe.queue_wait);
    out += "]";
  }
  out += "]}";
  return out;
}

bool access_log_sampled(const AccessLogConfig& config, std::int64_t id) {
  if (config.sample_rate >= 1.0) return true;
  if (config.sample_rate <= 0.0) return false;
  const std::uint64_t hash =
      mix64(config.sample_seed ^
            (static_cast<std::uint64_t>(id) * 0x9e3779b97f4a7c15ULL));
  // Top 53 bits -> uniform double in [0, 1).
  const double uniform =
      static_cast<double>(hash >> 11U) * 0x1.0p-53;
  return uniform < config.sample_rate;
}

AccessLogWriter::AccessLogWriter(std::ostream& out, AccessLogConfig config)
    : out_(out), config_(config) {
  if (!(config_.sample_rate >= 0.0) || config_.sample_rate > 1.0) {
    throw std::invalid_argument(
        "AccessLogWriter: sample_rate must lie in [0, 1]");
  }
  if (config_.head_limit < 0) {
    throw std::invalid_argument(
        "AccessLogWriter: head_limit must be non-negative");
  }
}

AccessLogWriter::~AccessLogWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an explicit close() surfaces I/O errors.
  }
}

void AccessLogWriter::set_context(const std::string& key,
                                  const std::string& value) {
  context_[key] = value;
}

void AccessLogWriter::record(AccessRecord record) {
  if (closed_) {
    throw std::logic_error("AccessLogWriter: record() after close()");
  }
  if (!sampled(record.id)) return;
  buffered_.emplace_back(record.id, render_access_record(record));
}

void AccessLogWriter::close() {
  if (closed_) return;
  closed_ = true;
  std::string header = "{\"schema\": \"qplace.access_log.v2\", \"context\": {";
  bool first = true;
  for (const auto& [key, value] : context_) {
    if (!first) header += ", ";
    first = false;
    append_escaped_string(header, key);
    header += ": ";
    append_escaped_string(header, value);
  }
  header += "}}";
  out_ << header << "\n";

  std::sort(buffered_.begin(), buffered_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t limit = buffered_.size();
  if (config_.head_limit > 0) {
    limit = std::min(limit, static_cast<std::size_t>(config_.head_limit));
  }
  for (std::size_t i = 0; i < limit; ++i) {
    out_ << buffered_[i].second << "\n";
  }
  out_.flush();
  if (!out_) {
    throw std::runtime_error("AccessLogWriter: write failed");
  }
}

std::string ParsedAccessLog::context_or(const std::string& key,
                                        const std::string& fallback) const {
  const auto it = context.find(key);
  return it == context.end() ? fallback : it->second;
}

ParsedAccessLog parse_access_log(std::istream& in) {
  ParsedAccessLog log;
  std::string line;
  bool saw_header = false;
  std::int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const json::Value value = json::parse(line);
    if (!value.is_object()) {
      throw std::runtime_error("access log line " +
                               std::to_string(line_number) +
                               " is not a JSON object");
    }
    if (!saw_header) {
      const std::string schema = value.get_string("schema", "");
      if (schema != "qplace.access_log.v2" &&
          schema != "qplace.access_log.v1") {
        throw std::runtime_error(
            "access log header has schema '" + schema +
            "', expected 'qplace.access_log.v2' (or legacy v1)");
      }
      if (const json::Value* context = value.find("context")) {
        for (const auto& [key, member] : context->object) {
          if (member.type == json::Value::Type::kString) {
            log.context[key] = member.string;
          }
        }
      }
      saw_header = true;
      continue;
    }
    AccessRecord record;
    const json::Value* id = value.find("id");
    const json::Value* probes = value.find("probes");
    if (id == nullptr || probes == nullptr || !probes->is_array()) {
      throw std::runtime_error("access log line " +
                               std::to_string(line_number) +
                               " misses required fields");
    }
    record.id = static_cast<std::int64_t>(id->number);
    record.client = static_cast<int>(value.get_number("client", 0));
    record.quorum = static_cast<int>(value.get_number("quorum", 0));
    record.relay = static_cast<int>(value.get_number("relay", -1));
    // v2 fields; absent in legacy v1 records, where every logged access
    // was a single-attempt success.
    record.attempts = static_cast<int>(value.get_number("attempts", 1));
    record.outcome =
        access_outcome_from_name(value.get_string("outcome", "ok"));
    if (record.attempts < 1) {
      throw std::runtime_error("access log line " +
                               std::to_string(line_number) +
                               " has attempts < 1");
    }
    record.start = value.get_number("start", 0.0);
    record.finish = value.get_number("finish", 0.0);
    record.probes.reserve(probes->array.size());
    for (const json::Value& entry : probes->array) {
      if (!entry.is_array() || entry.array.size() != 4) {
        throw std::runtime_error("access log line " +
                                 std::to_string(line_number) +
                                 " has a malformed probe tuple");
      }
      AccessProbe probe;
      probe.element = static_cast<int>(entry.array[0].number);
      probe.node = static_cast<int>(entry.array[1].number);
      probe.net_delay = entry.array[2].number;
      probe.queue_wait = entry.array[3].number;
      record.probes.push_back(probe);
    }
    log.records.push_back(std::move(record));
  }
  if (!saw_header) {
    throw std::runtime_error("access log is empty (no header line)");
  }
  return log;
}

}  // namespace qp::obs
