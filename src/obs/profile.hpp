#pragma once

/// \file profile.hpp
/// Work-attribution profiler: folds span enter/exit events and counter
/// increments into a call-tree profile keyed by span path (e.g.
/// "ssqpp.solve/ssqpp.lp/lp.solve"), where every node carries
///
///  - a **deterministic** map of work-counter deltas attributed to that
///    span's own code (self attribution: each QP_COUNTER_ADD is credited to
///    the innermost span open on the executing thread, exactly once), and
///  - a **nondeterministic** pair of wall time and call counts.
///
/// The deterministic half obeys the docs/PARALLEL.md contract: per-path
/// counter sums are byte-identical at `--threads 1` and `--threads 8`.
/// Two mechanisms make that hold:
///
///  1. Self attribution. A counter increment accrues to the innermost open
///     span *on its own thread*, so no delta is ever double-counted or
///     raced between threads; per-path sums are plain commutative sums of
///     per-increment contributions, and the determinism contract fixes the
///     multiset of increments per span instance.
///  2. Ambient paths. exec::for_each_chunk captures the submitting thread's
///     current span path and re-installs it around every chunk (an
///     "ambient" frame). A chunk that lands on a worker thread -- where no
///     spans are open -- then attributes its work to the same absolute path
///     it would have used had it run inline under the caller's spans.
///     Ambient frames bump no call counts and no wall time; they only
///     anchor attribution.
///
/// Like the TraceRecorder, each recording thread owns a fixed ring of
/// events; a full ring overwrites the oldest event. An evicted *exit* event
/// carries attributed data, which is folded into an explicit `<truncated>`
/// node (child of the root) instead of being dropped, and spans whose enter
/// was evicted re-parent under the same `<truncated>` node rather than
/// mis-parenting their children. Rings are sized (2^16 events/thread) so
/// realistic runs never evict; `Profile::dropped` says when one did, which
/// also voids the cross-thread-count byte-identity promise for that run
/// (the CLI warns).
///
/// Folding happens once, from sequential code, after parallel regions have
/// completed. No wall clock is read here -- span durations arrive from
/// ScopedTimer, so the profile itself stays clock-free.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qp::obs {

/// One node of the folded profile. `counters` is the deterministic subtree;
/// `calls`/`total_nanos` (and derived self time) are wall-class data.
struct ProfileNode {
  std::uint64_t calls = 0;
  std::int64_t total_nanos = 0;
  std::map<std::string, std::uint64_t> counters;  ///< self-attributed deltas
  std::map<std::string, ProfileNode> children;    ///< keyed by span name

  /// Wall time not covered by child spans, clamped at 0 (clock jitter can
  /// make children sum past the parent).
  std::int64_t self_nanos() const;
};

/// A folded profile plus its provenance. Rendered as one
/// `qplace.profile.v1` JSON document and/or as folded stacks for
/// flamegraph renderers.
struct Profile {
  ProfileNode root;            ///< synthetic "(root)"; no calls of its own
  std::uint64_t dropped = 0;   ///< ring-evicted events across all threads
  std::uint64_t threads = 0;   ///< per-thread rings merged

  /// Serializes the `qplace.profile.v1` document: schema, command, context,
  /// a "deterministic" subtree of {counters, children} per node and a
  /// "nondeterministic" subtree of {calls, self_ms, total_ms, children}.
  /// Keys are sorted, so equal deterministic data means equal bytes.
  std::string to_json(const std::string& command,
                      const std::map<std::string, std::string>& context) const;

  /// Folded-stack lines ("a;b;c <self-wall-micros>\n" per node), the input
  /// format of standard flamegraph renderers (flamegraph.pl, inferno,
  /// speedscope). Wall-derived and therefore nondeterministic.
  std::string to_folded() const;
};

/// Process-wide profile event collector. Enabled by `--profile-out`
/// (tools/qplace.cpp); recording costs one relaxed atomic load when off.
class ProfileCollector {
 public:
  static ProfileCollector& instance();

  /// Enables/disables recording (spans, ambient frames, counter deltas).
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Span hooks, called by ScopedTimer when enabled. The duration is
  /// supplied by the timer so the profiler never reads a clock.
  void on_span_enter(const char* name);
  void on_span_exit(const char* name, std::int64_t dur_nanos);

  /// The calling thread's current absolute span path (ambient frame + the
  /// spans opened above it, or all open spans when no ambient frame is
  /// active). Used by exec::for_each_chunk to capture the submission path.
  std::vector<const char*> current_path() const;

  /// Installs / removes an ambient frame: attribution jumps to the absolute
  /// \p path (names must be string literals) without bumping call counts.
  /// Prefer ProfileAmbientScope.
  void ambient_enter(const std::vector<const char*>& path);
  void ambient_exit();

  /// Events overwritten because some ring was full.
  std::uint64_t dropped_count() const;

  /// Drops all recorded events and per-thread accumulators. Call from
  /// sequential code between runs that must be compared.
  void clear();

  /// Merges every thread's ring into one profile. \p counter_names maps
  /// counter ids to registry names (Registry::counter_names()). Call from
  /// sequential code after parallel regions have completed.
  Profile fold(const std::vector<std::string>& counter_names) const;

  /// Ring capacity per recording thread.
  static constexpr std::size_t kRingCapacity = 1 << 16;

  /// Name of the node that absorbs ring-evicted attribution.
  static constexpr const char* kTruncatedName = "<truncated>";

  /// Opaque per-thread state; defined in profile.cpp only.
  struct ThreadState;

 private:
  ProfileCollector() = default;
};

/// RAII ambient frame. Pass nullptr to make the scope a no-op (the disabled
/// / empty-path case), so call sites stay branch-free.
class ProfileAmbientScope {
 public:
  explicit ProfileAmbientScope(const std::vector<const char*>* path);
  ~ProfileAmbientScope();
  ProfileAmbientScope(const ProfileAmbientScope&) = delete;
  ProfileAmbientScope& operator=(const ProfileAmbientScope&) = delete;

 private:
  bool active_ = false;
};

}  // namespace qp::obs
