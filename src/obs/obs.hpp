#pragma once

/// \file obs.hpp
/// Low-overhead instrumentation: counters, gauges, timers and RAII spans.
///
/// The subsystem answers "where did the work and the time go?" for a solver
/// run without perturbing it:
///
///  - Counter: monotonically increasing uint64 (LP pivots, relay candidates,
///    Dijkstra heap pops). Increments are relaxed atomic adds; because
///    integer addition is commutative and every count reflects work whose
///    amount is fixed by the determinism contract (docs/PARALLEL.md), final
///    counter values are bit-identical for any thread count.
///  - Gauge: last-write-wins double (configuration echoes, sizes).
///  - TimerStat / ScopedTimer: accumulated wall time + activation count per
///    named span. Wall times are inherently nondeterministic and are
///    therefore segregated from counters in every exported report
///    (run_report.hpp).
///  - Series: an append-only vector of doubles for small deterministic
///    trajectories (e.g. the local-search objective after each step).
///    Append only from sequential code -- appends from inside a parallel
///    region would make the order thread-count-dependent.
///
/// Hot paths use the QP_* macros below, which cache the registry lookup in a
/// function-local static so the steady-state cost is one relaxed atomic add.
/// Configuring with -DQPLACE_OBS=OFF compiles every macro to nothing (the
/// registry API itself stays available so report plumbing still links).
///
/// Span naming scheme (docs/OBSERVABILITY.md): dot-separated
/// `subsystem.phase`, lowercase, e.g. "lp.solve", "qpp.relay_sweep",
/// "ssqpp.round". Counters reuse the same prefixes.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#ifndef QPLACE_OBS
#define QPLACE_OBS 1
#endif

namespace qp::obs {

class Registry;

/// Profiler fast-path hooks (profile.cpp). Counter::add consults the flag
/// with one relaxed load; only when a profile is being collected does it pay
/// for per-thread attribution of the delta to the innermost open span.
namespace profile_detail {
extern std::atomic<bool> g_profile_enabled;
void on_counter_add(std::uint32_t id, std::uint64_t delta);
}  // namespace profile_detail

/// Monotonic event counter. Address-stable once created by the Registry, so
/// the QP_COUNTER_ADD macro may cache a reference across reset_all().
class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    if (profile_detail::g_profile_enabled.load(std::memory_order_relaxed)) {
      profile_detail::on_counter_add(id_, delta);
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class Registry;  // assigns id_ at registration

  std::atomic<std::uint64_t> value_{0};
  std::uint32_t id_ = 0;  ///< registry-assigned, index into counter_names()
};

/// Last-write-wins double value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated wall time and activation count for one span name.
class TimerStat {
 public:
  void add(std::int64_t nanos) {
    total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
    calls_.fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t total_nanos() const {
    return total_nanos_.load(std::memory_order_relaxed);
  }
  std::uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  void reset() {
    total_nanos_.store(0, std::memory_order_relaxed);
    calls_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> total_nanos_{0};
  std::atomic<std::uint64_t> calls_{0};
};

/// Process-wide registry of named instruments. Creation takes a mutex;
/// returned references stay valid for the process lifetime (node-based
/// containers), so hot paths resolve a name once and cache the reference.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  TimerStat& timer(const std::string& name);
  /// Appends to the named series. Sequential-code-only (see file comment).
  void append_series(const std::string& name, double value);

  /// Snapshots for export/tests. Counters with value 0 are included, so a
  /// snapshot after reset_all() still lists every instrument ever touched.
  std::map<std::string, std::uint64_t> counter_values() const;
  /// Counter names indexed by the id stamped into each Counter at
  /// registration; the profiler uses it to turn ids back into names.
  std::vector<std::string> counter_names() const;
  std::map<std::string, double> gauge_values() const;
  /// name -> (calls, total milliseconds).
  std::map<std::string, std::pair<std::uint64_t, double>> timer_values() const;
  std::map<std::string, std::vector<double>> series_values() const;

  /// Zeroes every instrument (registrations and addresses survive). Call
  /// between runs that must be compared, never concurrently with writers.
  void reset_all();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;
  std::vector<std::string> counter_names_;  ///< index == Counter::id_
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, TimerStat> timers_;
  std::map<std::string, std::vector<double>> series_;
};

/// RAII span: accumulates its lifetime into Registry::timer(name) and, when
/// tracing is enabled (trace.hpp), records a Chrome trace_event slice.
/// \p name must outlive the span; pass a string literal.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  /// Snapshot of the profiler flag at entry, so enter/exit events stay
  /// paired even if the profiler is toggled mid-span.
  bool profiled_ = false;
};

/// True when the instrumentation macros are compiled in.
constexpr bool compiled_in() { return QPLACE_OBS != 0; }

}  // namespace qp::obs

#if QPLACE_OBS

#define QP_OBS_CONCAT_IMPL(a, b) a##b
#define QP_OBS_CONCAT(a, b) QP_OBS_CONCAT_IMPL(a, b)

/// Times the enclosing scope under `name` (string literal).
#define QP_SPAN(name) \
  ::qp::obs::ScopedTimer QP_OBS_CONCAT(qp_obs_span_, __LINE__)(name)

/// Adds `delta` to the named counter; the registry lookup happens once.
#define QP_COUNTER_ADD(name, delta)                                    \
  do {                                                                 \
    static ::qp::obs::Counter& QP_OBS_CONCAT(qp_obs_counter_,          \
                                             __LINE__) =              \
        ::qp::obs::Registry::instance().counter(name);                 \
    QP_OBS_CONCAT(qp_obs_counter_, __LINE__)                           \
        .add(static_cast<std::uint64_t>(delta));                       \
  } while (false)

/// Sets the named gauge to `value`.
#define QP_GAUGE_SET(name, value)                                      \
  do {                                                                 \
    static ::qp::obs::Gauge& QP_OBS_CONCAT(qp_obs_gauge_, __LINE__) = \
        ::qp::obs::Registry::instance().gauge(name);                   \
    QP_OBS_CONCAT(qp_obs_gauge_, __LINE__)                             \
        .set(static_cast<double>(value));                              \
  } while (false)

/// Appends `value` to the named series. Sequential code only.
#define QP_SERIES_APPEND(name, value)                     \
  ::qp::obs::Registry::instance().append_series(          \
      name, static_cast<double>(value))

#else

#define QP_SPAN(name) static_cast<void>(0)
#define QP_COUNTER_ADD(name, delta) \
  static_cast<void>(sizeof((name), (delta), 0))
#define QP_GAUGE_SET(name, value) \
  static_cast<void>(sizeof((name), (value), 0))
#define QP_SERIES_APPEND(name, value) \
  static_cast<void>(sizeof((name), (value), 0))

#endif  // QPLACE_OBS
