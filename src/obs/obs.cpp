#include "obs/obs.hpp"

#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace qp::obs {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(name).first;
    it->second.id_ = static_cast<std::uint32_t>(counter_names_.size());
    counter_names_.push_back(name);
  }
  return it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

TimerStat& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return timers_[name];
}

void Registry::append_series(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  series_[name].push_back(value);
}

std::map<std::string, std::uint64_t> Registry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter.value();
  return out;
}

std::vector<std::string> Registry::counter_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counter_names_;
}

std::map<std::string, double> Registry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge.value();
  return out;
}

std::map<std::string, std::pair<std::uint64_t, double>>
Registry::timer_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::pair<std::uint64_t, double>> out;
  for (const auto& [name, timer] : timers_) {
    out[name] = {timer.calls(),
                 static_cast<double>(timer.total_nanos()) / 1e6};
  }
  return out;
}

std::map<std::string, std::vector<double>> Registry::series_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter.reset();
  for (auto& [name, gauge] : gauges_) gauge.reset();
  for (auto& [name, timer] : timers_) timer.reset();
  for (auto& [name, series] : series_) series.clear();
}

ScopedTimer::ScopedTimer(const char* name)
    : name_(name), start_(std::chrono::steady_clock::now()) {
  if (profile_detail::g_profile_enabled.load(std::memory_order_relaxed)) {
    profiled_ = true;
    ProfileCollector::instance().on_span_enter(name_);
  }
}

ScopedTimer::~ScopedTimer() {
  const auto end = std::chrono::steady_clock::now();
  const std::int64_t nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count();
  // Cache per call site would need the macro layer; a ScopedTimer is placed
  // at phase granularity, so one map lookup per activation is fine.
  Registry::instance().timer(name_).add(nanos);
  if (profiled_) {
    ProfileCollector::instance().on_span_exit(name_, nanos);
  }
  TraceRecorder& recorder = TraceRecorder::instance();
  if (recorder.enabled()) {
    const double dur_us = static_cast<double>(nanos) / 1e3;
    recorder.record(name_, recorder.now_us() - dur_us, dur_us);
  }
}

}  // namespace qp::obs
