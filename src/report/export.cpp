#include "report/export.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace qp::report {

namespace {

std::string format_length(double value) {
  std::ostringstream os;
  os << std::setprecision(6) << value;
  return os.str();
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_dot(const graph::Graph& g) {
  std::ostringstream os;
  os << "graph G {\n";
  for (int v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << ";\n";
  }
  for (const graph::Edge& e : g.edges()) {
    os << "  n" << e.a << " -- n" << e.b << " [label=\""
       << format_length(e.length) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string placement_to_dot(const graph::Graph& g,
                             const core::Placement& placement) {
  for (int v : placement) {
    if (v < 0 || v >= g.num_nodes()) {
      throw std::invalid_argument("placement_to_dot: invalid placement");
    }
  }
  std::vector<std::vector<int>> hosted(
      static_cast<std::size_t>(g.num_nodes()));
  for (std::size_t u = 0; u < placement.size(); ++u) {
    hosted[static_cast<std::size_t>(placement[u])].push_back(
        static_cast<int>(u));
  }
  std::ostringstream os;
  os << "graph G {\n";
  for (int v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v;
    const auto& elements = hosted[static_cast<std::size_t>(v)];
    if (elements.empty()) {
      os << " [shape=circle, label=\"" << v << "\"];\n";
    } else {
      os << " [shape=box, style=filled, label=\"" << v << ": {";
      for (std::size_t i = 0; i < elements.size(); ++i) {
        os << (i ? "," : "") << "u" << elements[i];
      }
      os << "}\"];\n";
    }
  }
  for (const graph::Edge& e : g.edges()) {
    os << "  n" << e.a << " -- n" << e.b << " [label=\""
       << format_length(e.length) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows) {
  if (header.empty()) {
    throw std::invalid_argument("to_csv: header must be non-empty");
  }
  std::ostringstream os;
  for (std::size_t c = 0; c < header.size(); ++c) {
    os << (c ? "," : "") << csv_escape(header[c]);
  }
  os << '\n';
  for (const auto& row : rows) {
    if (row.size() != header.size()) {
      throw std::invalid_argument("to_csv: ragged row");
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << csv_escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace qp::report
