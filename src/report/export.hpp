#pragma once

/// \file export.hpp
/// Export helpers for downstream tooling: Graphviz DOT for topologies and
/// placements, CSV for experiment series. Pure string builders -- callers
/// decide where the bytes go.

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "graph/graph.hpp"

namespace qp::report {

/// Graphviz DOT of an undirected weighted graph; edge labels carry lengths.
std::string to_dot(const graph::Graph& g);

/// DOT of a placement: nodes hosting elements are drawn as boxes labelled
/// with their element lists; pure clients stay circles.
std::string placement_to_dot(const graph::Graph& g,
                             const core::Placement& placement);

/// CSV with a header row; every row must have header.size() cells.
/// Cells containing commas/quotes/newlines are quoted per RFC 4180.
/// \throws std::invalid_argument on ragged rows or an empty header.
std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

}  // namespace qp::report
