#pragma once

/// \file table.hpp
/// Plain-text table formatting for the experiment harness: every bench
/// binary prints paper-claim vs measured-value tables through this.

#include <iosfwd>
#include <string>
#include <vector>

namespace qp::report {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  /// Renders with a rule under the header.
  void print(std::ostream& os) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used between experiment blocks.
void banner(std::ostream& os, const std::string& title);

}  // namespace qp::report
