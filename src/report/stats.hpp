#pragma once

/// \file stats.hpp
/// Small summary-statistics helpers for the experiment harness (ratio
/// distributions over seeds/instances).

#include <vector>

namespace qp::report {

struct Summary {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double geomean = 0.0;
  int count = 0;
};

/// Summary of a non-empty sample. \throws std::invalid_argument when empty
/// or when geomean is requested over non-positive values (geomean is set to
/// 0 if any value is <= 0).
Summary summarize(const std::vector<double>& values);

}  // namespace qp::report
