#include "report/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qp::report {

Summary summarize(const std::vector<double>& values) {
  if (values.empty()) {
    throw std::invalid_argument("summarize: empty sample");
  }
  Summary s;
  s.count = static_cast<int>(values.size());
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double total = 0.0;
  double log_total = 0.0;
  bool positive = true;
  for (double v : values) {
    total += v;
    if (v > 0.0) {
      log_total += std::log(v);
    } else {
      positive = false;
    }
  }
  s.mean = total / s.count;
  s.geomean = positive ? std::exp(log_total / s.count) : 0.0;
  return s;
}

}  // namespace qp::report
