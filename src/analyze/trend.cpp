#include "analyze/trend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

namespace qp::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool is_history_entry(const json::Value& entry) {
  return entry.is_object() &&
         entry.get_string("schema", "") == "qplace.bench_history.v1";
}

std::map<std::string, double> entry_counters(const json::Value& entry) {
  std::map<std::string, double> out;
  if (const json::Value* counters = entry.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->object) {
      out[name] = value.number;
    }
  }
  return out;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace

double TrendCounter::rel_change() const {
  if (!in_latest) return kInf;  // vanished instrument
  if (!in_baseline) return 0.0;  // new instrument: no baseline to drift from
  return (static_cast<double>(latest) - baseline) / std::max(baseline, 1.0);
}

double TrendCounter::regression() const {
  const double change = rel_change();
  return change > 0.0 ? change : 0.0;
}

double TrendAnalysis::max_regression() const {
  if (!gated) return 0.0;
  double max = 0.0;
  for (const auto& counter : counters) {
    max = std::max(max, counter.regression());
  }
  return max;
}

TrendAnalysis analyze_trend(const std::vector<json::Value>& entries,
                            const TrendOptions& options) {
  TrendAnalysis trend;
  trend.entries_total = entries.size();

  // The newest schema-valid entry anchors the analysis; its digest decides
  // which prior entries are comparable.
  const json::Value* latest = nullptr;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (is_history_entry(*it)) {
      latest = &*it;
      break;
    }
  }
  if (latest == nullptr) {
    trend.error = "no qplace.bench_history.v1 entries in the history";
    return trend;
  }
  trend.instance_digest = latest->get_string("instance_digest", "");
  trend.latest_git_sha = latest->get_string("git_sha", "");

  // Prior comparable entries, newest first, capped at the window.
  std::vector<const json::Value*> window;
  bool seen_latest = false;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const json::Value& entry = *it;
    if (!seen_latest) {
      if (&entry == latest) seen_latest = true;
      else ++trend.entries_skipped;  // trailing non-entry lines
      continue;
    }
    if (!is_history_entry(entry) ||
        entry.get_string("instance_digest", "") != trend.instance_digest) {
      ++trend.entries_skipped;
      continue;
    }
    if (window.size() < options.window) window.push_back(&entry);
  }
  trend.baseline_entries = window.size();
  trend.gated = !window.empty();

  const std::map<std::string, double> latest_counters =
      entry_counters(*latest);
  std::map<std::string, std::vector<double>> histories;
  // Oldest window entry first so TrendCounter::history reads left to right.
  for (auto it = window.rbegin(); it != window.rend(); ++it) {
    for (const auto& [name, value] : entry_counters(**it)) {
      histories[name].push_back(value);
    }
  }

  std::set<std::string> names;
  for (const auto& [name, value] : latest_counters) names.insert(name);
  for (const auto& [name, history] : histories) names.insert(name);

  for (const std::string& name : names) {
    TrendCounter counter;
    counter.name = name;
    const auto latest_it = latest_counters.find(name);
    counter.in_latest = latest_it != latest_counters.end();
    if (counter.in_latest) {
      counter.latest = static_cast<std::uint64_t>(latest_it->second);
    }
    const auto history_it = histories.find(name);
    counter.in_baseline = history_it != histories.end();
    if (counter.in_baseline) {
      counter.history = history_it->second;
      counter.samples = history_it->second.size();
      counter.baseline = median(history_it->second);
    }
    trend.counters.push_back(std::move(counter));
  }

  return trend;
}

}  // namespace qp::obs
