#include "analyze/profile_diff.hpp"

#include <cmath>
#include <limits>
#include <set>

namespace qp::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Flattened deterministic tree: path -> (counter -> value). Paths join
/// span names with "/"; the root node's own counters live under "".
using CounterTree = std::map<std::string, std::map<std::string, double>>;

void flatten_deterministic(const json::Value& node, const std::string& path,
                           CounterTree& out) {
  auto& counters = out[path];
  if (const json::Value* c = node.find("counters");
      c != nullptr && c->is_object()) {
    for (const auto& [name, value] : c->object) {
      counters[name] = value.number;
    }
  }
  if (const json::Value* children = node.find("children");
      children != nullptr && children->is_object()) {
    for (const auto& [name, child] : children->object) {
      flatten_deterministic(child, path.empty() ? name : path + "/" + name,
                            out);
    }
  }
}

struct WallNode {
  double calls = 0.0;
  double total_ms = 0.0;
};

void flatten_nondeterministic(const json::Value& node, const std::string& path,
                              std::map<std::string, WallNode>& out) {
  WallNode& wall = out[path];
  wall.calls = node.get_number("calls", 0.0);
  wall.total_ms = node.get_number("total_ms", 0.0);
  if (const json::Value* children = node.find("children");
      children != nullptr && children->is_object()) {
    for (const auto& [name, child] : children->object) {
      flatten_nondeterministic(child, path.empty() ? name : path + "/" + name,
                               out);
    }
  }
}

const json::Value* profile_root(const json::Value& doc, const char* half) {
  const json::Value* section = doc.find(half);
  return section != nullptr ? section->find("root") : nullptr;
}

}  // namespace

double ProfileCounterDiff::rel_drift() const {
  if (in_base != in_cand) {
    const std::uint64_t present = in_base ? base : cand;
    return present == 0 ? 0.0 : kInf;
  }
  const double b = static_cast<double>(base);
  const double c = static_cast<double>(cand);
  return std::fabs(c - b) / std::max(b, 1.0);
}

double ProfileWallDiff::wall_drift() const {
  return std::fabs(total_ms_cand - total_ms_base) /
         std::max(total_ms_base, 1e-9);
}

double ProfileDiff::max_deterministic_drift() const {
  if (!structure.empty()) return kInf;
  double max = 0.0;
  for (const auto& counter : counters) {
    max = std::max(max, counter.rel_drift());
  }
  return max;
}

double ProfileDiff::max_wall_drift() const {
  double max = 0.0;
  for (const auto& wall : walls) max = std::max(max, wall.wall_drift());
  return max;
}

ProfileDiff diff_profiles(const json::Value& base, const json::Value& cand) {
  ProfileDiff diff;

  const std::string schema_base = base.get_string("schema", "");
  const std::string schema_cand = cand.get_string("schema", "");
  if (schema_base != "qplace.profile.v1" ||
      schema_cand != "qplace.profile.v1") {
    diff.error = "not a qplace.profile.v1 document (schema \"" + schema_base +
                 "\" vs \"" + schema_cand + "\")";
    return diff;
  }

  const auto digest = [](const json::Value& doc) {
    const json::Value* context = doc.find("context");
    return context != nullptr ? context->get_string("instance_digest", "")
                              : std::string();
  };
  const std::string digest_base = digest(base);
  const std::string digest_cand = digest(cand);
  if (!digest_base.empty() && !digest_cand.empty() &&
      digest_base != digest_cand) {
    diff.error = "instance digests disagree (" + digest_base + " vs " +
                 digest_cand + "); refusing to compare profiles of " +
                 "different instances";
    return diff;
  }

  const json::Value* det_base = profile_root(base, "deterministic");
  const json::Value* det_cand = profile_root(cand, "deterministic");
  if (det_base == nullptr || det_cand == nullptr) {
    diff.error = "missing deterministic.root subtree";
    return diff;
  }

  CounterTree tree_base, tree_cand;
  flatten_deterministic(*det_base, "", tree_base);
  flatten_deterministic(*det_cand, "", tree_cand);

  std::set<std::string> paths;
  for (const auto& [path, counters] : tree_base) paths.insert(path);
  for (const auto& [path, counters] : tree_cand) paths.insert(path);

  for (const std::string& path : paths) {
    const auto it_base = tree_base.find(path);
    const auto it_cand = tree_cand.find(path);
    if (it_base == tree_base.end() || it_cand == tree_cand.end()) {
      ProfileStructureDiff structural;
      structural.path = path;
      structural.in_base = it_base != tree_base.end();
      structural.in_cand = it_cand != tree_cand.end();
      diff.structure.push_back(std::move(structural));
      continue;
    }
    std::set<std::string> names;
    for (const auto& [name, value] : it_base->second) names.insert(name);
    for (const auto& [name, value] : it_cand->second) names.insert(name);
    for (const std::string& name : names) {
      ProfileCounterDiff counter;
      counter.path = path;
      counter.counter = name;
      const auto b = it_base->second.find(name);
      const auto c = it_cand->second.find(name);
      counter.in_base = b != it_base->second.end();
      counter.in_cand = c != it_cand->second.end();
      if (counter.in_base) {
        counter.base = static_cast<std::uint64_t>(b->second);
      }
      if (counter.in_cand) {
        counter.cand = static_cast<std::uint64_t>(c->second);
      }
      diff.counters.push_back(std::move(counter));
    }
  }

  const json::Value* wall_base = profile_root(base, "nondeterministic");
  const json::Value* wall_cand = profile_root(cand, "nondeterministic");
  if (wall_base != nullptr && wall_cand != nullptr) {
    std::map<std::string, WallNode> walls_base, walls_cand;
    flatten_nondeterministic(*wall_base, "", walls_base);
    flatten_nondeterministic(*wall_cand, "", walls_cand);
    for (const auto& [path, wall] : walls_base) {
      const auto it = walls_cand.find(path);
      if (it == walls_cand.end()) continue;  // structural drift covers it
      ProfileWallDiff wall_diff;
      wall_diff.path = path;
      wall_diff.calls_base = wall.calls;
      wall_diff.calls_cand = it->second.calls;
      wall_diff.total_ms_base = wall.total_ms;
      wall_diff.total_ms_cand = it->second.total_ms;
      diff.walls.push_back(std::move(wall_diff));
    }
  }

  return diff;
}

}  // namespace qp::obs
