#pragma once

/// \file trend.hpp
/// Bench-history trend analysis: reads the `qplace.bench_history.v1` lines
/// appended by `bench/run_bench.sh --history` (one JSON object per line in
/// BENCH_history.jsonl) and compares the newest entry's work counters
/// against a rolling baseline of the preceding entries.
///
/// The baseline for each counter is the **median** over the up-to-`window`
/// most recent prior entries whose `instance_digest` matches the newest
/// entry's (the bench instance is pinned, so a digest change means the
/// bench itself changed and history restarts). The median makes the gate
/// robust to a single outlier entry poisoning the baseline.
///
/// Gating follows the deterministic-counter discipline of analyze.hpp:
/// counters are exact work measures, so an *increase* beyond the tolerance
/// is a perf regression (exit 1 from `qplace analyze --trend`); a decrease
/// is reported as an improvement but never gates; a counter that vanishes
/// from the newest entry gates like an infinite drift (the instrument
/// disappeared -- usually a broken build, not an optimization); a counter
/// appearing for the first time is reported but not gated (no baseline).
/// With fewer than two usable entries there is no baseline and nothing
/// gates -- the trend is "no history yet", exit 0.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace qp::obs {

struct TrendOptions {
  /// Relative increase over the rolling baseline that gates.
  double tolerance = 0.10;
  /// Number of prior entries the rolling baseline is computed over.
  std::size_t window = 5;
};

/// One counter's trajectory across the history window.
struct TrendCounter {
  std::string name;
  bool in_baseline = false;  ///< at least one prior entry has it
  bool in_latest = false;
  double baseline = 0.0;        ///< median over the window (when in_baseline)
  std::uint64_t latest = 0;     ///< newest entry's value (when in_latest)
  std::size_t samples = 0;      ///< prior entries contributing to baseline
  std::vector<double> history;  ///< window values oldest -> newest (no latest)

  /// Signed relative change vs baseline: (latest - baseline) /
  /// max(baseline, 1). +infinity for a vanished counter; 0 for a new one
  /// (nothing to regress against).
  double rel_change() const;
  /// The gating magnitude: positive rel_change (increase or vanish), else 0.
  double regression() const;
};

struct TrendAnalysis {
  /// Non-empty when the history is unusable (no valid entries); every other
  /// field is then unset.
  std::string error;

  std::string instance_digest;  ///< digest the trend is computed for
  std::string latest_git_sha;   ///< provenance of the newest entry
  std::size_t entries_total = 0;    ///< parsed history lines seen
  std::size_t entries_skipped = 0;  ///< wrong schema or digest mismatch
  std::size_t baseline_entries = 0;  ///< prior entries in the window
  /// False when there is no baseline to gate against (single entry, or all
  /// prior entries skipped): regressions cannot be assessed, exit 0.
  bool gated = false;

  std::vector<TrendCounter> counters;

  /// Largest TrendCounter::regression() (0 when not gated or none regressed).
  double max_regression() const;
  bool ok(double tolerance) const {
    return error.empty() && (!gated || max_regression() <= tolerance);
  }
};

/// Analyzes parsed history lines, oldest first (file order of
/// BENCH_history.jsonl). Lines that are not `qplace.bench_history.v1`
/// objects, or whose instance digest disagrees with the newest valid
/// entry's, are skipped and counted in `entries_skipped`.
TrendAnalysis analyze_trend(const std::vector<json::Value>& entries,
                            const TrendOptions& options = {});

}  // namespace qp::obs
