#include "analyze/trace_check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "obs/trace.hpp"

namespace qp::obs {

namespace {

struct AttemptSpan {
  int attempt = 0;
  int quorum = 0;
  std::string outcome;
  double start = 0.0;
  double end = 0.0;
};

struct ProbeSpan {
  int attempt = 0;
  int probe = 0;
  int element = 0;
  int node = 0;
  bool dropped = false;
  double start = 0.0;
  double end = 0.0;
};

struct AccessSpan {
  bool present = false;
  int client = 0;
  int quorum = 0;
  int attempts = 0;
  std::string outcome;
  double start = 0.0;
  double end = 0.0;
};

/// Everything the trace says about one access id.
struct SpanTree {
  AccessSpan access;
  std::vector<AttemptSpan> attempts;
  std::vector<ProbeSpan> probes;
};

double arg_number(const json::Value& event, const char* key, double fallback) {
  const json::Value* args = event.find("args");
  return args != nullptr ? args->get_number(key, fallback) : fallback;
}

std::string arg_string(const json::Value& event, const char* key) {
  const json::Value* args = event.find("args");
  return args != nullptr ? args->get_string(key, "") : "";
}

bool arg_bool(const json::Value& event, const char* key) {
  const json::Value* args = event.find("args");
  const json::Value* value = args != nullptr ? args->find(key) : nullptr;
  return value != nullptr && value->type == json::Value::Type::kBool &&
         value->boolean;
}

}  // namespace

TraceCheckResult check_trace_against_log(const json::Value& trace,
                                         const ParsedAccessLog& log,
                                         const TraceCheckOptions& options) {
  const json::Value* events = trace.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error(
        "trace check: document has no traceEvents array (not a Chrome "
        "trace?)");
  }

  TraceCheckResult result;
  const auto violation = [&](std::int64_t id, const std::string& message) {
    ++result.violations;
    if (static_cast<int>(result.findings.size()) < options.max_findings) {
      char prefix[32];
      std::snprintf(prefix, sizeof(prefix), "access %lld: ",
                    static_cast<long long>(id));
      result.findings.push_back(prefix + message);
    }
  };
  const auto near = [&](double a, double b) {
    return std::abs(a - b) <= options.tolerance;
  };

  // Pass 1: group the sim-time-domain spans by access id. Times come back
  // from the trace's microsecond rendering into sim units.
  constexpr double kScale = TraceRecorder::kSimTimeScaleUs;
  std::map<std::int64_t, SpanTree> trees;
  for (const json::Value& event : events->array) {
    if (static_cast<int>(event.get_number("pid", 1.0)) !=
        TraceRecorder::kSimTimePid) {
      continue;
    }
    const std::string name = event.get_string("name", "");
    const auto id =
        static_cast<std::int64_t>(arg_number(event, "id", -1.0));
    if (id < 0) continue;
    const double start = event.get_number("ts", 0.0) / kScale;
    const double end = start + event.get_number("dur", 0.0) / kScale;
    SpanTree& tree = trees[id];
    if (name == "sim.access") {
      ++result.access_spans;
      tree.access.present = true;
      tree.access.client = static_cast<int>(arg_number(event, "client", -1));
      tree.access.quorum = static_cast<int>(arg_number(event, "quorum", -1));
      tree.access.attempts =
          static_cast<int>(arg_number(event, "attempts", 0));
      tree.access.outcome = arg_string(event, "outcome");
      tree.access.start = start;
      tree.access.end = end;
    } else if (name == "sim.attempt") {
      AttemptSpan span;
      span.attempt = static_cast<int>(arg_number(event, "attempt", 0));
      span.quorum = static_cast<int>(arg_number(event, "quorum", -1));
      span.outcome = arg_string(event, "outcome");
      span.start = start;
      span.end = end;
      tree.attempts.push_back(span);
    } else if (name == "sim.probe") {
      ProbeSpan span;
      span.attempt = static_cast<int>(arg_number(event, "attempt", 0));
      span.probe = static_cast<int>(arg_number(event, "probe", -1));
      span.element = static_cast<int>(arg_number(event, "element", -1));
      span.node = static_cast<int>(arg_number(event, "node", -1));
      span.dropped = arg_bool(event, "dropped");
      span.start = start;
      span.end = end;
      tree.probes.push_back(span);
    }
    // sim.backoff / sim.reselect carry no arithmetic the log repeats; they
    // are navigation aids in the rendered trace.
  }

  // Pass 2: every logged record must be explained by its span tree.
  for (const AccessRecord& record : log.records) {
    const auto it = trees.find(record.id);
    if (it == trees.end() || !it->second.access.present) {
      violation(record.id, "logged but has no sim.access span (trace ring "
                           "overflow? see the dropped-events warning)");
      continue;
    }
    ++result.matched_records;
    const SpanTree& tree = it->second;
    const AccessSpan& parent = tree.access;
    char buf[160];

    if (!near(parent.start, record.start) || !near(parent.end, record.finish)) {
      std::snprintf(buf, sizeof(buf),
                    "span covers [%g, %g] but log says [%g, %g]",
                    parent.start, parent.end, record.start, record.finish);
      violation(record.id, buf);
    }
    if (parent.client != record.client || parent.quorum != record.quorum) {
      std::snprintf(buf, sizeof(buf),
                    "span client/quorum %d/%d != log %d/%d", parent.client,
                    parent.quorum, record.client, record.quorum);
      violation(record.id, buf);
    }
    if (parent.attempts != record.attempts) {
      std::snprintf(buf, sizeof(buf), "span says %d attempts, log says %d",
                    parent.attempts, record.attempts);
      violation(record.id, buf);
    }
    if (parent.outcome != access_outcome_name(record.outcome)) {
      violation(record.id, "span outcome \"" + parent.outcome +
                               "\" != log \"" +
                               access_outcome_name(record.outcome) + "\"");
    }

    // Attempt spans: numbered 1..attempts, inside the parent, the last one
    // on the final quorum; ok/timeout verdicts coincide with the last
    // attempt's end.
    if (static_cast<int>(tree.attempts.size()) != record.attempts) {
      std::snprintf(buf, sizeof(buf),
                    "%d attempt spans for %d logged attempts",
                    static_cast<int>(tree.attempts.size()), record.attempts);
      violation(record.id, buf);
    }
    const AttemptSpan* last_attempt = nullptr;
    for (const AttemptSpan& span : tree.attempts) {
      ++result.checked_attempts;
      if (span.attempt < 1 || span.attempt > record.attempts) {
        std::snprintf(buf, sizeof(buf),
                      "attempt span #%d outside 1..%d", span.attempt,
                      record.attempts);
        violation(record.id, buf);
      }
      if (span.start < parent.start - options.tolerance ||
          span.end > parent.end + options.tolerance) {
        std::snprintf(buf, sizeof(buf),
                      "attempt #%d [%g, %g] escapes the access span",
                      span.attempt, span.start, span.end);
        violation(record.id, buf);
      }
      if (last_attempt == nullptr || span.attempt > last_attempt->attempt) {
        last_attempt = &span;
      }
    }
    if (last_attempt != nullptr) {
      if (last_attempt->quorum != record.quorum) {
        std::snprintf(buf, sizeof(buf),
                      "final attempt ran quorum %d, log says %d",
                      last_attempt->quorum, record.quorum);
        violation(record.id, buf);
      }
      if (record.outcome != AccessOutcome::kUnavailable &&
          !near(last_attempt->end, record.finish)) {
        std::snprintf(buf, sizeof(buf),
                      "final attempt ends at %g, verdict at %g",
                      last_attempt->end, record.finish);
        violation(record.id, buf);
      }
    }

    // Probe spans of the final attempt vs the record's probes array. A
    // probe span may end after the parent (a reply can arrive past the
    // deadline that failed the attempt), so only starts are bounded.
    std::int64_t final_probe_spans = 0;
    for (const ProbeSpan& span : tree.probes) {
      if (span.attempt != record.attempts) continue;  // earlier attempt
      ++final_probe_spans;
      ++result.checked_probes;
      if (span.probe < 0 ||
          span.probe >= static_cast<int>(record.probes.size())) {
        std::snprintf(buf, sizeof(buf),
                      "probe span index %d outside the %d logged probes",
                      span.probe, static_cast<int>(record.probes.size()));
        violation(record.id, buf);
        continue;
      }
      const AccessProbe& probe =
          record.probes[static_cast<std::size_t>(span.probe)];
      if (span.element != probe.element || span.node != probe.node) {
        std::snprintf(buf, sizeof(buf),
                      "probe %d span element/node %d/%d != log %d/%d",
                      span.probe, span.element, span.node, probe.element,
                      probe.node);
        violation(record.id, buf);
      }
      const bool logged_dropped = probe.net_delay < 0.0;
      if (span.dropped != logged_dropped) {
        std::snprintf(buf, sizeof(buf),
                      "probe %d dropped=%s in the span, net_delay=%g in the "
                      "log",
                      span.probe, span.dropped ? "true" : "false",
                      probe.net_delay);
        violation(record.id, buf);
      } else if (!logged_dropped &&
                 !near(span.end - span.start, probe.net_delay)) {
        std::snprintf(buf, sizeof(buf),
                      "probe %d span duration %g != logged net_delay %g",
                      span.probe, span.end - span.start, probe.net_delay);
        violation(record.id, buf);
      }
      if (span.start < parent.start - options.tolerance) {
        std::snprintf(buf, sizeof(buf),
                      "probe %d launches at %g, before the access at %g",
                      span.probe, span.start, parent.start);
        violation(record.id, buf);
      }
    }
    // Sequential attempts that time out mid-chain legitimately launch
    // fewer probes than the quorum has elements; a *completed* access must
    // have probed every element of its final quorum.
    if (record.outcome == AccessOutcome::kOk &&
        final_probe_spans != static_cast<std::int64_t>(record.probes.size())) {
      std::snprintf(buf, sizeof(buf),
                    "%lld probe spans for a completed access with %d "
                    "logged probes",
                    static_cast<long long>(final_probe_spans),
                    static_cast<int>(record.probes.size()));
      violation(record.id, buf);
    }
  }
  return result;
}

}  // namespace qp::obs
