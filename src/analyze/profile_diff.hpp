#pragma once

/// \file profile_diff.hpp
/// Structured diff of two `qplace.profile.v1` documents (obs/profile.hpp).
///
/// The comparison mirrors analyze.hpp's run-report diff split:
///
///  - The **deterministic** half -- per-node counter attribution -- is
///    compared exactly. Any node path or counter present on only one side,
///    or any counter whose value drifts beyond the tolerance, gates the
///    diff (CLI exit 1). Under the docs/PARALLEL.md contract two profiles
///    of the same instance at any thread counts must show zero drift.
///  - The **nondeterministic** half -- per-node wall time -- is reported as
///    ratios and only gated when the caller opts in with a wall tolerance
///    (by default wall drift is informational, like TimerDiff).
///
/// Like diff_run_reports, profiles whose embedded `instance_digest` context
/// values disagree are refused: cross-instance counter drift is meaningless.

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace qp::obs {

/// One counter at one node path, compared across the two profiles.
struct ProfileCounterDiff {
  std::string path;     ///< "/"-joined span path; "" is the root node
  std::string counter;  ///< registry counter name
  bool in_base = false;
  bool in_cand = false;
  std::uint64_t base = 0;
  std::uint64_t cand = 0;

  /// |cand - base| / max(base, 1); +infinity when the counter exists on
  /// only one side with a non-zero value.
  double rel_drift() const;
};

/// A node path present in only one profile's deterministic tree --
/// structural drift, gated like an infinite counter drift.
struct ProfileStructureDiff {
  std::string path;
  bool in_base = false;
  bool in_cand = false;
};

/// Wall-class comparison of one node present in both profiles.
/// Informational unless a wall tolerance is supplied to the gate.
struct ProfileWallDiff {
  std::string path;
  double calls_base = 0.0, calls_cand = 0.0;
  double total_ms_base = 0.0, total_ms_cand = 0.0;

  /// |cand - base| / max(base, epsilon) over total wall time.
  double wall_drift() const;
};

struct ProfileDiff {
  /// Non-empty when the documents are not comparable (schema mismatch,
  /// disagreeing instance digests); every other field is then unset.
  std::string error;

  std::vector<ProfileStructureDiff> structure;  // deterministic -- gated
  std::vector<ProfileCounterDiff> counters;     // deterministic -- gated
  std::vector<ProfileWallDiff> walls;           // nondeterministic

  /// Largest relative counter drift; +infinity on any structural drift or
  /// one-sided counter.
  double max_deterministic_drift() const;
  bool deterministic_ok(double tolerance) const {
    return error.empty() && max_deterministic_drift() <= tolerance;
  }
  /// Largest wall drift across common nodes (0 when there are none).
  double max_wall_drift() const;
};

/// Diffs two parsed `qplace.profile.v1` documents.
ProfileDiff diff_profiles(const json::Value& base, const json::Value& cand);

}  // namespace qp::obs
