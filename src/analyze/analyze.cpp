#include "analyze/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "check/contracts.hpp"
#include "core/evaluators.hpp"
#include "obs/obs.hpp"
#include "quorum/intersection.hpp"

namespace qp::obs {

namespace {

/// Net-only access delay reconstructed from the probe records: the paper's
/// delta_f(v, Q) (parallel: slowest probe) or gamma_f(v, Q) (sequential:
/// sum of probe legs). Queue waits are deliberately excluded so the value
/// estimates the quantity the analytic model bounds even when the
/// simulation ran with a finite service rate.
double net_delay(const AccessRecord& record, bool sequential) {
  double value = 0.0;
  for (const AccessProbe& probe : record.probes) {
    if (sequential) {
      value += probe.net_delay;
    } else {
      value = std::max(value, probe.net_delay);
    }
  }
  return value;
}

/// Expected net delay of `client` under the strategy: Delta_f(v) /
/// Gamma_f(v), with every probe path routed through `relay` when >= 0
/// (Lemma 3.1's access model, eq. (4)).
double analytic_delay(const core::QppInstance& instance,
                      const core::Placement& placement, int client,
                      bool sequential, int relay) {
  const graph::Metric& metric = instance.metric();
  double expected = 0.0;
  for (int q = 0; q < instance.system().num_quorums(); ++q) {
    double per_quorum = 0.0;
    for (const int element : instance.system().quorum(q)) {
      const int node = placement[static_cast<std::size_t>(element)];
      const double path = relay >= 0
                              ? metric(client, relay) + metric(relay, node)
                              : metric(client, node);
      if (sequential) {
        per_quorum += path;
      } else {
        per_quorum = std::max(per_quorum, path);
      }
    }
    expected += instance.strategy().probability(q) * per_quorum;
  }
  return expected;
}

struct RunningStat {
  std::int64_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;

  void add(double value) {
    ++count;
    sum += value;
    sum_sq += value * value;
  }
  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Sample standard deviation (n - 1 denominator); 0 below 2 samples.
  double stddev() const {
    if (count < 2) return 0.0;
    const double n = static_cast<double>(count);
    const double variance =
        std::max(0.0, (sum_sq - sum * sum / n) / (n - 1.0));
    return std::sqrt(variance);
  }
  double half_width(double z) const {
    return count > 0 ? z * stddev() / std::sqrt(static_cast<double>(count))
                     : 0.0;
  }
};

double context_number(const ParsedAccessLog& log, const std::string& key,
                      double fallback) {
  const std::string raw = log.context_or(key, "");
  if (raw.empty()) return fallback;
  try {
    return std::stod(raw);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::map<std::string, std::uint64_t> extract_counters(
    const json::Value& report, bool* found) {
  std::map<std::string, std::uint64_t> counters;
  const json::Value* source = nullptr;
  if (const json::Value* det = report.find("deterministic")) {
    source = det->find("counters");
  } else {
    source = report.find("solver_counters");  // bench baseline format
  }
  *found = source != nullptr && source->is_object();
  if (!*found) return counters;
  for (const auto& [name, value] : source->object) {
    if (value.type == json::Value::Type::kNumber) {
      counters[name] = static_cast<std::uint64_t>(value.number);
    }
  }
  return counters;
}

std::string report_digest(const json::Value& report) {
  if (const json::Value* context = report.find("context")) {
    return context->get_string("instance_digest", "");
  }
  return "";
}

bool report_obs_off(const json::Value& report) {
  if (const json::Value* context = report.find("context")) {
    return context->get_string("obs_compiled_in", "true") == "false";
  }
  return false;
}

}  // namespace

AccessLogAnalysis analyze_access_log(const core::QppInstance& instance,
                                     const core::Placement& placement,
                                     const ParsedAccessLog& log,
                                     const AnalyzeOptions& options,
                                     const sim::FaultSchedule* faults) {
  const int n = instance.num_nodes();
  if (!core::is_valid_placement(placement, instance.system().universe_size(),
                                n)) {
    throw std::invalid_argument("analyze_access_log: invalid placement");
  }
  const std::int64_t min_samples = std::max<std::int64_t>(2, options.min_samples);

  AccessLogAnalysis analysis;
  analysis.sequential = log.context_or("mode", "parallel") == "sequential";
  analysis.relay = static_cast<int>(context_number(log, "relay", -1.0));
  analysis.jitter = context_number(log, "jitter", 0.0);
  analysis.service_rate = context_number(log, "service_rate", 0.0);
  if (analysis.relay >= n) {
    throw std::invalid_argument("analyze_access_log: relay out of range");
  }
  analysis.faulty = !log.context_or("fault_digest", "").empty();

  std::vector<RunningStat> per_client(static_cast<std::size_t>(n));
  std::vector<std::int64_t> per_node_probes(static_cast<std::size_t>(n), 0);
  std::map<int, RunningStat> per_quorum;
  RunningStat overall;
  RunningStat wall;
  RunningStat waits;

  for (const AccessRecord& record : log.records) {
    if (record.client < 0 || record.client >= n) {
      throw std::invalid_argument("analyze_access_log: client out of range");
    }
    if (record.quorum < 0 ||
        record.quorum >= instance.system().num_quorums()) {
      throw std::invalid_argument("analyze_access_log: quorum out of range");
    }
    if (record.outcome != AccessOutcome::kOk || record.attempts > 1) {
      analysis.faulty = true;
    }
    analysis.total_retries += record.attempts - 1;
    wall.add(record.finish - record.start);
    if (record.outcome == AccessOutcome::kOk) {
      ++analysis.ok_accesses;
      // Delay statistics only over successes: a failed access has no
      // delta/gamma, and its final attempt carries net_delay = -1
      // sentinels for unanswered probes.
      const double value = net_delay(record, analysis.sequential);
      per_client[static_cast<std::size_t>(record.client)].add(value);
      per_quorum[record.quorum].add(value);
      overall.add(value);
    } else {
      ++analysis.failed_accesses;
      if (record.outcome == AccessOutcome::kUnavailable) {
        ++analysis.unavailable_accesses;
      }
    }
    for (const AccessProbe& probe : record.probes) {
      if (probe.node < 0 || probe.node >= n) {
        throw std::invalid_argument("analyze_access_log: node out of range");
      }
      if (probe.net_delay < 0.0) continue;  // dropped: never reached a node
      ++per_node_probes[static_cast<std::size_t>(probe.node)];
      waits.add(probe.queue_wait);
      analysis.max_queue_wait =
          std::max(analysis.max_queue_wait, probe.queue_wait);
    }
  }

  analysis.total_accesses =
      analysis.ok_accesses + analysis.failed_accesses;
  analysis.availability =
      analysis.total_accesses > 0
          ? static_cast<double>(analysis.ok_accesses) /
                static_cast<double>(analysis.total_accesses)
          : 1.0;
  analysis.wall_mean = wall.mean();
  analysis.mean_queue_wait = waits.mean();

  // A parallel access's max-of-jittered-probes is biased above the
  // analytic max (docs/OBSERVABILITY.md); sums stay mean-preserving, so
  // the sequential check survives jitter. Fault injection biases BOTH
  // modes: re-selection skews the quorum mix away from the strategy and
  // gray windows inflate net delays, so faulty logs skip the CI checks
  // and are validated against the schedule instead.
  const bool estimator_unbiased =
      (analysis.sequential || analysis.jitter == 0.0) && !analysis.faulty;

  // Per-client empirical Delta/Gamma vs the evaluator.
  for (int v = 0; v < n; ++v) {
    const RunningStat& stat = per_client[static_cast<std::size_t>(v)];
    if (stat.count == 0) continue;
    ClientCheck check;
    check.client = v;
    check.count = stat.count;
    check.empirical_mean = stat.mean();
    check.half_width = stat.half_width(options.z);
    check.analytic = analytic_delay(instance, placement, v,
                                    analysis.sequential, analysis.relay);
    check.checked = estimator_unbiased && stat.count >= min_samples;
    if (check.checked) {
      const double slack = check.half_width + options.tolerance +
                           options.tolerance * std::abs(check.analytic);
      check.ok = std::abs(check.empirical_mean - check.analytic) <= slack;
      ++analysis.clients_checked;
      if (check.ok) ++analysis.clients_ok;
    }
    analysis.clients.push_back(check);
  }

  // Overall weighted objective: accesses arrive proportionally to client
  // weights, so the plain mean estimates Avg_v Delta_f(v) directly.
  analysis.overall_mean = overall.mean();
  analysis.overall_half_width = overall.half_width(options.z);
  if (analysis.relay < 0) {
    analysis.overall_analytic =
        analysis.sequential ? core::average_total_delay(instance, placement)
                            : core::average_max_delay(instance, placement);
  } else {
    double weighted = 0.0;
    for (int v = 0; v < n; ++v) {
      weighted += instance.client_weights()[static_cast<std::size_t>(v)] *
                  analytic_delay(instance, placement, v, analysis.sequential,
                                 analysis.relay);
    }
    analysis.overall_analytic = weighted;
  }
  analysis.overall_checked =
      estimator_unbiased && overall.count >= min_samples;
  if (analysis.overall_checked) {
    const double slack = analysis.overall_half_width + options.tolerance +
                         options.tolerance * std::abs(analysis.overall_analytic);
    analysis.overall_ok =
        std::abs(analysis.overall_mean - analysis.overall_analytic) <= slack;
  }

  // Per-node observed load vs the certificate bound (alpha+1) * cap(v).
  const std::vector<double> analytic_loads = core::node_loads(
      instance.element_loads(), placement, n);
  for (int v = 0; v < n; ++v) {
    NodeCheck check;
    check.node = v;
    check.probes = per_node_probes[static_cast<std::size_t>(v)];
    check.observed_load =
        analysis.total_accesses > 0
            ? static_cast<double>(check.probes) /
                  static_cast<double>(analysis.total_accesses)
            : 0.0;
    check.analytic_load = analytic_loads[static_cast<std::size_t>(v)];
    check.capacity = instance.capacity(v);
    check.bound = (options.alpha + 1.0) * check.capacity *
                  (1.0 + options.load_slack);
    // The certificate bound is about the failure-free strategy mix;
    // retries inflate probe counts, so faulty logs report loads without
    // gating them.
    check.ok = analysis.faulty ||
               check.observed_load <= check.bound + options.tolerance;
    if (!check.ok) analysis.loads_ok = false;
    analysis.nodes.push_back(check);
  }

  for (const auto& [q, stat] : per_quorum) {
    QuorumBreakdown breakdown;
    breakdown.quorum = q;
    breakdown.count = stat.count;
    breakdown.share = analysis.total_accesses > 0
                          ? static_cast<double>(stat.count) /
                                static_cast<double>(analysis.total_accesses)
                          : 0.0;
    breakdown.strategy_probability = instance.strategy().probability(q);
    breakdown.mean_delay = stat.mean();
    analysis.quorums.push_back(breakdown);
  }

  // ---- fault-schedule cross-checks (docs/SIMULATION.md) ----
  if (faults != nullptr) {
    analysis.faults_checked = true;
    const auto flag = [&](const AccessRecord& record,
                          const std::string& what) {
      ++analysis.fault_violations;
      if (analysis.fault_findings.size() < 16) {
        analysis.fault_findings.push_back(
            "access " + std::to_string(record.id) + " (client " +
            std::to_string(record.client) + "): " + what);
      }
    };
    const double timeout = context_number(log, "timeout", 0.0);
    const int max_attempts =
        static_cast<int>(context_number(log, "retries", 0.0));
    // Worst fault-free probe delay across every client/element pair: when
    // the configured timeout exceeds it, a fault-free attempt can never
    // time out, so every retry/failure MUST overlap an active fault
    // window. (With a tighter timeout, jitter alone can cause retries and
    // the window check would report false positives, so it is skipped.)
    double worst_net = 0.0;
    const graph::Metric& metric = instance.metric();
    for (int v = 0; v < n; ++v) {
      for (int u = 0; u < instance.system().universe_size(); ++u) {
        const int node = placement[static_cast<std::size_t>(u)];
        const double path =
            analysis.relay >= 0
                ? metric(v, analysis.relay) + metric(analysis.relay, node)
                : metric(v, node);
        worst_net = std::max(worst_net, path);
      }
    }
    worst_net *= 1.0 + analysis.jitter;
    const bool retries_imply_faults =
        timeout > 0.0 && timeout >= worst_net &&
        analysis.service_rate <= 0.0;
    for (const AccessRecord& record : log.records) {
      if (max_attempts > 0 && record.attempts > max_attempts) {
        flag(record, "has " + std::to_string(record.attempts) +
                         " attempts, above the configured maximum of " +
                         std::to_string(max_attempts));
      }
      if (record.outcome == AccessOutcome::kTimeout && max_attempts > 0 &&
          record.attempts != max_attempts) {
        flag(record, "timed out after " + std::to_string(record.attempts) +
                         " attempts instead of the configured " +
                         std::to_string(max_attempts));
      }
      if (retries_imply_faults &&
          (record.attempts > 1 || record.outcome != AccessOutcome::kOk) &&
          !faults->any_active(record.start, record.finish)) {
        flag(record,
             "retried or failed outside every fault window, yet the "
             "timeout exceeds the worst fault-free probe delay");
      }
      if (record.outcome == AccessOutcome::kUnavailable) {
        // The verdict time is record.finish: re-derive the live set there
        // and demand genuine unavailability.
        const quorum::LivenessReport report = quorum::check_liveness(
            instance.system(),
            faults->failed_elements(placement, record.client,
                                    record.finish));
        if (report.available()) {
          flag(record,
               "was declared unavailable although " +
                   std::to_string(report.live_quorums.size()) +
                   " quorums were live at the verdict time");
        }
      }
    }
    QP_COUNTER_ADD("analyze.fault_checked_records",
                   static_cast<std::int64_t>(log.records.size()));
    QP_COUNTER_ADD("analyze.fault_violations", analysis.fault_violations);
  }

  QP_COUNTER_ADD("analyze.access_log_records", analysis.total_accesses);
  return analysis;
}

double CounterDiff::rel_drift() const {
  if (in_base != in_cand) {
    const std::uint64_t present = in_base ? base : cand;
    return present == 0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  const double reference = std::max<double>(static_cast<double>(base), 1.0);
  const double delta = static_cast<double>(cand) > static_cast<double>(base)
                           ? static_cast<double>(cand - base)
                           : static_cast<double>(base - cand);
  return delta / reference;
}

double ReportDiff::max_deterministic_drift() const {
  double drift = 0.0;
  for (const CounterDiff& counter : counters) {
    drift = std::max(drift, counter.rel_drift());
  }
  for (const SeriesDiff& entry : series) {
    if (!entry.equal || entry.in_base != entry.in_cand) {
      return std::numeric_limits<double>::infinity();
    }
  }
  for (const HistogramDiff& entry : histograms) {
    if (entry.schema_drift()) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return drift;
}

ReportDiff diff_run_reports(const json::Value& base, const json::Value& cand) {
  ReportDiff diff;
  bool base_has_counters = false;
  bool cand_has_counters = false;
  const auto base_counters = extract_counters(base, &base_has_counters);
  const auto cand_counters = extract_counters(cand, &cand_has_counters);
  if (!base_has_counters || !cand_has_counters) {
    diff.error =
        "not a qplace.run_report.v1 document (no deterministic.counters or "
        "solver_counters)";
    return diff;
  }
  const std::string digest_base = report_digest(base);
  const std::string digest_cand = report_digest(cand);
  if (!digest_base.empty() && !digest_cand.empty() &&
      digest_base != digest_cand) {
    diff.error = "instance digests differ (" + digest_base + " vs " +
                 digest_cand + "); refusing to compare different instances";
    return diff;
  }
  diff.obs_off_base = report_obs_off(base);
  diff.obs_off_cand = report_obs_off(cand);

  std::set<std::string> names;
  for (const auto& [name, value] : base_counters) names.insert(name);
  for (const auto& [name, value] : cand_counters) names.insert(name);
  for (const std::string& name : names) {
    CounterDiff entry;
    entry.name = name;
    const auto in_base = base_counters.find(name);
    const auto in_cand = cand_counters.find(name);
    entry.in_base = in_base != base_counters.end();
    entry.in_cand = in_cand != cand_counters.end();
    if (entry.in_base) entry.base = in_base->second;
    if (entry.in_cand) entry.cand = in_cand->second;
    diff.counters.push_back(entry);
  }

  // Series: exact element-wise equality, the same contract the metamorphic
  // suite enforces in-process.
  const json::Value* base_det = base.find("deterministic");
  const json::Value* cand_det = cand.find("deterministic");
  const json::Value* base_series =
      base_det != nullptr ? base_det->find("series") : nullptr;
  const json::Value* cand_series =
      cand_det != nullptr ? cand_det->find("series") : nullptr;
  std::set<std::string> series_names;
  if (base_series != nullptr) {
    for (const auto& [name, value] : base_series->object) {
      series_names.insert(name);
    }
  }
  if (cand_series != nullptr) {
    for (const auto& [name, value] : cand_series->object) {
      series_names.insert(name);
    }
  }
  for (const std::string& name : series_names) {
    SeriesDiff entry;
    entry.name = name;
    const json::Value* in_base =
        base_series != nullptr ? base_series->find(name) : nullptr;
    const json::Value* in_cand =
        cand_series != nullptr ? cand_series->find(name) : nullptr;
    entry.in_base = in_base != nullptr;
    entry.in_cand = in_cand != nullptr;
    if (in_base != nullptr && in_cand != nullptr) {
      entry.equal = in_base->array.size() == in_cand->array.size();
      if (entry.equal) {
        for (std::size_t i = 0; i < in_base->array.size(); ++i) {
          if (in_base->array[i].number != in_cand->array[i].number) {
            entry.equal = false;
            break;
          }
        }
      }
    }
    diff.series.push_back(entry);
  }

  // Histograms: distribution-shape shift (counts, mean, quantiles).
  const json::Value* base_hists =
      base_det != nullptr ? base_det->find("histograms") : nullptr;
  const json::Value* cand_hists =
      cand_det != nullptr ? cand_det->find("histograms") : nullptr;
  std::set<std::string> hist_names;
  if (base_hists != nullptr) {
    for (const auto& [name, value] : base_hists->object) {
      hist_names.insert(name);
    }
  }
  if (cand_hists != nullptr) {
    for (const auto& [name, value] : cand_hists->object) {
      hist_names.insert(name);
    }
  }
  for (const std::string& name : hist_names) {
    HistogramDiff entry;
    entry.name = name;
    // Empty histograms render mean/quantiles as null (histogram.cpp); a
    // null side keeps the numeric fields at 0 and sets the null flag, and
    // null-vs-number gates as schema drift (HistogramDiff::schema_drift).
    const auto quantiles_null = [](const json::Value& h) {
      const json::Value* mean = h.find("mean");
      return mean != nullptr && mean->is_null();
    };
    if (const json::Value* h =
            base_hists != nullptr ? base_hists->find(name) : nullptr) {
      entry.count_base = h->get_number("count", 0.0);
      entry.null_base = quantiles_null(*h);
      if (!entry.null_base) {
        entry.mean_base = h->get_number("mean", 0.0);
        entry.p50_base = h->get_number("p50", 0.0);
        entry.p90_base = h->get_number("p90", 0.0);
        entry.p99_base = h->get_number("p99", 0.0);
      }
    }
    if (const json::Value* h =
            cand_hists != nullptr ? cand_hists->find(name) : nullptr) {
      entry.count_cand = h->get_number("count", 0.0);
      entry.null_cand = quantiles_null(*h);
      if (!entry.null_cand) {
        entry.mean_cand = h->get_number("mean", 0.0);
        entry.p50_cand = h->get_number("p50", 0.0);
        entry.p90_cand = h->get_number("p90", 0.0);
        entry.p99_cand = h->get_number("p99", 0.0);
      }
    }
    diff.histograms.push_back(entry);
  }

  // Timers: wall time, reported but never gated.
  const json::Value* base_nondet = base.find("nondeterministic");
  const json::Value* cand_nondet = cand.find("nondeterministic");
  const json::Value* base_timers =
      base_nondet != nullptr ? base_nondet->find("timers") : nullptr;
  const json::Value* cand_timers =
      cand_nondet != nullptr ? cand_nondet->find("timers") : nullptr;
  std::set<std::string> timer_names;
  if (base_timers != nullptr) {
    for (const auto& [name, value] : base_timers->object) {
      timer_names.insert(name);
    }
  }
  if (cand_timers != nullptr) {
    for (const auto& [name, value] : cand_timers->object) {
      timer_names.insert(name);
    }
  }
  for (const std::string& name : timer_names) {
    TimerDiff entry;
    entry.name = name;
    if (const json::Value* t =
            base_timers != nullptr ? base_timers->find(name) : nullptr) {
      entry.calls_base = t->get_number("calls", 0.0);
      entry.ms_base = t->get_number("total_ms", 0.0);
    }
    if (const json::Value* t =
            cand_timers != nullptr ? cand_timers->find(name) : nullptr) {
      entry.calls_cand = t->get_number("calls", 0.0);
      entry.ms_cand = t->get_number("total_ms", 0.0);
    }
    diff.timers.push_back(entry);
  }

  // Resources (peak RSS, page faults): wall-class like timers -- a report
  // from a non-POSIX build simply has no "resources" object, and a missing
  // side is reported as 0 rather than gating anything.
  const json::Value* base_res =
      base_nondet != nullptr ? base_nondet->find("resources") : nullptr;
  const json::Value* cand_res =
      cand_nondet != nullptr ? cand_nondet->find("resources") : nullptr;
  std::set<std::string> resource_names;
  if (base_res != nullptr) {
    for (const auto& [name, value] : base_res->object) {
      resource_names.insert(name);
    }
  }
  if (cand_res != nullptr) {
    for (const auto& [name, value] : cand_res->object) {
      resource_names.insert(name);
    }
  }
  for (const std::string& name : resource_names) {
    ResourceDiff entry;
    entry.name = name;
    if (base_res != nullptr) entry.base = base_res->get_number(name, 0.0);
    if (cand_res != nullptr) entry.cand = cand_res->get_number(name, 0.0);
    diff.resources.push_back(entry);
  }
  return diff;
}

}  // namespace qp::obs
