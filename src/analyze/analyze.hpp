#pragma once

/// \file analyze.hpp
/// Consumers for the observability artifacts the rest of the layer emits:
///
///  1. analyze_access_log(): replays a `qplace.access_log.v2` per-access
///     event log against the *analytic* model the paper proves bounds for.
///     Per client it recomputes the empirical mean of delta_f(v, Q)
///     (parallel) / gamma_f(v, Q) (sequential) from the logged per-probe
///     network delays -- reconstructed net-only, so the comparison stays
///     valid under queueing -- and cross-checks it against the evaluator's
///     Delta_f(v) / Gamma_f(v) within a CLT confidence half-width. Per node
///     it checks the observed probe share (the empirical load_f(v)) against
///     the certificate bound load_f(v) <= (alpha+1) cap(v) that `qplace
///     check` certifies analytically (docs/CONTRACTS.md).
///
///     Fault-injected logs (docs/SIMULATION.md) switch the function into a
///     schedule cross-check mode: re-selection, gray slowdowns, and retry
///     backoff all bias the delay/load estimators, so the CI checks above
///     are skipped, and instead every retry or failure is validated
///     against the sim::FaultSchedule the run was driven by -- a retried /
///     failed access must overlap an active fault window (strict when the
///     configured timeout provably exceeds the worst fault-free probe
///     delay), an "unavailable" verdict must be reproducible by
///     quorum::check_liveness at the verdict time, and attempt counts must
///     respect the configured maximum.
///
///  2. diff_run_reports(): a structured diff of two
///     `qplace.run_report.v1` documents (or the bench baseline's embedded
///     `solver_counters`): deterministic counter deltas, series equality,
///     histogram distribution shift, and wall-time ratios explicitly
///     labelled nondeterministic. The deterministic half doubles as the
///     perf-regression gate -- `qplace analyze --diff` exits non-zero when
///     a work counter drifts beyond the tolerance, which CI runs against
///     the committed BENCH_parallel.json baseline
///     (docs/OBSERVABILITY.md §7).
///
/// Both refuse to compare artifacts whose embedded instance digests
/// (core::instance_digest) disagree.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "obs/access_log.hpp"
#include "obs/json.hpp"
#include "sim/fault_schedule.hpp"

namespace qp::obs {

// ---------------------------------------------------------------- access log

struct AnalyzeOptions {
  /// The alpha the placement was solved with; the load bound is
  /// (alpha+1) * cap(v) (Thm 1.2 / Thm 3.7).
  double alpha = 2.0;
  /// CI half-width multiplier (1.96 = 95% normal CI).
  double z = 1.96;
  /// Clients with fewer measured accesses are reported but not checked
  /// (their CI is meaningless). Clamped to >= 2.
  std::int64_t min_samples = 10;
  /// Relative slack on the load bound absorbing sampling noise of the
  /// observed shares.
  double load_slack = 0.05;
  /// Absolute + relative floating-point slack of the delay comparison.
  double tolerance = 1e-9;
};

/// Empirical-vs-analytic delay check for one client.
struct ClientCheck {
  int client = 0;
  std::int64_t count = 0;
  double empirical_mean = 0.0;  ///< mean net-only delta/gamma_f(v, Q)
  double half_width = 0.0;      ///< z * s / sqrt(count)
  double analytic = 0.0;        ///< Delta_f(v) / Gamma_f(v), relay-adjusted
  bool checked = false;         ///< enough samples and an unbiased estimator
  bool ok = false;              ///< |empirical - analytic| <= half_width
};

/// Observed-load-vs-certificate check for one node.
struct NodeCheck {
  int node = 0;
  std::int64_t probes = 0;
  double observed_load = 0.0;  ///< probes touching v / logged accesses
  double analytic_load = 0.0;  ///< load_f(v) under the strategy
  double capacity = 0.0;
  double bound = 0.0;  ///< (alpha+1) * cap(v) * (1 + load_slack)
  bool ok = false;
};

/// Access mix and latency per quorum.
struct QuorumBreakdown {
  int quorum = 0;
  std::int64_t count = 0;
  double share = 0.0;                 ///< count / logged accesses
  double strategy_probability = 0.0;  ///< p(Q) the share should converge to
  double mean_delay = 0.0;            ///< mean net-only delta/gamma
};

struct AccessLogAnalysis {
  // Echoed from the log header.
  bool sequential = false;
  int relay = -1;
  double jitter = 0.0;
  double service_rate = 0.0;

  std::int64_t total_accesses = 0;
  /// Weighted-overall empirical net-only mean vs Avg_v Delta_f(v) (clients
  /// are sampled proportionally to their weights, so the plain per-access
  /// mean estimates the paper's weighted objective directly).
  double overall_mean = 0.0;
  double overall_half_width = 0.0;
  double overall_analytic = 0.0;
  bool overall_checked = false;
  bool overall_ok = false;
  /// Wall-clock (finish - start) mean; differs from overall_mean exactly by
  /// the queueing the analytic model abstracts away.
  double wall_mean = 0.0;
  double mean_queue_wait = 0.0;
  double max_queue_wait = 0.0;

  std::vector<ClientCheck> clients;
  int clients_checked = 0;
  int clients_ok = 0;
  std::vector<NodeCheck> nodes;
  bool loads_ok = true;
  std::vector<QuorumBreakdown> quorums;

  // ---- fault-injection subtree (schema v2; docs/SIMULATION.md) ----
  /// The log was recorded under fault injection (context "fault_digest"
  /// set, or any record retried / failed). Delay and load CI checks are
  /// skipped: re-selection and backoff bias both estimators.
  bool faulty = false;
  std::int64_t ok_accesses = 0;
  std::int64_t failed_accesses = 0;        ///< outcome != ok
  std::int64_t unavailable_accesses = 0;   ///< outcome == unavailable
  std::int64_t total_retries = 0;          ///< sum of (attempts - 1)
  double availability = 1.0;  ///< ok_accesses / total_accesses (1 if empty)
  /// Schedule cross-check results; only populated when a FaultSchedule was
  /// supplied to analyze_access_log.
  bool faults_checked = false;
  std::int64_t fault_violations = 0;
  /// Human-readable description of the first few violations.
  std::vector<std::string> fault_findings;
  bool faults_ok() const { return fault_violations == 0; }

  bool delays_ok() const { return clients_ok == clients_checked &&
                                  (!overall_checked || overall_ok); }
  bool ok() const { return delays_ok() && loads_ok && faults_ok(); }
};

/// Cross-checks a parsed access log against the instance + placement it was
/// recorded for; with `faults` supplied, additionally validates every
/// retry/failure against the schedule (see the file comment). The caller is
/// responsible for digest-matching the log to the instance and the
/// schedule first (context keys "instance_digest" / "fault_digest").
/// \throws std::invalid_argument on an invalid placement or records whose
/// client/quorum ids fall outside the instance.
AccessLogAnalysis analyze_access_log(const core::QppInstance& instance,
                                     const core::Placement& placement,
                                     const ParsedAccessLog& log,
                                     const AnalyzeOptions& options = {},
                                     const sim::FaultSchedule* faults =
                                         nullptr);

// ---------------------------------------------------------------- report diff

struct CounterDiff {
  std::string name;
  bool in_base = false;
  bool in_cand = false;
  std::uint64_t base = 0;
  std::uint64_t cand = 0;

  /// |cand - base| / max(base, 1); +infinity when the counter exists on
  /// only one side with a non-zero value (an appearing/vanishing
  /// instrument is always a drift).
  double rel_drift() const;
};

struct SeriesDiff {
  std::string name;
  bool in_base = false;
  bool in_cand = false;
  bool equal = false;  ///< element-wise exact equality
};

struct HistogramDiff {
  std::string name;
  double count_base = 0.0, count_cand = 0.0;
  double mean_base = 0.0, mean_cand = 0.0;
  double p50_base = 0.0, p50_cand = 0.0;
  double p90_base = 0.0, p90_cand = 0.0;
  double p99_base = 0.0, p99_cand = 0.0;
  /// True when the side's mean/p50/p90/p99 are JSON null (empty histogram;
  /// see LogHistogram::to_json). The numeric fields above stay 0 then.
  bool null_base = false;
  bool null_cand = false;

  /// null on one side, numbers on the other: the histograms are not
  /// comparable (one run measured, the other did not) -- schema drift,
  /// which gates like an infinite counter drift rather than passing any
  /// tolerance on the 0-vs-number difference.
  bool schema_drift() const { return null_base != null_cand; }
};

/// Wall-time comparison -- informational only, never gated.
struct TimerDiff {
  std::string name;
  double calls_base = 0.0, calls_cand = 0.0;
  double ms_base = 0.0, ms_cand = 0.0;
};

/// Process-resource comparison (nondeterministic "resources" object: peak
/// RSS, page faults) -- wall-class, informational only, never gated.
struct ResourceDiff {
  std::string name;
  double base = 0.0, cand = 0.0;
};

struct ReportDiff {
  /// Non-empty when the documents are not comparable (schema mismatch,
  /// disagreeing instance digests); every other field is then unset.
  std::string error;
  /// True when the respective report was produced by a -DQPLACE_OBS=OFF
  /// build (context "obs_compiled_in" == "false"): its counter map is
  /// structurally empty, so a "zero drift" verdict would be vacuous.
  bool obs_off_base = false;
  bool obs_off_cand = false;

  std::vector<CounterDiff> counters;    // deterministic -- gated
  std::vector<SeriesDiff> series;       // deterministic -- gated
  std::vector<HistogramDiff> histograms;  // deterministic -- reported
  std::vector<TimerDiff> timers;        // nondeterministic -- informational
  std::vector<ResourceDiff> resources;  // nondeterministic -- informational

  /// Largest relative counter drift (0 when there are no counters);
  /// +infinity when a counter or series exists on only one side, a series
  /// diverged, or a histogram is null-vs-number (HistogramDiff::
  /// schema_drift).
  double max_deterministic_drift() const;
  bool deterministic_ok(double tolerance) const {
    return error.empty() && max_deterministic_drift() <= tolerance;
  }
};

/// Diffs two parsed documents. Accepts `qplace.run_report.v1` reports and
/// the BENCH_parallel.json baseline (whose `solver_counters` member acts as
/// a counters-only report).
ReportDiff diff_run_reports(const json::Value& base, const json::Value& cand);

}  // namespace qp::obs
