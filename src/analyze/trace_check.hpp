#pragma once

/// \file trace_check.hpp
/// Cross-checks causal access span trees against the access log.
///
/// A traced fault run (docs/OBSERVABILITY.md §8) carries, in the sim-time
/// pid domain of the Chrome trace, one "sim.access" parent span per
/// resolved access with "sim.attempt" / "sim.probe" / "sim.backoff" /
/// "sim.reselect" children, every span annotated with JSON args (access id,
/// attempt number, outcome, ...). The access log (§5) records the same
/// accesses through an entirely separate code path. `qplace analyze
/// --trace` reconciles the two: for every logged record the span tree must
/// exist and its arithmetic must agree --
///
///  - the parent span covers [start, finish] and repeats client / final
///    quorum / attempts / outcome;
///  - there are exactly `attempts` attempt spans, numbered 1..attempts,
///    each inside the parent, the last one on the final quorum and (for ok
///    and timeout outcomes) ending at `finish`;
///  - the final attempt's probe spans match the record's probes array:
///    dropped flag iff net_delay < 0, duration == net_delay otherwise, and
///    (for completed accesses) one span per quorum element.
///
/// Spans without a log record are fine -- warmup accesses and sampled-out
/// records are traced but never logged. Timestamps round-trip through the
/// trace's "%.3f"-microsecond rendering, hence the tolerance (in sim-time
/// units) rather than exact equality.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/access_log.hpp"
#include "obs/json.hpp"

namespace qp::obs {

struct TraceCheckOptions {
  /// Absolute tolerance, in sim-time units, for every timestamp/duration
  /// comparison. The trace renders microseconds with 3 decimals and one sim
  /// unit is 1000 us, so the rendering error is ~1e-6 units per endpoint.
  double tolerance = 1e-4;
  /// Violation messages retained in `findings` (further ones only count).
  int max_findings = 20;
};

struct TraceCheckResult {
  std::int64_t access_spans = 0;     ///< sim.access spans in the trace
  std::int64_t matched_records = 0;  ///< log records with a span tree
  std::int64_t checked_attempts = 0;
  std::int64_t checked_probes = 0;
  std::int64_t violations = 0;
  std::vector<std::string> findings;  ///< first max_findings violations

  bool ok() const { return violations == 0; }
};

/// Reconciles a parsed Chrome trace document with a parsed access log (see
/// file comment). \p trace is the full document; only sim-time-domain spans
/// (pid obs::TraceRecorder::kSimTimePid) named "sim.*" are consulted.
/// \throws std::runtime_error when \p trace has no traceEvents array.
TraceCheckResult check_trace_against_log(const json::Value& trace,
                                         const ParsedAccessLog& log,
                                         const TraceCheckOptions& options =
                                             {});

}  // namespace qp::obs
