#include "assign/hungarian.hpp"

#include <cmath>
#include <stdexcept>

#include "check/contracts.hpp"

namespace qp::assign {

std::optional<Matching> min_cost_assignment(int num_rows, int num_columns,
                                            const std::vector<double>& cost) {
  if (num_rows < 0 || num_columns < 0 || num_rows > num_columns) {
    throw std::invalid_argument(
        "min_cost_assignment: need 0 <= num_rows <= num_columns");
  }
  if (cost.size() != static_cast<std::size_t>(num_rows) *
                         static_cast<std::size_t>(num_columns)) {
    throw std::invalid_argument("min_cost_assignment: cost matrix size mismatch");
  }
  const auto at = [&](int r, int c) {
    return cost[static_cast<std::size_t>(r) * static_cast<std::size_t>(num_columns) +
                static_cast<std::size_t>(c)];
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // 1-indexed potentials formulation (rows = "workers", columns = "jobs").
  std::vector<double> u(static_cast<std::size_t>(num_rows) + 1, 0.0);
  std::vector<double> v(static_cast<std::size_t>(num_columns) + 1, 0.0);
  std::vector<int> p(static_cast<std::size_t>(num_columns) + 1, 0);
  std::vector<int> way(static_cast<std::size_t>(num_columns) + 1, 0);

  for (int i = 1; i <= num_rows; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<std::size_t>(num_columns) + 1, kInf);
    std::vector<char> used(static_cast<std::size_t>(num_columns) + 1, 0);
    do {
      used[static_cast<std::size_t>(j0)] = 1;
      const int i0 = p[static_cast<std::size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= num_columns; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const double edge = at(i0 - 1, j - 1);
        if (edge != kForbidden) {
          const double current = edge - u[static_cast<std::size_t>(i0)] -
                                 v[static_cast<std::size_t>(j)];
          if (current < minv[static_cast<std::size_t>(j)]) {
            minv[static_cast<std::size_t>(j)] = current;
            way[static_cast<std::size_t>(j)] = j0;
          }
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      if (j1 < 0 || delta == kInf) return std::nullopt;  // no augmenting path
      for (int j = 0; j <= num_columns; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    // Augment along the found path.
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  Matching result;
  result.row_to_column.assign(static_cast<std::size_t>(num_rows), -1);
  for (int j = 1; j <= num_columns; ++j) {
    const int i = p[static_cast<std::size_t>(j)];
    if (i != 0) result.row_to_column[static_cast<std::size_t>(i - 1)] = j - 1;
  }
  for (int i = 0; i < num_rows; ++i) {
    const int j = result.row_to_column[static_cast<std::size_t>(i)];
    if (j < 0) return std::nullopt;  // defensive; should not happen
    result.total_cost += at(i, j);
  }
  QP_INVARIANT(
      [&] {
        std::vector<char> taken(static_cast<std::size_t>(num_columns), 0);
        for (int i = 0; i < num_rows; ++i) {
          const int j = result.row_to_column[static_cast<std::size_t>(i)];
          if (j < 0 || j >= num_columns || taken[static_cast<std::size_t>(j)]) {
            return false;
          }
          if (at(i, j) == kForbidden) return false;
          taken[static_cast<std::size_t>(j)] = 1;
        }
        return true;
      }(),
      "Hungarian matching must be injective and use only allowed edges");
  return result;
}

}  // namespace qp::assign
