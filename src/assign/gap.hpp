#pragma once

/// \file gap.hpp
/// Generalized Assignment Problem (paper Def 3.10): jobs U, machines V,
/// assignment costs c_ij, loads p_ij, machine budgets T_i. Includes the LP
/// relaxation (paper eqs. (15)-(18)) and the Shmoys-Tardos rounding
/// (paper Thm 3.11): integral cost <= LP cost, machine load <= T_i + pmax_i.

#include <optional>
#include <vector>

#include "check/contracts.hpp"
#include "lp/simplex.hpp"

namespace qp::assign {

/// A GAP instance. Forbidden (job, machine) pairs are expressed with
/// load = kForbidden (infinity); their cost is ignored.
class GapInstance {
 public:
  GapInstance(int num_jobs, int num_machines);

  int num_jobs() const { return num_jobs_; }
  int num_machines() const { return num_machines_; }

  void set_cost(int machine, int job, double cost);
  void set_load(int machine, int job, double load);
  void set_capacity(int machine, double capacity);

  double cost(int machine, int job) const {
    return cost_[index(machine, job)];
  }
  double load(int machine, int job) const {
    return load_[index(machine, job)];
  }
  /// Hot path (rounding scans every (machine, job) pair): unchecked
  /// indexing, bounds guarded by the contract in Debug builds.
  double capacity(int machine) const {
    QP_REQUIRE(machine >= 0 && machine < num_machines_,
               "machine index out of range");
    return capacity_[static_cast<std::size_t>(machine)];
  }

  /// A pair is allowed iff its load is finite and fits the machine budget
  /// (the LP keeps y_ij = 0 otherwise, mirroring constraint (13) / the
  /// p_ij = infinity convention in Sec 3.3.1).
  bool allowed(int machine, int job) const;

 private:
  std::size_t index(int machine, int job) const;

  int num_jobs_ = 0;
  int num_machines_ = 0;
  std::vector<double> cost_;      // machine-major
  std::vector<double> load_;      // machine-major
  std::vector<double> capacity_;
};

/// Fractional solution to the GAP LP: y[machine][job] (machine-major).
struct FractionalGap {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> y;

  double value(const GapInstance& g, int machine, int job) const {
    return y[static_cast<std::size_t>(machine) *
                 static_cast<std::size_t>(g.num_jobs()) +
             static_cast<std::size_t>(job)];
  }
};

/// Solves the LP relaxation (15)-(18).
FractionalGap solve_gap_lp(const GapInstance& instance);

/// Integral GAP solution.
struct GapAssignment {
  std::vector<int> job_to_machine;
  double total_cost = 0.0;
  std::vector<double> machine_loads;
};

/// Shmoys-Tardos rounding of a fractional solution: builds per-machine unit
/// slots over jobs sorted by non-increasing load, then extracts a min-cost
/// job-saturating matching. Guarantees cost <= fractional cost and
/// machine load <= T_i + max allowed load on i.
/// \returns std::nullopt if \p fractional does not fully assign every job
///          (e.g. the LP was infeasible).
std::optional<GapAssignment> shmoys_tardos_round(const GapInstance& instance,
                                                 const FractionalGap& fractional);

/// Convenience: LP + rounding. std::nullopt if the LP is infeasible.
std::optional<GapAssignment> solve_gap(const GapInstance& instance);

/// Baseline for ablation benches: assigns each job (in input order) to the
/// cheapest machine whose remaining budget fits its load; no guarantee.
std::optional<GapAssignment> greedy_gap(const GapInstance& instance);

}  // namespace qp::assign
