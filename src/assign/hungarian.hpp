#pragma once

/// \file hungarian.hpp
/// Min-cost bipartite assignment (rectangular Hungarian algorithm with
/// potentials / successive shortest paths). Used by the Shmoys-Tardos GAP
/// rounding to extract an integral matching from the slot graph.

#include <limits>
#include <optional>
#include <vector>

namespace qp::assign {

/// Cost marking a (row, column) pair as forbidden.
inline constexpr double kForbidden = std::numeric_limits<double>::infinity();

/// Result of an assignment: row r is matched to column match[r].
struct Matching {
  std::vector<int> row_to_column;
  double total_cost = 0.0;
};

/// Minimum-cost assignment matching every row to a distinct column.
/// \param cost row-major num_rows x num_columns matrix; entries may be
///        kForbidden. Requires num_rows <= num_columns.
/// \returns std::nullopt if no perfect (row-saturating) matching exists.
/// \throws std::invalid_argument on shape errors.
std::optional<Matching> min_cost_assignment(int num_rows, int num_columns,
                                            const std::vector<double>& cost);

}  // namespace qp::assign
