#include "assign/gap.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "assign/hungarian.hpp"
#include "check/contracts.hpp"
#include "lp/model.hpp"
#include "obs/obs.hpp"

namespace qp::assign {

namespace {

/// Contract helper for the Shmoys-Tardos guarantee: every machine's rounded
/// load stays within T_i + max allowed single-job load on i (Thm 3.11).
[[maybe_unused]] bool loads_within_budget(const GapInstance& instance,
                                          const GapAssignment& assignment) {
  for (int i = 0; i < instance.num_machines(); ++i) {
    double pmax = 0.0;
    for (int j = 0; j < instance.num_jobs(); ++j) {
      if (instance.allowed(i, j)) {
        pmax = std::max(pmax, instance.load(i, j));
      }
    }
    if (assignment.machine_loads[static_cast<std::size_t>(i)] >
        instance.capacity(i) + pmax + 1e-6) {
      return false;
    }
  }
  return true;
}

/// Contract helper: cost of the fractional assignment, sum_ij c_ij y_ij.
/// Thm 3.11 bounds the rounded cost by this (the recorded `objective` field
/// may be absent when the caller hand-builds a fractional solution).
[[maybe_unused]] double fractional_cost(const GapInstance& instance,
                                        const FractionalGap& fractional) {
  double cost = 0.0;
  for (int i = 0; i < instance.num_machines(); ++i) {
    for (int j = 0; j < instance.num_jobs(); ++j) {
      const double y = fractional.value(instance, i, j);
      if (y > 0.0) cost += instance.cost(i, j) * y;
    }
  }
  return cost;
}

}  // namespace

GapInstance::GapInstance(int num_jobs, int num_machines)
    : num_jobs_(num_jobs), num_machines_(num_machines) {
  if (num_jobs < 0 || num_machines < 0) {
    throw std::invalid_argument("GapInstance: negative dimensions");
  }
  const std::size_t cells =
      static_cast<std::size_t>(num_jobs) * static_cast<std::size_t>(num_machines);
  cost_.assign(cells, 0.0);
  load_.assign(cells, kForbidden);
  capacity_.assign(static_cast<std::size_t>(num_machines), 0.0);
}

std::size_t GapInstance::index(int machine, int job) const {
  if (machine < 0 || machine >= num_machines_ || job < 0 || job >= num_jobs_) {
    throw std::invalid_argument("GapInstance: index out of range");
  }
  return static_cast<std::size_t>(machine) * static_cast<std::size_t>(num_jobs_) +
         static_cast<std::size_t>(job);
}

void GapInstance::set_cost(int machine, int job, double cost) {
  if (!std::isfinite(cost)) {
    throw std::invalid_argument("GapInstance: cost must be finite");
  }
  cost_[index(machine, job)] = cost;
}

void GapInstance::set_load(int machine, int job, double load) {
  if (load < 0.0 || std::isnan(load)) {
    throw std::invalid_argument("GapInstance: load must be >= 0 or kForbidden");
  }
  load_[index(machine, job)] = load;
}

void GapInstance::set_capacity(int machine, double capacity) {
  if (!(capacity >= 0.0) || !std::isfinite(capacity)) {
    throw std::invalid_argument("GapInstance: capacity must be finite, >= 0");
  }
  capacity_[static_cast<std::size_t>(machine)] = capacity;
}

bool GapInstance::allowed(int machine, int job) const {
  const double p = load(machine, job);
  // Tolerance mirrors the LP feasibility tolerance: p == T exactly is allowed.
  return std::isfinite(p) && p <= capacity(machine) + 1e-12;
}

FractionalGap solve_gap_lp(const GapInstance& instance) {
  QP_SPAN("gap.lp");
  QP_COUNTER_ADD("gap.lp_solves", 1);
  const int jobs = instance.num_jobs();
  const int machines = instance.num_machines();
  lp::Model model;
  // Variable index for allowed (machine, job) pairs; -1 otherwise.
  std::vector<int> var(static_cast<std::size_t>(jobs) *
                           static_cast<std::size_t>(machines),
                       -1);
  const auto vindex = [&](int i, int j) -> int& {
    return var[static_cast<std::size_t>(i) * static_cast<std::size_t>(jobs) +
               static_cast<std::size_t>(j)];
  };
  for (int i = 0; i < machines; ++i) {
    for (int j = 0; j < jobs; ++j) {
      if (instance.allowed(i, j)) {
        vindex(i, j) = model.add_variable(instance.cost(i, j));
      }
    }
  }
  // (17): each job fully assigned.
  for (int j = 0; j < jobs; ++j) {
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < machines; ++i) {
      if (vindex(i, j) >= 0) terms.emplace_back(vindex(i, j), 1.0);
    }
    model.add_constraint(std::move(terms), lp::Relation::kEqual, 1.0);
  }
  // (16): machine budgets.
  for (int i = 0; i < machines; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < jobs; ++j) {
      if (vindex(i, j) >= 0) terms.emplace_back(vindex(i, j), instance.load(i, j));
    }
    if (!terms.empty()) {
      model.add_constraint(std::move(terms), lp::Relation::kLessEqual,
                           instance.capacity(i));
    }
  }
  const lp::Solution lp_solution = lp::solve(model);

  FractionalGap out;
  out.status = lp_solution.status;
  out.objective = lp_solution.objective;
  out.y.assign(static_cast<std::size_t>(jobs) * static_cast<std::size_t>(machines),
               0.0);
  if (lp_solution.status == lp::SolveStatus::kOptimal) {
    for (int i = 0; i < machines; ++i) {
      for (int j = 0; j < jobs; ++j) {
        if (vindex(i, j) >= 0) {
          out.y[static_cast<std::size_t>(i) * static_cast<std::size_t>(jobs) +
                static_cast<std::size_t>(j)] =
              lp_solution.values[static_cast<std::size_t>(vindex(i, j))];
        }
      }
    }
    QP_INVARIANT(
        [&] {
          for (int j = 0; j < jobs; ++j) {
            double mass = 0.0;
            for (int i = 0; i < machines; ++i) {
              const double y =
                  out.y[static_cast<std::size_t>(i) *
                            static_cast<std::size_t>(jobs) +
                        static_cast<std::size_t>(j)];
              if (y < -1e-7 || y > 1.0 + 1e-7) return false;
              mass += y;
            }
            if (std::abs(mass - 1.0) > 1e-6) return false;
          }
          return true;
        }(),
        "LP (16)-(17) must fully assign every job with y in [0, 1]");
  }
  return out;
}

namespace {

/// One unit-capacity slot on a machine, remembering which jobs poured
/// fractional mass into it.
struct Slot {
  int machine = 0;
  std::vector<int> jobs;  // jobs with positive fractional mass in this slot
};

}  // namespace

std::optional<GapAssignment> shmoys_tardos_round(
    const GapInstance& instance, const FractionalGap& fractional) {
  if (fractional.status != lp::SolveStatus::kOptimal) return std::nullopt;
  QP_SPAN("gap.round");
  QP_COUNTER_ADD("gap.round_calls", 1);
  const int jobs = instance.num_jobs();
  const int machines = instance.num_machines();
  QP_COUNTER_ADD("gap.jobs", jobs);
  QP_COUNTER_ADD("gap.machines", machines);
  constexpr double kMassEpsilon = 1e-9;

  // Verify every job is (numerically) fully assigned.
  for (int j = 0; j < jobs; ++j) {
    double mass = 0.0;
    for (int i = 0; i < machines; ++i) mass += fractional.value(instance, i, j);
    if (std::abs(mass - 1.0) > 1e-6) return std::nullopt;
  }

  // Build slots machine by machine: jobs sorted by non-increasing load are
  // poured greedily into unit-capacity slots (Shmoys-Tardos construction).
  std::vector<Slot> slots;
  for (int i = 0; i < machines; ++i) {
    std::vector<std::pair<int, double>> mass;  // (job, y_ij > 0)
    for (int j = 0; j < jobs; ++j) {
      const double y = fractional.value(instance, i, j);
      if (y > kMassEpsilon) mass.emplace_back(j, y);
    }
    if (mass.empty()) continue;
    std::sort(mass.begin(), mass.end(), [&](const auto& a, const auto& b) {
      const double pa = instance.load(i, a.first);
      const double pb = instance.load(i, b.first);
      if (pa != pb) return pa > pb;
      return a.first < b.first;
    });
    Slot current{i, {}};
    double filled = 0.0;
    for (auto [job, y] : mass) {
      double remaining = y;
      while (remaining > kMassEpsilon) {
        if (current.jobs.empty() || current.jobs.back() != job) {
          current.jobs.push_back(job);
        }
        const double poured = std::min(remaining, 1.0 - filled);
        filled += poured;
        remaining -= poured;
        if (filled >= 1.0 - kMassEpsilon) {
          slots.push_back(std::move(current));
          current = Slot{i, {}};
          filled = 0.0;
        }
      }
    }
    if (!current.jobs.empty()) slots.push_back(std::move(current));
  }

  // Min-cost matching of jobs into slots. The fractional filling is itself a
  // feasible fractional matching of the same cost as the LP, so an integral
  // matching of cost <= LP cost exists.
  const int num_slots = static_cast<int>(slots.size());
  QP_COUNTER_ADD("gap.slots", num_slots);
  if (jobs > num_slots) return std::nullopt;  // cannot happen with valid input
  std::vector<double> matrix(static_cast<std::size_t>(jobs) *
                                 static_cast<std::size_t>(num_slots),
                             kForbidden);
  for (int s = 0; s < num_slots; ++s) {
    for (int j : slots[static_cast<std::size_t>(s)].jobs) {
      matrix[static_cast<std::size_t>(j) * static_cast<std::size_t>(num_slots) +
             static_cast<std::size_t>(s)] =
          instance.cost(slots[static_cast<std::size_t>(s)].machine, j);
    }
  }
  const std::optional<Matching> matching =
      min_cost_assignment(jobs, num_slots, matrix);
  if (!matching) return std::nullopt;

  GapAssignment out;
  out.job_to_machine.assign(static_cast<std::size_t>(jobs), -1);
  out.machine_loads.assign(static_cast<std::size_t>(machines), 0.0);
  for (int j = 0; j < jobs; ++j) {
    const int slot = matching->row_to_column[static_cast<std::size_t>(j)];
    const int machine = slots[static_cast<std::size_t>(slot)].machine;
    out.job_to_machine[static_cast<std::size_t>(j)] = machine;
    out.total_cost += instance.cost(machine, j);
    out.machine_loads[static_cast<std::size_t>(machine)] +=
        instance.load(machine, j);
  }
  QP_INVARIANT(loads_within_budget(instance, out),
               "Shmoys-Tardos rounding must keep machine load within "
               "T_i + pmax_i (paper Thm 3.11)");
  QP_INVARIANT(
      [&] {
        const double lp_cost = fractional_cost(instance, fractional);
        return out.total_cost <= lp_cost + 1e-6 + 1e-9 * std::abs(lp_cost);
      }(),
      "Shmoys-Tardos rounding must not cost more than the fractional "
      "assignment (paper Thm 3.11)");
  return out;
}

std::optional<GapAssignment> solve_gap(const GapInstance& instance) {
  return shmoys_tardos_round(instance, solve_gap_lp(instance));
}

std::optional<GapAssignment> greedy_gap(const GapInstance& instance) {
  const int jobs = instance.num_jobs();
  const int machines = instance.num_machines();
  GapAssignment out;
  out.job_to_machine.assign(static_cast<std::size_t>(jobs), -1);
  out.machine_loads.assign(static_cast<std::size_t>(machines), 0.0);
  for (int j = 0; j < jobs; ++j) {
    int best = -1;
    for (int i = 0; i < machines; ++i) {
      if (!instance.allowed(i, j)) continue;
      if (out.machine_loads[static_cast<std::size_t>(i)] + instance.load(i, j) >
          instance.capacity(i) + 1e-12) {
        continue;
      }
      if (best < 0 || instance.cost(i, j) < instance.cost(best, j)) best = i;
    }
    if (best < 0) return std::nullopt;
    out.job_to_machine[static_cast<std::size_t>(j)] = best;
    out.total_cost += instance.cost(best, j);
    out.machine_loads[static_cast<std::size_t>(best)] += instance.load(best, j);
  }
  QP_INVARIANT(
      [&] {
        for (int i = 0; i < machines; ++i) {
          if (out.machine_loads[static_cast<std::size_t>(i)] >
              instance.capacity(i) + 1e-9) {
            return false;
          }
        }
        return true;
      }(),
      "greedy GAP assignment must respect machine capacities exactly "
      "(no T_i + pmax_i slack)");
  return out;
}

}  // namespace qp::assign
