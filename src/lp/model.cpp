#include "lp/model.hpp"

#include <cmath>
#include <stdexcept>

namespace qp::lp {

int Model::add_variable(double objective_coefficient, std::string name) {
  if (!std::isfinite(objective_coefficient)) {
    throw std::invalid_argument("Model: objective coefficient must be finite");
  }
  objective_.push_back(objective_coefficient);
  names_.push_back(std::move(name));
  return static_cast<int>(objective_.size()) - 1;
}

void Model::set_objective_coefficient(int variable, double coefficient) {
  if (variable < 0 || variable >= num_variables()) {
    throw std::invalid_argument("Model: variable out of range");
  }
  if (!std::isfinite(coefficient)) {
    throw std::invalid_argument("Model: objective coefficient must be finite");
  }
  objective_[static_cast<std::size_t>(variable)] = coefficient;
}

void Model::add_constraint(std::vector<std::pair<int, double>> terms,
                           Relation relation, double rhs) {
  if (!std::isfinite(rhs)) {
    throw std::invalid_argument("Model: rhs must be finite");
  }
  for (const auto& [var, coeff] : terms) {
    if (var < 0 || var >= num_variables()) {
      throw std::invalid_argument("Model: constraint references unknown variable");
    }
    if (!std::isfinite(coeff)) {
      throw std::invalid_argument("Model: constraint coefficient must be finite");
    }
  }
  constraints_.push_back({std::move(terms), relation, rhs});
}

}  // namespace qp::lp
