#pragma once

/// \file simplex.hpp
/// Two-phase dense tableau simplex for qp::lp::Model. Designed for the
/// moderate LP sizes arising from the paper's formulations (up to a few
/// thousand rows); robustness over raw speed: Dantzig pricing with a Bland
/// anti-cycling fallback, centralized tolerances.

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace qp::lp {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

std::string to_string(SolveStatus status);

struct SimplexOptions {
  double epsilon = 1e-9;          ///< reduced-cost / pivot tolerance
  std::int64_t max_iterations = 200000;
  /// Switch from Dantzig to Bland's rule after this many consecutive
  /// iterations without objective improvement (anti-cycling).
  int stall_threshold = 64;
};

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;     ///< per-variable values when kOptimal
  std::int64_t iterations = 0;
};

/// Solves min c.x subject to the model's rows and x >= 0.
Solution solve(const Model& model, const SimplexOptions& options = {});

}  // namespace qp::lp
