#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "check/contracts.hpp"
#include "obs/obs.hpp"

namespace qp::lp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

/// Dense two-phase tableau. Row-major matrix `a` of size rows x cols, the
/// right-hand side `b`, and two running cost rows (phase 1 and phase 2),
/// each of length cols + 1 with the final entry holding -objective.
class Tableau {
 public:
  Tableau(const Model& model, const SimplexOptions& options)
      : options_(options),
        num_structural_(model.num_variables()),
        rows_(model.num_constraints()) {
    build(model);
  }

  /// Basis changes performed, including drive_out_artificials() pivots (so
  /// it can exceed the iteration count on degenerate phase-1 exits).
  std::int64_t pivots() const { return pivots_; }

  Solution run() {
    Solution solution;
    // Phase 1: minimize the sum of artificial variables.
    if (num_artificial_ > 0) {
      const SolveStatus phase1 = iterate(cost1_, /*allow_artificial=*/true,
                                         solution.iterations);
      if (phase1 == SolveStatus::kIterationLimit) {
        solution.status = phase1;
        return solution;
      }
      // Unbounded is impossible in phase 1 (objective bounded below by 0).
      const double infeasibility = -cost1_[static_cast<std::size_t>(cols_)];
      if (infeasibility > options_.epsilon * (1.0 + rhs_scale_)) {
        solution.status = SolveStatus::kInfeasible;
        return solution;
      }
      drive_out_artificials();
    }
    // Phase 2: minimize the true objective, artificials barred from entering.
    const SolveStatus phase2 = iterate(cost2_, /*allow_artificial=*/false,
                                       solution.iterations);
    solution.status = phase2;
    if (phase2 != SolveStatus::kOptimal) return solution;
    solution.objective = -cost2_[static_cast<std::size_t>(cols_)];
    solution.values.assign(static_cast<std::size_t>(num_structural_), 0.0);
    for (int i = 0; i < rows_; ++i) {
      const int bv = basis_[static_cast<std::size_t>(i)];
      if (bv < num_structural_) {
        solution.values[static_cast<std::size_t>(bv)] =
            std::max(0.0, b_[static_cast<std::size_t>(i)]);
      }
    }
    return solution;
  }

 private:
  double& at(int row, int col) {
    return a_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(col)];
  }
  double at(int row, int col) const {
    return a_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(col)];
  }

  void build(const Model& model) {
    const auto& constraints = model.constraints();
    // Aggregate each row into a dense vector over structural variables and
    // normalize to rhs >= 0.
    std::vector<std::vector<double>> dense(static_cast<std::size_t>(rows_));
    std::vector<Relation> relation(static_cast<std::size_t>(rows_));
    b_.assign(static_cast<std::size_t>(rows_), 0.0);
    int num_slack = 0;
    num_artificial_ = 0;
    for (int i = 0; i < rows_; ++i) {
      const Constraint& c = constraints[static_cast<std::size_t>(i)];
      auto& row = dense[static_cast<std::size_t>(i)];
      row.assign(static_cast<std::size_t>(num_structural_), 0.0);
      for (const auto& [var, coeff] : c.terms) {
        row[static_cast<std::size_t>(var)] += coeff;
      }
      double rhs = c.rhs;
      Relation rel = c.relation;
      if (rhs < 0.0) {
        for (double& x : row) x = -x;
        rhs = -rhs;
        if (rel == Relation::kLessEqual) {
          rel = Relation::kGreaterEqual;
        } else if (rel == Relation::kGreaterEqual) {
          rel = Relation::kLessEqual;
        }
      }
      b_[static_cast<std::size_t>(i)] = rhs;
      relation[static_cast<std::size_t>(i)] = rel;
      rhs_scale_ = std::max(rhs_scale_, rhs);
      if (rel != Relation::kEqual) ++num_slack;
      if (rel != Relation::kLessEqual) ++num_artificial_;
    }

    first_artificial_ = num_structural_ + num_slack;
    cols_ = first_artificial_ + num_artificial_;
    a_.assign(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_),
              0.0);
    basis_.assign(static_cast<std::size_t>(rows_), -1);

    int next_slack = num_structural_;
    int next_artificial = first_artificial_;
    for (int i = 0; i < rows_; ++i) {
      const auto& row = dense[static_cast<std::size_t>(i)];
      for (int j = 0; j < num_structural_; ++j) {
        at(i, j) = row[static_cast<std::size_t>(j)];
      }
      switch (relation[static_cast<std::size_t>(i)]) {
        case Relation::kLessEqual:
          at(i, next_slack) = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_slack++;
          break;
        case Relation::kGreaterEqual:
          at(i, next_slack) = -1.0;
          ++next_slack;
          at(i, next_artificial) = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_artificial++;
          break;
        case Relation::kEqual:
          at(i, next_artificial) = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_artificial++;
          break;
      }
    }

    // Phase-2 cost row: reduced costs of the all-slack/artificial basis are
    // just the raw objective (basic variables all have zero true cost).
    cost2_.assign(static_cast<std::size_t>(cols_) + 1, 0.0);
    for (int j = 0; j < num_structural_; ++j) {
      cost2_[static_cast<std::size_t>(j)] =
          model.objective()[static_cast<std::size_t>(j)];
    }
    // Phase-1 cost row: cost 1 on artificials, reduced by the rows in which
    // an artificial is basic.
    cost1_.assign(static_cast<std::size_t>(cols_) + 1, 0.0);
    for (int j = first_artificial_; j < cols_; ++j) {
      cost1_[static_cast<std::size_t>(j)] = 1.0;
    }
    for (int i = 0; i < rows_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] >= first_artificial_) {
        for (int j = 0; j < cols_; ++j) {
          cost1_[static_cast<std::size_t>(j)] -= at(i, j);
        }
        cost1_[static_cast<std::size_t>(cols_)] -=
            b_[static_cast<std::size_t>(i)];
      }
    }
  }

  /// Pivots on (pivot_row, pivot_col), updating both cost rows.
  void pivot(int pivot_row, int pivot_col) {
    const double pivot_value = at(pivot_row, pivot_col);
    const double inverse = 1.0 / pivot_value;
    for (int j = 0; j < cols_; ++j) at(pivot_row, j) *= inverse;
    at(pivot_row, pivot_col) = 1.0;  // exact
    b_[static_cast<std::size_t>(pivot_row)] *= inverse;

    const double pivot_rhs = b_[static_cast<std::size_t>(pivot_row)];
    double* pivot_row_data =
        &a_[static_cast<std::size_t>(pivot_row) * static_cast<std::size_t>(cols_)];
    for (int i = 0; i < rows_; ++i) {
      if (i == pivot_row) continue;
      const double factor = at(i, pivot_col);
      if (factor == 0.0) continue;
      double* row_data =
          &a_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_)];
      for (int j = 0; j < cols_; ++j) row_data[j] -= factor * pivot_row_data[j];
      row_data[pivot_col] = 0.0;  // exact
      b_[static_cast<std::size_t>(i)] -= factor * pivot_rhs;
      if (std::abs(b_[static_cast<std::size_t>(i)]) < options_.epsilon) {
        b_[static_cast<std::size_t>(i)] = 0.0;
      }
    }
    for (std::vector<double>* cost : {&cost1_, &cost2_}) {
      const double factor = (*cost)[static_cast<std::size_t>(pivot_col)];
      if (factor == 0.0) continue;
      for (int j = 0; j < cols_; ++j) {
        (*cost)[static_cast<std::size_t>(j)] -= factor * pivot_row_data[j];
      }
      (*cost)[static_cast<std::size_t>(pivot_col)] = 0.0;
      (*cost)[static_cast<std::size_t>(cols_)] -= factor * pivot_rhs;
    }
    basis_[static_cast<std::size_t>(pivot_row)] = pivot_col;
    ++pivots_;
  }

  /// Runs simplex iterations against the given cost row.
  SolveStatus iterate(std::vector<double>& cost, bool allow_artificial,
                      std::int64_t& iterations) {
    const int limit_col = allow_artificial ? cols_ : first_artificial_;
    int stalled = 0;
    bool use_bland = false;
    double last_objective = -cost[static_cast<std::size_t>(cols_)];
    while (true) {
      if (iterations++ >= options_.max_iterations) {
        return SolveStatus::kIterationLimit;
      }
      // Entering column.
      int entering = -1;
      if (use_bland) {
        for (int j = 0; j < limit_col; ++j) {
          if (cost[static_cast<std::size_t>(j)] < -options_.epsilon) {
            entering = j;
            break;
          }
        }
      } else {
        double best = -options_.epsilon;
        for (int j = 0; j < limit_col; ++j) {
          if (cost[static_cast<std::size_t>(j)] < best) {
            best = cost[static_cast<std::size_t>(j)];
            entering = j;
          }
        }
      }
      if (entering < 0) return SolveStatus::kOptimal;

      // Ratio test (ties broken by smallest basis index, Bland-compatible).
      int leaving = -1;
      double best_ratio = 0.0;
      for (int i = 0; i < rows_; ++i) {
        const double coeff = at(i, entering);
        if (coeff > options_.epsilon) {
          const double ratio = b_[static_cast<std::size_t>(i)] / coeff;
          if (leaving < 0 || ratio < best_ratio - options_.epsilon ||
              (ratio < best_ratio + options_.epsilon &&
               basis_[static_cast<std::size_t>(i)] <
                   basis_[static_cast<std::size_t>(leaving)])) {
            leaving = i;
            best_ratio = ratio;
          }
        }
      }
      if (leaving < 0) return SolveStatus::kUnbounded;

      pivot(leaving, entering);

      // Anti-cycling: if the objective stops improving, fall back to Bland.
      const double objective = -cost[static_cast<std::size_t>(cols_)];
      if (objective < last_objective - options_.epsilon) {
        stalled = 0;
        use_bland = false;
      } else if (++stalled >= options_.stall_threshold) {
        use_bland = true;
      }
      last_objective = objective;
    }
  }

  /// After phase 1, pivot artificial variables out of the basis where
  /// possible. Rows where no non-artificial pivot exists are redundant and
  /// can be left with a degenerate (zero-valued) artificial basic variable:
  /// artificials never re-enter, and such rows have zero coefficients on
  /// every non-artificial column, so later pivots cannot change their value.
  void drive_out_artificials() {
    for (int i = 0; i < rows_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] < first_artificial_) continue;
      int pivot_col = -1;
      for (int j = 0; j < first_artificial_; ++j) {
        if (std::abs(at(i, j)) > options_.epsilon) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) pivot(i, pivot_col);
    }
  }

  SimplexOptions options_;
  int num_structural_ = 0;
  int rows_ = 0;
  int cols_ = 0;
  int first_artificial_ = 0;
  int num_artificial_ = 0;
  double rhs_scale_ = 0.0;
  std::int64_t pivots_ = 0;
  std::vector<double> a_;
  std::vector<double> b_;
  std::vector<double> cost1_;
  std::vector<double> cost2_;
  std::vector<int> basis_;
};

}  // namespace

Solution solve(const Model& model, const SimplexOptions& options) {
  QP_SPAN("lp.solve");
  QP_COUNTER_ADD("lp.solves", 1);
  if (model.num_constraints() == 0) {
    // Every variable sits at its lower bound 0 unless its cost is negative,
    // in which case the LP is unbounded.
    Solution solution;
    for (double c : model.objective()) {
      if (c < -options.epsilon) {
        solution.status = SolveStatus::kUnbounded;
        return solution;
      }
    }
    solution.status = SolveStatus::kOptimal;
    solution.objective = 0.0;
    solution.values.assign(static_cast<std::size_t>(model.num_variables()), 0.0);
    return solution;
  }
  Tableau tableau(model, options);
  Solution solution = tableau.run();
  // Flushed once per solve; pivot selection is deterministic (Dantzig with a
  // Bland fallback, fixed tie-breaks), so these totals are reproducible.
  QP_COUNTER_ADD("lp.iterations", solution.iterations);
  QP_COUNTER_ADD("lp.pivots", tableau.pivots());
  QP_INVARIANT(
      solution.status != SolveStatus::kOptimal ||
          [&] {
            if (static_cast<int>(solution.values.size()) !=
                model.num_variables()) {
              return false;
            }
            double recomputed = 0.0;
            for (int j = 0; j < model.num_variables(); ++j) {
              const double x = solution.values[static_cast<std::size_t>(j)];
              if (!std::isfinite(x)) return false;
              recomputed += model.objective()[static_cast<std::size_t>(j)] * x;
            }
            return std::abs(recomputed - solution.objective) <=
                   1e-6 + 1e-6 * std::abs(solution.objective);
          }(),
      "optimal simplex solution must carry one finite value per variable "
      "and an objective equal to c.x");
  return solution;
}

}  // namespace qp::lp
