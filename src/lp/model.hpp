#pragma once

/// \file model.hpp
/// Minimal linear-program model: minimize c.x subject to linear rows and
/// x >= 0. This is the interface consumed by the simplex solver and produced
/// by the SSQPP LP builder (paper eqs. (9)-(14)) and the GAP LP relaxation
/// (paper eqs. (15)-(18)).

#include <string>
#include <utility>
#include <vector>

namespace qp::lp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

/// A sparse linear row: sum(coeff * x[var]) REL rhs.
struct Constraint {
  std::vector<std::pair<int, double>> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// LP in "minimize" orientation with non-negative variables.
class Model {
 public:
  /// Adds a variable with the given objective coefficient; returns its index.
  int add_variable(double objective_coefficient = 0.0, std::string name = "");

  /// Overwrites the objective coefficient of an existing variable.
  void set_objective_coefficient(int variable, double coefficient);

  /// Adds a constraint row. Terms may mention a variable more than once
  /// (coefficients are summed by the solver). \throws std::invalid_argument
  /// on out-of-range variable ids or non-finite numbers.
  void add_constraint(std::vector<std::pair<int, double>> terms,
                      Relation relation, double rhs);

  int num_variables() const { return static_cast<int>(objective_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }
  const std::vector<double>& objective() const { return objective_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const std::string& variable_name(int variable) const {
    return names_.at(static_cast<std::size_t>(variable));
  }

 private:
  std::vector<double> objective_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
};

}  // namespace qp::lp
