#include "check/certificate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "core/evaluators.hpp"

namespace qp::check {

namespace {

std::string num(double x) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", x);
  return buffer;
}

double beta_of(double alpha) { return alpha / (alpha - 1.0); }

/// value <= bound within absolute-or-relative tolerance.
bool within(double value, double bound, double tolerance) {
  return value <= bound + tolerance * std::max(1.0, std::abs(bound));
}

/// Weighted average client distance to a node: Avg_v d(v, v0).
double average_distance_to(const core::QppInstance& instance, int v0) {
  double average = 0.0;
  for (int v = 0; v < instance.num_nodes(); ++v) {
    average += instance.client_weights()[static_cast<std::size_t>(v)] *
               instance.metric()(v, v0);
  }
  return average;
}

void set_ratio(Certificate& cert, double value, double lower_bound) {
  cert.opt_lower_bound = lower_bound;
  cert.certified_ratio = lower_bound > 0.0 ? value / lower_bound : 0.0;
}

/// Placement sanity shared by all certificates; returns false (and records
/// the failure) when the remaining checks cannot run.
bool placement_usable(Certificate& cert, const core::Placement& placement,
                      int universe_size, int num_nodes) {
  const bool valid =
      core::is_valid_placement(placement, universe_size, num_nodes);
  cert.add("placement/valid", valid ? 0.0 : 1.0, 0.0, 0.0);
  return valid;
}

}  // namespace

void Certificate::add(std::string name, double value, double bound,
                      double tolerance) {
  checks.push_back({std::move(name), value, bound,
                    within(value, bound, tolerance)});
}

bool Certificate::ok() const {
  return std::all_of(checks.begin(), checks.end(),
                     [](const BoundCheck& c) { return c.holds; });
}

std::string Certificate::to_string() const {
  std::string out;
  for (const BoundCheck& c : checks) {
    out += (c.holds ? "  ok   " : "  FAIL ") + c.name + ": " + num(c.value) +
           " <= " + num(c.bound) + "\n";
  }
  if (opt_lower_bound > 0.0) {
    out += "  certified OPT lower bound " + num(opt_lower_bound) +
           ", ratio " + num(certified_ratio) + "\n";
  }
  return out;
}

Certificate check_certificate(const core::SsqppInstance& instance,
                              const core::SsqppResult& result,
                              const CertificateOptions& options) {
  QP_REQUIRE(options.alpha > 1.0, "certificate needs alpha > 1");
  Certificate cert;
  if (!placement_usable(cert, result.placement,
                        instance.system().universe_size(),
                        instance.num_nodes())) {
    return cert;
  }
  const double tol = options.tolerance;
  const double beta = beta_of(options.alpha);

  // Re-derive the LP lower bound Z* (paper eq. (9)) from scratch.
  const core::FractionalSsqpp lp =
      core::solve_ssqpp_lp(instance, options.simplex);
  cert.add("lp/re-derivable",
           lp.status == lp::SolveStatus::kOptimal ? 0.0 : 1.0, 0.0, 0.0);
  if (lp.status != lp::SolveStatus::kOptimal) return cert;
  const ValidationReport lp_report = validate_lp_solution(instance, lp);
  cert.add("lp/primal-feasible",
           static_cast<double>(lp_report.issues.size()), 0.0, 0.0);

  const double delay =
      core::source_expected_max_delay(instance, result.placement);
  const double violation = core::max_capacity_violation(
      instance.element_loads(), instance.capacities(), result.placement);

  cert.add("consistency/delay", std::abs(delay - result.delay), 0.0, tol);
  cert.add("consistency/lp-objective",
           std::abs(lp.objective - result.lp_objective), 0.0, tol);
  cert.add("consistency/load-violation",
           std::abs(violation - result.load_violation), 0.0, tol);

  // Thm 3.7: Delta_f(v0) <= beta * Z*, load <= (alpha + 1) cap.
  cert.add("thm3.7/delay", delay, beta * lp.objective, tol);
  cert.add("thm3.7/load", violation, options.alpha + 1.0, tol);

  // Z* lower-bounds the *capacity-respecting* OPT; the rounded placement may
  // use up to (alpha + 1) cap, so its delay can legitimately undercut Z* and
  // the certified ratio can fall below 1.
  set_ratio(cert, delay, lp.objective);
  return cert;
}

Certificate check_certificate(const core::QppInstance& instance,
                              const core::QppResult& result,
                              const CertificateOptions& options) {
  QP_REQUIRE(options.alpha > 1.0, "certificate needs alpha > 1");
  Certificate cert;
  if (!placement_usable(cert, result.placement,
                        instance.system().universe_size(),
                        instance.num_nodes())) {
    return cert;
  }
  const double tol = options.tolerance;
  const double beta = beta_of(options.alpha);

  const double average =
      core::average_max_delay(instance, result.placement);
  const double violation = core::max_capacity_violation(
      instance.element_loads(), instance.capacities(), result.placement);
  cert.add("consistency/delay", std::abs(average - result.average_delay), 0.0,
           tol);
  cert.add("consistency/load-violation",
           std::abs(violation - result.load_violation), 0.0, tol);
  cert.add("thm1.2/load", violation, options.alpha + 1.0, tol);

  const bool source_valid =
      result.chosen_source >= 0 && result.chosen_source < instance.num_nodes();
  cert.add("result/source-valid", source_valid ? 0.0 : 1.0, 0.0, 0.0);
  if (!source_valid) return cert;

  // Thm 3.7 at the chosen relay: Delta_f(v0) <= beta * Z*(v0).
  const core::SsqppInstance chosen_view =
      core::single_source_view(instance, result.chosen_source);
  const core::FractionalSsqpp chosen_lp =
      core::solve_ssqpp_lp(chosen_view, options.simplex);
  cert.add("lp/re-derivable",
           chosen_lp.status == lp::SolveStatus::kOptimal ? 0.0 : 1.0, 0.0,
           0.0);
  if (chosen_lp.status != lp::SolveStatus::kOptimal) return cert;
  const double source_delay =
      core::source_expected_max_delay(chosen_view, result.placement);
  cert.add("thm3.7@v0/delay", source_delay, beta * chosen_lp.objective, tol);

  // Relay inequality (paper eq. (4)/(8)): the average delay is at most the
  // via-v0 delay; holds for any placement by the triangle inequality.
  cert.add("lemma3.1/relay", average,
           average_distance_to(instance, result.chosen_source) + source_delay,
           tol);

  if (options.derive_opt_lower_bound) {
    // L = min_v0 [Avg_v d(v, v0) + Z*(v0)] over ALL nodes; by Lemma 3.1 and
    // Z*(v0) <= Delta_{f*}(v0), L <= 5 OPT. One LP per node.
    double relay_bound = std::numeric_limits<double>::infinity();
    for (int v0 = 0; v0 < instance.num_nodes(); ++v0) {
      core::FractionalSsqpp lp =
          v0 == result.chosen_source
              ? chosen_lp
              : core::solve_ssqpp_lp(core::single_source_view(instance, v0),
                                     options.simplex);
      if (lp.status != lp::SolveStatus::kOptimal) continue;  // OPT_ssqpp = inf
      relay_bound = std::min(relay_bound,
                             average_distance_to(instance, v0) + lp.objective);
    }
    cert.add("thm1.2/lower-bound-exists",
             std::isfinite(relay_bound) ? 0.0 : 1.0, 0.0, 0.0);
    if (std::isfinite(relay_bound)) {
      // Thm 1.2: achieved average delay <= 5 beta * (L / 5) = beta * L.
      cert.add("thm1.2/delay", average, beta * relay_bound, tol);
      set_ratio(cert, average, relay_bound / 5.0);
    }
  }
  return cert;
}

Certificate check_certificate(const core::QppInstance& instance,
                              const core::TotalDelayResult& result,
                              const CertificateOptions& options) {
  Certificate cert;
  if (!placement_usable(cert, result.placement,
                        instance.system().universe_size(),
                        instance.num_nodes())) {
    return cert;
  }
  const double tol = options.tolerance;
  const double average =
      core::average_total_delay(instance, result.placement);
  const double violation = core::max_capacity_violation(
      instance.element_loads(), instance.capacities(), result.placement);

  cert.add("consistency/delay", std::abs(average - result.average_delay), 0.0,
           tol);
  cert.add("consistency/load-violation",
           std::abs(violation - result.load_violation), 0.0, tol);

  // Re-derive the GAP LP optimum; the solve is deterministic.
  const std::optional<core::TotalDelayResult> rederived =
      core::solve_total_delay(instance);
  cert.add("lp/re-derivable", rederived ? 0.0 : 1.0, 0.0, 0.0);
  if (!rederived) return cert;
  cert.add("consistency/lp-objective",
           std::abs(rederived->lp_objective - result.lp_objective), 0.0, tol);

  // Thm 5.1: cost <= LP optimum <= OPT, load <= 2 cap.
  cert.add("thm5.1/delay", average, rederived->lp_objective, tol);
  cert.add("thm5.1/load", violation, 2.0, tol);
  set_ratio(cert, average, rederived->lp_objective);
  return cert;
}

Certificate check_certificate(const core::SsqppInstance& instance,
                              const core::MajorityLayoutResult& result, int t,
                              const CertificateOptions& options) {
  Certificate cert;
  if (!placement_usable(cert, result.placement,
                        instance.system().universe_size(),
                        instance.num_nodes())) {
    return cert;
  }
  const double tol = options.tolerance;
  const double delay =
      core::source_expected_max_delay(instance, result.placement);
  const double violation = core::max_capacity_violation(
      instance.element_loads(), instance.capacities(), result.placement);

  cert.add("consistency/delay", std::abs(delay - result.delay), 0.0, tol);
  // Eq. (19): the measured delay equals the closed form on the placed slot
  // distances (placement-invariance of Sec 4.2).
  std::vector<double> slot_distances;
  slot_distances.reserve(result.placement.size());
  for (int node : result.placement) {
    slot_distances.push_back(instance.metric()(instance.source(), node));
  }
  const double formula =
      core::majority_delay_formula(std::move(slot_distances), t);
  cert.add("eq19/formula-matches", std::abs(delay - formula), 0.0, tol);
  cert.add("consistency/formula", std::abs(formula - result.formula_delay),
           0.0, tol);
  // Thm 1.3: the specialized layouts respect capacities exactly.
  cert.add("thm1.3/load", violation, 1.0, tol);
  return cert;
}

}  // namespace qp::check
