#include "check/contracts.hpp"

#include <cstdio>
#include <cstdlib>

namespace qp::check {

[[noreturn]] void contract_failure(const char* kind, const char* condition,
                                   const char* file, int line,
                                   const char* function, const char* message) {
  std::fprintf(stderr,
               "qplace contract violation [%s]: %s\n  at %s:%d in %s\n  %s\n",
               kind, condition, file, line, function, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace qp::check
